//! Socket-level chaos: partitions, kills, blackholes, and corruption
//! injected between a real TCP coordinator and real worker servers via the
//! deterministic chaos proxy. The contract under fire:
//!
//! * the coordinator NEVER hangs (watchdog on every test),
//! * any single-worker partition/kill/corruption resolves to failover onto
//!   survivors or a typed `ExecError`,
//! * a healed partition reconnects within the backoff budget and the
//!   device serves again,
//! * a resend after a connection loss is deduped by the worker — the unit
//!   is computed at most once per request id.
//!
//! Every scenario runs over BOTH socket backends (threaded and
//! readiness-based event loop) via the [`murmuration::testkit`] backend
//! abstraction — the supervision contracts are backend-independent.

use murmuration::partition::{ExecutionPlan, UnitPlacement};
use murmuration::runtime::executor::{
    ConvStackCompute, ExecOptions, Executor, UnitCompute, UnitOutcome, UnitWire,
};
use murmuration::runtime::fault::{FaultKind, FaultyCompute};
use murmuration::runtime::gossip::{GossipConfig, GossipMsg, GossipNode, NodeId, NodeRole};
use murmuration::runtime::transport::Transport;
use murmuration::tensor::quant::BitWidth;
use murmuration::tensor::tile::GridSpec;
use murmuration::tensor::{Shape, Tensor};
use murmuration::testkit::{with_watchdog, Backend, TestTransport, TestWorker};
use murmuration::transport::{ChaosConfig, ChaosProxy, TcpTransportConfig, WorkerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_tcp_cfg() -> TcpTransportConfig {
    TcpTransportConfig {
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_miss_limit: 3,
        reconnect_backoff: Duration::from_millis(10),
        reconnect_backoff_max: Duration::from_millis(200),
        fails_before_dead: 4,
        max_in_flight: 32,
        connect_timeout: Duration::from_millis(200),
        drain_timeout: Duration::from_millis(500),
        seed: 99,
    }
}

fn chaos_opts() -> ExecOptions {
    ExecOptions {
        deadline: Duration::from_millis(250),
        max_attempts: 4,
        backoff: Duration::from_millis(1),
        hedge: None,
    }
}

fn worker(backend: Backend, dev: usize, compute: Arc<dyn UnitCompute>) -> TestWorker {
    let cfg =
        WorkerConfig { dev_id: dev, read_timeout: Duration::from_millis(25), ..Default::default() };
    TestWorker::bind(backend, compute, cfg)
}

fn connect(backend: Backend, addrs: &[String]) -> TestTransport {
    TestTransport::connect(backend, addrs, fast_tcp_cfg())
}

fn remote_plan() -> ExecutionPlan {
    ExecutionPlan {
        placements: vec![
            UnitPlacement::Single(0),
            UnitPlacement::Single(1),
            UnitPlacement::Single(0),
        ],
    }
}

fn wire3() -> Vec<UnitWire> {
    vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 }; 3]
}

fn test_input(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(Shape::nchw(1, 4, 12, 12), 1.0, &mut rng)
}

fn local_reference(compute: &ConvStackCompute, input: &Tensor) -> Tensor {
    let mut cur = input.clone();
    for u in 0..compute.n_units() {
        cur = compute.run_unit(u, &cur);
    }
    cur
}

fn partition_heals_within_budget(backend: Backend) {
    let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
    let w0 = worker(backend, 0, compute.clone());
    let w1 = worker(backend, 1, compute.clone());
    let proxy = ChaosProxy::start(w1.local_addr(), ChaosConfig::default()).unwrap();
    let addrs = vec![w0.local_addr().to_string(), proxy.local_addr().to_string()];
    let transport = connect(backend, &addrs);
    assert!(transport.wait_connected(Duration::from_secs(10)));
    let exec = Executor::with_transport(Box::new(transport));
    let input = test_input(1);
    let expect = local_reference(&compute, &input);

    // Warm path: device 1 serves through the proxy.
    let (out, report) =
        exec.execute_with(&remote_plan(), &wire3(), input.clone(), chaos_opts()).unwrap();
    assert_eq!(out.data(), expect.data());
    assert_eq!(report.failovers, 0, "warm run must not fail over: {report:?}");

    // Partition device 1 and run again: the request into the void must
    // resolve by failover onto device 0, never hang.
    proxy.partition();
    let (out, report) =
        exec.execute_with(&remote_plan(), &wire3(), input.clone(), chaos_opts()).unwrap();
    assert_eq!(out.data(), expect.data(), "failover math is exact at B32");
    assert!(report.failovers >= 1, "partitioned peer must fail over: {report:?}");

    // Heal and wait for supervision to bring the device back: the plan
    // must eventually run with zero failovers again.
    proxy.heal();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (out, report) =
            exec.execute_with(&remote_plan(), &wire3(), input.clone(), chaos_opts()).unwrap();
        assert_eq!(out.data(), expect.data());
        if report.failovers == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "healed partition did not reconnect within the backoff budget: {report:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn partition_mid_request_fails_over_and_heals_within_backoff_budget() {
    with_watchdog(|| partition_heals_within_budget(Backend::Threaded));
}

#[test]
fn partition_mid_request_fails_over_and_heals_within_backoff_budget_async() {
    with_watchdog(|| partition_heals_within_budget(Backend::Async));
}

fn killed_worker_fails_over(backend: Backend) {
    let inner = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
    let faulty = Arc::new(FaultyCompute::new(inner.clone(), 2));
    // Device 1's first unit call crashes the whole worker server —
    // listener closed, connections dropped, no reply: a process kill.
    faulty.script(1, 0, FaultKind::Vanish);
    let w0 = worker(backend, 0, faulty.clone());
    let w1 = worker(backend, 1, faulty.clone());
    let addrs = vec![w0.local_addr().to_string(), w1.local_addr().to_string()];
    let transport = connect(backend, &addrs);
    assert!(transport.wait_connected(Duration::from_secs(10)));
    let exec = Executor::with_transport(Box::new(transport));
    let input = test_input(2);

    let (out, report) =
        exec.execute_with(&remote_plan(), &wire3(), input.clone(), chaos_opts()).unwrap();
    assert_eq!(out.data(), local_reference(&inner, &input).data());
    assert!(report.failovers >= 1, "killed worker must fail over: {report:?}");
    assert!(w1.is_stopped(), "the crash must have taken the server down");

    // Supervision keeps probing the corpse; connects are refused and
    // the peer is declared dead within the failure budget.
    let deadline = Instant::now() + Duration::from_secs(10);
    while exec.is_alive(1) {
        assert!(Instant::now() < deadline, "dead worker never declared dead");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn killed_worker_process_resolves_to_failover_and_dead_device() {
    with_watchdog(|| killed_worker_fails_over(Backend::Threaded));
}

#[test]
fn killed_worker_process_resolves_to_failover_and_dead_device_async() {
    with_watchdog(|| killed_worker_fails_over(Backend::Async));
}

fn blackholed_peer_detected(backend: Backend) {
    let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
    let w0 = worker(backend, 0, compute.clone());
    let w1 = worker(backend, 1, compute.clone());
    // Connections succeed but every frame disappears: the classic
    // silent blackhole only heartbeat staleness can catch.
    let proxy = ChaosProxy::start(
        w1.local_addr(),
        ChaosConfig { seed: 5, drop_prob: 1.0, ..Default::default() },
    )
    .unwrap();
    let addrs = vec![w0.local_addr().to_string(), proxy.local_addr().to_string()];
    let transport = connect(backend, &addrs);
    let exec = Executor::with_transport(Box::new(transport));
    let input = test_input(3);

    let (out, report) =
        exec.execute_with(&remote_plan(), &wire3(), input.clone(), chaos_opts()).unwrap();
    assert_eq!(out.data(), local_reference(&compute, &input).data());
    assert!(report.failovers >= 1, "blackholed peer must fail over: {report:?}");
    // The supervisor must have noticed the silence.
    let deadline = Instant::now() + Duration::from_secs(10);
    while exec.transport_stats().heartbeats_missed == 0 {
        assert!(Instant::now() < deadline, "no heartbeat miss ever recorded");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn blackholed_peer_is_detected_by_heartbeats() {
    with_watchdog(|| blackholed_peer_detected(Backend::Threaded));
}

#[test]
fn blackholed_peer_is_detected_by_heartbeats_async() {
    with_watchdog(|| blackholed_peer_detected(Backend::Async));
}

fn corrupted_link_is_typed(backend: Backend) {
    let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
    let w0 = worker(backend, 0, compute.clone());
    let w1 = worker(backend, 1, compute.clone());
    // Every frame through the proxy gets a payload byte flipped: the
    // receiver's outer checksum rejects it and the connection churns.
    let proxy = ChaosProxy::start(
        w1.local_addr(),
        ChaosConfig { seed: 6, corrupt_prob: 1.0, ..Default::default() },
    )
    .unwrap();
    let addrs = vec![w0.local_addr().to_string(), proxy.local_addr().to_string()];
    let transport = connect(backend, &addrs);
    let exec = Executor::with_transport(Box::new(transport));
    let input = test_input(4);

    let (out, report) =
        exec.execute_with(&remote_plan(), &wire3(), input.clone(), chaos_opts()).unwrap();
    assert_eq!(out.data(), local_reference(&compute, &input).data());
    assert!(report.failovers >= 1, "corrupted link must fail over: {report:?}");
}

#[test]
fn corrupted_link_resolves_to_typed_outcome_not_hang() {
    with_watchdog(|| corrupted_link_is_typed(Backend::Threaded));
}

#[test]
fn corrupted_link_resolves_to_typed_outcome_not_hang_async() {
    with_watchdog(|| corrupted_link_is_typed(Backend::Async));
}

fn random_chaos_stream_exact(backend: Backend) {
    let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
    let w0 = worker(backend, 0, compute.clone());
    let w1 = worker(backend, 1, compute.clone());
    let proxy = ChaosProxy::start(
        w1.local_addr(),
        ChaosConfig {
            seed: 42,
            delay_prob: 0.2,
            delay: Duration::from_millis(10),
            drop_prob: 0.15,
            corrupt_prob: 0.1,
            reorder_prob: 0.2,
            ..Default::default()
        },
    )
    .unwrap();
    let addrs = vec![w0.local_addr().to_string(), proxy.local_addr().to_string()];
    let transport = connect(backend, &addrs);
    let exec = Executor::with_transport(Box::new(transport));

    let mut rng = StdRng::seed_from_u64(11);
    let inputs: Vec<Tensor> =
        (0..6).map(|_| Tensor::rand_uniform(Shape::nchw(1, 4, 10, 10), 1.0, &mut rng)).collect();
    let (outs, _report) =
        exec.execute_stream_with(&[0, 1, 0], inputs.clone(), BitWidth::B32, chaos_opts());
    assert_eq!(outs.len(), inputs.len());
    for (input, out) in inputs.iter().zip(&outs) {
        match out {
            Ok(t) => {
                assert_eq!(
                    t.data(),
                    local_reference(&compute, input).data(),
                    "chaos must never corrupt a delivered result"
                );
            }
            Err(e) => {
                // A typed error is an acceptable outcome under chaos;
                // silence (a hang) is not.
                let _ = format!("{e}");
            }
        }
    }
}

#[test]
fn random_chaos_stream_never_hangs_and_ok_results_are_exact() {
    with_watchdog(|| random_chaos_stream_exact(Backend::Threaded));
}

#[test]
fn random_chaos_stream_never_hangs_and_ok_results_are_exact_async() {
    with_watchdog(|| random_chaos_stream_exact(Backend::Async));
}

/// A compute wrapper that parks the worker's compute thread until
/// released, letting the test break the connection while a unit is
/// mid-flight.
struct GateCompute {
    inner: Arc<ConvStackCompute>,
    entered: AtomicBool,
    release: AtomicBool,
}

impl UnitCompute for GateCompute {
    fn n_units(&self) -> usize {
        self.inner.n_units()
    }

    fn run_unit(&self, unit: usize, input: &Tensor) -> Tensor {
        self.inner.run_unit(unit, input)
    }

    fn run_unit_on(&self, _dev: usize, unit: usize, input: &Tensor) -> UnitOutcome {
        self.entered.store(true, Ordering::SeqCst);
        while !self.release.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        UnitOutcome::Output(self.inner.run_unit(unit, input))
    }
}

fn resend_is_deduped(backend: Backend) {
    let inner = Arc::new(ConvStackCompute::random(1, 1, 4, 7));
    let gate = Arc::new(GateCompute {
        inner: inner.clone(),
        entered: AtomicBool::new(false),
        release: AtomicBool::new(false),
    });
    let w0 = worker(backend, 0, gate.clone());
    let proxy = ChaosProxy::start(w0.local_addr(), ChaosConfig::default()).unwrap();
    let addrs = vec![proxy.local_addr().to_string()];
    let transport = connect(backend, &addrs);
    assert!(transport.wait_connected(Duration::from_secs(10)));
    let exec = Executor::with_transport(Box::new(transport));

    let input = test_input(8);
    let expect = inner.run_unit(0, &input);
    let plan = ExecutionPlan { placements: vec![UnitPlacement::Single(0)] };
    let wire = vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 }];
    // One attempt, generous deadline: any recovery must happen at the
    // transport layer (resend + dedup), not by executor retry.
    let opts = ExecOptions {
        deadline: Duration::from_secs(20),
        max_attempts: 1,
        backoff: Duration::from_millis(1),
        hedge: None,
    };
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let runner = std::thread::spawn(move || {
        let r = exec.execute_with(&plan, &wire, input, opts);
        let _ = done_tx.send(r);
    });

    // Wait until the worker is actually computing the request...
    let deadline = Instant::now() + Duration::from_secs(10);
    while !gate.entered.load(Ordering::SeqCst) {
        assert!(Instant::now() < deadline, "request never reached the worker");
        std::thread::sleep(Duration::from_millis(2));
    }
    // ...then yank the connection. The coordinator reconnects and
    // resends the same request id; the worker must recognise it.
    proxy.break_connections();
    let deadline = Instant::now() + Duration::from_secs(10);
    while w0.deduped() == 0 {
        assert!(Instant::now() < deadline, "resend never deduped by the worker");
        std::thread::sleep(Duration::from_millis(5));
    }
    gate.release.store(true, Ordering::SeqCst);

    let result = done_rx.recv_timeout(Duration::from_secs(30)).expect("runner finished");
    let (out, report) = result.expect("request completes after reconnect");
    assert_eq!(out.data(), expect.data(), "deduped result is the real output");
    assert_eq!(w0.computed(), 1, "the unit must have been computed exactly once");
    assert!(w0.deduped() >= 1);
    assert!(report.reconnects >= 1, "the loss must show as a reconnect: {report:?}");
    assert!(report.resends_deduped >= 1, "the dedup must surface in the report: {report:?}");
    let _ = runner.join();
}

#[test]
fn resend_after_connection_loss_is_deduped_not_recomputed() {
    with_watchdog(|| resend_is_deduped(Backend::Threaded));
}

#[test]
fn resend_after_connection_loss_is_deduped_not_recomputed_async() {
    with_watchdog(|| resend_is_deduped(Backend::Async));
}

fn duplicated_frames_deduped(backend: Backend) {
    let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
    let w0 = worker(backend, 0, compute.clone());
    let w1 = worker(backend, 1, compute.clone());
    // Every frame in both directions is written three times: requests
    // must hit the worker's dedup map, responses must settle once, and
    // the late copies must be dropped silently.
    let proxy = ChaosProxy::start(
        w1.local_addr(),
        ChaosConfig { seed: 77, dup_prob: 1.0, dup_copies: 2, ..Default::default() },
    )
    .unwrap();
    let addrs = vec![w0.local_addr().to_string(), proxy.local_addr().to_string()];
    let transport = connect(backend, &addrs);
    assert!(transport.wait_connected(Duration::from_secs(10)));
    let exec = Executor::with_transport(Box::new(transport));

    for seed in 0..4 {
        let input = test_input(100 + seed);
        let expect = local_reference(&compute, &input);
        let (out, _report) =
            exec.execute_with(&remote_plan(), &wire3(), input, chaos_opts()).unwrap();
        assert_eq!(out.data(), expect.data(), "duplicated frames must not corrupt results");
    }
    assert!(
        w1.deduped() >= 1,
        "tripled requests must be recognised by the worker's dedup map \
         (deduped = {})",
        w1.deduped()
    );
    assert!(
        w1.computed() <= 3 * 4,
        "a duplicated request must never be computed per copy \
         (computed = {} for 4 requests x up-to-3 attempts)",
        w1.computed()
    );
}

#[test]
fn duplicated_frames_are_deduped_and_results_exact() {
    with_watchdog(|| duplicated_frames_deduped(Backend::Threaded));
}

#[test]
fn duplicated_frames_are_deduped_and_results_exact_async() {
    with_watchdog(|| duplicated_frames_deduped(Backend::Async));
}

fn gossip_converges(backend: Backend) {
    const SEED: u64 = 500;
    let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
    let w0 = worker(backend, 0, compute.clone());
    let w1 = worker(backend, 1, compute.clone());
    w0.attach_gossip(GossipNode::new(SEED, 1, NodeRole::Worker, 0, GossipConfig::default()));
    w1.attach_gossip(GossipNode::new(SEED, 2, NodeRole::Worker, 0, GossipConfig::default()));
    // Device 1's link duplicates every frame; merge idempotency must
    // make the copies invisible to the membership protocol.
    let proxy = ChaosProxy::start(
        w1.local_addr(),
        ChaosConfig { seed: 78, dup_prob: 0.8, dup_copies: 2, ..Default::default() },
    )
    .unwrap();
    let addrs = vec![w0.local_addr().to_string(), proxy.local_addr().to_string()];
    let transport = connect(backend, &addrs);
    assert!(transport.wait_connected(Duration::from_secs(10)));

    let mut coord = GossipNode::new(SEED, 0, NodeRole::Coordinator, 0, GossipConfig::default());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        // Push-pull round: push our digest to both workers, then fold
        // whatever digests they sent back.
        let payload = coord.digest().encode();
        transport.send_gossip(0, &payload);
        transport.send_gossip(1, &payload);
        std::thread::sleep(Duration::from_millis(20));
        for bytes in transport.drain_gossip() {
            if let Ok(msg) = GossipMsg::decode(&bytes) {
                coord.merge(&msg);
            }
        }
        let full = |ids: &[NodeId]| (0..3).all(|i| ids.contains(&NodeId::derive(SEED, i)));
        let coord_ids: Vec<NodeId> = coord.members().iter().map(|m| m.id).collect();
        let w0_ids: Vec<NodeId> = w0.gossip_members().iter().map(|m| m.id).collect();
        let w1_ids: Vec<NodeId> = w1.gossip_members().iter().map(|m| m.id).collect();
        // Workers never talk to each other directly: each must learn of
        // the other transitively, through the coordinator's digests.
        if full(&coord_ids) && full(&w0_ids) && full(&w1_ids) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "membership never converged: coord {coord_ids:?} w0 {w0_ids:?} w1 {w1_ids:?}"
        );
    }
    assert!(coord.is_primary(), "rank-0 coordinator must see itself as primary");
}

#[test]
fn gossip_spreads_membership_over_tcp_even_with_duplicated_frames() {
    with_watchdog(|| gossip_converges(Backend::Threaded));
}

#[test]
fn gossip_spreads_membership_over_tcp_even_with_duplicated_frames_async() {
    with_watchdog(|| gossip_converges(Backend::Async));
}
