//! Chaos tests: kill, stall, and corrupt arbitrary devices while the
//! distributed executor is mid-flight. The contract under fire:
//!
//! * the coordinator NEVER hangs (every run finishes under a watchdog),
//! * every request either completes — B32-exact against the local
//!   reference, since failover re-runs the same math elsewhere — or fails
//!   with a typed [`ExecError`],
//! * the executor discovers dead devices and routes around them.

use murmuration::partition::{ExecutionPlan, UnitPlacement};
use murmuration::runtime::executor::{
    ConvStackCompute, ExecError, ExecOptions, Executor, UnitCompute, UnitWire,
};
use murmuration::runtime::fault::{FaultKind, FaultyCompute};
use murmuration::tensor::quant::BitWidth;
use murmuration::tensor::tile::GridSpec;
use murmuration::tensor::{Shape, Tensor};
use murmuration::testkit::with_watchdog;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn chaos_opts() -> ExecOptions {
    ExecOptions {
        deadline: Duration::from_millis(250),
        max_attempts: 3,
        backoff: Duration::from_millis(1),
        hedge: None,
    }
}

fn local_reference(compute: &ConvStackCompute, input: &Tensor) -> Tensor {
    let mut cur = input.clone();
    for u in 0..compute.n_units() {
        cur = compute.run_unit(u, &cur);
    }
    cur
}

#[test]
fn stream_survives_killing_k_of_n_devices_at_random_points() {
    let mut runner = TestRunner::new(ProptestConfig::with_cases(12));
    runner
        .run(&(2usize..5, 1usize..4, 0usize..6, 0u64..1000), |(n, k, kill_call, pick)| {
            let k = k.min(n - 1); // always leave at least one survivor
                                  // Choose k distinct victims from 0..n, seeded by `pick`.
            let mut victims: Vec<usize> = (0..n).collect();
            let mut s = pick;
            for i in (1..victims.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                victims.swap(i, (s % (i as u64 + 1)) as usize);
            }
            victims.truncate(k);

            let (results, report, expects) = with_watchdog(move || {
                let inner = Arc::new(ConvStackCompute::random(3, 1, 4, 7));
                let faulty = Arc::new(FaultyCompute::new(inner.clone(), n));
                for &v in &victims {
                    faulty.script(v, kill_call, FaultKind::Vanish);
                }
                let exec = Executor::new(n, faulty);
                let mut rng = StdRng::seed_from_u64(pick);
                let inputs: Vec<Tensor> = (0..6)
                    .map(|_| Tensor::rand_uniform(Shape::nchw(1, 4, 8, 8), 1.0, &mut rng))
                    .collect();
                let device_of_unit: Vec<usize> = (0..3).map(|u| u % n).collect();
                let (results, report) = exec.execute_stream_with(
                    &device_of_unit,
                    inputs.clone(),
                    BitWidth::B32,
                    chaos_opts(),
                );
                let expects: Vec<Tensor> =
                    inputs.iter().map(|i| local_reference(&inner, i)).collect();
                (results, report, expects)
            });

            prop_assert_eq!(results.len(), 6);
            for (res, expect) in results.iter().zip(&expects) {
                match res {
                    Ok(out) => prop_assert!(
                        out.data() == expect.data(),
                        "completed request must be B32-exact"
                    ),
                    // Typed failure is acceptable; silent corruption or a
                    // hang is not.
                    Err(
                        ExecError::AttemptsExhausted { .. }
                        | ExecError::NoDevice { .. }
                        | ExecError::DeviceDown { .. },
                    ) => {}
                    Err(other) => {
                        return Err(TestCaseError::fail(format!("unexpected error {other:?}")))
                    }
                }
            }
            prop_assert!(report.wall_ms < 60_000.0);
            Ok(())
        })
        .unwrap();
}

#[test]
fn tiled_plans_survive_killing_one_device() {
    let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
    runner
        .run(&(2usize..5, 0usize..4, 0usize..4), |(n, victim, kill_call)| {
            let victim = victim % n;
            let ok = with_watchdog(move || {
                let inner = Arc::new(ConvStackCompute::random(2, 1, 4, 3));
                let faulty = Arc::new(FaultyCompute::new(inner.clone(), n));
                faulty.script(victim, kill_call, FaultKind::Vanish);
                let exec = Executor::new(n, faulty);
                let mut rng = StdRng::seed_from_u64(victim as u64);
                let input = Tensor::rand_uniform(Shape::nchw(1, 4, 10, 10), 1.0, &mut rng);
                let grid = GridSpec::new(2, 2);
                let plan = ExecutionPlan {
                    placements: vec![
                        UnitPlacement::Tiled((0..4).map(|t| t % n).collect()),
                        UnitPlacement::Single(victim),
                    ],
                };
                let wire = vec![
                    UnitWire { grid, in_quant: BitWidth::B32 },
                    UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 },
                ];
                match exec.execute_with(&plan, &wire, input.clone(), chaos_opts()) {
                    Ok((out, _)) => {
                        // Local FDSP reference: failover must not change
                        // the math, only where it runs.
                        use murmuration::tensor::tile::{merge_fdsp, split_fdsp};
                        let tiles = split_fdsp(&input, grid);
                        let outs: Vec<Tensor> =
                            tiles.iter().map(|t| inner.run_unit(0, t)).collect();
                        let expect = inner.run_unit(1, &merge_fdsp(&outs, grid));
                        out.data() == expect.data()
                    }
                    // A typed error is an acceptable outcome; a hang or a
                    // panic is not (watchdog + test harness catch those).
                    Err(_) => true,
                }
            });
            prop_assert!(ok, "tiled chaos run returned a wrong result");
            Ok(())
        })
        .unwrap();
}

#[test]
fn kill_restart_cycles_recover_full_service() {
    with_watchdog(|| {
        let inner = Arc::new(ConvStackCompute::random(3, 1, 4, 5));
        let faulty = Arc::new(FaultyCompute::new(inner.clone(), 3));
        let mut exec = Executor::new(3, faulty.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let plan = ExecutionPlan {
            placements: vec![
                UnitPlacement::Single(0),
                UnitPlacement::Single(1),
                UnitPlacement::Single(2),
            ],
        };
        let wire = vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 }; 3];
        for cycle in 0..4 {
            let input = Tensor::rand_uniform(Shape::nchw(1, 4, 8, 8), 1.0, &mut rng);
            let expect = local_reference(&inner, &input);
            // Kill a rotating victim mid-cycle, serve, then restart it.
            let victim = 1 + cycle % 2;
            faulty.kill(victim);
            let (out, report) =
                exec.execute_with(&plan, &wire, input.clone(), chaos_opts()).unwrap();
            assert_eq!(out.data(), expect.data(), "cycle {cycle}: degraded result exact");
            assert!(report.failovers >= 1, "cycle {cycle}: must fail over");
            faulty.revive(victim);
            exec.restart_device(victim);
            let (out, report) =
                exec.execute_with(&plan, &wire, input.clone(), chaos_opts()).unwrap();
            assert_eq!(out.data(), expect.data(), "cycle {cycle}: recovered result exact");
            assert_eq!(report.failovers, 0, "cycle {cycle}: restarted device serves again");
        }
    });
}
