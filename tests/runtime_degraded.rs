//! Degraded-mode runtime test: a device dies mid-trace and the runtime
//! keeps serving — no panics, no plans touching the dead device (cached or
//! fresh), SLO compliance dips while the fleet is degraded and recovers
//! after failover.

use murmuration::edgesim::{DeviceTrace, FleetTrace};
use murmuration::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn device_loss_mid_trace_degrades_then_recovers() {
    let sc = Scenario::augmented_computing(SloKind::Latency);
    let n = sc.devices.len();
    let link = LinkState { bandwidth_mbps: 300.0, delay_ms: 5.0 };
    let net = NetworkState::uniform(sc.n_remote(), link);

    // Pick an SLO that *requires* offloading: above the best possible
    // remote deployment, below anything the local device can do alone.
    let min_spec = SubnetSpec::lower(&sc.space.min_config());
    let est = LatencyEstimator::new(&sc.devices, &net);
    let local_floor = est.estimate(&min_spec, &ExecutionPlan::all_on(&min_spec, 0)).total_ms;
    let offload_floor = (1..n)
        .map(|d| est.estimate(&min_spec, &ExecutionPlan::all_on(&min_spec, d)).total_ms)
        .fold(f64::INFINITY, f64::min);
    let slo = ((offload_floor + local_floor) / 2.0).clamp(sc.slo_range.0, sc.slo_range.1);
    assert!(
        offload_floor < slo && slo < local_floor,
        "test premise: SLO {slo:.1} must sit between offload floor {offload_floor:.1} \
         and local floor {local_floor:.1}"
    );

    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
    let cfg = RuntimeConfig { monitor_noise: 0.0, ..Default::default() };
    let mut rt = Runtime::new(sc, policy, cfg, Slo::LatencyMs(slo));

    // 20 requests at 100 ms spacing; every remote device is down for
    // requests 6..13 (virtual time 600..1300 ms).
    let mut fleet = FleetTrace::always_up(n);
    for d in 1..n {
        fleet.set(d, DeviceTrace::down_between(600.0, 1300.0));
    }

    let mut rng = StdRng::seed_from_u64(0);
    let mut met = Vec::new();
    for i in 0..20usize {
        let t = i as f64 * 100.0;
        rt.apply_fleet_trace(&fleet, t);
        let r = rt.infer(&net, t, &mut rng);
        let alive = rt.alive_mask();
        // The invariant the strategy cache must uphold: no served plan —
        // cached, precomputed, or fresh — may place work on a dead device.
        for &d in &r.devices_used {
            assert!(alive[d], "request {i}: plan uses dead device {d} (cached={})", r.cached);
        }
        if (6..13).contains(&i) {
            assert!(r.degradation.is_degraded(), "request {i}: outage must be reported");
            assert_eq!(
                r.devices_used,
                vec![0],
                "request {i}: only the local device can serve during the outage"
            );
            assert!(!r.slo_met, "request {i}: this SLO is unachievable locally");
        } else {
            assert!(!r.degradation.is_degraded(), "request {i}: healthy fleet, no degradation");
        }
        met.push(r.slo_met);
    }

    // Compliance dips during the outage and recovers after failback.
    assert!(met[..6].iter().all(|&m| m), "healthy prefix must meet the SLO: {met:?}");
    assert!(!met[6..13].iter().any(|&m| m), "outage window cannot meet the SLO: {met:?}");
    assert!(met[13..].iter().all(|&m| m), "post-recovery requests must meet the SLO: {met:?}");
}

#[test]
fn cache_is_purged_when_a_device_dies() {
    let sc = Scenario::augmented_computing(SloKind::Latency);
    let n = sc.devices.len();
    let link = LinkState { bandwidth_mbps: 300.0, delay_ms: 5.0 };
    let net = NetworkState::uniform(sc.n_remote(), link);
    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
    let cfg = RuntimeConfig { monitor_noise: 0.0, ..Default::default() };
    // Tight SLO forces the healthy decision to offload.
    let mut rt = Runtime::new(sc, policy, cfg, Slo::LatencyMs(85.0));
    let mut rng = StdRng::seed_from_u64(1);

    let r0 = rt.infer(&net, 0.0, &mut rng);
    let r1 = rt.infer(&net, 100.0, &mut rng);
    assert!(r1.cached, "stable conditions must hit the cache");
    let used_remote = r0.devices_used.iter().any(|&d| d != 0);

    // Kill every remote: any cached strategy referencing one must go.
    for d in 1..n {
        rt.set_device_down(d);
    }
    let r2 = rt.infer(&net, 200.0, &mut rng);
    assert_eq!(r2.devices_used, vec![0]);
    if used_remote {
        assert!(!r2.cached, "a cached remote strategy must not be served after device loss");
    }

    // After recovery the cache serves remote strategies again (repopulated
    // by the first healthy decision).
    for d in 1..n {
        rt.set_device_up(d);
    }
    let r3 = rt.infer(&net, 300.0, &mut rng);
    let r4 = rt.infer(&net, 400.0, &mut rng);
    assert_eq!(r3.devices_used, r0.devices_used, "healthy decision is restored");
    assert!(r4.cached, "healthy cache refills after recovery");
}

/// Gray-failure variant of the purge invariant: a device quarantined by
/// latency outliers (never reported down) must purge the cached
/// strategies that used it, and walking the device back through canary
/// re-admission must not resurrect those stale entries — the first
/// post-recovery decision is computed fresh, then re-caches.
#[test]
fn quarantine_purges_cache_and_readmission_does_not_resurrect() {
    use murmuration::runtime::health::HealthState;

    let sc = Scenario::augmented_computing(SloKind::Latency);
    let link = LinkState { bandwidth_mbps: 300.0, delay_ms: 5.0 };
    let net = NetworkState::uniform(sc.n_remote(), link);
    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
    let cfg = RuntimeConfig { monitor_noise: 0.0, ..Default::default() };
    // Tight SLO forces the healthy decision to offload.
    let mut rt = Runtime::new(sc, policy, cfg, Slo::LatencyMs(85.0));
    let mut rng = StdRng::seed_from_u64(2);

    let r0 = rt.infer(&net, 0.0, &mut rng);
    let r1 = rt.infer(&net, 100.0, &mut rng);
    assert!(r1.cached, "stable conditions must hit the cache");
    let Some(&straggler) = r0.devices_used.iter().find(|&&d| d != 0) else {
        panic!("test premise: a tight SLO must offload (got {:?})", r0.devices_used)
    };

    // Arm the straggler's latency tracker with a fast baseline, then feed
    // slow-success outliers until the gray detector quarantines it. The
    // device never fails — it is a brownout, invisible to the crash
    // detector.
    let mut t = 200.0;
    for i in 0..16 {
        rt.report_exec_latency(straggler, 10.0 + 0.1 * (i % 5) as f64, t);
        t += 1.0;
    }
    for _ in 0..32 {
        if rt.gray_states()[straggler] == HealthState::Quarantined {
            break;
        }
        rt.report_exec_latency(straggler, 200.0, t);
        t += 1.0;
    }
    assert_eq!(
        rt.gray_states()[straggler],
        HealthState::Quarantined,
        "slow-success outliers must quarantine the brownout device"
    );
    assert!(!rt.placeable_mask()[straggler], "quarantined devices are not placeable");
    assert!(rt.alive_mask()[straggler], "gray failure: the device is alive, just slow");

    // The cached offload strategy referenced the quarantined device: it
    // must be gone, and the fresh decision must route around it.
    let r2 = rt.infer(&net, t, &mut rng);
    assert!(!r2.cached, "a strategy on a quarantined device must not be served from cache");
    assert!(
        !r2.devices_used.contains(&straggler),
        "no plan may place work on a quarantined device: {:?}",
        r2.devices_used
    );

    // Re-admission: wait out the canary backoff (infer polls the gray
    // clock), then pass the canaries with fast successes.
    t += 9_000.0;
    rt.poll_gray(t);
    assert_eq!(
        rt.gray_states()[straggler],
        HealthState::Probation,
        "an elapsed canary backoff must re-probe the device"
    );
    for _ in 0..4 {
        rt.report_exec_latency(straggler, 10.0, t);
        t += 1.0;
    }
    assert_eq!(rt.gray_states()[straggler], HealthState::Healthy, "canaries passed");
    assert_eq!(rt.gray_penalties()[straggler], 1.0, "re-admission clears the penalty");
    assert!(rt.placeable_mask()[straggler], "re-admitted device is placeable again");

    // The purged entries were dropped, not suspended: the first
    // post-recovery decision is computed fresh (cache miss), lands back
    // on the healthy offload strategy, and re-caches.
    let r3 = rt.infer(&net, t, &mut rng);
    assert!(!r3.cached, "re-admission must not resurrect purged strategies");
    assert_eq!(r3.devices_used, r0.devices_used, "healthy decision is restored");
    let r4 = rt.infer(&net, t + 100.0, &mut rng);
    assert!(r4.cached, "the restored strategy re-caches on the next request");
}
