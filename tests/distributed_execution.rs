//! Integration tests of the real distributed executor against the
//! numerics stack: FDSP tiling, wire quantization, and plan placement all
//! running across actual worker threads.

use murmuration::prelude::*;
use murmuration::runtime::executor::{ConvStackCompute, Executor, UnitCompute, UnitWire};
use murmuration::tensor::quant::BitWidth;
use murmuration::tensor::tile::GridSpec;
use murmuration::tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn reference(compute: &ConvStackCompute, input: &Tensor) -> Tensor {
    let mut cur = input.clone();
    for u in 0..compute.n_units() {
        cur = compute.run_unit(u, &cur);
    }
    cur
}

#[test]
fn many_devices_many_units_exact_at_full_precision() {
    let compute = Arc::new(ConvStackCompute::random(5, 2, 6, 21));
    let exec = Executor::new(5, compute.clone());
    let mut rng = StdRng::seed_from_u64(2);
    let input = Tensor::rand_uniform(Shape::nchw(1, 6, 16, 16), 1.0, &mut rng);
    // Ping-pong across all five devices, unpartitioned.
    let plan = ExecutionPlan { placements: (0..5).map(|u| UnitPlacement::Single(u % 5)).collect() };
    let wire = vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 }; 5];
    let (out, _) = exec.execute(&plan, &wire, input.clone()).unwrap();
    assert_eq!(out.data(), reference(&compute, &input).data());
}

#[test]
fn mixed_plan_tiled_and_single_units() {
    let compute = Arc::new(ConvStackCompute::random(4, 1, 4, 5));
    let exec = Executor::new(4, compute.clone());
    let mut rng = StdRng::seed_from_u64(9);
    let input = Tensor::rand_uniform(Shape::nchw(1, 4, 20, 20), 1.0, &mut rng);
    let plan = ExecutionPlan {
        placements: vec![
            UnitPlacement::Single(1),
            UnitPlacement::Tiled(vec![0, 1, 2, 3]),
            UnitPlacement::Tiled(vec![2, 3]),
            UnitPlacement::Single(0),
        ],
    };
    let wire = vec![
        UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 },
        UnitWire { grid: GridSpec::new(2, 2), in_quant: BitWidth::B32 },
        UnitWire { grid: GridSpec::new(1, 2), in_quant: BitWidth::B16 },
        UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B8 },
    ];
    let (out, report) = exec.execute(&plan, &wire, input.clone()).unwrap();
    assert_eq!(out.shape(), &Shape::nchw(1, 4, 20, 20));
    assert!(report.wall_ms > 0.0);
    // Result stays close to the monolithic reference despite tiling and
    // quantization.
    let mono = reference(&compute, &input);
    let mean_err: f32 =
        out.data().iter().zip(mono.data().iter()).map(|(a, b)| (a - b).abs()).sum::<f32>()
            / out.numel() as f32;
    let scale: f32 = mono.data().iter().map(|v| v.abs()).sum::<f32>() / mono.numel() as f32;
    assert!(mean_err < scale * 0.6, "mean err {mean_err} vs scale {scale}");
}

#[test]
fn repeated_execution_is_deterministic() {
    let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 1));
    let exec = Executor::new(3, compute);
    let mut rng = StdRng::seed_from_u64(4);
    let input = Tensor::rand_uniform(Shape::nchw(1, 4, 10, 10), 1.0, &mut rng);
    let plan = ExecutionPlan {
        placements: vec![
            UnitPlacement::Tiled(vec![0, 1]),
            UnitPlacement::Single(2),
            UnitPlacement::Single(0),
        ],
    };
    let mut wire = vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B8 }; 3];
    wire[0].grid = GridSpec::new(1, 2);
    let (a, _) = exec.execute(&plan, &wire, input.clone()).unwrap();
    let (b, _) = exec.execute(&plan, &wire, input.clone()).unwrap();
    assert_eq!(a.data(), b.data(), "distributed execution must be deterministic");
}

#[test]
fn concurrent_tile_fanout_uses_all_workers() {
    // A 2x2 tiled unit across 4 devices: all four results must come back
    // and merge into the right shape even under repeated stress.
    let compute = Arc::new(ConvStackCompute::random(1, 3, 4, 8));
    let exec = Executor::new(4, compute);
    let mut rng = StdRng::seed_from_u64(6);
    for trial in 0..10 {
        let h = 8 + trial % 5;
        let input = Tensor::rand_uniform(Shape::nchw(1, 4, h, h), 1.0, &mut rng);
        let plan = ExecutionPlan { placements: vec![UnitPlacement::Tiled(vec![0, 1, 2, 3])] };
        let wire = vec![UnitWire { grid: GridSpec::new(2, 2), in_quant: BitWidth::B32 }];
        let (out, _) = exec.execute(&plan, &wire, input.clone()).unwrap();
        assert_eq!(out.shape(), input.shape());
    }
}
