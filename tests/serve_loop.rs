//! Integration tests of the serving layer: round trips, conservation,
//! priority, batching, and admission behaviour under load.

use murmuration::edgesim::trace::NetworkTrace;
use murmuration::edgesim::{ArrivalTrace, LinkState, RateShape};
use murmuration::partition::compliance::Slo;
use murmuration::rl::{LstmPolicy, Scenario, SloKind};
use murmuration::runtime::{RuntimeConfig, SharedRuntime};
use murmuration::serve::{
    default_classes, run_open_loop, ClassSpec, EnvModel, LoadReport, ServeConfig, ServeHandle,
    ServeOutcome,
};
use std::sync::Arc;

fn shared_runtime() -> Arc<SharedRuntime> {
    let sc = Scenario::augmented_computing(SloKind::Latency);
    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
    Arc::new(SharedRuntime::new(sc, policy, RuntimeConfig::default(), Slo::LatencyMs(200.0)))
}

fn good_link() -> LinkState {
    LinkState { bandwidth_mbps: 300.0, delay_ms: 8.0 }
}

/// Fast test profile: no service occupancy, aggressive clock.
fn fast(cfg: ServeConfig) -> ServeConfig {
    ServeConfig { service_sleep: false, time_scale: 0.01, ..cfg }
}

#[test]
fn single_request_round_trips_with_accounting() {
    let handle = ServeHandle::start(
        shared_runtime(),
        EnvModel::constant(good_link(), 1),
        fast(ServeConfig::engineered(default_classes())),
    );
    let outcome = handle.submit_wait(0);
    let done = outcome.completion().expect("idle server must serve");
    assert_eq!(done.class, 0);
    assert!(done.service_ms > 0.0);
    assert!((done.total_ms - (done.queue_ms + done.service_ms)).abs() < 1e-9);
    assert_eq!(done.batch_size, 1);
    let stats = handle.shutdown();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn open_loop_conserves_every_request() {
    let classes = default_classes();
    let handle = ServeHandle::start(
        shared_runtime(),
        EnvModel::constant(good_link(), 1),
        fast(ServeConfig::engineered(classes.clone())),
    );
    let trace = ArrivalTrace::poisson(3_000.0, &RateShape::Constant(30.0), &[0.4, 0.3, 0.3], 42);
    let outcomes = run_open_loop(&handle, &trace);
    assert_eq!(outcomes.len(), trace.len(), "one outcome per arrival");
    let stats = handle.shutdown();
    assert_eq!(stats.submitted, trace.len() as u64);
    assert_eq!(
        stats.completed + stats.rejected,
        stats.submitted,
        "conservation: every submitted request resolves exactly once"
    );
    let done = outcomes.iter().filter(|o| o.completion().is_some()).count();
    assert_eq!(done as u64, stats.completed);
}

#[test]
fn bursts_coalesce_into_batches() {
    let classes = vec![ClassSpec::latency("only", 5_000.0, 256)];
    let cfg = ServeConfig { n_workers: 1, ..fast(ServeConfig::engineered(classes)) };
    let handle = ServeHandle::start(shared_runtime(), EnvModel::constant(good_link(), 1), cfg);
    // Deterministic bursts of 8 — exactly coalescable at max_batch 8.
    let trace = ArrivalTrace::periodic(2_000.0, 80.0, 8, &[1.0], 0);
    let outcomes = run_open_loop(&handle, &trace);
    let stats = handle.shutdown();
    assert_eq!(stats.completed + stats.rejected, stats.submitted);
    assert!(stats.max_batch_seen >= 2, "bursts must batch, saw {}", stats.max_batch_seen);
    assert!(stats.batched_requests > 0);
    let max_seen =
        outcomes.iter().filter_map(|o| o.completion()).map(|c| c.batch_size).max().unwrap_or(0);
    assert_eq!(max_seen as u64, stats.max_batch_seen);
}

#[test]
fn overload_rejections_are_typed_and_counted() {
    // Tiny queues + sustained overload on a single worker: admission and
    // queue bounds must shed, and every shed is typed.
    let classes = vec![ClassSpec::latency("tight", 120.0, 4), ClassSpec::accuracy("bulk", 70.0, 4)];
    let cfg = ServeConfig {
        n_workers: 1,
        max_batch: 2,
        time_scale: 0.01,
        service_sleep: true,
        ..ServeConfig::engineered(classes.clone())
    };
    let handle = ServeHandle::start(shared_runtime(), EnvModel::constant(good_link(), 1), cfg);
    let trace = ArrivalTrace::poisson(4_000.0, &RateShape::Constant(60.0), &[0.6, 0.4], 9);
    let outcomes = run_open_loop(&handle, &trace);
    let stats = handle.shutdown();
    assert_eq!(stats.completed + stats.rejected, stats.submitted);
    assert!(stats.rejected > 0, "2x+ overload on one worker must shed something");
    // Rejection counters decompose the total exactly.
    assert_eq!(
        stats.queue_full
            + stats.deadline_unmeetable
            + stats.expired
            + stats.not_ready
            + stats.shutdown_rejects,
        stats.rejected
    );
    // And the report aggregates per class without losing anything.
    let report = LoadReport::build(&classes, &outcomes, stats, 4_000.0);
    let by_class: u64 = report.per_class.iter().map(|c| c.completed + c.rejected).sum();
    assert_eq!(by_class, stats.submitted);
}

#[test]
fn priority_favours_the_interactive_class() {
    // One slow worker, no batching: the priority dispatcher should keep
    // class 0 queue delays below class 1's under contention.
    // Effectively-infinite deadlines: this test isolates queue ordering,
    // so nothing may expire or be refused.
    let classes = vec![
        ClassSpec::latency("interactive", 1e9, 256),
        ClassSpec::latency("background", 1e9, 256),
    ];
    let cfg = ServeConfig {
        n_workers: 1,
        max_batch: 1,
        batch_window_ms: 0.0,
        admission: false,
        time_scale: 0.01,
        service_sleep: true,
        ..ServeConfig::engineered(classes)
    };
    let handle = ServeHandle::start(shared_runtime(), EnvModel::constant(good_link(), 1), cfg);
    let trace = ArrivalTrace::poisson(3_000.0, &RateShape::Constant(40.0), &[0.5, 0.5], 3);
    let outcomes = run_open_loop(&handle, &trace);
    let _ = handle.shutdown();
    let mean_queue = |class: usize| {
        let waits: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.completion())
            .filter(|c| c.class == class)
            .map(|c| c.queue_ms)
            .collect();
        assert!(!waits.is_empty(), "class {class} served nothing");
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    assert!(
        mean_queue(0) < mean_queue(1),
        "priority class must queue less: {:.1} vs {:.1}",
        mean_queue(0),
        mean_queue(1)
    );
}

#[test]
fn dynamic_network_is_tracked_by_the_control_thread() {
    // Conditions collapse mid-run; the serving loop must keep resolving
    // requests (decisions adapt through the ticked monitor).
    let collapse = NetworkTrace::steps(vec![
        (0.0, good_link()),
        (1_500.0, LinkState { bandwidth_mbps: 60.0, delay_ms: 60.0 }),
    ]);
    let handle = ServeHandle::start(
        shared_runtime(),
        EnvModel::new(collapse, 1),
        fast(ServeConfig::engineered(default_classes())),
    );
    let trace = ArrivalTrace::poisson(3_000.0, &RateShape::Constant(20.0), &[1.0], 5);
    let outcomes = run_open_loop(&handle, &trace);
    let stats = handle.shutdown();
    assert_eq!(stats.completed + stats.rejected, stats.submitted);
    assert!(
        outcomes.iter().any(|o| matches!(o, ServeOutcome::Done(d) if d.deploy_ms > 0.0)),
        "requests must still be served across the collapse"
    );
}
