//! Report-shape regression gate: every checked-in `results/BENCH_*.json`
//! and `results/CAMPAIGN_*.json` must validate against its declared set
//! of required keys (`serve::schema`). A renamed or dropped key fails
//! here instead of silently breaking downstream diff tooling.

use murmuration::serve::schema::{missing_keys, parse, required_keys_for};

fn results_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results")
}

fn report_files(prefix: &str) -> Vec<std::path::PathBuf> {
    let Ok(entries) = std::fs::read_dir(results_dir()) else {
        return Vec::new();
    };
    let mut files: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|e| e == "json")
                && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with(prefix))
        })
        .collect();
    files.sort();
    files
}

fn check_all(prefix: &str) -> usize {
    let files = report_files(prefix);
    for path in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {name}: {e}"));
        let doc = parse(&text).unwrap_or_else(|e| panic!("{name} does not parse as JSON: {e}"));
        let required = required_keys_for(&name).unwrap_or_else(|| {
            panic!(
                "{name} has no declared schema — register its required keys in \
                 serve::schema::required_keys_for"
            )
        });
        let gaps = missing_keys(&doc, &required);
        assert!(gaps.is_empty(), "{name} is missing required keys: {gaps:?}");
    }
    files.len()
}

#[test]
fn every_bench_report_matches_its_declared_schema() {
    let n = check_all("BENCH_");
    assert!(n > 0, "no BENCH_*.json reports found — results/ should be checked in");
}

#[test]
fn every_campaign_report_matches_its_declared_schema() {
    let n = check_all("CAMPAIGN_");
    assert!(n > 0, "no CAMPAIGN_*.json reports found — run bench_campaign first");
}

#[test]
fn campaign_reports_carry_the_schema_tag_and_conserve() {
    for path in report_files("CAMPAIGN_") {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
        let text = std::fs::read_to_string(&path).expect("readable report");
        let doc = parse(&text).expect("valid JSON");
        assert_eq!(
            doc.pointer("schema").and_then(|v| v.as_str()),
            Some("murmuration.campaign.v1"),
            "{name}: wrong schema tag"
        );
        // Re-check conservation from the serialized counters: the
        // emitting process asserted it live; the artifact must agree.
        let scenarios = doc.pointer("scenarios").and_then(|v| v.as_array()).expect("scenarios");
        assert!(!scenarios.is_empty(), "{name}: empty campaign");
        for sc in scenarios {
            let cells = sc.pointer("cells").and_then(|v| v.as_array()).expect("cells");
            for cell in cells {
                let num = |k: &str| {
                    cell.pointer(k)
                        .and_then(|v| v.as_f64())
                        .unwrap_or_else(|| panic!("{name}: missing numeric {k}"))
                };
                assert_eq!(
                    num("conservation/completed") + num("conservation/rejected"),
                    num("conservation/submitted"),
                    "{name}: conservation broken in a serialized cell"
                );
                assert_eq!(num("conservation/lost"), 0.0, "{name}: lost requests serialized");
            }
        }
    }
}
