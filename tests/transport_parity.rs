//! Transport parity: the executor must produce bit-identical B32 results
//! whether its workers are in-process threads or real TCP worker servers
//! on loopback — same plan, same seed, same math. This is the contract
//! that lets `SharedRuntime` and the serve layer run unchanged over either
//! transport.
//!
//! Every scenario runs over BOTH socket backends — the threaded
//! `TcpTransport`/`WorkerServer` pair and the readiness-based
//! `AsyncTcpTransport`/`AsyncWorkerServer` pair — via the
//! [`murmuration::testkit`] backend abstraction: TCP == inproc must hold
//! bit-for-bit regardless of how the sockets are driven.

use murmuration::partition::{ExecutionPlan, UnitPlacement};
use murmuration::runtime::executor::{
    ConvStackCompute, ExecOptions, Executor, UnitCompute, UnitWire,
};
use murmuration::tensor::quant::BitWidth;
use murmuration::tensor::tile::GridSpec;
use murmuration::tensor::{Shape, Tensor};
use murmuration::testkit::{with_watchdog, Backend, TestTransport, TestWorker};
use murmuration::transport::{TcpTransportConfig, WorkerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// In-process worker servers standing in for worker processes: same
/// sockets, same framing, same supervision — only the process boundary is
/// missing (the CLI smoke test covers that part).
fn spawn_workers(
    backend: Backend,
    n: usize,
    compute: &Arc<ConvStackCompute>,
) -> (Vec<TestWorker>, Vec<String>) {
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for dev in 0..n {
        let cfg = WorkerConfig { dev_id: dev, ..Default::default() };
        let srv = TestWorker::bind(backend, compute.clone() as Arc<dyn UnitCompute>, cfg);
        addrs.push(srv.local_addr().to_string());
        servers.push(srv);
    }
    (servers, addrs)
}

fn tcp_executor(backend: Backend, addrs: &[String]) -> Executor {
    let cfg = TcpTransportConfig {
        heartbeat_interval: Duration::from_millis(50),
        connect_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    let transport = TestTransport::connect(backend, addrs, cfg);
    assert!(transport.wait_connected(Duration::from_secs(10)), "workers must come up on loopback");
    Executor::with_transport(Box::new(transport))
}

fn opts() -> ExecOptions {
    ExecOptions {
        deadline: Duration::from_secs(5),
        max_attempts: 3,
        backoff: Duration::from_millis(1),
        hedge: None,
    }
}

fn test_input(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(Shape::nchw(1, 4, 12, 12), 1.0, &mut rng)
}

fn b32_plan_is_bit_identical(backend: Backend) {
    let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
    let plan = ExecutionPlan {
        placements: vec![
            UnitPlacement::Single(0),
            UnitPlacement::Single(1),
            UnitPlacement::Single(0),
        ],
    };
    let wire = vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 }; 3];
    let input = test_input(1);

    let inproc = Executor::new(2, compute.clone());
    let (out_inproc, _) = inproc.execute_with(&plan, &wire, input.clone(), opts()).unwrap();

    let (_servers, addrs) = spawn_workers(backend, 2, &compute);
    let tcp = tcp_executor(backend, &addrs);
    let (out_tcp, report) = tcp.execute_with(&plan, &wire, input, opts()).unwrap();

    assert_eq!(
        out_tcp.data(),
        out_inproc.data(),
        "B32 results must be bit-identical between tcp and inproc ({backend:?})"
    );
    assert_eq!(report.reconnects, 0, "happy path must not reconnect: {report:?}");
}

#[test]
fn b32_plan_is_bit_identical_across_transports() {
    with_watchdog(|| b32_plan_is_bit_identical(Backend::Threaded));
}

#[test]
fn b32_plan_is_bit_identical_across_transports_async() {
    with_watchdog(|| b32_plan_is_bit_identical(Backend::Async));
}

fn quantized_and_tiled_plans_agree(backend: Backend) {
    let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
    // Unit 0 tiled 2x2, units 1-2 single, with an 8-bit wire: the
    // quantization round trip is deterministic, so both transports see
    // the exact same lossy bytes.
    let grid = GridSpec::new(2, 2);
    let plan = ExecutionPlan {
        placements: vec![
            UnitPlacement::Tiled(vec![0, 1, 2, 3]),
            UnitPlacement::Single(2),
            UnitPlacement::Single(0),
        ],
    };
    let mut wire = vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B8 }; 3];
    wire[0].grid = grid;
    let input = test_input(5);

    let inproc = Executor::new(4, compute.clone());
    let (out_inproc, _) = inproc.execute_with(&plan, &wire, input.clone(), opts()).unwrap();

    let (_servers, addrs) = spawn_workers(backend, 4, &compute);
    let tcp = tcp_executor(backend, &addrs);
    let (out_tcp, _) = tcp.execute_with(&plan, &wire, input, opts()).unwrap();

    assert_eq!(
        out_tcp.data(),
        out_inproc.data(),
        "deterministic quantization must agree across transports ({backend:?})"
    );
}

#[test]
fn quantized_and_tiled_plans_also_agree_exactly() {
    with_watchdog(|| quantized_and_tiled_plans_agree(Backend::Threaded));
}

#[test]
fn quantized_and_tiled_plans_also_agree_exactly_async() {
    with_watchdog(|| quantized_and_tiled_plans_agree(Backend::Async));
}

fn streamed_pipeline_agrees(backend: Backend) {
    let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
    let mut rng = StdRng::seed_from_u64(11);
    let inputs: Vec<Tensor> =
        (0..5).map(|_| Tensor::rand_uniform(Shape::nchw(1, 4, 10, 10), 1.0, &mut rng)).collect();

    let inproc = Executor::new(3, compute.clone());
    let (outs_inproc, _) =
        inproc.execute_stream_with(&[0, 1, 2], inputs.clone(), BitWidth::B32, opts());

    let (_servers, addrs) = spawn_workers(backend, 3, &compute);
    let tcp = tcp_executor(backend, &addrs);
    let (outs_tcp, _) = tcp.execute_stream_with(&[0, 1, 2], inputs, BitWidth::B32, opts());

    for (a, b) in outs_tcp.iter().zip(outs_inproc.iter()) {
        assert_eq!(
            a.as_ref().unwrap().data(),
            b.as_ref().unwrap().data(),
            "streamed B32 outputs must be bit-identical ({backend:?})"
        );
    }
}

#[test]
fn streamed_pipeline_agrees_across_transports() {
    with_watchdog(|| streamed_pipeline_agrees(Backend::Threaded));
}

#[test]
fn streamed_pipeline_agrees_across_transports_async() {
    with_watchdog(|| streamed_pipeline_agrees(Backend::Async));
}

fn graceful_shutdown_drains(backend: Backend) {
    let compute = Arc::new(ConvStackCompute::random(3, 1, 4, 7));
    let (servers, addrs) = spawn_workers(backend, 2, &compute);
    let mut exec = tcp_executor(backend, &addrs);
    let plan = ExecutionPlan {
        placements: vec![
            UnitPlacement::Single(0),
            UnitPlacement::Single(1),
            UnitPlacement::Single(0),
        ],
    };
    let wire = vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 }; 3];
    exec.execute_with(&plan, &wire, test_input(3), opts()).unwrap();
    exec.shutdown();
    // Workers outlive a departing coordinator (they serve the next one).
    for s in &servers {
        assert!(!s.is_stopped(), "goodbye must not kill the worker ({backend:?})");
    }
}

#[test]
fn graceful_shutdown_drains_and_workers_survive() {
    with_watchdog(|| graceful_shutdown_drains(Backend::Threaded));
}

#[test]
fn graceful_shutdown_drains_and_workers_survive_async() {
    with_watchdog(|| graceful_shutdown_drains(Backend::Async));
}
