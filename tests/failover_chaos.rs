//! Control-plane chaos: the primary coordinator is killed under Poisson
//! load and the standby must take over through gossip alone. The contract
//! under fire:
//!
//! * the cluster NEVER hangs (watchdog on every test),
//! * goodput after promotion recovers to at least 80% of the pre-kill
//!   rate,
//! * cluster-level conservation holds across the handover —
//!   `completed + rejected == submitted`, zero requests lost or served
//!   twice,
//! * Byzantine health reports shift routing penalties by no more than the
//!   trimmed bound, and gossiped hearsay alone never quarantines a
//!   device.

use murmuration::partition::compliance::Slo;
use murmuration::prelude::LinkState;
use murmuration::rl::{LstmPolicy, Scenario, SloKind};
use murmuration::runtime::gossip::{HealthReport, NodeId, ReputationConfig};
use murmuration::runtime::{RuntimeConfig, SharedRuntime};
use murmuration::serve::{
    default_classes, CoordinatorSpec, EnvModel, FailoverCluster, FailoverConfig, PendingServe,
    ServeConfig, ServeOutcome,
};
use murmuration::testkit::with_watchdog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn shared_runtime(policy_seed: u64) -> Arc<SharedRuntime> {
    let sc = Scenario::augmented_computing(SloKind::Latency);
    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), policy_seed);
    Arc::new(SharedRuntime::new(sc, policy, RuntimeConfig::default(), Slo::LatencyMs(200.0)))
}

fn spec(seed: u64) -> CoordinatorSpec {
    let cfg = ServeConfig {
        service_sleep: false,
        time_scale: 0.01,
        base_seed: seed,
        ..ServeConfig::engineered(default_classes())
    };
    let env = EnvModel::constant(LinkState { bandwidth_mbps: 300.0, delay_ms: 8.0 }, 1);
    CoordinatorSpec { rt: shared_runtime(seed), env, cfg }
}

/// Knuth Poisson sampler: burst sizes for the open-loop arrival process.
fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Drives `total` requests through the cluster as Poisson bursts (a burst
/// is submitted before any of it resolves), returning the completed
/// count.
fn poisson_phase(cl: &mut FailoverCluster, rng: &mut StdRng, total: usize) -> usize {
    let mut done = 0usize;
    let mut sent = 0usize;
    while sent < total {
        let burst = poisson(rng, 3.0).clamp(1, total - sent);
        let pending: Vec<PendingServe> = (0..burst).map(|_| cl.submit(0)).collect();
        sent += burst;
        for p in pending {
            if matches!(cl.resolve(p), Some(ServeOutcome::Done(_))) {
                done += 1;
            }
        }
    }
    done
}

#[test]
fn primary_killed_under_poisson_load_standby_recovers_goodput() {
    with_watchdog(|| {
        let mut cl = FailoverCluster::new(vec![spec(11), spec(23)], FailoverConfig::default());
        let mut rng = StdRng::seed_from_u64(0xB1AD);

        // Warm phase on the primary establishes the reference goodput.
        const PHASE: usize = 30;
        let before = poisson_phase(&mut cl, &mut rng, PHASE);
        assert!(before > 0, "warm phase must complete some requests");
        assert_eq!(cl.active_rank(), Some(0));

        // Kill the primary with a window of requests in flight: these must
        // fail over as retries, not vanish.
        let window: Vec<PendingServe> = (0..12).map(|_| cl.submit(0)).collect();
        let dropped = cl.kill_active();
        for p in window {
            assert!(cl.resolve(p).is_some(), "in-flight request lost across the kill");
        }

        // Same load on the standby: goodput must recover to ≥ 80% of the
        // pre-kill rate. Promotion is lazy (it happens when service is next
        // demanded), so the rank check comes after the phase — checking it
        // right at the kill races with in-flight requests that happened to
        // complete before the crash landed.
        let after = poisson_phase(&mut cl, &mut rng, PHASE);
        assert_eq!(cl.active_rank(), Some(1), "standby must have promoted");
        assert!(
            (after as f64) >= 0.8 * before as f64,
            "goodput did not recover: {before}/{PHASE} before the kill, {after}/{PHASE} after"
        );

        let s = cl.shutdown();
        assert_eq!(s.failovers, 1, "exactly one promotion: {s:?}");
        assert_eq!(s.crash_dropped as usize, dropped);
        assert!(s.retried >= s.crash_dropped, "dropped requests must come back as retries: {s:?}");
        assert_eq!(s.lost, 0, "zero lost requests: {s:?}");
        assert_eq!(
            s.completed + s.rejected,
            s.submitted,
            "cluster conservation across the handover: {s:?}"
        );
    });
}

#[test]
fn lossy_duplicating_gossip_still_converges_on_failover() {
    with_watchdog(|| {
        let fo = FailoverConfig { drop_prob: 0.5, dup_prob: 0.5, seed: 7, ..Default::default() };
        let mut cl = FailoverCluster::new(vec![spec(31), spec(47)], fo);
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let _ = poisson_phase(&mut cl, &mut rng, 10);
        cl.kill_active();
        let after = poisson_phase(&mut cl, &mut rng, 10);
        assert!(after > 0, "standby must serve despite 50% gossip loss");
        let s = cl.shutdown();
        assert_eq!(s.failovers, 1);
        assert_eq!(s.lost, 0);
        assert_eq!(s.completed + s.rejected, s.submitted, "{s:?}");
    });
}

fn report(reporter: u64, device: u32, penalty: f64, version: u64) -> HealthReport {
    HealthReport {
        reporter: NodeId(reporter),
        device,
        state: 0,
        penalty,
        p50_ms: f64::NAN,
        p95_ms: f64::NAN,
        version,
    }
}

#[test]
fn byzantine_reports_bounded_by_trim_and_never_quarantine() {
    with_watchdog(|| {
        let rt = shared_runtime(3);
        rt.set_reputation_config(ReputationConfig { trim: 1, ..ReputationConfig::default() });
        // Three honest reporters agree device 1 is mildly degraded; one
        // liar claims it is catastrophically broken.
        let honest_hi = 1.8;
        let reports = vec![
            report(1, 1, 1.4, 1),
            report(2, 1, 1.6, 1),
            report(3, 1, honest_hi, 1),
            report(666, 1, f64::INFINITY, 1),
        ];
        rt.fold_peer_reports(&reports);
        let penalty = rt.gray_penalties()[1];
        assert!(
            penalty <= honest_hi + 1e-9,
            "one liar among three honest reporters (trim 1) must not push the \
             penalty past the honest range: got {penalty}"
        );
        assert!(penalty >= 1.0, "penalties are multiplicative, floor 1.0");
        // Hearsay steers routing, it never quarantines: the device stays
        // placeable because this runtime has no local evidence against it.
        assert!(
            rt.placeable_mask()[1],
            "gossip alone must never quarantine — that requires local samples + canary"
        );

        // Flip it around: k liars with k = trim cannot *hide* degradation
        // the honest majority reports.
        let rt2 = shared_runtime(4);
        rt2.set_reputation_config(ReputationConfig { trim: 1, ..ReputationConfig::default() });
        let reports = vec![
            report(1, 1, 3.0, 1),
            report(2, 1, 3.2, 1),
            report(3, 1, 3.4, 1),
            report(666, 1, 1.0, 1), // "nothing to see here"
        ];
        rt2.fold_peer_reports(&reports);
        let penalty = rt2.gray_penalties()[1];
        assert!(
            penalty >= 3.0 - 1e-9,
            "a liar claiming perfect health must not mask the honest consensus: {penalty}"
        );
    });
}
