//! End-to-end integration: search space → lowering → planning → latency
//! estimation → RL training → runtime serving, all through the public API.

use murmuration::prelude::*;
use murmuration::rl::metrics::{evaluate_policy, validation_conditions};
use murmuration::rl::supreme::{self, SupremeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn supreme_training_improves_runtime_compliance() {
    let scenario = Scenario::augmented_computing(SloKind::Latency);
    let conds = validation_conditions(&scenario, 20);

    // Baseline: the *same-seed* policy before any training (what SUPREME
    // starts from).
    let untrained = LstmPolicy::new(scenario.input_dim(), 32, scenario.arities(), 0);
    let base = evaluate_policy(&untrained, &scenario, &conds);

    let (policy, history) = supreme::train(
        &scenario,
        &SupremeConfig { steps: 600, eval_every: 300, hidden: 32, seed: 0, ..Default::default() },
    );
    let trained = evaluate_policy(&policy, &scenario, &conds);

    assert!(
        trained.avg_reward > base.avg_reward,
        "training must improve reward: {} -> {}",
        base.avg_reward,
        trained.avg_reward
    );
    assert!(history.final_reward() > 0.0);
}

#[test]
fn runtime_serves_and_adapts_through_public_api() {
    let scenario = Scenario::augmented_computing(SloKind::Latency);
    let (policy, _) = supreme::train(
        &scenario,
        &SupremeConfig { steps: 150, eval_every: 150, hidden: 32, ..Default::default() },
    );
    let mut rt = Runtime::new(scenario, policy, RuntimeConfig::default(), Slo::LatencyMs(200.0));
    let mut rng = StdRng::seed_from_u64(0);

    // Good network first.
    let good = NetworkState::uniform(1, LinkState { bandwidth_mbps: 400.0, delay_ms: 5.0 });
    let r1 = rt.infer(&good, 0.0, &mut rng);
    assert!(r1.latency_ms.is_finite());

    // Degraded network: the runtime must still produce a valid decision
    // (possibly a smaller/local submodel).
    let bad = NetworkState::uniform(1, LinkState { bandwidth_mbps: 50.0, delay_ms: 100.0 });
    let mut hit_after_convergence = false;
    // The EWMA monitor needs several samples to converge from the good
    // state; after that, stable conditions must hit the strategy cache.
    for t in 1..16 {
        let r = rt.infer(&bad, t as f64 * 100.0, &mut rng);
        assert!(r.latency_ms.is_finite() && r.latency_ms > 0.0);
        assert!((70.0..81.0).contains(&r.accuracy_pct));
        if t >= 10 {
            hit_after_convergence |= r.cached;
        }
    }
    assert!(hit_after_convergence, "stable conditions must be served from the strategy cache");
}

#[test]
fn every_sampled_config_flows_through_the_whole_stack() {
    let scenario = Scenario::device_swarm(5, SloKind::Latency);
    let mut rng = StdRng::seed_from_u64(3);
    let est_devices = scenario.devices.clone();
    for _ in 0..25 {
        let cond = scenario.sample_condition(&mut rng);
        let genome =
            murmuration::partition::evolutionary::Genome::random(&scenario.space, 5, &mut rng);
        let spec = SubnetSpec::lower(&genome.config);
        let plan = genome.plan(&spec, 5);
        plan.validate(&spec, 5).expect("genome plans are valid");
        let net = scenario.network(&cond);
        let est = LatencyEstimator::new(&est_devices, &net);
        let breakdown = est.estimate(&spec, &plan);
        assert!(breakdown.total_ms > 0.0 && breakdown.total_ms.is_finite());
        assert!(breakdown.compute_ms >= 0.0 && breakdown.comm_ms >= 0.0);
        // Components bound the total (redistribution overlaps are counted
        // once on the critical path).
        assert!(breakdown.total_ms <= breakdown.compute_ms + breakdown.comm_ms + 1e-6);
        let acc = AccuracyModel::new().predict(&genome.config);
        assert!((70.0..81.0).contains(&acc));
    }
}

#[test]
fn accuracy_slo_mode_works_end_to_end() {
    let scenario = Scenario::augmented_computing(SloKind::Accuracy);
    let (policy, _) = supreme::train(
        &scenario,
        &SupremeConfig { steps: 150, eval_every: 150, hidden: 32, ..Default::default() },
    );
    let mut rt = Runtime::new(scenario, policy, RuntimeConfig::default(), Slo::AccuracyPct(74.0));
    let mut rng = StdRng::seed_from_u64(5);
    let net = NetworkState::uniform(1, LinkState { bandwidth_mbps: 300.0, delay_ms: 10.0 });
    let r = rt.infer(&net, 0.0, &mut rng);
    assert!(r.latency_ms.is_finite());
    // SLO judgment uses the accuracy axis in this mode.
    assert_eq!(r.slo_met, r.accuracy_pct >= 74.0);
}
