//! Chaos tests of the serving loop: devices dying mid-load must degrade
//! service into typed rejections or degraded completions — never a hang,
//! never a panic, never a lost request. Every scenario runs under the
//! shared watchdog from `murmuration::testkit`.
//!
//! The device-death and device-flap cases are driven from the declarative
//! scenario DSL (`edgesim::scenario`): the spec lowers onto the same
//! `FleetTrace`/`ArrivalTrace` machinery the old hand-coded versions
//! built inline, proving the DSL subsumes them.

use murmuration::edgesim::scenario::builtin_by_name;
use murmuration::edgesim::{ArrivalTrace, RateShape};
use murmuration::serve::{run_open_loop, EnvModel, ServeHandle, ServeOutcome};
use murmuration::testkit::{chaos_serve_config, good_link, shared_runtime, with_watchdog};
use std::sync::Arc;

fn env() -> EnvModel {
    EnvModel::constant(good_link(), 1)
}

#[test]
fn device_death_mid_load_never_hangs_or_drops() {
    with_watchdog(|| {
        // The `device-death` scenario: the only remote device dies a
        // third of the way in and never recovers — the spec lowers onto
        // the fleet trace the control thread replays.
        let spec = builtin_by_name("device-death").expect("built-in scenario");
        let lowered = spec.lower(42);
        let handle = ServeHandle::start(
            shared_runtime(0),
            env().with_fleet(lowered.fleet),
            chaos_serve_config(),
        );
        let outcomes = run_open_loop(&handle, &lowered.arrivals);
        let stats = handle.shutdown();
        assert_eq!(outcomes.len(), lowered.arrivals.len());
        assert_eq!(
            stats.completed + stats.rejected,
            stats.submitted,
            "device death must not lose requests"
        );
        // Whatever failed, failed with a typed reason.
        assert_eq!(
            stats.queue_full
                + stats.deadline_unmeetable
                + stats.expired
                + stats.not_ready
                + stats.shutdown_rejects,
            stats.rejected
        );
        // And requests served after the death are flagged degraded.
        let degraded = outcomes.iter().filter_map(ServeOutcome::completion).filter(|c| c.degraded);
        assert!(degraded.count() > 0, "post-death completions must report degradation");
    });
}

#[test]
fn whole_fleet_loss_forces_local_service() {
    with_watchdog(|| {
        let handle = ServeHandle::start(shared_runtime(0), env(), chaos_serve_config());
        // Kill the only remote device out-of-band before any load.
        handle.kill_device(1);
        let trace = ArrivalTrace::poisson(1_500.0, &RateShape::Constant(15.0), &[1.0], 21);
        let outcomes = run_open_loop(&handle, &trace);
        let stats = handle.shutdown();
        assert_eq!(stats.completed + stats.rejected, stats.submitted);
        assert!(stats.completed > 0, "all-local fallback must keep serving");
        for c in outcomes.iter().filter_map(ServeOutcome::completion) {
            assert!(c.degraded, "every completion is served under degradation");
        }
    });
}

#[test]
fn flapping_device_keeps_the_loop_live() {
    with_watchdog(|| {
        // The `device-flap` scenario: the remote churns up/down on seeded
        // exponential dwells — completions must span a healthy phase and
        // the counters must still conserve.
        let spec = builtin_by_name("device-flap").expect("built-in scenario");
        let lowered = spec.lower(42);
        let handle = ServeHandle::start(
            shared_runtime(0),
            env().with_fleet(lowered.fleet),
            chaos_serve_config(),
        );
        let outcomes = run_open_loop(&handle, &lowered.arrivals);
        let stats = handle.shutdown();
        assert_eq!(stats.completed + stats.rejected, stats.submitted);
        let healthy =
            outcomes.iter().filter_map(ServeOutcome::completion).filter(|c| !c.degraded).count();
        assert!(healthy > 0, "service must recover between flaps");
    });
}

#[test]
fn kill_and_revive_mid_load_through_the_handle() {
    with_watchdog(|| {
        // Same chaos, driven through the serve handle's chaos hooks while
        // the open loop is running on another thread.
        let handle = Arc::new(ServeHandle::start(shared_runtime(0), env(), chaos_serve_config()));
        let trace = ArrivalTrace::poisson(2_500.0, &RateShape::Constant(20.0), &[1.0, 0.0, 0.0], 2);
        let chaos = {
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                let clock = handle.clock().clone();
                clock.sleep_virtual(800.0);
                handle.kill_device(1);
                clock.sleep_virtual(800.0);
                handle.revive_device(1);
            })
        };
        let outcomes = run_open_loop(&handle, &trace);
        let _ = chaos.join();
        let stats = handle.stats();
        assert_eq!(outcomes.len(), trace.len());
        assert_eq!(stats.completed + stats.rejected, stats.submitted);
    });
}
