//! Chaos tests of the serving loop: devices dying mid-load must degrade
//! service into typed rejections or degraded completions — never a hang,
//! never a panic, never a lost request. Every scenario runs under a
//! watchdog (the same pattern as `executor_chaos`).

use murmuration::edgesim::{ArrivalTrace, DeviceTrace, FleetTrace, LinkState, RateShape};
use murmuration::partition::compliance::Slo;
use murmuration::rl::{LstmPolicy, Scenario, SloKind};
use murmuration::runtime::{RuntimeConfig, SharedRuntime};
use murmuration::serve::{
    default_classes, run_open_loop, EnvModel, ServeConfig, ServeHandle, ServeOutcome,
};
use std::sync::Arc;
use std::time::Duration;

fn with_watchdog<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(_) => panic!("serve loop hung: watchdog fired after 60 s"),
    }
}

fn shared_runtime() -> Arc<SharedRuntime> {
    let sc = Scenario::augmented_computing(SloKind::Latency);
    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
    Arc::new(SharedRuntime::new(sc, policy, RuntimeConfig::default(), Slo::LatencyMs(200.0)))
}

fn env() -> EnvModel {
    EnvModel::constant(LinkState { bandwidth_mbps: 300.0, delay_ms: 8.0 }, 1)
}

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        time_scale: 0.01,
        service_sleep: false,
        tick_interval_ms: 50.0,
        ..ServeConfig::engineered(default_classes())
    }
}

#[test]
fn device_death_mid_load_never_hangs_or_drops() {
    with_watchdog(|| {
        // The only remote device dies a third of the way in and never
        // recovers — replayed by the control thread from the fleet trace.
        let fleet = FleetTrace::new(vec![DeviceTrace::AlwaysUp, DeviceTrace::down_after(1_000.0)]);
        let handle = ServeHandle::start(shared_runtime(), env().with_fleet(fleet), chaos_cfg());
        let trace =
            ArrivalTrace::poisson(3_000.0, &RateShape::Constant(25.0), &[0.4, 0.3, 0.3], 13);
        let outcomes = run_open_loop(&handle, &trace);
        let stats = handle.shutdown();
        assert_eq!(outcomes.len(), trace.len());
        assert_eq!(
            stats.completed + stats.rejected,
            stats.submitted,
            "device death must not lose requests"
        );
        // Whatever failed, failed with a typed reason.
        assert_eq!(
            stats.queue_full
                + stats.deadline_unmeetable
                + stats.expired
                + stats.not_ready
                + stats.shutdown_rejects,
            stats.rejected
        );
        // And requests served after the death are flagged degraded.
        let degraded = outcomes.iter().filter_map(ServeOutcome::completion).filter(|c| c.degraded);
        assert!(degraded.count() > 0, "post-death completions must report degradation");
    });
}

#[test]
fn whole_fleet_loss_forces_local_service() {
    with_watchdog(|| {
        let handle = ServeHandle::start(shared_runtime(), env(), chaos_cfg());
        // Kill the only remote device out-of-band before any load.
        handle.kill_device(1);
        let trace = ArrivalTrace::poisson(1_500.0, &RateShape::Constant(15.0), &[1.0], 21);
        let outcomes = run_open_loop(&handle, &trace);
        let stats = handle.shutdown();
        assert_eq!(stats.completed + stats.rejected, stats.submitted);
        assert!(stats.completed > 0, "all-local fallback must keep serving");
        for c in outcomes.iter().filter_map(ServeOutcome::completion) {
            assert!(c.degraded, "every completion is served under degradation");
        }
    });
}

#[test]
fn flapping_device_keeps_the_loop_live() {
    with_watchdog(|| {
        // Down for the middle third, then back — completions must span
        // the recovery and the counters must still conserve.
        let fleet = FleetTrace::new(vec![
            DeviceTrace::AlwaysUp,
            DeviceTrace::down_between(1_000.0, 2_000.0),
        ]);
        let handle = ServeHandle::start(shared_runtime(), env().with_fleet(fleet), chaos_cfg());
        let trace = ArrivalTrace::poisson(3_000.0, &RateShape::Constant(20.0), &[0.5, 0.5, 0.0], 8);
        let outcomes = run_open_loop(&handle, &trace);
        let stats = handle.shutdown();
        assert_eq!(stats.completed + stats.rejected, stats.submitted);
        let healthy =
            outcomes.iter().filter_map(ServeOutcome::completion).filter(|c| !c.degraded).count();
        assert!(healthy > 0, "service must recover after the flap");
    });
}

#[test]
fn kill_and_revive_mid_load_through_the_handle() {
    with_watchdog(|| {
        // Same chaos, driven through the serve handle's chaos hooks while
        // the open loop is running on another thread.
        let handle = Arc::new(ServeHandle::start(shared_runtime(), env(), chaos_cfg()));
        let trace = ArrivalTrace::poisson(2_500.0, &RateShape::Constant(20.0), &[1.0, 0.0, 0.0], 2);
        let chaos = {
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                let clock = handle.clock().clone();
                clock.sleep_virtual(800.0);
                handle.kill_device(1);
                clock.sleep_virtual(800.0);
                handle.revive_device(1);
            })
        };
        let outcomes = run_open_loop(&handle, &trace);
        let _ = chaos.join();
        let stats = handle.stats();
        assert_eq!(outcomes.len(), trace.len());
        assert_eq!(stats.completed + stats.rejected, stats.submitted);
    });
}
