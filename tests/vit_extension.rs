//! Extension (§4.1 of the paper): the partitioning machinery applied to a
//! Vision Transformer. ViT-B/16's token-parallel layers flow through the
//! same Neurosurgeon/ADCNN planners as the CNNs.

use murmuration::edgesim::device::{augmented_computing_devices, device_swarm_devices};
use murmuration::models::vit_b16;
use murmuration::partition::{adcnn, neurosurgeon, single};
use murmuration::prelude::*;

#[test]
fn neurosurgeon_offloads_vit_on_fast_links() {
    let devices = augmented_computing_devices();
    let net = NetworkState::uniform(1, LinkState { bandwidth_mbps: 500.0, delay_ms: 5.0 });
    let m = vit_b16(224);
    let p = neurosurgeon::plan(&m, &devices, &net);
    assert!(!p.all_local, "ViT on a Pi is ~30 s; offload must win");
    let local = single::single_device_latency_ms(&m, &devices[0], &net);
    assert!(p.latency_ms < local / 10.0, "{} vs {local}", p.latency_ms);
}

#[test]
fn vit_token_parallelism_speeds_up_the_swarm() {
    // The attention sync points are ~5 % of MACs, so FDSP-style token
    // partitioning should still give a solid speedup on a fast LAN.
    let devices = device_swarm_devices(5);
    let net = NetworkState::uniform(4, LinkState { bandwidth_mbps: 1000.0, delay_ms: 2.0 });
    let m = vit_b16(160);
    let solo = adcnn::latency_with_workers(&m, &devices, &net, 1);
    let plan = adcnn::plan(&m, &devices, &net);
    assert!(plan.n_workers >= 3, "workers {}", plan.n_workers);
    assert!(
        plan.latency_ms < solo * 0.65,
        "token-parallel ViT: {} vs solo {solo}",
        plan.latency_ms
    );
}

#[test]
fn vit_crossover_sits_far_below_cnn_crossover() {
    // ViT-B/16 is ~80× more compute than MobileNetV3 on a Pi, so the
    // bandwidth below which distribution stops paying off is far lower for
    // ViT: at 2 Mbps MobileNetV3 collapses to local execution while ViT
    // still distributes; at 0.05 Mbps even ViT collapses.
    let devices = device_swarm_devices(5);
    let slow = NetworkState::uniform(4, LinkState { bandwidth_mbps: 2.0, delay_ms: 80.0 });
    let mobilenet = murmuration::models::mobilenet_v3_large(224);
    assert_eq!(adcnn::plan(&mobilenet, &devices, &slow).n_workers, 1);
    let vit = vit_b16(224);
    assert!(adcnn::plan(&vit, &devices, &slow).n_workers > 1, "ViT compute dominates at 2 Mbps");
    let dead = NetworkState::uniform(4, LinkState { bandwidth_mbps: 0.05, delay_ms: 500.0 });
    assert_eq!(adcnn::plan(&vit, &devices, &dead).n_workers, 1, "even ViT collapses eventually");
}
