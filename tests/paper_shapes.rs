//! Fast assertions of the paper's qualitative results — the shapes the
//! figures must show, checked with the oracle/canonical machinery so no
//! long RL training is needed. These are the regression guards for the
//! reproduction itself.

use murmuration::edgesim::device::{augmented_computing_devices, device_swarm_devices};
use murmuration::models::zoo::BaselineModel;
use murmuration::partition::{adcnn, estimator, neurosurgeon};
use murmuration::prelude::*;
use murmuration::rl::env::{decide_guarded, fallback_actions};
use murmuration::rl::LstmPolicy;

fn net1(bw: f64, delay: f64) -> NetworkState {
    NetworkState::uniform(1, LinkState { bandwidth_mbps: bw, delay_ms: delay })
}

/// Fig. 13 shape: the heavyweight fixed models never meet the 140 ms SLO;
/// the adaptive system (even with an *untrained* policy, thanks to the
/// estimator guard) meets it across the whole grid.
#[test]
fn fig13_shape_heavy_models_dead_murmuration_covers() {
    let devices = augmented_computing_devices();
    let sc = Scenario::augmented_computing(SloKind::Latency);
    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
    for &delay in &[100.0, 50.0, 5.0] {
        for &bw in &[50.0, 200.0, 400.0] {
            let net = net1(bw, delay);
            for heavy in [BaselineModel::DenseNet161, BaselineModel::ResNeXt101] {
                let p = neurosurgeon::plan(&heavy.spec(), &devices, &net);
                assert!(p.latency_ms > 140.0, "{} at ({bw},{delay})", heavy.label());
            }
            let cond = Condition { slo: 140.0, bw_mbps: vec![bw], delay_ms: vec![delay] };
            let r = decide_guarded(&policy, &sc, &cond);
            assert!(r.met, "Murmuration must meet 140 ms at ({bw},{delay}): {}", r.latency_ms);
        }
    }
}

/// Fig. 13/paper §6.4.1 shape: at good conditions Murmuration's feasible
/// accuracy beats every feasible baseline's.
#[test]
fn fig13_shape_accuracy_wins_at_good_conditions() {
    let devices = augmented_computing_devices();
    let sc = Scenario::augmented_computing(SloKind::Latency);
    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
    let net = net1(400.0, 5.0);
    let mut best_baseline = 0.0f32;
    for m in BaselineModel::all() {
        let p = neurosurgeon::plan(&m.spec(), &devices, &net);
        if p.latency_ms <= 140.0 {
            best_baseline = best_baseline.max(m.spec().top1);
        }
    }
    let cond = Condition { slo: 140.0, bw_mbps: vec![400.0], delay_ms: vec![5.0] };
    let r = decide_guarded(&policy, &sc, &cond);
    assert!(r.met);
    assert!(
        r.accuracy_pct > best_baseline,
        "Murmuration {:.2} vs best feasible baseline {best_baseline:.2}",
        r.accuracy_pct
    );
}

/// Fig. 14 shape: the feasible set shrinks monotonically as the latency
/// SLO tightens, for every method.
#[test]
fn fig14_shape_feasible_set_nests_with_slo() {
    let devices = device_swarm_devices(5);
    let bandwidths: Vec<f64> =
        (0..9).map(|i| (5.0f64.ln() + 100.0f64.ln() * i as f64 / 8.0).exp()).collect();
    for model in [BaselineModel::MobileNetV3Large, BaselineModel::ResNet50] {
        let spec = model.spec();
        let mut prev_count = usize::MAX;
        for slo in [2000.0, 1000.0, 600.0, 400.0] {
            let count = bandwidths
                .iter()
                .filter(|&&bw| {
                    let net =
                        NetworkState::uniform(4, LinkState { bandwidth_mbps: bw, delay_ms: 20.0 });
                    adcnn::plan(&spec, &devices, &net).latency_ms <= slo
                })
                .count();
            assert!(count <= prev_count, "{}: feasible set must nest", model.label());
            prev_count = count;
        }
    }
}

/// Fig. 18 shape: one policy decision is orders of magnitude cheaper than
/// an evolutionary search — measured here as objective evaluations (1 vs
/// thousands), the quantity that scales with device speed.
#[test]
fn fig18_shape_rl_decision_is_one_evaluation() {
    let sc = Scenario::augmented_computing(SloKind::Latency);
    let result = murmuration::partition::evolutionary::search(&sc.space, 2, 24, 25, 0, |cfg, _| {
        f64::from(AccuracyModel::new().predict(cfg))
    });
    assert!(result.evaluations > 400, "GA must do hundreds of evaluations");
    // The RL decision is a single forward rollout; the guard adds a fixed
    // ~30-candidate check — still 10x below the GA.
    let fallbacks = fallback_actions(&sc).len();
    assert!(fallbacks + 1 < result.evaluations / 10);
}

/// Fig. 19 shape: in-memory supernet switching beats every weight reload
/// by at least two orders of magnitude.
#[test]
fn fig19_shape_switch_vs_reload_gap() {
    use murmuration::runtime::reconfig::InMemorySupernet;
    let mut supernet = InMemorySupernet::new(SearchSpace::default());
    supernet.switch_submodel(SearchSpace::default().min_config()); // warm
    let mut worst = std::time::Duration::ZERO;
    let space = SearchSpace::default();
    for cfg in [space.min_config(), space.max_config()] {
        let r = supernet.switch_submodel(cfg);
        worst = worst.max(r.elapsed);
    }
    let pi = murmuration::edgesim::DeviceKind::RaspberryPi4.profile();
    let cheapest_reload_ms = InMemorySupernet::simulate_reload_ms(
        &pi,
        BaselineModel::MobileNetV3Large.spec().weight_bytes(),
    );
    assert!(
        (worst.as_secs_f64() * 1e3) * 100.0 < cheapest_reload_ms,
        "switch {:?} vs cheapest reload {cheapest_reload_ms} ms",
        worst
    );
}

/// Intro claim: a fixed DNN's compliance collapses across a wide bandwidth
/// range while the adaptive system's stays high (the paper's 0–44 % vs
/// 52-point-improvement motivation).
#[test]
fn intro_shape_fixed_dnn_compliance_collapses() {
    let devices = device_swarm_devices(5);
    let sc = Scenario::device_swarm(5, SloKind::Latency);
    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
    let bandwidths: Vec<f64> =
        (0..9).map(|i| (5.0f64.ln() + 100.0f64.ln() * i as f64 / 8.0).exp()).collect();
    let slo = 600.0;
    let fixed = BaselineModel::ResNet50.spec();
    let mut fixed_met = 0;
    let mut ours_met = 0;
    for &bw in &bandwidths {
        let net = NetworkState::uniform(4, LinkState { bandwidth_mbps: bw, delay_ms: 20.0 });
        fixed_met += usize::from(adcnn::plan(&fixed, &devices, &net).latency_ms <= slo);
        let cond = Condition { slo, bw_mbps: vec![bw; 4], delay_ms: vec![20.0; 4] };
        ours_met += usize::from(decide_guarded(&policy, &sc, &cond).met);
    }
    assert!(
        ours_met >= fixed_met + 4,
        "adaptive {ours_met}/9 vs fixed {fixed_met}/9 must differ sharply"
    );
}

/// The latency model's physics: more bandwidth never slows a plan down,
/// and relaxing delay never hurts either.
#[test]
fn estimator_monotone_in_network_quality() {
    let devices = device_swarm_devices(5);
    let spec = SubnetSpec::lower(&SearchSpace::default().max_config());
    let plan = ExecutionPlan::spread(&spec, 5);
    let mut prev = f64::MAX;
    for bw in [5.0, 20.0, 100.0, 500.0] {
        let net = NetworkState::uniform(4, LinkState { bandwidth_mbps: bw, delay_ms: 20.0 });
        let t = LatencyEstimator::new(&devices, &net).estimate(&spec, &plan).total_ms;
        assert!(t <= prev + 1e-9, "bw {bw}: {t} vs {prev}");
        prev = t;
    }
    let mut prev = 0.0f64;
    for delay in [1.0, 10.0, 50.0, 100.0] {
        let net = NetworkState::uniform(4, LinkState { bandwidth_mbps: 100.0, delay_ms: delay });
        let t = LatencyEstimator::new(&devices, &net).estimate(&spec, &plan).total_ms;
        assert!(t >= prev - 1e-9, "delay {delay}: {t} vs {prev}");
        prev = t;
    }
}

/// FDSP seam accounting: tiling costs a little compute (seam overhead) and
/// a little accuracy, exactly the trade §4.1 describes.
#[test]
fn fdsp_trade_offs_have_the_right_signs() {
    assert!(estimator::seam_overhead(1) == 1.0);
    assert!(estimator::seam_overhead(4) > estimator::seam_overhead(2));
    let acc = AccuracyModel::new();
    let space = SearchSpace::default();
    let base = space.max_config();
    let mut tiled = base.clone();
    for s in &mut tiled.stages {
        s.partition = murmuration::tensor::tile::GridSpec::new(2, 2);
    }
    assert!(acc.predict(&tiled) < acc.predict(&base));
}
