//! Straggler chaos: one brownout device out of four under streamed load.
//! The gray-failure contract under fire:
//!
//! * every request completes exactly once and bit-exactly (a hedge win is
//!   the same math on a different device — never a duplicate, never a
//!   corruption),
//! * hedges actually fire against the straggler and the losing side is
//!   cancelled (queued work verifiably dropped at the worker),
//! * a healthy fleet pays (almost) nothing: hedges stay rare when no
//!   device misbehaves,
//! * nothing ever hangs — every test runs under a watchdog.

use murmuration::partition::{ExecutionPlan, UnitPlacement};
use murmuration::runtime::executor::{
    ConvStackCompute, ExecOptions, Executor, HedgeOptions, UnitCompute, UnitWire,
};
use murmuration::runtime::fault::FaultyCompute;
use murmuration::tensor::quant::BitWidth;
use murmuration::tensor::tile::GridSpec;
use murmuration::tensor::{Shape, Tensor};
use murmuration::testkit::with_watchdog;
use murmuration::transport::{
    ChaosConfig, ChaosDirection, ChaosProxy, TcpTransport, TcpTransportConfig, WorkerConfig,
    WorkerServer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn local_reference(compute: &ConvStackCompute, input: &Tensor) -> Tensor {
    let mut cur = input.clone();
    for u in 0..compute.n_units() {
        cur = compute.run_unit(u, &cur);
    }
    cur
}

fn hedged_opts() -> ExecOptions {
    ExecOptions {
        deadline: Duration::from_secs(2),
        max_attempts: 3,
        backoff: Duration::from_millis(1),
        hedge: Some(HedgeOptions::default()),
    }
}

fn unhedged_opts() -> ExecOptions {
    ExecOptions { hedge: None, ..hedged_opts() }
}

/// Heavy enough per unit (hundreds of microseconds) that a brownout
/// slowdown lands well past the 1 ms hedge-trigger floor.
fn heavy_compute(units: usize, seed: u64) -> Arc<ConvStackCompute> {
    Arc::new(ConvStackCompute::random(units, 2, 8, seed))
}

fn heavy_input(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(Shape::nchw(1, 8, 20, 20), 1.0, &mut rng)
}

/// The headline scenario from the paper's robustness story: 1-slow-of-4
/// under streamed load. Every request must complete exactly once and
/// bit-exactly, hedges must fire against the brownout device, at least
/// one hedge must win, and at least one losing primary must be cancelled
/// while still queued behind the straggler's backlog.
#[test]
fn one_slow_of_four_completes_exactly_once_with_hedges_and_cancels() {
    with_watchdog(|| {
        const STRAGGLER: usize = 2;
        let inner = heavy_compute(8, 11);
        let faulty = Arc::new(FaultyCompute::new(inner.clone(), 4));
        let exec = Executor::new(4, faulty.clone());
        let device_of_unit: Vec<usize> = (0..8).map(|u| u % 4).collect();

        // Warm path (no hedging): arms every device's latency tracker
        // past `min_samples` so the adaptive trigger is live.
        let warm: Vec<Tensor> = (0..6).map(|i| heavy_input(100 + i)).collect();
        let (warm_results, warm_report) =
            exec.execute_stream_with(&device_of_unit, warm, BitWidth::B32, unhedged_opts());
        assert!(warm_results.iter().all(|r| r.is_ok()), "warmup must be clean: {warm_report:?}");

        // Brownout: device 2 now serves correct results 25× late. Load
        // arrives in waves of 8 rather than one 24-deep burst: hedging
        // beats a straggler's backlog, not a fleet-wide saturation it
        // helped create — with every backup equally swamped a hedge just
        // queues behind the same storm and loses the race.
        faulty.set_slowdown(STRAGGLER, 25.0);

        let mut hedges_fired = 0u32;
        let mut hedges_won = 0u32;
        let mut deadline_misses = 0u32;
        let mut last_report = None;
        for wave in 0..3u64 {
            let inputs: Vec<Tensor> = (0..8).map(|i| heavy_input(200 + 10 * wave + i)).collect();
            let expects: Vec<Tensor> = inputs.iter().map(|i| local_reference(&inner, i)).collect();
            let (results, report) =
                exec.execute_stream_with(&device_of_unit, inputs, BitWidth::B32, hedged_opts());

            assert_eq!(results.len(), 8, "exactly one result slot per request");
            for (i, (res, expect)) in results.iter().zip(&expects).enumerate() {
                let out =
                    res.as_ref().unwrap_or_else(|e| panic!("wave {wave} request {i} failed: {e}"));
                assert_eq!(
                    out.data(),
                    expect.data(),
                    "wave {wave} request {i}: hedged result must stay exact"
                );
            }
            hedges_fired += report.hedges_fired;
            hedges_won += report.hedges_won;
            deadline_misses += report.deadline_misses;
            last_report = Some(report);
        }
        let report = last_report.unwrap_or_default();
        assert!(hedges_fired >= 1, "straggler must trigger hedges: {report:?}");
        assert!(hedges_won >= 1, "a backup must beat the straggler: {report:?}");
        assert_eq!(deadline_misses, 0, "hedging must win before deadlines: {report:?}");

        // Cancels are counted when the straggler dequeues (and skips) the
        // cancelled job — give its backlog a moment to drain.
        let drained = std::time::Instant::now();
        loop {
            if exec.transport_stats().cancels_delivered > 0 {
                break;
            }
            assert!(
                drained.elapsed() < Duration::from_secs(20),
                "queued work behind the straggler was never verifiably cancelled: {report:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    });
}

/// Happy path: with hedging armed on a healthy fleet, hedges stay rare.
/// Sequential requests (no self-inflicted queueing) are the honest
/// happy-path: the trigger floor (1 ms) sits far above the healthy
/// per-unit latency, so speculation should essentially never fire.
#[test]
fn healthy_fleet_rarely_hedges() {
    with_watchdog(|| {
        let inner = heavy_compute(8, 13);
        let faulty = Arc::new(FaultyCompute::new(inner.clone(), 4));
        let exec = Executor::new(4, faulty);
        let plan =
            ExecutionPlan { placements: (0..8).map(|u| UnitPlacement::Single(u % 4)).collect() };
        let wire = vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 }; 8];

        for i in 0..10 {
            let input = heavy_input(300 + i);
            let (out, _) = exec.execute_with(&plan, &wire, input.clone(), unhedged_opts()).unwrap();
            assert_eq!(out.data(), local_reference(&inner, &input).data());
        }

        let mut hedges = 0u32;
        for i in 0..24 {
            let input = heavy_input(400 + i);
            let expect = local_reference(&inner, &input);
            let (out, report) = exec.execute_with(&plan, &wire, input, hedged_opts()).unwrap();
            assert_eq!(out.data(), expect.data(), "request {i}: result must stay exact");
            hedges += report.hedges_fired;
        }
        // 24 requests × 8 stages = 192 unit executions; ≤ 10% may hedge
        // even on a noisy CI box (in practice this is ~0).
        assert!(hedges <= 19, "healthy fleet hedged too often ({hedges} of 192 stages)");
    });
}

/// Single-request path (`execute_with`) under the same brownout: the
/// hedge must win, the result must stay exact, and the win is a hedge
/// win — not a failover, not a retry.
#[test]
fn single_request_hedge_beats_brownout_device() {
    with_watchdog(|| {
        const STRAGGLER: usize = 1;
        let inner = heavy_compute(3, 17);
        let faulty = Arc::new(FaultyCompute::new(inner.clone(), 3));
        let exec = Executor::new(3, faulty.clone());
        let plan = ExecutionPlan {
            placements: vec![
                UnitPlacement::Single(0),
                UnitPlacement::Single(1),
                UnitPlacement::Single(2),
            ],
        };
        let wire = vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 }; 3];

        // Warm each device past min_samples.
        for i in 0..10 {
            let input = heavy_input(500 + i);
            let (out, _) = exec.execute_with(&plan, &wire, input.clone(), unhedged_opts()).unwrap();
            assert_eq!(out.data(), local_reference(&inner, &input).data());
        }

        faulty.set_slowdown(STRAGGLER, 10.0);
        let mut hedges = 0u32;
        let mut wins = 0u32;
        for i in 0..8 {
            let input = heavy_input(600 + i);
            let expect = local_reference(&inner, &input);
            let (out, report) = exec.execute_with(&plan, &wire, input, hedged_opts()).unwrap();
            assert_eq!(out.data(), expect.data(), "request {i}: hedged result must stay exact");
            assert_eq!(report.retries, 0, "hedging is speculation, not retry: {report:?}");
            hedges += report.hedges_fired;
            wins += report.hedges_won;
        }
        assert!(hedges >= 1, "brownout device must trigger hedges");
        assert!(wins >= 1, "at least one hedge must beat the straggler");
    });
}

/// TCP + asymmetric slow link: a worker whose replies (server→client
/// lane only) degrade over a ramp. History from the fast early phase
/// arms the trigger; once the ramp bites, hedges fire onto the direct
/// worker and the stale late replies are discarded — exactly once, bit
/// exact, no hang.
#[test]
fn tcp_asymmetric_slow_link_hedges_onto_direct_worker() {
    with_watchdog(|| {
        let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
        let mut w0 = WorkerServer::bind(
            "127.0.0.1:0",
            compute.clone() as Arc<dyn UnitCompute>,
            WorkerConfig {
                dev_id: 0,
                read_timeout: Duration::from_millis(25),
                ..Default::default()
            },
        )
        .expect("bind worker 0");
        let mut w1 = WorkerServer::bind(
            "127.0.0.1:0",
            compute.clone() as Arc<dyn UnitCompute>,
            WorkerConfig {
                dev_id: 1,
                read_timeout: Duration::from_millis(25),
                ..Default::default()
            },
        )
        .expect("bind worker 1");
        // Replies from worker 1 ramp from instant to +60 ms over 1.5 s;
        // the request lane stays clean (asymmetric by construction).
        let chaos = ChaosConfig {
            seed: 42,
            slow_dir: Some(ChaosDirection::ServerToClient),
            slow_delay: Duration::from_millis(60),
            slow_jitter: Duration::from_millis(5),
            slow_ramp: Duration::from_millis(1500),
            ..Default::default()
        };
        let proxy = ChaosProxy::start(w1.local_addr(), chaos).unwrap();
        let addrs = vec![w0.local_addr().to_string(), proxy.local_addr().to_string()];
        let cfg = TcpTransportConfig {
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_miss_limit: 10,
            reconnect_backoff: Duration::from_millis(10),
            reconnect_backoff_max: Duration::from_millis(200),
            fails_before_dead: 8,
            max_in_flight: 32,
            connect_timeout: Duration::from_millis(500),
            drain_timeout: Duration::from_millis(500),
            seed: 99,
        };
        let transport = TcpTransport::connect(&addrs, cfg);
        assert!(transport.wait_connected(Duration::from_secs(10)));
        let mut exec = Executor::with_transport(Box::new(transport));

        let plan = ExecutionPlan {
            placements: vec![
                UnitPlacement::Single(0),
                UnitPlacement::Single(1),
                UnitPlacement::Single(0),
            ],
        };
        let wire = vec![UnitWire { grid: GridSpec::new(1, 1), in_quant: BitWidth::B32 }; 3];
        let input_for = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            Tensor::rand_uniform(Shape::nchw(1, 4, 12, 12), 1.0, &mut rng)
        };

        // Fast phase: arm the trackers while the ramp is still shallow.
        for i in 0..10 {
            let input = input_for(i);
            let (out, _) = exec.execute_with(&plan, &wire, input.clone(), unhedged_opts()).unwrap();
            assert_eq!(out.data(), local_reference(&compute, &input).data());
        }

        // Let the slow link ramp to full strength.
        std::thread::sleep(Duration::from_millis(1600));

        let mut hedges = 0u32;
        for i in 0..6 {
            let input = input_for(100 + i);
            let expect = local_reference(&compute, &input);
            let (out, report) = exec.execute_with(&plan, &wire, input, hedged_opts()).unwrap();
            assert_eq!(out.data(), expect.data(), "request {i}: result must stay exact");
            hedges += report.hedges_fired;
        }
        assert!(hedges >= 1, "degraded reply lane must trigger hedges");
        exec.shutdown();
        drop(proxy);
        w0.stop();
        w1.stop();
    });
}
