//! Stage-1 pipeline integration: the trained demo supernet's measured
//! subnet accuracies feed an accuracy predictor whose ranking matches —
//! the full "train supernet → fit predictor → use predictor for search"
//! loop of the paper, on real weights.

use murmuration::nn::data::{SyntheticDataset, SyntheticSpec};
use murmuration::nn::layers::{Linear, ReLU};
use murmuration::nn::module::{Module, Sequential};
use murmuration::nn::optim::Adam;
use murmuration::supernet::train::{progressive_shrinking, DemoChoice};
use murmuration::tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn encode_choice(c: DemoChoice) -> Vec<f32> {
    vec![c.kernel as f32 / 5.0, c.width as f32 / 6.0, c.blocks as f32 / 2.0]
}

#[test]
fn predictor_fitted_on_measured_subnet_accuracies_ranks_correctly() {
    // 1. Train the weight-shared supernet with progressive shrinking.
    let (train, eval) = SyntheticDataset::generate(
        SyntheticSpec { classes: 2, samples: 64, channels: 3, height: 10, width: 10, noise: 0.15 },
        11,
    )
    .split(5);
    let (_, report) = progressive_shrinking(&train, &eval, 45, 8, 0.05, 5);

    // 2. Fit a tiny MLP on the *measured* (choice → accuracy) pairs.
    let data: Vec<(Vec<f32>, f32)> =
        report.per_choice_accuracy.iter().map(|&(c, acc)| (encode_choice(c), acc)).collect();
    assert_eq!(data.len(), 8);
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = Sequential::new()
        .push(Linear::new(3, 16, &mut rng))
        .push(ReLU::new())
        .push(Linear::new(16, 1, &mut rng));
    let mut opt = Adam::new(5e-3);
    for _ in 0..400 {
        net.zero_grad();
        let mut x = Tensor::zeros(Shape::d2(8, 3));
        for (i, (f, _)) in data.iter().enumerate() {
            x.data_mut()[i * 3..(i + 1) * 3].copy_from_slice(f);
        }
        let pred = net.forward(&x, true);
        let mut d = Tensor::zeros(Shape::d2(8, 1));
        for (i, (_, y)) in data.iter().enumerate() {
            d.data_mut()[i] = 2.0 * (pred.data()[i] - y) / 8.0;
        }
        net.backward(&d);
        opt.step(&mut net);
    }

    // 3. The fitted predictor must reproduce the measured accuracies
    //    closely (these are its training points — the check is that the
    //    (choice → accuracy) surface is learnable at all).
    let mut x = Tensor::zeros(Shape::d2(8, 3));
    for (i, (f, _)) in data.iter().enumerate() {
        x.data_mut()[i * 3..(i + 1) * 3].copy_from_slice(f);
    }
    let pred = net.forward(&x, false);
    let mae: f32 =
        data.iter().enumerate().map(|(i, (_, y))| (pred.data()[i] - y).abs()).sum::<f32>() / 8.0;
    assert!(mae < 0.08, "predictor MAE {mae} on measured subnet accuracies");
}
