//! The standing chaos-regression surface: every built-in scenario runs
//! through the campaign engine under a watchdog, and conservation
//! (`completed + rejected == submitted`, `lost == 0`) holds in every
//! scenario × grid cell. This is the CI gate ROADMAP item 5 calls for —
//! ≥20 distinct dynamic-edge scenarios exercised on every push.

use murmuration::edgesim::scenario::{builtin_by_name, builtin_matrix};
use murmuration::serve::campaign::{
    pareto_mark, run_cell, run_scenario, smoke_grid, CampaignConfig, GridCell, PartitionPolicy,
    QuantPolicy, ServingMode,
};
use murmuration::testkit::with_watchdog;

#[test]
fn builtin_matrix_has_at_least_twenty_distinct_scenarios() {
    let specs = builtin_matrix();
    assert!(specs.len() >= 20, "matrix shrank to {} scenarios", specs.len());
    let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), specs.len(), "scenario names must be distinct");
    for spec in &specs {
        assert!(builtin_by_name(&spec.name).is_some(), "{} must resolve by name", spec.name);
    }
}

/// The tentpole gate: the whole matrix × the smoke grid, conservation
/// asserted in every cell (the engine hard-asserts it; this test
/// re-checks the reported counters independently).
#[test]
fn every_scenario_conserves_in_every_cell() {
    with_watchdog(|| {
        let cfg = CampaignConfig::default();
        let grid = smoke_grid();
        for spec in builtin_matrix() {
            let result = run_scenario(&spec, &grid, &cfg);
            let mut total_completed = 0;
            for cell in &result.cells {
                let s = &cell.stats;
                assert_eq!(
                    s.completed + s.rejected,
                    s.submitted,
                    "{} x {}: conservation violated",
                    spec.name,
                    cell.cell.label()
                );
                assert_eq!(s.lost(), 0, "{} x {}: lost requests", spec.name, cell.cell.label());
                assert_eq!(
                    s.submitted,
                    result.offered as u64,
                    "{} x {}: offered arrivals unaccounted",
                    spec.name,
                    cell.cell.label()
                );
                total_completed += s.completed;
            }
            // Every built-in scenario is sized to make progress: a matrix
            // entry that completes nothing anywhere is a dead cell.
            assert!(total_completed > 0, "{}: no cell completed any work", spec.name);
            assert!(
                result.cells.iter().any(|c| c.on_front),
                "{}: non-empty run must have a Pareto front",
                spec.name
            );
        }
    });
}

/// Scenarios with an explicit failure axis must actually exercise the
/// corresponding robustness machinery, not just survive it.
#[test]
fn failure_axes_reach_their_counters() {
    with_watchdog(|| {
        let cfg = CampaignConfig::default();
        let failover_cell = GridCell {
            policy: PartitionPolicy::Split,
            quant: QuantPolicy::Adaptive,
            mode: ServingMode::Failover,
        };
        for name in ["coordinator-death", "coordinator-death-lossy"] {
            let spec = builtin_by_name(name).expect("built-in scenario");
            let r = run_cell(&spec, &failover_cell, &cfg);
            assert_eq!(r.stats.failovers, 1, "{name}: standby must promote exactly once");
            assert!(r.stats.retried > 0, "{name}: outage work must retry");
            assert!(r.stats.completed > 0, "{name}: the standby must serve");
        }
        // A brownout stretches latency without tripping conservation.
        let classic = smoke_grid()[0];
        let clean =
            run_cell(&builtin_by_name("steady-augmented").expect("builtin"), &classic, &cfg);
        let browned =
            run_cell(&builtin_by_name("brownout-remote").expect("builtin"), &classic, &cfg);
        assert!(
            browned.p95_ms > clean.p95_ms,
            "brownout must show up in the tail: {:.1} vs {:.1} ms",
            browned.p95_ms,
            clean.p95_ms
        );
    });
}

/// Pareto marking on a synthetic cell set: dominated cells stay off the
/// front, incomparable cells all make it.
#[test]
fn pareto_marking_is_correct_on_known_points() {
    let cfg = CampaignConfig::default();
    let grid = smoke_grid();
    let spec = builtin_by_name("steady-augmented").expect("builtin");
    let mut cells: Vec<_> = grid.iter().map(|c| run_cell(&spec, c, &cfg)).collect();
    // Force a known geometry: cell 0 dominates cell 1, cell 2 trades off.
    cells[0].p95_ms = 100.0;
    cells[0].accuracy_pct = 80.0;
    cells[0].goodput_rps = 20.0;
    cells[1].p95_ms = 150.0;
    cells[1].accuracy_pct = 75.0;
    cells[1].goodput_rps = 15.0;
    cells[2].p95_ms = 300.0;
    cells[2].accuracy_pct = 95.0;
    cells[2].goodput_rps = 10.0;
    pareto_mark(&mut cells);
    assert!(cells[0].on_front, "undominated cell must be on the front");
    assert!(!cells[1].on_front, "dominated cell must be off the front");
    assert!(cells[2].on_front, "trade-off cell must be on the front");
}
