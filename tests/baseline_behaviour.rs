//! Cross-crate behavioural checks of the baselines against the paper's
//! qualitative claims: who wins where, and how the crossovers move with
//! network conditions.

use murmuration::edgesim::device::{augmented_computing_devices, device_swarm_devices};
use murmuration::models::zoo::BaselineModel;
use murmuration::partition::{adcnn, evolutionary, neurosurgeon, single};
use murmuration::prelude::*;

fn net1(bw: f64, delay: f64) -> NetworkState {
    NetworkState::uniform(1, LinkState { bandwidth_mbps: bw, delay_ms: delay })
}

#[test]
fn neurosurgeon_beats_both_endpoints_somewhere() {
    // At moderate bandwidth there must exist a model for which an interior
    // split strictly beats all-local and all-remote — the reason
    // Neurosurgeon exists.
    let devices = augmented_computing_devices();
    let mut found_interior_win = false;
    for bw in [2.0, 5.0, 10.0, 20.0, 40.0] {
        let net = net1(bw, 10.0);
        for model_id in BaselineModel::all() {
            let model = model_id.spec();
            let p = neurosurgeon::plan(&model, &devices, &net);
            if !p.all_local && p.cut.is_some() {
                found_interior_win = true;
            }
        }
    }
    assert!(found_interior_win, "no interior split ever won — split logic suspicious");
}

#[test]
fn murmuration_oracle_dominates_fixed_baselines_on_accuracy_at_loose_slo() {
    // With a loose latency SLO and a good network, the adaptive system
    // should reach accuracy at least as high as the best *feasible* fixed
    // baseline (it can pick a near-max submodel).
    let devices = augmented_computing_devices();
    let net = net1(400.0, 5.0);
    let slo_ms = 400.0;

    // Best feasible fixed baseline accuracy.
    let mut best_fixed = 0.0f32;
    for model_id in BaselineModel::all() {
        let model = model_id.spec();
        let ns = neurosurgeon::plan(&model, &devices, &net);
        if ns.latency_ms <= slo_ms {
            best_fixed = best_fixed.max(model.top1);
        }
        let ad = adcnn::plan(&model, &devices, &net);
        if ad.latency_ms <= slo_ms {
            best_fixed = best_fixed.max(adcnn::adcnn_accuracy(&model));
        }
    }

    // Murmuration oracle (evolutionary over the joint space).
    let est = LatencyEstimator::new(&devices, &net);
    let acc_model = AccuracyModel::new();
    let space = SearchSpace::default();
    let result = evolutionary::search(&space, 2, 24, 25, 7, |cfg, plan| {
        let spec = SubnetSpec::lower(cfg);
        let lat = est.estimate(&spec, plan).total_ms;
        if lat <= slo_ms {
            f64::from(acc_model.predict(cfg))
        } else {
            -lat
        }
    });
    // The supernet tops out around 79.5%; ResNeXt101 at 79.3% is feasible
    // here, so "dominates" means within a hair of the best fixed model.
    assert!(
        result.best_score + 0.6 >= f64::from(best_fixed),
        "oracle accuracy {} vs best fixed {}",
        result.best_score,
        best_fixed
    );
}

#[test]
fn tight_slo_kills_heavy_baselines_but_not_murmuration() {
    // Fig. 13's headline: Neurosurgeon+DenseNet161 / +ResNeXt101 satisfy
    // *no* 140 ms setting, while the adaptive system still finds feasible
    // strategies at reasonable bandwidth.
    let devices = augmented_computing_devices();
    let slo_ms = 140.0;
    for bw in [50.0, 100.0, 200.0, 400.0] {
        let net = net1(bw, 25.0);
        for heavy in [BaselineModel::DenseNet161, BaselineModel::ResNeXt101] {
            let p = neurosurgeon::plan(&heavy.spec(), &devices, &net);
            assert!(
                p.latency_ms > slo_ms,
                "{} should miss 140 ms at {bw} Mbps (got {:.1})",
                heavy.label(),
                p.latency_ms
            );
        }
        // Murmuration finds something feasible at decent bandwidth — the
        // canonical GPU-offload of a small submodel suffices.
        if bw >= 100.0 {
            let est = LatencyEstimator::new(&devices, &net);
            let spec = SubnetSpec::lower(&SearchSpace::default().min_config());
            let feasible = (0..=spec.units.len())
                .map(|cut| {
                    let placements = (0..spec.units.len())
                        .map(|i| UnitPlacement::Single(usize::from(i >= cut)))
                        .collect();
                    est.estimate(&spec, &ExecutionPlan { placements }).total_ms
                })
                .any(|lat| lat <= slo_ms);
            assert!(feasible, "no feasible strategy found at {bw} Mbps");
        }
    }
}

#[test]
fn swarm_low_bandwidth_prefers_local_small_models() {
    // At 5 Mbps in the swarm, distributing is hopeless; ADCNN should fall
    // back to one worker and the latency should approach single-device.
    let devices = device_swarm_devices(5);
    let net = NetworkState::uniform(4, LinkState { bandwidth_mbps: 5.0, delay_ms: 20.0 });
    let model = BaselineModel::MobileNetV3Large.spec();
    let plan = adcnn::plan(&model, &devices, &net);
    assert_eq!(plan.n_workers, 1);
    let solo = single::single_device_latency_ms(&model, &devices[0], &net);
    assert!((plan.latency_ms - solo).abs() / solo < 0.05, "{} vs {solo}", plan.latency_ms);
}

#[test]
fn swarm_high_bandwidth_distribution_wins() {
    let devices = device_swarm_devices(5);
    let net = NetworkState::uniform(4, LinkState { bandwidth_mbps: 500.0, delay_ms: 20.0 });
    let model = BaselineModel::ResNet50.spec();
    let plan = adcnn::plan(&model, &devices, &net);
    assert!(plan.n_workers >= 3, "should distribute at 500 Mbps, used {}", plan.n_workers);
    let solo = single::single_device_latency_ms(&model, &devices[0], &net);
    assert!(plan.latency_ms < solo * 0.6, "{} vs {solo}", plan.latency_ms);
}

#[test]
fn estimator_agrees_with_neurosurgeon_for_equivalent_plans() {
    // A subnet run fully on the remote GPU must cost exactly what the
    // shared redistribution model says: input up + compute + logits down.
    let devices = augmented_computing_devices();
    let net = net1(100.0, 10.0);
    let est = LatencyEstimator::new(&devices, &net);
    let spec = SubnetSpec::lower(&SearchSpace::default().min_config());
    let remote = ExecutionPlan::all_on(&spec, 1);
    let b = est.estimate(&spec, &remote);
    let up = net.transfer_ms(0, 1, spec.input_bytes());
    let down = net.transfer_ms(1, 0, (1000usize * 4) as u64);
    assert!((b.comm_ms - (up + down)).abs() < 1e-6, "comm {} vs {up}+{down}", b.comm_ms);
}
