//! Failure-injection and robustness tests for the online runtime: noisy
//! monitors, abrupt network collapses, and hostile traces must never
//! produce invalid decisions or non-finite reports.

use murmuration::edgesim::trace::NetworkTrace;
use murmuration::edgesim::TrafficControl;
use murmuration::prelude::*;
use murmuration::rl::LstmPolicy;
use murmuration::runtime::RuntimeConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn runtime_with(noise: f64) -> Runtime {
    let sc = Scenario::augmented_computing(SloKind::Latency);
    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
    let cfg = RuntimeConfig { monitor_noise: noise, ..Default::default() };
    Runtime::new(sc, policy, cfg, Slo::LatencyMs(140.0))
}

#[test]
fn extreme_monitor_noise_never_breaks_decisions() {
    // 40% observation noise: estimates are garbage but decisions must
    // stay valid and reports finite.
    let mut rt = runtime_with(0.4);
    let mut rng = StdRng::seed_from_u64(1);
    let net = NetworkState::uniform(1, LinkState { bandwidth_mbps: 120.0, delay_ms: 30.0 });
    for t in 0..30 {
        let r = rt.infer(&net, t as f64 * 50.0, &mut rng);
        assert!(r.latency_ms.is_finite() && r.latency_ms > 0.0);
        assert!((70.0..81.0).contains(&r.accuracy_pct));
    }
}

#[test]
fn network_collapse_to_grid_edge_is_handled() {
    // Bandwidth collapses far below the training grid's lower bound; the
    // monitor clamps and the decision pipeline must survive.
    let mut rt = runtime_with(0.05);
    let mut rng = StdRng::seed_from_u64(2);
    let good = NetworkState::uniform(1, LinkState { bandwidth_mbps: 300.0, delay_ms: 10.0 });
    let dead = NetworkState::uniform(1, LinkState { bandwidth_mbps: 0.5, delay_ms: 900.0 });
    let _ = rt.infer(&good, 0.0, &mut rng);
    for t in 1..6 {
        let r = rt.infer(&dead, t as f64 * 100.0, &mut rng);
        assert!(r.latency_ms.is_finite());
        // Under a dead link, any sane strategy keeps most work local; the
        // report's SLO judgement must reflect the true (terrible) network.
    }
}

#[test]
fn random_walk_trace_long_run_stability() {
    let mut rt = runtime_with(0.1);
    let mut rng = StdRng::seed_from_u64(3);
    let base = LinkState { bandwidth_mbps: 150.0, delay_ms: 20.0 };
    let trace = NetworkTrace::random_walk(base, 100.0, 200, 4.0, 9);
    let mut met = 0usize;
    for step in 0..100 {
        let t = step as f64 * 100.0;
        let net = NetworkState::uniform(1, trace.sample(t));
        rt.tick(&net, t, &mut rng);
        let r = rt.infer(&net, t + 10.0, &mut rng);
        assert!(r.latency_ms.is_finite());
        met += usize::from(r.slo_met);
    }
    // The untrained policy won't meet many SLOs, but the pipeline itself
    // must have kept functioning and caching.
    let stats = rt.cache_stats();
    assert!(stats.hits + stats.misses >= 100);
    assert!(met <= 100);
}

#[test]
fn background_traffic_burst_is_survived_and_adapted_to() {
    // A co-tenant bursts onto the GPU link mid-run: the monitor's EWMA
    // converges to the degraded state and decisions keep being valid; when
    // the burst ends, the runtime recovers.
    let mut rt = runtime_with(0.05);
    let mut rng = StdRng::seed_from_u64(9);
    let mut tc = TrafficControl::new(NetworkState::uniform(
        1,
        LinkState { bandwidth_mbps: 300.0, delay_ms: 10.0 },
    ));
    let mut t = 0.0;
    for _ in 0..5 {
        let r = rt.infer(tc.state(), t, &mut rng);
        assert!(r.latency_ms.is_finite());
        t += 100.0;
    }
    // Burst: 90% of the link consumed, +60 ms queueing.
    tc.inject_background(1, 0.9, 60.0);
    let mut during = Vec::new();
    for _ in 0..8 {
        let r = rt.infer(tc.state(), t, &mut rng);
        assert!(r.latency_ms.is_finite());
        during.push(r.latency_ms);
        t += 100.0;
    }
    // Burst ends.
    tc.set_bandwidth(1, 300.0);
    tc.set_delay(1, 10.0);
    let mut after = Vec::new();
    for _ in 0..8 {
        let r = rt.infer(tc.state(), t, &mut rng);
        after.push(r.latency_ms);
        t += 100.0;
    }
    // Recovery: post-burst latencies return below the in-burst worst case.
    let worst_during = during.iter().cloned().fold(0.0f64, f64::max);
    let best_after = after.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        best_after <= worst_during,
        "runtime must recover after the burst: {best_after} vs {worst_during}"
    );
}

#[test]
fn slo_flapping_does_not_poison_the_cache() {
    let mut rt = runtime_with(0.0);
    let mut rng = StdRng::seed_from_u64(4);
    let net = NetworkState::uniform(1, LinkState { bandwidth_mbps: 200.0, delay_ms: 10.0 });
    // Alternate between two SLOs; each must get its own cached strategy
    // and the reports must be judged against the SLO active at request
    // time.
    for i in 0..10 {
        let slo = if i % 2 == 0 { 100.0 } else { 300.0 };
        rt.slo.set_latency_ms(slo);
        let r = rt.infer(&net, i as f64 * 100.0, &mut rng);
        assert_eq!(r.slo_met, r.latency_ms <= slo, "iteration {i}");
    }
    // Both SLO buckets cached → later requests hit.
    rt.slo.set_latency_ms(100.0);
    let r = rt.infer(&net, 2000.0, &mut rng);
    assert!(r.cached);
    rt.slo.set_latency_ms(300.0);
    let r = rt.infer(&net, 2100.0, &mut rng);
    assert!(r.cached);
}
