//! The complete Fig. 10 loop at demonstration scale: monitoring-derived
//! conditions → guarded decision → scheduler dispatch table → real
//! threaded execution of the decided plan (with its FDSP grids and wire
//! precisions) on live tensors.

use murmuration::prelude::*;
use murmuration::rl::env::decide_guarded;
use murmuration::rl::LstmPolicy;
use murmuration::runtime::executor::{ConvStackCompute, Executor, UnitCompute};
use murmuration::runtime::scheduler::dispatch_table;
use murmuration::tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn decision_schedules_and_executes_on_real_tensors() {
    let sc = Scenario::augmented_computing(SloKind::Latency);
    let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
    let mut rng = StdRng::seed_from_u64(0);

    // Drive several conditions through decide → schedule → execute.
    let conds = [
        Condition { slo: 140.0, bw_mbps: vec![300.0], delay_ms: vec![5.0] },
        Condition { slo: 100.0, bw_mbps: vec![60.0], delay_ms: vec![80.0] },
        Condition { slo: 400.0, bw_mbps: vec![120.0], delay_ms: vec![30.0] },
    ];
    // Demo-scale compute standing in for the supernet's 7 units (the
    // executor is agnostic to what each unit computes).
    let compute = Arc::new(ConvStackCompute::random(7, 1, 4, 3));
    let exec = Executor::new(sc.devices.len(), compute.clone());

    for cond in conds {
        let decision = decide_guarded(&policy, &sc, &cond);
        let genome = sc.decode(&decision.actions);
        let spec = SubnetSpec::lower(&genome.config);
        let plan = genome.plan(&spec, sc.devices.len());

        // Scheduler: plan → dispatch table (validates the plan).
        let table = dispatch_table(&spec, &plan, sc.devices.len())
            .expect("guarded decisions must always schedule");
        assert_eq!(table.len(), 7);

        // Execute with the decided placements and wire settings.
        let input = Tensor::rand_uniform(Shape::nchw(1, 4, 16, 16), 1.0, &mut rng);
        let (out, report) =
            exec.execute(&plan, &table, input.clone()).expect("healthy fleet never fails");
        assert_eq!(out.shape(), input.shape(), "same-channel demo units preserve shape");
        assert!(report.wall_ms >= 0.0);

        // The executed result matches a local monolithic reference when
        // every unit stayed on one device at full precision.
        let all_local = plan
            .placements
            .iter()
            .all(|p| matches!(p, murmuration::partition::UnitPlacement::Single(0)));
        if all_local {
            let mut cur = input.clone();
            for u in 0..compute.n_units() {
                cur = compute.run_unit(u, &cur);
            }
            assert_eq!(out.data(), cur.data());
        }
    }
}
