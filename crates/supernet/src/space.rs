//! The supernet search space and subnet configurations.

use murmuration_tensor::quant::BitWidth;
use murmuration_tensor::tile::GridSpec;
use rand::Rng;

/// Per-stage architectural and partitioning choices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockChoice {
    /// Depthwise kernel size: 3, 5, or 7.
    pub kernel: usize,
    /// Number of MBConv blocks in the stage: 2–4.
    pub depth: usize,
    /// Expansion ratio of the inverted bottleneck: 3, 4, or 6.
    pub expand: usize,
    /// FDSP spatial partition grid for this stage.
    pub partition: GridSpec,
    /// Wire precision when this stage's output crosses a device boundary.
    pub quant: BitWidth,
}

/// A complete subnet selection from the supernet.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SubnetConfig {
    /// Input resolution (square).
    pub resolution: usize,
    /// One choice per stage.
    pub stages: Vec<BlockChoice>,
}

impl SubnetConfig {
    /// Total number of MBConv blocks.
    pub fn total_blocks(&self) -> usize {
        self.stages.iter().map(|s| s.depth).sum()
    }

    /// Maximum tile parallelism over all stages.
    pub fn max_tiles(&self) -> usize {
        self.stages.iter().map(|s| s.partition.tiles()).max().unwrap_or(1)
    }
}

/// The search space: the option lists for each decision dimension.
///
/// ```
/// use murmuration_supernet::{SearchSpace, SubnetSpec, AccuracyModel};
///
/// let space = SearchSpace::default();
/// assert!(space.cardinality() > 1_000_000_000_000);
/// let spec = SubnetSpec::lower(&space.max_config());
/// let acc = AccuracyModel::new().predict(&space.max_config());
/// assert!(spec.total_macs() > 500_000_000 && acc > 79.0);
/// ```
#[derive(Clone, Debug)]
pub struct SearchSpace {
    pub resolutions: Vec<usize>,
    pub kernels: Vec<usize>,
    pub depths: Vec<usize>,
    pub expands: Vec<usize>,
    pub partitions: Vec<GridSpec>,
    pub quants: Vec<BitWidth>,
    pub num_stages: usize,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            resolutions: vec![160, 176, 192, 208, 224],
            kernels: vec![3, 5, 7],
            depths: vec![2, 3, 4],
            expands: vec![3, 4, 6],
            partitions: GridSpec::search_space(),
            quants: BitWidth::search_space(),
            num_stages: 5,
        }
    }
}

impl SearchSpace {
    /// Largest subnet: highest resolution, deepest/widest blocks, no
    /// partitioning, full precision.
    pub fn max_config(&self) -> SubnetConfig {
        SubnetConfig {
            resolution: *self.resolutions.iter().max().unwrap(),
            stages: vec![
                BlockChoice {
                    kernel: *self.kernels.iter().max().unwrap(),
                    depth: *self.depths.iter().max().unwrap(),
                    expand: *self.expands.iter().max().unwrap(),
                    partition: GridSpec::new(1, 1),
                    quant: BitWidth::B32,
                };
                self.num_stages
            ],
        }
    }

    /// Smallest subnet: lowest resolution, shallowest/narrowest blocks.
    pub fn min_config(&self) -> SubnetConfig {
        SubnetConfig {
            resolution: *self.resolutions.iter().min().unwrap(),
            stages: vec![
                BlockChoice {
                    kernel: *self.kernels.iter().min().unwrap(),
                    depth: *self.depths.iter().min().unwrap(),
                    expand: *self.expands.iter().min().unwrap(),
                    partition: GridSpec::new(1, 1),
                    quant: BitWidth::B32,
                };
                self.num_stages
            ],
        }
    }

    /// Uniform random configuration.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> SubnetConfig {
        let pick = |v: &[usize], rng: &mut R| v[rng.gen_range(0..v.len())];
        SubnetConfig {
            resolution: pick(&self.resolutions, rng),
            stages: (0..self.num_stages)
                .map(|_| BlockChoice {
                    kernel: pick(&self.kernels, rng),
                    depth: pick(&self.depths, rng),
                    expand: pick(&self.expands, rng),
                    partition: self.partitions[rng.gen_range(0..self.partitions.len())],
                    quant: self.quants[rng.gen_range(0..self.quants.len())],
                })
                .collect(),
        }
    }

    /// Mutates one random decision of `cfg` in place.
    pub fn mutate<R: Rng>(&self, cfg: &mut SubnetConfig, rng: &mut R) {
        let stage = rng.gen_range(0..cfg.stages.len());
        match rng.gen_range(0..6) {
            0 => cfg.resolution = self.resolutions[rng.gen_range(0..self.resolutions.len())],
            1 => cfg.stages[stage].kernel = self.kernels[rng.gen_range(0..self.kernels.len())],
            2 => cfg.stages[stage].depth = self.depths[rng.gen_range(0..self.depths.len())],
            3 => cfg.stages[stage].expand = self.expands[rng.gen_range(0..self.expands.len())],
            4 => {
                cfg.stages[stage].partition =
                    self.partitions[rng.gen_range(0..self.partitions.len())]
            }
            _ => cfg.stages[stage].quant = self.quants[rng.gen_range(0..self.quants.len())],
        }
    }

    /// Number of distinct configurations in the space.
    pub fn cardinality(&self) -> u128 {
        let per_stage = (self.kernels.len()
            * self.depths.len()
            * self.expands.len()
            * self.partitions.len()
            * self.quants.len()) as u128;
        self.resolutions.len() as u128 * per_stage.pow(self.num_stages as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn default_space_is_large() {
        let s = SearchSpace::default();
        // 5 * (3*3*3*4*3)^5 = 5 * 324^5 ≈ 1.8e13 — ample room for the
        // paper's "multitude of configurations".
        assert!(s.cardinality() > 1_000_000_000_000);
    }

    #[test]
    fn max_min_configs_are_extremes() {
        let s = SearchSpace::default();
        let max = s.max_config();
        let min = s.min_config();
        assert_eq!(max.resolution, 224);
        assert_eq!(min.resolution, 160);
        assert_eq!(max.total_blocks(), 20);
        assert_eq!(min.total_blocks(), 10);
        assert!(max.stages.iter().all(|b| b.kernel == 7 && b.expand == 6));
        assert!(min.stages.iter().all(|b| b.kernel == 3 && b.expand == 3));
    }

    #[test]
    fn sample_stays_in_space() {
        let s = SearchSpace::default();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let c = s.sample(&mut rng);
            assert!(s.resolutions.contains(&c.resolution));
            assert_eq!(c.stages.len(), 5);
            for b in &c.stages {
                assert!(s.kernels.contains(&b.kernel));
                assert!(s.depths.contains(&b.depth));
                assert!(s.expands.contains(&b.expand));
                assert!(s.partitions.contains(&b.partition));
                assert!(s.quants.contains(&b.quant));
            }
        }
    }

    #[test]
    fn mutation_changes_at_most_one_dimension() {
        let s = SearchSpace::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let base = s.sample(&mut rng);
            let mut m = base.clone();
            s.mutate(&mut m, &mut rng);
            // Count differing coordinates.
            let mut diffs = usize::from(base.resolution != m.resolution);
            for (a, b) in base.stages.iter().zip(m.stages.iter()) {
                diffs += usize::from(a.kernel != b.kernel)
                    + usize::from(a.depth != b.depth)
                    + usize::from(a.expand != b.expand)
                    + usize::from(a.partition != b.partition)
                    + usize::from(a.quant != b.quant);
            }
            assert!(diffs <= 1, "mutation changed {diffs} coords");
        }
    }

    #[test]
    fn max_tiles_reflects_partitions() {
        let s = SearchSpace::default();
        let mut c = s.min_config();
        assert_eq!(c.max_tiles(), 1);
        c.stages[2].partition = GridSpec::new(2, 2);
        assert_eq!(c.max_tiles(), 4);
    }
}
