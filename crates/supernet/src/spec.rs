//! Lowering a [`SubnetConfig`] to execution units with exact per-layer
//! compute and size math.
//!
//! The supernet body is MobileNetV3-like: a fixed stem, five elastic stages
//! of inverted-bottleneck (MBConv) blocks, and a fixed head. A *unit* is the
//! granularity at which Murmuration makes partitioning and placement
//! decisions — one unit per stage, plus stem and head units that always run
//! unpartitioned.

use crate::space::{BlockChoice, SubnetConfig};
use murmuration_models::{LayerSpec, SpecBuilder};
use murmuration_tensor::quant::BitWidth;
use murmuration_tensor::tile::GridSpec;

/// Output channel width of each elastic stage.
pub const STAGE_WIDTHS: [usize; 5] = [24, 40, 80, 112, 160];
/// Stride of the first block in each stage.
pub const STAGE_STRIDES: [usize; 5] = [2, 2, 2, 1, 2];
/// Stem output channels.
pub const STEM_WIDTH: usize = 16;
/// Head conv channels (as in MobileNetV3-Large).
pub const HEAD_WIDTH: usize = 960;

/// One placement/partitioning unit of a lowered subnet.
#[derive(Clone, Debug)]
pub struct ExecUnit {
    pub name: String,
    /// Sequential layers inside the unit.
    pub layers: Vec<LayerSpec>,
    /// FDSP grid this unit may be executed under (1×1 for stem/head).
    pub partition: GridSpec,
    /// Wire precision for this unit's *output* when it crosses devices.
    pub quant: BitWidth,
    /// Output shape (c, h, w).
    pub out_shape: (usize, usize, usize),
}

impl ExecUnit {
    /// Total MACs of the unit (one full, unpartitioned execution).
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Output element count.
    pub fn out_elems(&self) -> u64 {
        let (c, h, w) = self.out_shape;
        (c * h * w) as u64
    }

    /// Bytes this unit's output occupies on the wire under its quant
    /// setting.
    pub fn out_wire_bytes(&self) -> u64 {
        self.quant.wire_bytes(self.out_elems() as usize) as u64
    }

    /// MACs executed by *one tile* when the unit runs under its grid.
    /// FDSP zero padding adds a small per-tile compute overhead at seams.
    pub fn macs_per_tile(&self) -> u64 {
        let t = self.partition.tiles() as u64;
        if t == 1 {
            return self.macs();
        }
        let overhead = 1.0 + 0.04 * (t as f64 - 1.0);
        ((self.macs() as f64 / t as f64) * overhead).ceil() as u64
    }

    /// Wire bytes of one tile's share of the unit *input* (what must be
    /// scattered to a tile's device), given the unit input element count.
    pub fn tile_input_bytes(&self, in_elems: u64, in_quant: BitWidth) -> u64 {
        let t = self.partition.tiles() as u64;
        in_quant.wire_bytes((in_elems / t) as usize) as u64
    }

    /// Whether every layer in this unit supports spatial tiling.
    pub fn spatially_partitionable(&self) -> bool {
        self.layers.iter().all(|l| l.spatial_ok)
    }

    /// The *compute* precision this unit runs at on its device.
    ///
    /// A unit whose wire quantization is already 8-bit ships int8 codes
    /// between devices, so running the unit's conv/linear kernels on the
    /// int8 compute path (`murmuration_tensor::int8`) adds no extra wire
    /// error — the activations were going to be quantized anyway — and buys
    /// the int8 GEMM speedup. Wider wire settings keep f32 compute: their
    /// configs were chosen to preserve precision across the boundary, and
    /// silently narrowing the math would undercut that choice.
    pub fn compute_bits(&self) -> BitWidth {
        match self.quant {
            BitWidth::B8 => BitWidth::B8,
            BitWidth::B16 | BitWidth::B32 => BitWidth::B32,
        }
    }
}

/// A lowered subnet: ordered execution units.
#[derive(Clone, Debug)]
pub struct SubnetSpec {
    pub config: SubnetConfig,
    pub units: Vec<ExecUnit>,
}

impl SubnetSpec {
    /// Lowers a configuration.
    ///
    /// Lowering is called once per RL episode (and per planner candidate),
    /// so the architecture-dependent parts are memoized per thread: a
    /// stage's layers depend only on (stage index, resolution, kernel,
    /// depth, expand), and the stem/head only on the resolution. The
    /// partition/quant fields are stamped onto the cached units afterward.
    pub fn lower(config: &SubnetConfig) -> Self {
        use std::cell::RefCell;
        use std::collections::HashMap;

        assert_eq!(config.stages.len(), 5, "supernet has 5 elastic stages");
        let r = config.resolution;

        type StageKey = (usize, usize, usize, usize, usize);
        thread_local! {
            static STEM: RefCell<HashMap<usize, ExecUnit>> = RefCell::new(HashMap::new());
            static STAGE: RefCell<HashMap<StageKey, ExecUnit>> = RefCell::new(HashMap::new());
            static HEAD: RefCell<HashMap<usize, ExecUnit>> = RefCell::new(HashMap::new());
        }

        let mut units = Vec::with_capacity(7);
        let stem = STEM.with(|c| {
            c.borrow_mut()
                .entry(r)
                .or_insert_with(|| {
                    // Stem: conv s2 + one fixed k3 bneck at stride 1.
                    let mut b = SpecBuilder::new("stem", (3, r, r));
                    b.conv("stem.conv", STEM_WIDTH, 3, 2, 1);
                    b.dwconv("stem.bneck.dw", 3, 1, 1);
                    b.conv("stem.bneck.pw", STEM_WIDTH, 1, 1, 0);
                    let stem_shape = b.shape();
                    ExecUnit {
                        name: "stem".into(),
                        layers: b.build(0.0).layers,
                        partition: GridSpec::new(1, 1),
                        quant: BitWidth::B32,
                        out_shape: stem_shape,
                    }
                })
                .clone()
        });
        let mut cur = stem.out_shape;
        units.push(stem);

        // Elastic stages (cached by architecture; partition/quant stamped).
        for (si, choice) in config.stages.iter().enumerate() {
            let key: StageKey = (si, r, choice.kernel, choice.depth, choice.expand);
            let mut unit = STAGE.with(|c| {
                c.borrow_mut().entry(key).or_insert_with(|| lower_stage(si, choice, cur).0).clone()
            });
            unit.partition = choice.partition;
            unit.quant = choice.quant;
            cur = unit.out_shape;
            units.push(unit);
        }

        let head = HEAD.with(|c| {
            c.borrow_mut()
                .entry(r)
                .or_insert_with(|| {
                    // Head: 1x1 conv, GAP, two FCs.
                    let mut b = SpecBuilder::new("head", cur);
                    b.conv("head.conv", HEAD_WIDTH, 1, 1, 0);
                    b.gap("head.gap");
                    b.fc("head.fc1", 1280);
                    b.fc("classifier", 1000);
                    ExecUnit {
                        name: "head".into(),
                        layers: b.build(0.0).layers,
                        partition: GridSpec::new(1, 1),
                        quant: BitWidth::B32,
                        out_shape: (1000, 1, 1),
                    }
                })
                .clone()
        });
        units.push(head);

        SubnetSpec { config: config.clone(), units }
    }

    /// Total MACs of the whole subnet.
    pub fn total_macs(&self) -> u64 {
        self.units.iter().map(|u| u.macs()).sum()
    }

    /// Total parameters of the whole subnet.
    pub fn total_params(&self) -> u64 {
        self.units.iter().flat_map(|u| u.layers.iter()).map(|l| l.params).sum()
    }

    /// Input tensor bytes (f32 NCHW at the config resolution).
    pub fn input_bytes(&self) -> u64 {
        (3 * self.config.resolution * self.config.resolution * 4) as u64
    }
}

/// Lowers one elastic stage to an [`ExecUnit`].
fn lower_stage(
    si: usize,
    choice: &BlockChoice,
    in_shape: (usize, usize, usize),
) -> (ExecUnit, (usize, usize, usize)) {
    let width = STAGE_WIDTHS[si];
    let stride = STAGE_STRIDES[si];
    let mut b = SpecBuilder::new(format!("stage{si}"), in_shape);
    let mut c_in = in_shape.0;
    for blk in 0..choice.depth {
        let p = format!("stage{si}.block{blk}");
        let mid = c_in * choice.expand;
        let s = if blk == 0 { stride } else { 1 };
        b.conv(&format!("{p}.expand"), mid, 1, 1, 0);
        b.dwconv(&format!("{p}.dw"), choice.kernel, s, choice.kernel / 2);
        b.conv(&format!("{p}.project"), width, 1, 1, 0);
        if s == 1 && c_in == width {
            b.elementwise(&format!("{p}.add"));
        }
        c_in = width;
    }
    let out_shape = b.shape();
    let model = b.build(0.0);
    let unit = ExecUnit {
        name: format!("stage{si}"),
        layers: model.layers,
        partition: choice.partition,
        quant: choice.quant,
        out_shape,
    };
    (unit, out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn max_config_macs_in_mobilenet_range() {
        let s = SearchSpace::default();
        let spec = SubnetSpec::lower(&s.max_config());
        let macs = spec.total_macs();
        // The largest subnet should be a few hundred MMACs (OFA-style nets
        // top out around 300–600 MMACs).
        assert!((150_000_000..900_000_000).contains(&macs), "max subnet {macs} MACs");
    }

    #[test]
    fn min_config_is_much_cheaper() {
        let s = SearchSpace::default();
        let max = SubnetSpec::lower(&s.max_config()).total_macs();
        let min = SubnetSpec::lower(&s.min_config()).total_macs();
        assert!(min * 3 < max, "min {min} vs max {max}");
    }

    #[test]
    fn unit_structure() {
        let s = SearchSpace::default();
        let spec = SubnetSpec::lower(&s.max_config());
        assert_eq!(spec.units.len(), 7); // stem + 5 stages + head
        assert_eq!(spec.units[0].name, "stem");
        assert_eq!(spec.units[6].name, "head");
        assert_eq!(spec.units[6].out_shape, (1000, 1, 1));
        // Stage output widths match the plan.
        for (i, w) in STAGE_WIDTHS.iter().enumerate() {
            assert_eq!(spec.units[i + 1].out_shape.0, *w);
        }
    }

    #[test]
    fn depth_controls_block_count() {
        let s = SearchSpace::default();
        let mut cfg = s.min_config();
        cfg.stages[0].depth = 4;
        let spec = SubnetSpec::lower(&cfg);
        let stage0_blocks = spec.units[1].layers.iter().filter(|l| l.name.ends_with(".dw")).count();
        assert_eq!(stage0_blocks, 4);
    }

    #[test]
    fn quant_shrinks_wire_bytes() {
        let s = SearchSpace::default();
        let mut cfg = s.min_config();
        let full = SubnetSpec::lower(&cfg).units[1].out_wire_bytes();
        cfg.stages[0].quant = BitWidth::B8;
        let quantized = SubnetSpec::lower(&cfg).units[1].out_wire_bytes();
        assert!(quantized * 3 < full, "{quantized} vs {full}");
    }

    #[test]
    fn partitioning_divides_tile_macs() {
        let s = SearchSpace::default();
        let mut cfg = s.min_config();
        let whole = SubnetSpec::lower(&cfg).units[1].macs_per_tile();
        cfg.stages[0].partition = GridSpec::new(2, 2);
        let tiled = SubnetSpec::lower(&cfg).units[1].macs_per_tile();
        // 4 tiles with 12% seam overhead → ≈ 0.28× of the whole.
        assert!((tiled as f64) < whole as f64 * 0.35, "{tiled} vs {whole}");
        assert!((tiled as f64) > whole as f64 * 0.25);
    }

    #[test]
    fn random_configs_lower_without_panic() {
        let s = SearchSpace::default();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let cfg = s.sample(&mut rng);
            let spec = SubnetSpec::lower(&cfg);
            assert!(spec.total_macs() > 0);
            assert!(spec.total_params() > 1_000_000); // head FCs alone exceed this
        }
    }

    #[test]
    fn lowering_is_deterministic_and_cache_transparent() {
        // The memoized path must return identical specs across calls and
        // must not leak one config's partition/quant into another's.
        let s = SearchSpace::default();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let a = s.sample(&mut rng);
            let s1 = SubnetSpec::lower(&a);
            let s2 = SubnetSpec::lower(&a);
            assert_eq!(s1.total_macs(), s2.total_macs());
            for (u1, u2) in s1.units.iter().zip(&s2.units) {
                assert_eq!(u1.partition, u2.partition);
                assert_eq!(u1.quant, u2.quant);
                assert_eq!(u1.layers.len(), u2.layers.len());
            }
            // A second config sharing the architecture but not the
            // partition must get its own stamps.
            let mut b = a.clone();
            b.stages[0].partition = GridSpec::new(2, 2);
            b.stages[0].quant = BitWidth::B8;
            let sb = SubnetSpec::lower(&b);
            assert_eq!(sb.units[1].partition, GridSpec::new(2, 2));
            assert_eq!(sb.units[1].quant, BitWidth::B8);
            // And the original is unaffected by the sibling's stamps.
            let s3 = SubnetSpec::lower(&a);
            assert_eq!(s3.units[1].partition, a.stages[0].partition);
            assert_eq!(s3.units[1].quant, a.stages[0].quant);
        }
    }

    #[test]
    fn resolution_scales_stage_shapes() {
        let s = SearchSpace::default();
        let mut cfg = s.max_config();
        cfg.resolution = 160;
        let spec = SubnetSpec::lower(&cfg);
        // 160 / 2^5 (stem + 4 striding stages) = 5.
        assert_eq!(spec.units[5].out_shape.1, 5);
    }
}
