//! OFA-style elastic weight stores.
//!
//! A store holds the *maximal* weight tensor; subnets use a slice of it —
//! the first `k` output/input channels and a centred `k×k` crop of the
//! kernel (exactly the Once-for-All sharing scheme). Gradients computed on
//! a slice are scattered back into the store, so all subnets train the same
//! shared weights.

use murmuration_tensor::{Shape, Tensor};
use rand::Rng;

/// Elastic convolution weight store `[c_out_max, c_in_max, k_max, k_max]`.
#[derive(Clone, Debug)]
pub struct ElasticConv {
    pub weight: Tensor,
    pub grad: Tensor,
    pub bias: Tensor,
    pub bias_grad: Tensor,
    c_out_max: usize,
    c_in_max: usize,
    k_max: usize,
}

impl ElasticConv {
    /// Kaiming-initialized store.
    pub fn new<R: Rng>(c_out_max: usize, c_in_max: usize, k_max: usize, rng: &mut R) -> Self {
        assert!(k_max % 2 == 1, "elastic kernels must be odd");
        let shape = Shape::nchw(c_out_max, c_in_max, k_max, k_max);
        let weight = Tensor::kaiming(shape.clone(), c_in_max * k_max * k_max, rng);
        ElasticConv {
            grad: Tensor::zeros(shape),
            weight,
            bias: Tensor::zeros(Shape::d1(c_out_max)),
            bias_grad: Tensor::zeros(Shape::d1(c_out_max)),
            c_out_max,
            c_in_max,
            k_max,
        }
    }

    /// Maximal dimensions `(c_out, c_in, k)`.
    pub fn max_dims(&self) -> (usize, usize, usize) {
        (self.c_out_max, self.c_in_max, self.k_max)
    }

    fn check(&self, c_out: usize, c_in: usize, k: usize) {
        assert!(c_out <= self.c_out_max && c_out > 0, "c_out {c_out}");
        assert!(c_in <= self.c_in_max && c_in > 0, "c_in {c_in}");
        assert!(k <= self.k_max && k % 2 == 1, "kernel {k}");
    }

    /// Extracts the `[c_out, c_in, k, k]` slice (first channels, centred
    /// kernel crop) plus the bias slice.
    pub fn extract(&self, c_out: usize, c_in: usize, k: usize) -> (Tensor, Tensor) {
        self.check(c_out, c_in, k);
        let off = (self.k_max - k) / 2;
        let mut w = Tensor::zeros(Shape::nchw(c_out, c_in, k, k));
        for co in 0..c_out {
            for ci in 0..c_in {
                for y in 0..k {
                    for x in 0..k {
                        *w.at_mut(co, ci, y, x) = self.weight.at(co, ci, y + off, x + off);
                    }
                }
            }
        }
        let b = Tensor::from_vec(Shape::d1(c_out), self.bias.data()[..c_out].to_vec());
        (w, b)
    }

    /// Accumulates a slice gradient back into the store (adjoint of
    /// [`extract`](Self::extract)).
    pub fn scatter_grad(&mut self, wg: &Tensor, bg: &Tensor, c_out: usize, c_in: usize, k: usize) {
        self.check(c_out, c_in, k);
        assert_eq!(wg.shape(), &Shape::nchw(c_out, c_in, k, k), "grad shape");
        let off = (self.k_max - k) / 2;
        for co in 0..c_out {
            for ci in 0..c_in {
                for y in 0..k {
                    for x in 0..k {
                        *self.grad.at_mut(co, ci, y + off, x + off) += wg.at(co, ci, y, x);
                    }
                }
            }
        }
        for co in 0..c_out {
            self.bias_grad.data_mut()[co] += bg.data()[co];
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
        self.bias_grad.data_mut().fill(0.0);
    }

    /// Plain SGD update on the store.
    pub fn sgd_step(&mut self, lr: f32) {
        self.weight.axpy(-lr, &self.grad.clone());
        self.bias.axpy(-lr, &self.bias_grad.clone());
    }
}

/// Elastic linear store `[out_max, in_max]` (first-rows/first-cols slicing).
#[derive(Clone, Debug)]
pub struct ElasticLinear {
    pub weight: Tensor,
    pub grad: Tensor,
    pub bias: Tensor,
    pub bias_grad: Tensor,
    out_max: usize,
    in_max: usize,
}

impl ElasticLinear {
    /// Kaiming-initialized store.
    pub fn new<R: Rng>(out_max: usize, in_max: usize, rng: &mut R) -> Self {
        let weight = Tensor::kaiming(Shape::d2(out_max, in_max), in_max, rng);
        ElasticLinear {
            grad: Tensor::zeros(Shape::d2(out_max, in_max)),
            weight,
            bias: Tensor::zeros(Shape::d1(out_max)),
            bias_grad: Tensor::zeros(Shape::d1(out_max)),
            out_max,
            in_max,
        }
    }

    /// Extracts the `[out, in]` top-left slice plus bias.
    pub fn extract(&self, out: usize, inp: usize) -> (Tensor, Tensor) {
        assert!(out <= self.out_max && inp <= self.in_max);
        let mut w = Tensor::zeros(Shape::d2(out, inp));
        for o in 0..out {
            let src = o * self.in_max;
            w.data_mut()[o * inp..(o + 1) * inp]
                .copy_from_slice(&self.weight.data()[src..src + inp]);
        }
        let b = Tensor::from_vec(Shape::d1(out), self.bias.data()[..out].to_vec());
        (w, b)
    }

    /// Accumulates a slice gradient back into the store.
    pub fn scatter_grad(&mut self, wg: &Tensor, bg: &Tensor, out: usize, inp: usize) {
        assert_eq!(wg.shape(), &Shape::d2(out, inp));
        for o in 0..out {
            let dst = o * self.in_max;
            for i in 0..inp {
                self.grad.data_mut()[dst + i] += wg.data()[o * inp + i];
            }
        }
        for o in 0..out {
            self.bias_grad.data_mut()[o] += bg.data()[o];
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
        self.bias_grad.data_mut().fill(0.0);
    }

    /// Plain SGD update on the store.
    pub fn sgd_step(&mut self, lr: f32) {
        self.weight.axpy(-lr, &self.grad.clone());
        self.bias.axpy(-lr, &self.bias_grad.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn extract_center_crops_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let store = ElasticConv::new(4, 4, 5, &mut rng);
        let (w3, _) = store.extract(2, 3, 3);
        assert_eq!(w3.shape(), &Shape::nchw(2, 3, 3, 3));
        // Center crop: slice (1..4) of the 5x5 kernel.
        assert_eq!(w3.at(1, 2, 0, 0), store.weight.at(1, 2, 1, 1));
        assert_eq!(w3.at(0, 0, 2, 2), store.weight.at(0, 0, 3, 3));
    }

    #[test]
    fn scatter_is_adjoint_of_extract() {
        // <extract(W), G> == <W, scatter(G)> for any G.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ElasticConv::new(3, 3, 5, &mut rng);
        let g = Tensor::rand_uniform(Shape::nchw(2, 2, 3, 3), 1.0, &mut rng);
        let bg = Tensor::rand_uniform(Shape::d1(2), 1.0, &mut rng);
        let (w, _) = store.extract(2, 2, 3);
        let lhs: f32 = w.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        store.zero_grad();
        store.scatter_grad(&g, &bg, 2, 2, 3);
        let rhs: f32 = store.weight.data().iter().zip(store.grad.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn subnet_slices_share_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ElasticConv::new(4, 4, 5, &mut rng);
        // Update via the small slice; the big slice must see the change.
        let g = Tensor::full(Shape::nchw(2, 2, 3, 3), 1.0);
        let bg = Tensor::zeros(Shape::d1(2));
        let before = store.weight.at(0, 0, 1, 1);
        store.scatter_grad(&g, &bg, 2, 2, 3);
        store.sgd_step(0.5);
        let (w5, _) = store.extract(4, 4, 5);
        assert!((w5.at(0, 0, 1, 1) - (before - 0.5)).abs() < 1e-6);
        // A position outside the small slice is untouched.
        assert_eq!(w5.at(3, 3, 0, 0), store.weight.at(3, 3, 0, 0));
    }

    #[test]
    fn linear_store_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ElasticLinear::new(5, 6, &mut rng);
        let (w, b) = store.extract(3, 4);
        assert_eq!(w.shape(), &Shape::d2(3, 4));
        assert_eq!(b.numel(), 3);
        assert_eq!(w.data()[4 + 2], store.weight.data()[6 + 2]);
        let g = Tensor::full(Shape::d2(3, 4), 2.0);
        let bg = Tensor::full(Shape::d1(3), 1.0);
        store.scatter_grad(&g, &bg, 3, 4);
        assert_eq!(store.grad.data()[0], 2.0);
        assert_eq!(store.grad.data()[4], 0.0); // column 4 untouched
        assert_eq!(store.bias_grad.data()[2], 1.0);
        assert_eq!(store.bias_grad.data()[3], 0.0);
    }
}
