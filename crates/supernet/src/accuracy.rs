//! Calibrated analytic accuracy model.
//!
//! The paper drives RL policy training from an accuracy *predictor*, not
//! live ImageNet evaluation; this model plays that role. It is calibrated
//! (DESIGN.md §6) to the OFA/MobileNetV3 operating range: the smallest
//! subnet ≈ 71.5 % top-1, the largest ≈ 79.5 %, with FDSP-partitioning and
//! quantization penalties matching the qualitative claims in §4.1 of the
//! paper (small accuracy cost, more latency/accuracy flexibility).

use crate::space::SubnetConfig;
use murmuration_tensor::quant::BitWidth;

/// Analytic subnet-accuracy model (ImageNet-scale top-1, %).
#[derive(Clone, Copy, Debug, Default)]
pub struct AccuracyModel;

/// Accuracy of the smallest full-precision, unpartitioned subnet.
const BASE_TOP1: f32 = 71.5;
/// Accuracy span from the smallest to the largest subnet.
const RANGE_TOP1: f32 = 7.6;
/// MACs of the default space's min/max configs (asserted in tests — the
/// normalization anchors of the compute→accuracy curve).
const MIN_MACS: f32 = 63.0e6;
const MAX_MACS: f32 = 564.0e6;

impl AccuracyModel {
    /// Shared instance.
    pub fn new() -> Self {
        AccuracyModel
    }

    /// Predicted top-1 accuracy (%) of a subnet configuration.
    ///
    /// Accuracy follows the compute budget (log-MACs, the empirical
    /// OFA-family scaling: equal accuracy per multiplicative compute
    /// step), with a small receptive-field bonus for larger depthwise
    /// kernels, minus the FDSP-partitioning and quantization penalties.
    /// This pins the accuracy↔latency frontier to the paper's operating
    /// points: ~75 % costs ~165 MMACs (≈ 300 ms on a Pi 4), ~79 % needs a
    /// near-maximal subnet.
    pub fn predict(&self, cfg: &SubnetConfig) -> f32 {
        let macs = crate::spec::SubnetSpec::lower(cfg).total_macs() as f32;
        let t = ((macs / MIN_MACS).ln() / (MAX_MACS / MIN_MACS).ln()).clamp(0.0, 1.0);
        let mut acc = BASE_TOP1 + RANGE_TOP1 * t;
        for s in &cfg.stages {
            acc += kernel_bonus(s.kernel);
            acc -= partition_penalty(s.partition.tiles()) + quant_penalty(s.quant);
        }
        // Deterministic sub-0.1% interaction jitter so distinct configs
        // rarely tie exactly (keeps search landscapes non-degenerate).
        acc + config_jitter(cfg)
    }

    /// Accuracy of the maximal subnet (useful as a normalization anchor).
    pub fn max_accuracy(&self, space: &crate::space::SearchSpace) -> f32 {
        self.predict(&space.max_config())
    }
}

/// Receptive-field bonus of larger depthwise kernels (beyond their MACs).
fn kernel_bonus(k: usize) -> f32 {
    match k {
        0..=3 => 0.0,
        4..=5 => 0.04,
        _ => 0.08,
    }
}

/// FDSP zero-padding seam penalty per stage.
fn partition_penalty(tiles: usize) -> f32 {
    match tiles {
        0 | 1 => 0.0,
        2 => 0.08,
        _ => 0.20,
    }
}

/// Feature-map quantization penalty per stage boundary.
fn quant_penalty(q: BitWidth) -> f32 {
    match q {
        BitWidth::B32 => 0.0,
        BitWidth::B16 => 0.01,
        BitWidth::B8 => 0.08,
    }
}

/// Deterministic per-config jitter in (−0.05, 0.05).
fn config_jitter(cfg: &SubnetConfig) -> f32 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(cfg.resolution as u64);
    for s in &cfg.stages {
        mix(s.kernel as u64);
        mix(s.depth as u64);
        mix(s.expand as u64);
        mix((s.partition.rows * 16 + s.partition.cols) as u64);
        mix(s.quant.bits() as u64);
    }
    ((h % 1000) as f32 / 1000.0 - 0.5) * 0.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;
    use murmuration_tensor::tile::GridSpec;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn range_matches_calibration() {
        let m = AccuracyModel::new();
        let s = SearchSpace::default();
        let max = m.predict(&s.max_config());
        let min = m.predict(&s.min_config());
        assert!((79.0..80.0).contains(&max), "max {max}");
        assert!((71.0..72.0).contains(&min), "min {min}");
    }

    #[test]
    fn partitioning_costs_accuracy() {
        let m = AccuracyModel::new();
        let s = SearchSpace::default();
        let base = s.max_config();
        let mut part = base.clone();
        for st in &mut part.stages {
            st.partition = GridSpec::new(2, 2);
        }
        let drop = m.predict(&base) - m.predict(&part);
        // 5 stages × 0.20 ± jitter.
        assert!((0.8..1.2).contains(&drop), "drop {drop}");
    }

    #[test]
    fn quantization_costs_less_than_partitioning() {
        let m = AccuracyModel::new();
        let s = SearchSpace::default();
        let base = s.max_config();
        let mut q8 = base.clone();
        for st in &mut q8.stages {
            st.quant = murmuration_tensor::quant::BitWidth::B8;
        }
        let drop = m.predict(&base) - m.predict(&q8);
        assert!((0.3..0.6).contains(&drop), "drop {drop}");
    }

    #[test]
    fn monotone_in_each_architecture_dimension() {
        let m = AccuracyModel::new();
        let s = SearchSpace::default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let cfg = s.sample(&mut rng);
            // Growing any single architecture dimension never hurts by more
            // than the jitter band.
            let base = m.predict(&cfg);
            let mut bigger = cfg.clone();
            bigger.resolution = 224;
            for st in &mut bigger.stages {
                st.kernel = 7;
                st.depth = 4;
                st.expand = 6;
            }
            assert!(m.predict(&bigger) >= base - 0.1, "bigger must not be worse");
        }
    }

    #[test]
    fn jitter_is_deterministic() {
        let m = AccuracyModel::new();
        let s = SearchSpace::default();
        let cfg = s.max_config();
        assert_eq!(m.predict(&cfg), m.predict(&cfg));
    }
}
