//! # murmuration-supernet
//!
//! Stage 1 of Murmuration: the *partition-ready one-shot NAS supernet*.
//!
//! The paper trains a MobileNetV3-based supernet whose per-block search
//! space covers spatial partitioning (1×1…2×2 FDSP grids), feature-map
//! quantization (32/16/8-bit), input resolution (224…160), block depth
//! (4…2) and kernel size (7…3). This crate provides:
//!
//! * [`space`] — the search space and [`space::SubnetConfig`] type; ~10⁹
//!   configurations for the default 5-stage space.
//! * [`spec`] — lowering a config to execution units with exact per-layer
//!   MACs/shapes (shared with the baselines' planner machinery).
//! * [`accuracy`] — the calibrated analytic ImageNet-scale accuracy model
//!   (the paper also drives RL training from an accuracy predictor rather
//!   than live evaluation).
//! * [`predictor`] — a learnable MLP accuracy predictor trained against the
//!   analytic model, mirroring the paper's predictor component.
//! * [`elastic`] — OFA-style weight-sharing stores (first-k channel slices,
//!   center-cropped kernels) with gradient scatter, so weight sharing is
//!   real, not simulated.
//! * [`train`] — a demonstration supernet trained end-to-end on the
//!   synthetic dataset with progressive shrinking, validating the one-shot
//!   NAS mechanics on hardware we actually have.

pub mod accuracy;
pub mod elastic;
pub mod predictor;
pub mod space;
pub mod spec;
pub mod train;

pub use accuracy::AccuracyModel;
pub use space::{BlockChoice, SearchSpace, SubnetConfig};
pub use spec::{ExecUnit, SubnetSpec};
