//! Learnable MLP accuracy predictor.
//!
//! The paper uses "an accuracy predictor … for accuracy prediction during
//! RL policy training". This module trains a small MLP on (config features
//! → accuracy) pairs produced by the analytic model, demonstrating that the
//! config → accuracy mapping is learnable and cheap to evaluate at
//! decision time.

use crate::accuracy::AccuracyModel;
use crate::space::{SearchSpace, SubnetConfig};
use murmuration_nn::layers::{Linear, ReLU};
use murmuration_nn::module::{Module, Sequential};
use murmuration_nn::optim::Adam;
use murmuration_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Feature count: 1 resolution + 5 stages × 5 scalar features.
pub const FEATURES: usize = 26;

/// Encodes a config as a normalized feature vector.
pub fn encode(cfg: &SubnetConfig) -> Vec<f32> {
    let mut f = Vec::with_capacity(FEATURES);
    f.push(cfg.resolution as f32 / 224.0);
    for s in &cfg.stages {
        f.push(s.kernel as f32 / 7.0);
        f.push(s.depth as f32 / 4.0);
        f.push(s.expand as f32 / 6.0);
        f.push(s.partition.tiles() as f32 / 4.0);
        f.push(s.quant.bits() as f32 / 32.0);
    }
    f
}

/// MLP accuracy predictor (26 → 48 → 24 → 1, predicting `(top1 − 75) %`).
pub struct AccuracyPredictor {
    net: Sequential,
}

impl AccuracyPredictor {
    /// Untrained predictor.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new()
            .push(Linear::new(FEATURES, 48, &mut rng))
            .push(ReLU::new())
            .push(Linear::new(48, 24, &mut rng))
            .push(ReLU::new())
            .push(Linear::new(24, 1, &mut rng));
        AccuracyPredictor { net }
    }

    /// Predicted top-1 accuracy (%).
    pub fn predict(&mut self, cfg: &SubnetConfig) -> f32 {
        let x = Tensor::from_vec(Shape::d2(1, FEATURES), encode(cfg));
        let y = self.net.forward(&x, false);
        y.data()[0] + 75.0
    }

    /// Trains on `n_samples` random configs labelled by the analytic model;
    /// returns the final epoch's mean absolute error (%).
    #[allow(clippy::needless_range_loop)] // indexing parallel pred/target rows
    pub fn fit(&mut self, space: &SearchSpace, n_samples: usize, epochs: usize, seed: u64) -> f32 {
        let model = AccuracyModel::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<(Vec<f32>, f32)> = (0..n_samples)
            .map(|_| {
                let cfg = space.sample(&mut rng);
                (encode(&cfg), model.predict(&cfg) - 75.0)
            })
            .collect();
        let mut opt = Adam::new(2e-3);
        let batch = 32.min(n_samples);
        let mut mae = f32::MAX;
        for _ in 0..epochs {
            let mut abs_err = 0.0;
            let mut count = 0;
            for chunk in samples.chunks(batch) {
                let b = chunk.len();
                let mut x = Tensor::zeros(Shape::d2(b, FEATURES));
                let mut t = vec![0.0f32; b];
                for (i, (f, y)) in chunk.iter().enumerate() {
                    x.data_mut()[i * FEATURES..(i + 1) * FEATURES].copy_from_slice(f);
                    t[i] = *y;
                }
                self.net.zero_grad();
                let pred = self.net.forward(&x, true);
                // MSE gradient: 2(p − t)/b.
                let mut d = Tensor::zeros(Shape::d2(b, 1));
                for i in 0..b {
                    let e = pred.data()[i] - t[i];
                    abs_err += e.abs();
                    count += 1;
                    d.data_mut()[i] = 2.0 * e / b as f32;
                }
                self.net.backward(&d);
                opt.step(&mut self.net);
            }
            mae = abs_err / count as f32;
        }
        mae
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_bounded_and_sized() {
        let space = SearchSpace::default();
        let f = encode(&space.max_config());
        assert_eq!(f.len(), FEATURES);
        assert!(f.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn predictor_learns_the_accuracy_surface() {
        let space = SearchSpace::default();
        let mut p = AccuracyPredictor::new(1);
        let mae = p.fit(&space, 400, 60, 2);
        assert!(mae < 0.5, "train MAE {mae} %");
        // Held-out check.
        let model = AccuracyModel::new();
        let mut rng = StdRng::seed_from_u64(99);
        let mut err = 0.0;
        let n = 50;
        for _ in 0..n {
            let cfg = space.sample(&mut rng);
            err += (p.predict(&cfg) - model.predict(&cfg)).abs();
        }
        let holdout = err / n as f32;
        assert!(holdout < 1.0, "holdout MAE {holdout} %");
    }

    #[test]
    fn predictor_orders_extremes_correctly() {
        let space = SearchSpace::default();
        let mut p = AccuracyPredictor::new(3);
        p.fit(&space, 500, 80, 4);
        let hi = p.predict(&space.max_config());
        let lo = p.predict(&space.min_config());
        assert!(hi > lo + 3.0, "max {hi} vs min {lo}");
    }
}
