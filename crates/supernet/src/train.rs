//! Demonstration supernet trained end-to-end with progressive shrinking.
//!
//! ImageNet-scale supernet training is outside this environment's budget;
//! this module proves the one-shot-NAS *mechanics* on the synthetic
//! dataset: a weight-shared elastic network (elastic kernel 3/5, elastic
//! width, elastic depth) trained with progressive shrinking, after which
//! every subnet slice classifies well above chance — the property the
//! paper's Stage 1 relies on.

use crate::elastic::{ElasticConv, ElasticLinear};
use murmuration_nn::data::SyntheticDataset;
use murmuration_nn::layers::{Conv2d, Flatten, GlobalAvgPool, Linear, ReLU};
use murmuration_nn::loss::{accuracy, softmax_cross_entropy};
use murmuration_nn::module::Module;
use murmuration_tensor::conv::Conv2dParams;
use murmuration_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Channel width of the demo supernet trunk.
const TRUNK: usize = 6;
/// Maximal mid-block width.
const MID_MAX: usize = 6;
/// Maximal elastic kernel.
const K_MAX: usize = 5;
/// Maximal block count.
const BLOCKS_MAX: usize = 2;

/// A demo-subnet selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DemoChoice {
    /// Elastic kernel of each block's first conv: 3 or 5.
    pub kernel: usize,
    /// Mid width: 3 ..= MID_MAX.
    pub width: usize,
    /// Active blocks: 1 ..= BLOCKS_MAX.
    pub blocks: usize,
}

impl DemoChoice {
    /// Largest subnet.
    pub fn max() -> Self {
        DemoChoice { kernel: K_MAX, width: MID_MAX, blocks: BLOCKS_MAX }
    }

    /// Smallest subnet.
    pub fn min() -> Self {
        DemoChoice { kernel: 3, width: 3, blocks: 1 }
    }

    /// All choices, for exhaustive evaluation.
    pub fn all() -> Vec<DemoChoice> {
        let mut v = Vec::new();
        for &kernel in &[3, 5] {
            for &width in &[3, MID_MAX] {
                for &blocks in &[1, BLOCKS_MAX] {
                    v.push(DemoChoice { kernel, width, blocks });
                }
            }
        }
        v
    }
}

/// The weight-shared demonstration supernet.
pub struct DemoSupernet {
    stem: ElasticConv,                       // 3 → TRUNK, fixed k3
    blocks: Vec<(ElasticConv, ElasticConv)>, // (TRUNK→mid k-elastic, mid→TRUNK k3)
    head: ElasticLinear,                     // TRUNK → classes
    classes: usize,
}

impl DemoSupernet {
    /// Fresh supernet for `classes`-way classification.
    pub fn new(classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        DemoSupernet {
            stem: ElasticConv::new(TRUNK, 3, 3, &mut rng),
            blocks: (0..BLOCKS_MAX)
                .map(|_| {
                    (
                        ElasticConv::new(MID_MAX, TRUNK, K_MAX, &mut rng),
                        ElasticConv::new(TRUNK, MID_MAX, 3, &mut rng),
                    )
                })
                .collect(),
            head: ElasticLinear::new(classes, TRUNK, &mut rng),
            classes,
        }
    }

    /// Builds the concrete module stack for a choice by slicing the stores.
    fn materialize(&self, c: DemoChoice, rng: &mut StdRng) -> Vec<Box<dyn Module>> {
        let mut mods: Vec<Box<dyn Module>> = Vec::new();
        let push_conv = |mods: &mut Vec<Box<dyn Module>>,
                         store: &ElasticConv,
                         c_out: usize,
                         c_in: usize,
                         k: usize,
                         rng: &mut StdRng| {
            let (w, b) = store.extract(c_out, c_in, k);
            let mut conv = Conv2d::new(c_in, c_out, Conv2dParams::same(k), true, rng);
            conv.weight.value = w;
            conv.bias.as_mut().unwrap().value = b;
            mods.push(Box::new(conv));
            mods.push(Box::new(ReLU::new()));
        };
        push_conv(&mut mods, &self.stem, TRUNK, 3, 3, rng);
        for (c1, c2) in self.blocks.iter().take(c.blocks) {
            push_conv(&mut mods, c1, c.width, TRUNK, c.kernel, rng);
            push_conv(&mut mods, c2, TRUNK, c.width, 3, rng);
        }
        mods.push(Box::new(GlobalAvgPool::new()));
        mods.push(Box::new(Flatten::new()));
        let (w, b) = self.head.extract(self.classes, TRUNK);
        let mut lin = Linear::new(TRUNK, self.classes, rng);
        lin.weight.value = w;
        lin.bias.value = b;
        mods.push(Box::new(lin));
        mods
    }

    /// One SGD step on a batch under `choice`; returns (loss, batch acc).
    pub fn train_step(
        &mut self,
        x: &Tensor,
        targets: &[usize],
        choice: DemoChoice,
        lr: f32,
    ) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(0); // init-only; weights overwritten
        let mut mods = self.materialize(choice, &mut rng);
        // Forward.
        let mut cur = x.clone();
        for m in &mut mods {
            cur = m.forward(&cur, true);
        }
        let (loss, dlogits) = softmax_cross_entropy(&cur, targets);
        let acc = accuracy(&cur, targets);
        // Backward.
        let mut d = dlogits;
        for m in mods.iter_mut().rev() {
            d = m.backward(&d);
        }
        // Scatter gradients back and update the shared stores.
        self.zero_grad();
        let mut conv_grads: Vec<(Tensor, Tensor)> = Vec::new();
        let mut lin_grad: Option<(Tensor, Tensor)> = None;
        for m in &mut mods {
            match m.name() {
                "Conv2d" => {
                    let mut wg = None;
                    let mut bg = None;
                    m.visit_params(&mut |p| {
                        if wg.is_none() {
                            wg = Some(p.grad.clone());
                        } else {
                            bg = Some(p.grad.clone());
                        }
                    });
                    conv_grads.push((wg.unwrap(), bg.unwrap()));
                }
                "Linear" => {
                    let mut wg = None;
                    let mut bg = None;
                    m.visit_params(&mut |p| {
                        if wg.is_none() {
                            wg = Some(p.grad.clone());
                        } else {
                            bg = Some(p.grad.clone());
                        }
                    });
                    lin_grad = Some((wg.unwrap(), bg.unwrap()));
                }
                _ => {}
            }
        }
        let mut it = conv_grads.into_iter();
        let (wg, bg) = it.next().expect("stem grad");
        self.stem.scatter_grad(&wg, &bg, TRUNK, 3, 3);
        for (c1, c2) in self.blocks.iter_mut().take(choice.blocks) {
            let (wg, bg) = it.next().expect("block conv1 grad");
            c1.scatter_grad(&wg, &bg, choice.width, TRUNK, choice.kernel);
            let (wg, bg) = it.next().expect("block conv2 grad");
            c2.scatter_grad(&wg, &bg, TRUNK, choice.width, 3);
        }
        let (wg, bg) = lin_grad.expect("head grad");
        self.head.scatter_grad(&wg, &bg, self.classes, TRUNK);
        self.sgd_step(lr);
        (loss, acc)
    }

    /// One SGD step with the trunk executed under FDSP partitioning —
    /// ADCNN-style progressive fine-tuning that teaches the shared weights
    /// to tolerate zero-padded seams. Returns (loss, batch accuracy).
    pub fn train_step_fdsp(
        &mut self,
        x: &Tensor,
        targets: &[usize],
        choice: DemoChoice,
        grid: murmuration_tensor::tile::GridSpec,
        lr: f32,
    ) -> (f32, f32) {
        use murmuration_tensor::tile::{merge_fdsp, split_fdsp};
        let mut rng = StdRng::seed_from_u64(0);
        // Independent trunk replicas per tile (they share the same store
        // weights; gradients are summed back).
        let tiles = split_fdsp(x, grid);
        let n_tiles = tiles.len();
        let mut tile_mods: Vec<Vec<Box<dyn Module>>> = Vec::with_capacity(n_tiles);
        let mut tile_outs: Vec<Tensor> = Vec::with_capacity(n_tiles);
        let mut all_mods = self.materialize(choice, &mut rng);
        let trunk_len = all_mods.len() - 3;
        let mut head_mods: Vec<Box<dyn Module>> = all_mods.drain(trunk_len..).collect();
        for tile in tiles {
            let mut mods = self.materialize(choice, &mut rng);
            mods.truncate(trunk_len);
            let mut cur = tile;
            for m in &mut mods {
                cur = m.forward(&cur, true);
            }
            tile_mods.push(mods);
            tile_outs.push(cur);
        }
        let merged = merge_fdsp(&tile_outs, grid);
        let mut cur = merged.clone();
        for m in &mut head_mods {
            cur = m.forward(&cur, true);
        }
        let (loss, dlogits) = softmax_cross_entropy(&cur, targets);
        let acc = accuracy(&cur, targets);
        // Backward through the head, then split the gradient to the tiles.
        let mut d = dlogits;
        for m in head_mods.iter_mut().rev() {
            d = m.backward(&d);
        }
        let d_tiles = split_fdsp(&d, grid);
        for (mods, mut dt) in tile_mods.iter_mut().zip(d_tiles) {
            for m in mods.iter_mut().rev() {
                dt = m.backward(&dt);
            }
        }
        // Scatter gradients: trunk grads sum over tiles; head grads once.
        self.zero_grad();
        let read_grads = |m: &mut Box<dyn Module>| -> (Tensor, Tensor) {
            let mut wg = None;
            let mut bg = None;
            m.visit_params(&mut |p| {
                if wg.is_none() {
                    wg = Some(p.grad.clone());
                } else {
                    bg = Some(p.grad.clone());
                }
            });
            (wg.unwrap(), bg.unwrap())
        };
        for mods in &mut tile_mods {
            let mut convs = mods.iter_mut().filter(|m| m.name() == "Conv2d");
            let (wg, bg) = read_grads(convs.next().expect("stem"));
            self.stem.scatter_grad(&wg, &bg, TRUNK, 3, 3);
            for (c1, c2) in self.blocks.iter_mut().take(choice.blocks) {
                let (wg, bg) = read_grads(convs.next().expect("conv1"));
                c1.scatter_grad(&wg, &bg, choice.width, TRUNK, choice.kernel);
                let (wg, bg) = read_grads(convs.next().expect("conv2"));
                c2.scatter_grad(&wg, &bg, TRUNK, choice.width, 3);
            }
        }
        let lin = head_mods.iter_mut().find(|m| m.name() == "Linear").expect("head");
        let (wg, bg) = read_grads(lin);
        self.head.scatter_grad(&wg, &bg, self.classes, TRUNK);
        self.sgd_step(lr);
        (loss, acc)
    }

    /// Evaluation accuracy of a subnet choice on a batch.
    pub fn eval(&self, x: &Tensor, targets: &[usize], choice: DemoChoice) -> f32 {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mods = self.materialize(choice, &mut rng);
        let mut cur = x.clone();
        for m in &mut mods {
            cur = m.forward(&cur, false);
        }
        accuracy(&cur, targets)
    }

    /// Evaluation accuracy with the convolutional trunk executed under
    /// FDSP spatial partitioning: the input is split into a tile grid,
    /// every tile runs the trunk independently (zero-padded seams), and
    /// tiles merge before the classifier head — exactly how a distributed
    /// deployment executes a partitioned stage. Demonstrates the
    /// "partition-ready" property on real trained weights.
    pub fn eval_fdsp(
        &self,
        x: &Tensor,
        targets: &[usize],
        choice: DemoChoice,
        grid: murmuration_tensor::tile::GridSpec,
    ) -> f32 {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mods = self.materialize(choice, &mut rng);
        let trunk_len = mods.len() - 3; // GAP + Flatten + Linear stay whole
        let tiles = murmuration_tensor::tile::split_fdsp(x, grid);
        let outs: Vec<Tensor> = tiles
            .into_iter()
            .map(|mut t| {
                for m in mods[..trunk_len].iter_mut() {
                    t = m.forward(&t, false);
                }
                t
            })
            .collect();
        let mut cur = murmuration_tensor::tile::merge_fdsp(&outs, grid);
        for m in mods[trunk_len..].iter_mut() {
            cur = m.forward(&cur, false);
        }
        accuracy(&cur, targets)
    }

    fn zero_grad(&mut self) {
        self.stem.zero_grad();
        for (a, b) in &mut self.blocks {
            a.zero_grad();
            b.zero_grad();
        }
        self.head.zero_grad();
    }

    fn sgd_step(&mut self, lr: f32) {
        self.stem.sgd_step(lr);
        for (a, b) in &mut self.blocks {
            a.sgd_step(lr);
            b.sgd_step(lr);
        }
        self.head.sgd_step(lr);
    }
}

/// Progressive-shrinking schedule phases (which dimensions are elastic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShrinkPhase {
    /// Train the maximal network only.
    MaxOnly,
    /// Sample elastic kernel.
    Kernel,
    /// Sample elastic kernel + width.
    KernelWidth,
    /// Sample all dimensions.
    Full,
}

impl ShrinkPhase {
    /// Samples a training choice legal for this phase.
    pub fn sample_choice<R: Rng>(self, rng: &mut R) -> DemoChoice {
        let max = DemoChoice::max();
        match self {
            ShrinkPhase::MaxOnly => max,
            ShrinkPhase::Kernel => {
                DemoChoice { kernel: if rng.gen_bool(0.5) { 3 } else { 5 }, ..max }
            }
            ShrinkPhase::KernelWidth => DemoChoice {
                kernel: if rng.gen_bool(0.5) { 3 } else { 5 },
                width: if rng.gen_bool(0.5) { 3 } else { MID_MAX },
                ..max
            },
            ShrinkPhase::Full => DemoChoice {
                kernel: if rng.gen_bool(0.5) { 3 } else { 5 },
                width: if rng.gen_bool(0.5) { 3 } else { MID_MAX },
                blocks: if rng.gen_bool(0.5) { 1 } else { BLOCKS_MAX },
            },
        }
    }
}

/// Result of a progressive-shrinking run.
pub struct TrainReport {
    /// Eval accuracy of every subnet choice after training.
    pub per_choice_accuracy: Vec<(DemoChoice, f32)>,
}

/// Trains a demo supernet with progressive shrinking on a synthetic
/// dataset; returns final per-subnet accuracies.
pub fn progressive_shrinking(
    dataset: &SyntheticDataset,
    eval: &SyntheticDataset,
    steps_per_phase: usize,
    batch: usize,
    lr: f32,
    seed: u64,
) -> (DemoSupernet, TrainReport) {
    let mut net = DemoSupernet::new(dataset.classes, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let phases =
        [ShrinkPhase::MaxOnly, ShrinkPhase::Kernel, ShrinkPhase::KernelWidth, ShrinkPhase::Full];
    let mut cursor = 0usize;
    for phase in phases {
        for _ in 0..steps_per_phase {
            let (x, t) = dataset.batch(cursor, batch);
            cursor = (cursor + batch) % dataset.len();
            let choice = phase.sample_choice(&mut rng);
            net.train_step(&x, &t, choice, lr);
        }
    }
    let (ex, et) = eval.batch(0, eval.len());
    let per_choice_accuracy =
        DemoChoice::all().into_iter().map(|c| (c, net.eval(&ex, &et, c))).collect();
    (net, TrainReport { per_choice_accuracy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_nn::data::SyntheticSpec;

    fn tiny_dataset() -> (SyntheticDataset, SyntheticDataset) {
        SyntheticDataset::generate(
            SyntheticSpec {
                classes: 2,
                samples: 64,
                channels: 3,
                height: 10,
                width: 10,
                noise: 0.15,
            },
            11,
        )
        .split(5)
    }

    #[test]
    fn single_subnet_learns() {
        let (train, eval) = tiny_dataset();
        let mut net = DemoSupernet::new(2, 3);
        let mut cursor = 0;
        for _ in 0..60 {
            let (x, t) = train.batch(cursor, 8);
            cursor += 8;
            net.train_step(&x, &t, DemoChoice::max(), 0.05);
        }
        let (ex, et) = eval.batch(0, eval.len());
        let acc = net.eval(&ex, &et, DemoChoice::max());
        assert!(acc > 0.8, "max subnet acc {acc}");
    }

    #[test]
    fn progressive_shrinking_makes_all_subnets_work() {
        let (train, eval) = tiny_dataset();
        let (_, report) = progressive_shrinking(&train, &eval, 45, 8, 0.05, 5);
        for (choice, acc) in &report.per_choice_accuracy {
            assert!(*acc > 0.7, "subnet {choice:?} accuracy {acc} after shrinking (chance = 0.5)");
        }
    }

    #[test]
    fn choices_enumerate_eight_subnets() {
        assert_eq!(DemoChoice::all().len(), 8);
    }

    #[test]
    fn fdsp_finetuning_recovers_partitioned_accuracy() {
        // The paper's partition-ready claim on real weights, reproducing
        // ADCNN's progressive fine-tuning: monolithic training leaves a
        // seam-induced accuracy gap under 2x2 FDSP; fine-tuning *with*
        // FDSP recovers it.
        let (train, eval) = tiny_dataset();
        let grid = murmuration_tensor::tile::GridSpec::new(2, 2);
        let mut net = DemoSupernet::new(2, 7);
        let mut cursor = 0;
        for _ in 0..70 {
            let (x, t) = train.batch(cursor, 8);
            cursor += 8;
            net.train_step(&x, &t, DemoChoice::max(), 0.05);
        }
        let (ex, et) = eval.batch(0, eval.len());
        let whole = net.eval(&ex, &et, DemoChoice::max());
        let tiled_before = net.eval_fdsp(&ex, &et, DemoChoice::max(), grid);
        assert!(whole > 0.8, "monolithic accuracy {whole}");
        // FDSP fine-tuning phase.
        for _ in 0..50 {
            let (x, t) = train.batch(cursor, 8);
            cursor += 8;
            net.train_step_fdsp(&x, &t, DemoChoice::max(), grid, 0.05);
        }
        let tiled_after = net.eval_fdsp(&ex, &et, DemoChoice::max(), grid);
        assert!(
            tiled_after >= tiled_before,
            "fine-tuning must not hurt: {tiled_before} -> {tiled_after}"
        );
        assert!(
            tiled_after >= whole - 0.1,
            "fine-tuned FDSP accuracy {tiled_after} must approach monolithic {whole} \
             (before fine-tuning: {tiled_before})"
        );
    }
}
