//! Inception-V3 (Szegedy et al., CVPR '16) per-layer spec, following the
//! torchvision block layout.
//!
//! Parallel branches are flattened into consecutive layers: every branch is
//! costed from the block's input shape, and the block ends with a zero-cost
//! concat marker carrying the concatenated output shape. Cut points sit
//! only at block boundaries (cutting inside a concat would require shipping
//! multiple partial tensors).

use crate::builder::SpecBuilder;
use crate::{LayerSpec, ModelSpec, OpKind};

/// Published ImageNet top-1 for Inception-V3 (%).
pub const INCEPTION_V3_TOP1: f32 = 77.3;

/// Runs `f` as a branch starting from `input_shape`, appending its layers to
/// the main builder, and returns the branch's output channel count.
fn branch(
    b: &mut SpecBuilder,
    input_shape: (usize, usize, usize),
    f: impl FnOnce(&mut SpecBuilder),
) -> (usize, usize, usize) {
    b.set_shape(input_shape);
    f(b);
    b.shape()
}

/// Appends the concat marker and sets the running shape.
fn concat(b: &mut SpecBuilder, name: &str, shapes: &[(usize, usize, usize)]) {
    let (_, h, w) = shapes[0];
    for s in shapes {
        assert_eq!((s.1, s.2), (h, w), "{name}: concat spatial mismatch {shapes:?}");
    }
    let c: usize = shapes.iter().map(|s| s.0).sum();
    b.push_raw(LayerSpec {
        name: name.to_string(),
        op: OpKind::Elementwise,
        macs: (c * h * w) as u64 / 2,
        params: 0,
        out_shape: (c, h, w),
        cut_ok: false,
        spatial_ok: true,
    });
    b.cut();
}

fn inception_a(b: &mut SpecBuilder, p: &str, pool_feat: usize) {
    let inp = b.shape();
    let s1 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b1x1"), 64, 1, 1, 0);
    });
    let s2 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b5x5_1"), 48, 1, 1, 0);
        b.conv(&format!("{p}.b5x5_2"), 64, 5, 1, 2);
    });
    let s3 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b3x3dbl_1"), 64, 1, 1, 0);
        b.conv(&format!("{p}.b3x3dbl_2"), 96, 3, 1, 1);
        b.conv(&format!("{p}.b3x3dbl_3"), 96, 3, 1, 1);
    });
    let s4 = branch(b, inp, |b| {
        b.pool(&format!("{p}.pool"), 3, 1, 1);
        b.conv(&format!("{p}.bpool"), pool_feat, 1, 1, 0);
    });
    concat(b, &format!("{p}.concat"), &[s1, s2, s3, s4]);
}

fn inception_b(b: &mut SpecBuilder, p: &str) {
    let inp = b.shape();
    let s1 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b3x3"), 384, 3, 2, 0);
    });
    let s2 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b3x3dbl_1"), 64, 1, 1, 0);
        b.conv(&format!("{p}.b3x3dbl_2"), 96, 3, 1, 1);
        b.conv(&format!("{p}.b3x3dbl_3"), 96, 3, 2, 0);
    });
    let s3 = branch(b, inp, |b| {
        b.pool(&format!("{p}.pool"), 3, 2, 0);
    });
    concat(b, &format!("{p}.concat"), &[s1, s2, s3]);
}

fn inception_c(b: &mut SpecBuilder, p: &str, c7: usize) {
    let inp = b.shape();
    let s1 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b1x1"), 192, 1, 1, 0);
    });
    let s2 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b7x7_1"), c7, 1, 1, 0);
        b.conv_rect(&format!("{p}.b7x7_2"), c7, 1, 7, 1, 0, 3);
        b.conv_rect(&format!("{p}.b7x7_3"), 192, 7, 1, 1, 3, 0);
    });
    let s3 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b7x7dbl_1"), c7, 1, 1, 0);
        b.conv_rect(&format!("{p}.b7x7dbl_2"), c7, 7, 1, 1, 3, 0);
        b.conv_rect(&format!("{p}.b7x7dbl_3"), c7, 1, 7, 1, 0, 3);
        b.conv_rect(&format!("{p}.b7x7dbl_4"), c7, 7, 1, 1, 3, 0);
        b.conv_rect(&format!("{p}.b7x7dbl_5"), 192, 1, 7, 1, 0, 3);
    });
    let s4 = branch(b, inp, |b| {
        b.pool(&format!("{p}.pool"), 3, 1, 1);
        b.conv(&format!("{p}.bpool"), 192, 1, 1, 0);
    });
    concat(b, &format!("{p}.concat"), &[s1, s2, s3, s4]);
}

fn inception_d(b: &mut SpecBuilder, p: &str) {
    let inp = b.shape();
    let s1 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b3x3_1"), 192, 1, 1, 0);
        b.conv(&format!("{p}.b3x3_2"), 320, 3, 2, 0);
    });
    let s2 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b7x7x3_1"), 192, 1, 1, 0);
        b.conv_rect(&format!("{p}.b7x7x3_2"), 192, 1, 7, 1, 0, 3);
        b.conv_rect(&format!("{p}.b7x7x3_3"), 192, 7, 1, 1, 3, 0);
        b.conv(&format!("{p}.b7x7x3_4"), 192, 3, 2, 0);
    });
    let s3 = branch(b, inp, |b| {
        b.pool(&format!("{p}.pool"), 3, 2, 0);
    });
    concat(b, &format!("{p}.concat"), &[s1, s2, s3]);
}

fn inception_e(b: &mut SpecBuilder, p: &str) {
    let inp = b.shape();
    let s1 = branch(b, inp, |b| {
        b.conv(&format!("{p}.b1x1"), 320, 1, 1, 0);
    });
    // 3x3 branch splits into 1x3 + 3x1 after a shared 1x1.
    let s2a = branch(b, inp, |b| {
        b.conv(&format!("{p}.b3x3_1"), 384, 1, 1, 0);
        b.conv_rect(&format!("{p}.b3x3_2a"), 384, 1, 3, 1, 0, 1);
    });
    let mid = (384, s2a.1, s2a.2);
    let s2b = branch(b, mid, |b| {
        b.conv_rect(&format!("{p}.b3x3_2b"), 384, 3, 1, 1, 1, 0);
    });
    let s3a = branch(b, inp, |b| {
        b.conv(&format!("{p}.b3x3dbl_1"), 448, 1, 1, 0);
        b.conv(&format!("{p}.b3x3dbl_2"), 384, 3, 1, 1);
        b.conv_rect(&format!("{p}.b3x3dbl_3a"), 384, 1, 3, 1, 0, 1);
    });
    let s3b = branch(b, (384, s3a.1, s3a.2), |b| {
        b.conv_rect(&format!("{p}.b3x3dbl_3b"), 384, 3, 1, 1, 1, 0);
    });
    let s4 = branch(b, inp, |b| {
        b.pool(&format!("{p}.pool"), 3, 1, 1);
        b.conv(&format!("{p}.bpool"), 192, 1, 1, 0);
    });
    concat(b, &format!("{p}.concat"), &[s1, s2a, s2b, s3a, s3b, s4]);
}

/// Builds the Inception-V3 spec at the given square input resolution
/// (canonically 299).
pub fn inception_v3(resolution: usize) -> ModelSpec {
    let mut b = SpecBuilder::new(format!("InceptionV3@{resolution}"), (3, resolution, resolution));
    b.conv("stem.conv1a", 32, 3, 2, 0).cut();
    b.conv("stem.conv2a", 32, 3, 1, 0);
    b.conv("stem.conv2b", 64, 3, 1, 1).cut();
    b.pool("stem.maxpool1", 3, 2, 0).cut();
    b.conv("stem.conv3b", 80, 1, 1, 0);
    b.conv("stem.conv4a", 192, 3, 1, 0).cut();
    b.pool("stem.maxpool2", 3, 2, 0).cut();
    inception_a(&mut b, "mixed5b", 32);
    inception_a(&mut b, "mixed5c", 64);
    inception_a(&mut b, "mixed5d", 64);
    inception_b(&mut b, "mixed6a");
    inception_c(&mut b, "mixed6b", 128);
    inception_c(&mut b, "mixed6c", 160);
    inception_c(&mut b, "mixed6d", 160);
    inception_c(&mut b, "mixed6e", 192);
    inception_d(&mut b, "mixed7a");
    inception_e(&mut b, "mixed7b");
    inception_e(&mut b, "mixed7c");
    b.gap("head.gap");
    b.fc("classifier", 1000);
    b.build(INCEPTION_V3_TOP1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_output_channels() {
        let m = inception_v3(299);
        let find = |n: &str| m.layers.iter().find(|l| l.name == n).unwrap().out_shape;
        assert_eq!(find("mixed5b.concat"), (256, 35, 35));
        assert_eq!(find("mixed5d.concat"), (288, 35, 35));
        assert_eq!(find("mixed6a.concat"), (768, 17, 17));
        assert_eq!(find("mixed7a.concat"), (1280, 8, 8));
        assert_eq!(find("mixed7c.concat"), (2048, 8, 8));
    }

    #[test]
    fn cuts_at_concats_only_in_body() {
        let m = inception_v3(299);
        for i in m.cut_points() {
            let n = &m.layers[i].name;
            assert!(
                n.ends_with(".concat") || n.starts_with("stem") || n == "classifier",
                "unexpected cut at {n}"
            );
        }
    }

    #[test]
    fn fc_dominates_params_tail() {
        let m = inception_v3(299);
        let fc = m.layers.last().unwrap();
        assert_eq!(fc.params, 2048 * 1000 + 1000);
    }
}
