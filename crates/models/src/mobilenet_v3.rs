//! MobileNetV3-Large (Howard et al., ICCV '19) per-layer spec.

use crate::builder::SpecBuilder;
use crate::ModelSpec;

/// Published ImageNet top-1 for MobileNetV3-Large-1.0 (%).
pub const MOBILENET_V3_LARGE_TOP1: f32 = 75.2;

/// One inverted-residual (bneck) row of the MobileNetV3-Large table:
/// (kernel, expansion channels, output channels, SE?, stride).
const BNECK: &[(usize, usize, usize, bool, usize)] = &[
    (3, 16, 16, false, 1),
    (3, 64, 24, false, 2),
    (3, 72, 24, false, 1),
    (5, 72, 40, true, 2),
    (5, 120, 40, true, 1),
    (5, 120, 40, true, 1),
    (3, 240, 80, false, 2),
    (3, 200, 80, false, 1),
    (3, 184, 80, false, 1),
    (3, 184, 80, false, 1),
    (3, 480, 112, true, 1),
    (3, 672, 112, true, 1),
    (5, 672, 160, true, 2),
    (5, 960, 160, true, 1),
    (5, 960, 160, true, 1),
];

/// Builds the MobileNetV3-Large spec at the given square input resolution.
pub fn mobilenet_v3_large(resolution: usize) -> ModelSpec {
    let mut b =
        SpecBuilder::new(format!("MobileNetV3-Large@{resolution}"), (3, resolution, resolution));
    b.conv("stem", 16, 3, 2, 1).cut();
    let mut c_in = 16;
    for (i, &(k, exp, out, se, stride)) in BNECK.iter().enumerate() {
        let p = format!("bneck{i}");
        // Expand (1x1), depthwise (kxk), optional SE, project (1x1).
        if exp != c_in {
            b.conv(&format!("{p}.expand"), exp, 1, 1, 0);
        }
        b.dwconv(&format!("{p}.dw"), k, stride, k / 2);
        if se {
            b.se(&format!("{p}.se"), 4);
        }
        b.conv(&format!("{p}.project"), out, 1, 1, 0);
        if stride == 1 && c_in == out {
            b.elementwise(&format!("{p}.add"));
        }
        // The block boundary is a legal layer-wise cut.
        b.cut();
        c_in = out;
    }
    b.conv("head.conv", 960, 1, 1, 0).cut();
    b.gap("head.gap");
    b.fc("head.fc1", 1280);
    b.fc("classifier", 1000);
    b.build(MOBILENET_V3_LARGE_TOP1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_and_structure() {
        let m = mobilenet_v3_large(224);
        // 15 bneck blocks, stem, head conv, gap, 2 fc + per-block layers.
        assert!(m.layers.len() > 40);
        assert_eq!(m.input, (3, 224, 224));
        // Final spatial size before GAP is 7x7 at 224 input.
        let head = m.layers.iter().find(|l| l.name == "head.conv").unwrap();
        assert_eq!(head.out_shape, (960, 7, 7));
    }

    #[test]
    fn cut_points_at_block_boundaries() {
        let m = mobilenet_v3_large(224);
        let cuts = m.cut_points();
        // stem + 15 blocks + head conv + classifier ≥ 18 cut points.
        assert!(cuts.len() >= 17, "got {}", cuts.len());
    }

    #[test]
    fn lower_resolution_shrinks_feature_maps() {
        let m = mobilenet_v3_large(160);
        let head = m.layers.iter().find(|l| l.name == "head.conv").unwrap();
        assert_eq!(head.out_shape, (960, 5, 5));
    }
}
