//! ResNet-50 and ResNeXt-101-32x8d (He et al., CVPR '16; Xie et al.,
//! CVPR '17) per-layer specs.

use crate::builder::SpecBuilder;
use crate::ModelSpec;

/// Published ImageNet top-1 for ResNet-50 (%).
pub const RESNET50_TOP1: f32 = 76.1;
/// Published ImageNet top-1 for ResNeXt-101-32x8d (%), as quoted in the
/// Murmuration paper.
pub const RESNEXT101_TOP1: f32 = 79.3;

/// Bottleneck stage plan shared by the ResNet family: blocks per stage.
const RESNET50_BLOCKS: [usize; 4] = [3, 4, 6, 3];
const RESNEXT101_BLOCKS: [usize; 4] = [3, 4, 23, 3];

/// Emits one bottleneck block: 1x1 reduce → 3x3 (possibly grouped) →
/// 1x1 expand, with a projection shortcut on the first block of a stage.
#[allow(clippy::too_many_arguments)]
fn bottleneck(
    b: &mut SpecBuilder,
    prefix: &str,
    mid: usize,
    out: usize,
    stride: usize,
    groups: usize,
    first_in_stage: bool,
    c_in: usize,
) {
    b.conv(&format!("{prefix}.conv1"), mid, 1, 1, 0);
    b.grouped_conv(&format!("{prefix}.conv2"), mid, 3, stride, 1, groups);
    b.conv(&format!("{prefix}.conv3"), out, 1, 1, 0);
    if first_in_stage {
        // Projection shortcut: 1x1 stride-s conv from the stage input. Its
        // cost is computed from the *input* shape, so temporarily rewind
        // the running shape; MACs = oh*ow*c_in*out.
        let (c_now, oh, ow) = b.shape();
        assert_eq!(c_now, out);
        b.set_shape((c_in, oh * stride, ow * stride));
        // Recompute through a stride-s 1x1 conv to land on the same shape.
        b.conv(&format!("{prefix}.downsample"), out, 1, stride, 0);
    }
    b.elementwise(&format!("{prefix}.add"));
    b.cut();
}

fn build_resnet(
    name: String,
    resolution: usize,
    blocks: [usize; 4],
    base_mid: usize,
    groups: usize,
    top1: f32,
) -> ModelSpec {
    let mut b = SpecBuilder::new(name, (3, resolution, resolution));
    b.conv("stem.conv", 64, 7, 2, 3).cut();
    b.pool("stem.maxpool", 3, 2, 1).cut();
    let mut c_in = 64usize;
    for (stage, &nblocks) in blocks.iter().enumerate() {
        let mid = base_mid << stage;
        let out = 256usize << stage;
        for blk in 0..nblocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            bottleneck(
                &mut b,
                &format!("layer{}.{}", stage + 1, blk),
                mid,
                out,
                stride,
                groups,
                blk == 0,
                c_in,
            );
            c_in = out;
        }
    }
    b.gap("head.gap");
    b.fc("classifier", 1000);
    b.build(top1)
}

/// ResNet-50 at the given square input resolution.
pub fn resnet50(resolution: usize) -> ModelSpec {
    build_resnet(
        format!("ResNet50@{resolution}"),
        resolution,
        RESNET50_BLOCKS,
        64,
        1,
        RESNET50_TOP1,
    )
}

/// ResNeXt-101-32x8d: 32 groups, width-per-group 8 → stage-1 mid width 256.
pub fn resnext101_32x8d(resolution: usize) -> ModelSpec {
    build_resnet(
        format!("ResNeXt101-32x8d@{resolution}"),
        resolution,
        RESNEXT101_BLOCKS,
        256,
        32,
        RESNEXT101_TOP1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_stage_shapes() {
        let m = resnet50(224);
        let l1 = m.layers.iter().find(|l| l.name == "layer1.0.add").unwrap();
        assert_eq!(l1.out_shape, (256, 56, 56));
        let l4 = m.layers.iter().find(|l| l.name == "layer4.2.add").unwrap();
        assert_eq!(l4.out_shape, (2048, 7, 7));
    }

    #[test]
    fn resnet50_block_count() {
        let m = resnet50(224);
        let adds = m.layers.iter().filter(|l| l.name.ends_with(".add")).count();
        assert_eq!(adds, 16);
    }

    #[test]
    fn resnext_groups_shrink_3x3_cost() {
        let r50 = resnet50(224);
        let rx = resnext101_32x8d(224);
        let r50_c2 = r50.layers.iter().find(|l| l.name == "layer1.0.conv2").unwrap();
        let rx_c2 = rx.layers.iter().find(|l| l.name == "layer1.0.conv2").unwrap();
        // ResNeXt's conv2 is 256ch/32g vs ResNet's 64ch dense; grouped cost
        // = oh*ow*9*(256/32)*256, dense = oh*ow*9*64*64.
        assert_eq!(rx_c2.macs, 56 * 56 * 9 * 8 * 256);
        assert_eq!(r50_c2.macs, 56 * 56 * 9 * 64 * 64);
    }

    #[test]
    fn cuts_only_at_block_ends() {
        let m = resnet50(224);
        for i in m.cut_points() {
            let n = &m.layers[i].name;
            assert!(
                n.ends_with(".add") || n.contains("stem") || n == "classifier",
                "unexpected cut at {n}"
            );
        }
    }
}
