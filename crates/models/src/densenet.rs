//! DenseNet-161 (Huang et al., CVPR '17) per-layer spec.
//!
//! Growth rate 48, block config (6, 12, 36, 24), 96 initial features.
//! Inside a dense block every layer consumes the concatenation of all
//! previous outputs, so the only legal layer-wise cuts are at transition
//! layers and block boundaries.

use crate::builder::SpecBuilder;
use crate::ModelSpec;

/// Published ImageNet top-1 for DenseNet-161 (%), as quoted in the paper.
pub const DENSENET161_TOP1: f32 = 77.1;

const GROWTH: usize = 48;
const BLOCKS: [usize; 4] = [6, 12, 36, 24];
const INIT_FEATURES: usize = 96;
/// Bottleneck width multiplier (conv1x1 outputs `BN_SIZE * GROWTH`).
const BN_SIZE: usize = 4;

/// Builds the DenseNet-161 spec at the given square input resolution.
pub fn densenet161(resolution: usize) -> ModelSpec {
    let mut b = SpecBuilder::new(format!("DenseNet161@{resolution}"), (3, resolution, resolution));
    b.conv("stem.conv", INIT_FEATURES, 7, 2, 3).cut();
    b.pool("stem.maxpool", 3, 2, 1).cut();
    let mut features = INIT_FEATURES;
    for (bi, &nlayers) in BLOCKS.iter().enumerate() {
        let (_, h, w) = b.shape();
        for li in 0..nlayers {
            let p = format!("denseblock{}.layer{}", bi + 1, li);
            // Each dense layer reads `features + li*GROWTH` channels.
            b.set_shape((features + li * GROWTH, h, w));
            b.conv(&format!("{p}.conv1"), BN_SIZE * GROWTH, 1, 1, 0);
            b.conv(&format!("{p}.conv2"), GROWTH, 3, 1, 1);
        }
        features += nlayers * GROWTH;
        b.set_shape((features, h, w));
        if bi + 1 < BLOCKS.len() {
            // Transition: 1x1 conv halving channels, then 2x2 avg pool.
            let t = format!("transition{}", bi + 1);
            b.conv(&format!("{t}.conv"), features / 2, 1, 1, 0);
            b.pool(&format!("{t}.pool"), 2, 2, 0);
            b.cut();
            features /= 2;
        } else {
            // Final block boundary is also a legal cut.
            b.elementwise(&format!("denseblock{}.norm", bi + 1));
            b.cut();
        }
    }
    b.gap("head.gap");
    b.fc("classifier", 1000);
    b.build(DENSENET161_TOP1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_progression() {
        // 96 → +6*48=384 → /2=192 → +12*48=768 → /2=384 → +36*48=2112 →
        // /2=1056 → +24*48=2208.
        let m = densenet161(224);
        let t1 = m.layers.iter().find(|l| l.name == "transition1.conv").unwrap();
        assert_eq!(t1.out_shape.0, 192);
        let t3 = m.layers.iter().find(|l| l.name == "transition3.conv").unwrap();
        assert_eq!(t3.out_shape.0, 1056);
        let gap = m.layers.iter().find(|l| l.name == "head.gap").unwrap();
        assert_eq!(gap.out_shape, (2208, 1, 1));
    }

    #[test]
    fn cuts_exclude_dense_block_interiors() {
        let m = densenet161(224);
        for i in m.cut_points() {
            let n = &m.layers[i].name;
            assert!(
                !n.contains(".layer") || n.ends_with(".norm"),
                "illegal cut inside dense block: {n}"
            );
        }
    }

    #[test]
    fn spatial_sizes_halve_at_transitions() {
        let m = densenet161(224);
        let t1 = m.layers.iter().find(|l| l.name == "transition1.pool").unwrap();
        assert_eq!((t1.out_shape.1, t1.out_shape.2), (28, 28));
        let t3 = m.layers.iter().find(|l| l.name == "transition3.pool").unwrap();
        assert_eq!((t3.out_shape.1, t3.out_shape.2), (7, 7));
    }
}
