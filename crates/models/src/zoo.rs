//! Convenience access to every baseline model at its canonical resolution.

use crate::{densenet161, inception_v3, mobilenet_v3_large, resnet50, resnext101_32x8d, ModelSpec};

/// Identifier for a baseline model in the zoo.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineModel {
    MobileNetV3Large,
    ResNet50,
    InceptionV3,
    DenseNet161,
    ResNeXt101,
}

impl BaselineModel {
    /// Every baseline, ordered by compute cost.
    pub fn all() -> [BaselineModel; 5] {
        [
            BaselineModel::MobileNetV3Large,
            BaselineModel::ResNet50,
            BaselineModel::InceptionV3,
            BaselineModel::DenseNet161,
            BaselineModel::ResNeXt101,
        ]
    }

    /// Canonical input resolution.
    pub fn resolution(self) -> usize {
        match self {
            BaselineModel::InceptionV3 => 299,
            _ => 224,
        }
    }

    /// Builds the per-layer spec at the canonical resolution.
    pub fn spec(self) -> ModelSpec {
        match self {
            BaselineModel::MobileNetV3Large => mobilenet_v3_large(224),
            BaselineModel::ResNet50 => resnet50(224),
            BaselineModel::InceptionV3 => inception_v3(299),
            BaselineModel::DenseNet161 => densenet161(224),
            BaselineModel::ResNeXt101 => resnext101_32x8d(224),
        }
    }

    /// Short display name matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            BaselineModel::MobileNetV3Large => "MobileNetV3",
            BaselineModel::ResNet50 => "Resnet50",
            BaselineModel::InceptionV3 => "Inception",
            BaselineModel::DenseNet161 => "DenseNet161",
            BaselineModel::ResNeXt101 => "Resnext101",
        }
    }
}

/// All baseline specs at canonical resolutions.
pub fn all_models() -> Vec<ModelSpec> {
    BaselineModel::all().iter().map(|m| m.spec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_ordering_matches_paper() {
        // The paper's legend ordering: MobileNetV3 (75.2) < ResNet50 (76.1)
        // < DenseNet161 (77.1) < Inception (77.3) < ResNeXt101 (79.3).
        let accs: Vec<f32> = vec![
            BaselineModel::MobileNetV3Large.spec().top1,
            BaselineModel::ResNet50.spec().top1,
            BaselineModel::DenseNet161.spec().top1,
            BaselineModel::InceptionV3.spec().top1,
            BaselineModel::ResNeXt101.spec().top1,
        ];
        for w in accs.windows(2) {
            assert!(w[0] < w[1], "{accs:?} must be increasing");
        }
    }

    #[test]
    fn compute_ordering_is_monotone() {
        let macs: Vec<u64> = all_models().iter().map(|m| m.total_macs()).collect();
        for w in macs.windows(2) {
            assert!(w[0] < w[1], "{macs:?} must be increasing");
        }
    }
}
