//! ViT-B/16 (Dosovitskiy et al., ICLR '21) per-layer spec — the extension
//! target §4.1 of the paper sketches: "this spatial partitioning strategy
//! can also be applied to other DNN models such as Vision Transformers,
//! where different image patches are sent to different devices for
//! parallel attention computation".
//!
//! Patch-token computation (QKV/projection/MLP, applied per token) is
//! spatially partitionable; the attention score/mix matmuls need the full
//! token set, so they mark the synchronization points. Cuts are legal at
//! block boundaries.

use crate::{LayerSpec, ModelSpec, OpKind};

/// Published ImageNet top-1 for ViT-B/16 (%, ImageNet-21k pretrain).
pub const VIT_B16_TOP1: f32 = 81.1;

const DIM: usize = 768;
const BLOCKS: usize = 12;
const MLP_RATIO: usize = 4;
const PATCH: usize = 16;

/// Builds the ViT-B/16 spec for a square input resolution divisible by 16.
pub fn vit_b16(resolution: usize) -> ModelSpec {
    assert_eq!(resolution % PATCH, 0, "resolution must be divisible by {PATCH}");
    let grid = resolution / PATCH;
    let tokens = grid * grid + 1; // + class token
    let mut layers = Vec::new();

    // Patch embedding: a 16×16 stride-16 conv, 3 → DIM.
    layers.push(LayerSpec {
        name: "patch_embed".into(),
        op: OpKind::Conv,
        macs: (grid * grid * PATCH * PATCH * 3 * DIM) as u64,
        params: (PATCH * PATCH * 3 * DIM + DIM) as u64,
        out_shape: (DIM, grid, grid),
        cut_ok: true,
        spatial_ok: true,
    });

    for b in 0..BLOCKS {
        let p = format!("block{b}");
        // QKV projection: per token, DIM → 3·DIM. Token-parallel.
        layers.push(LayerSpec {
            name: format!("{p}.qkv"),
            op: OpKind::Fc,
            macs: (tokens * DIM * 3 * DIM) as u64,
            params: (DIM * 3 * DIM + 3 * DIM) as u64,
            out_shape: (3 * DIM, grid, grid),
            cut_ok: false,
            spatial_ok: true,
        });
        // Attention scores + value mix: needs every token (sync point).
        layers.push(LayerSpec {
            name: format!("{p}.attn"),
            op: OpKind::Fc,
            macs: (2 * tokens * tokens * DIM) as u64,
            params: 0,
            out_shape: (DIM, grid, grid),
            cut_ok: false,
            spatial_ok: false,
        });
        // Output projection: token-parallel.
        layers.push(LayerSpec {
            name: format!("{p}.proj"),
            op: OpKind::Fc,
            macs: (tokens * DIM * DIM) as u64,
            params: (DIM * DIM + DIM) as u64,
            out_shape: (DIM, grid, grid),
            cut_ok: false,
            spatial_ok: true,
        });
        // MLP: token-parallel, DIM → 4·DIM → DIM (+ the two LayerNorms'
        // affine parameters folded in).
        layers.push(LayerSpec {
            name: format!("{p}.mlp"),
            op: OpKind::Fc,
            macs: (2 * tokens * DIM * MLP_RATIO * DIM) as u64,
            params: (2 * DIM * MLP_RATIO * DIM + MLP_RATIO * DIM + DIM + 4 * DIM) as u64,
            out_shape: (DIM, grid, grid),
            cut_ok: true, // block boundary
            spatial_ok: true,
        });
    }

    // Classifier over the class token.
    let mut head = LayerSpec {
        name: "classifier".into(),
        op: OpKind::Fc,
        macs: (DIM * 1000) as u64,
        params: (DIM * 1000 + 1000) as u64,
        out_shape: (1000, 1, 1),
        cut_ok: true,
        spatial_ok: false,
    };
    head.cut_ok = true;
    layers.push(head);

    ModelSpec {
        name: format!("ViT-B16@{resolution}"),
        input: (3, resolution, resolution),
        layers,
        top1: VIT_B16_TOP1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_published() {
        // Published: ~17.6 GMACs, ~86 M params at 224².
        let m = vit_b16(224);
        let macs = m.total_macs() as f64;
        let params = m.total_params() as f64;
        assert!((macs - 17.6e9).abs() / 17.6e9 < 0.05, "MACs {macs}");
        assert!((params - 86.0e6).abs() / 86.0e6 < 0.05, "params {params}");
    }

    #[test]
    fn attention_is_the_only_non_parallel_body_op() {
        let m = vit_b16(224);
        for l in &m.layers {
            if l.name.ends_with(".attn") || l.name == "classifier" {
                assert!(!l.spatial_ok, "{} must synchronize", l.name);
            } else {
                assert!(l.spatial_ok, "{} is token-parallel", l.name);
            }
        }
    }

    #[test]
    fn cuts_at_block_boundaries() {
        let m = vit_b16(224);
        // patch embed + 12 blocks + classifier.
        assert_eq!(m.cut_points().len(), 14);
    }

    #[test]
    fn token_parallel_fraction_dominates() {
        // The paper's ViT extension is only useful if most compute is
        // token-parallel; attention sync is ~5 % of MACs at 224².
        let m = vit_b16(224);
        let total = m.total_macs() as f64;
        let sync: u64 = m.layers.iter().filter(|l| !l.spatial_ok).map(|l| l.macs).sum();
        assert!((sync as f64) < total * 0.10, "sync fraction {}", sync as f64 / total);
    }

    #[test]
    fn resolution_scales_token_count_quadratically() {
        let m224 = vit_b16(224);
        let m160 = vit_b16(160);
        assert!(m160.total_macs() < m224.total_macs() / 2 + m224.total_macs() / 4);
        assert_eq!(m160.total_params(), m224.total_params());
    }
}
