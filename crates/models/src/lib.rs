//! # murmuration-models
//!
//! A model zoo of *per-layer compute and size descriptions* for the CNNs the
//! Murmuration paper uses as baselines: MobileNetV3-Large, ResNet-50,
//! Inception-V3, DenseNet-161 and ResNeXt-101-32x8d.
//!
//! Partitioning decisions (Neurosurgeon's layer split, ADCNN's spatial
//! tiling) depend only on each layer's arithmetic cost and the size of the
//! tensor crossing each candidate cut — not on the weights — so the zoo
//! records exactly that: MACs, parameter count, output shape, and whether
//! the point after the layer is a legal cut (residual/dense connectivity
//! forbids cutting inside a block).
//!
//! The FLOPs math is validated in tests against the published totals for
//! every architecture (e.g. ResNet-50 ≈ 4.1 GMACs / 25.6 M params).

mod builder;
mod densenet;
mod efficientnet;
mod inception;
mod mobilenet_v3;
mod resnet;
mod vit;
pub mod zoo;

pub use builder::SpecBuilder;
pub use densenet::densenet161;
pub use efficientnet::efficientnet_b0;
pub use inception::inception_v3;
pub use mobilenet_v3::mobilenet_v3_large;
pub use resnet::{resnet50, resnext101_32x8d};
pub use vit::vit_b16;

/// Coarse operator class; drives the device-efficiency factor in the
/// latency model (depthwise convs achieve far lower arithmetic intensity
/// than dense convs, FC layers are memory-bound, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Dense (possibly grouped) convolution.
    Conv,
    /// Depthwise convolution.
    DwConv,
    /// Pooling (max/avg/global).
    Pool,
    /// Fully-connected layer.
    Fc,
    /// Element-wise op (activation, residual add, normalization folded in).
    Elementwise,
}

/// One layer (or fused block element) of a concrete model.
#[derive(Clone, Debug)]
pub struct LayerSpec {
    /// Human-readable name, e.g. `"layer3.block2.conv2"`.
    pub name: String,
    pub op: OpKind,
    /// Multiply-accumulate operations for one inference (batch 1).
    pub macs: u64,
    /// Trainable parameter count.
    pub params: u64,
    /// Output tensor shape as (channels, height, width).
    pub out_shape: (usize, usize, usize),
    /// Whether the network may be cut *after* this layer for layer-wise
    /// partitioning (false inside residual/dense blocks).
    pub cut_ok: bool,
    /// Whether the layer's spatial computation can be FDSP-tiled (convs and
    /// pools yes; FC/global layers no).
    pub spatial_ok: bool,
}

impl LayerSpec {
    /// Output element count (batch 1).
    pub fn out_elems(&self) -> u64 {
        let (c, h, w) = self.out_shape;
        (c * h * w) as u64
    }

    /// Output tensor size in bytes at 32-bit precision.
    pub fn out_bytes_f32(&self) -> u64 {
        self.out_elems() * 4
    }
}

/// A complete per-layer description of one model.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    pub name: String,
    /// Input shape (channels, height, width).
    pub input: (usize, usize, usize),
    pub layers: Vec<LayerSpec>,
    /// Published ImageNet top-1 accuracy (%), used as the fixed accuracy of
    /// this baseline model.
    pub top1: f32,
}

impl ModelSpec {
    /// Total MACs for one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total weight bytes at f32 (what a model reload must move).
    pub fn weight_bytes(&self) -> u64 {
        self.total_params() * 4
    }

    /// Input tensor bytes at f32.
    pub fn input_bytes(&self) -> u64 {
        let (c, h, w) = self.input;
        (c * h * w * 4) as u64
    }

    /// Indices after which a layer-wise cut is legal (always includes the
    /// virtual cut "before layer 0" as `None` handled by planners).
    pub fn cut_points(&self) -> Vec<usize> {
        self.layers.iter().enumerate().filter_map(|(i, l)| l.cut_ok.then_some(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: u64, expected: u64, tol: f64) -> bool {
        let a = actual as f64;
        let e = expected as f64;
        (a - e).abs() / e <= tol
    }

    #[test]
    fn mobilenet_v3_large_totals_match_published() {
        let m = mobilenet_v3_large(224);
        // Published: ~219 M MACs, ~5.4 M params.
        assert!(within(m.total_macs(), 219_000_000, 0.15), "MACs {}", m.total_macs());
        assert!(within(m.total_params(), 5_400_000, 0.15), "params {}", m.total_params());
    }

    #[test]
    fn resnet50_totals_match_published() {
        let m = resnet50(224);
        // Published: ~4.09 GMACs, ~25.6 M params.
        assert!(within(m.total_macs(), 4_100_000_000, 0.10), "MACs {}", m.total_macs());
        assert!(within(m.total_params(), 25_600_000, 0.10), "params {}", m.total_params());
    }

    #[test]
    fn inception_v3_totals_match_published() {
        let m = inception_v3(299);
        // Published: ~5.7 GMACs, ~27.2 M params.
        assert!(within(m.total_macs(), 5_700_000_000, 0.15), "MACs {}", m.total_macs());
        assert!(within(m.total_params(), 27_200_000, 0.15), "params {}", m.total_params());
    }

    #[test]
    fn densenet161_totals_match_published() {
        let m = densenet161(224);
        // Published: ~7.8 GMACs, ~28.7 M params.
        assert!(within(m.total_macs(), 7_800_000_000, 0.15), "MACs {}", m.total_macs());
        assert!(within(m.total_params(), 28_700_000, 0.15), "params {}", m.total_params());
    }

    #[test]
    fn resnext101_totals_match_published() {
        let m = resnext101_32x8d(224);
        // Published: ~16.5 GMACs, ~88.8 M params.
        assert!(within(m.total_macs(), 16_500_000_000, 0.12), "MACs {}", m.total_macs());
        assert!(within(m.total_params(), 88_800_000, 0.12), "params {}", m.total_params());
    }

    #[test]
    fn every_model_has_cut_points_and_final_fc() {
        for m in zoo::all_models() {
            assert!(m.cut_points().len() >= 4, "{} needs cut points", m.name);
            let last = m.layers.last().unwrap();
            assert_eq!(last.op, OpKind::Fc, "{} must end in FC", m.name);
            assert_eq!(last.out_shape, (1000, 1, 1), "{} must emit 1000 classes", m.name);
        }
    }

    #[test]
    fn resolution_scaling_reduces_macs() {
        let big = mobilenet_v3_large(224);
        let small = mobilenet_v3_large(160);
        assert!(small.total_macs() < big.total_macs());
        // Params don't change with resolution.
        assert_eq!(small.total_params(), big.total_params());
    }
}
