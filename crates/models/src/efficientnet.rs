//! EfficientNet-B0 (Tan & Le, ICML '19) per-layer spec — an extra zoo
//! entry beyond the paper's baseline set, useful as a modern
//! mobile-efficiency reference point for the planners.

use crate::builder::SpecBuilder;
use crate::ModelSpec;

/// Published ImageNet top-1 for EfficientNet-B0 (%).
pub const EFFICIENTNET_B0_TOP1: f32 = 77.1;

/// One MBConv stage: (expansion, kernel, output channels, repeats, stride).
const STAGES: &[(usize, usize, usize, usize, usize)] = &[
    (1, 3, 16, 1, 1),
    (6, 3, 24, 2, 2),
    (6, 5, 40, 2, 2),
    (6, 3, 80, 3, 2),
    (6, 5, 112, 3, 1),
    (6, 5, 192, 4, 2),
    (6, 3, 320, 1, 1),
];

/// Builds the EfficientNet-B0 spec at the given square input resolution
/// (canonically 224).
pub fn efficientnet_b0(resolution: usize) -> ModelSpec {
    let mut b =
        SpecBuilder::new(format!("EfficientNetB0@{resolution}"), (3, resolution, resolution));
    b.conv("stem", 32, 3, 2, 1).cut();
    let mut c_in = 32usize;
    for (si, &(expand, k, out, repeats, stride)) in STAGES.iter().enumerate() {
        for rep in 0..repeats {
            let p = format!("stage{si}.block{rep}");
            let s = if rep == 0 { stride } else { 1 };
            let mid = c_in * expand;
            if expand != 1 {
                b.conv(&format!("{p}.expand"), mid, 1, 1, 0);
            }
            b.dwconv(&format!("{p}.dw"), k, s, k / 2);
            // SE with reduction 4 relative to the *input* channels
            // (EfficientNet squeezes to c_in/4).
            b.se(&format!("{p}.se"), 4 * expand.max(1));
            b.conv(&format!("{p}.project"), out, 1, 1, 0);
            if s == 1 && c_in == out {
                b.elementwise(&format!("{p}.add"));
            }
            b.cut();
            c_in = out;
        }
    }
    b.conv("head.conv", 1280, 1, 1, 0).cut();
    b.gap("head.gap");
    b.fc("classifier", 1000);
    b.build(EFFICIENTNET_B0_TOP1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: u64, expected: u64, tol: f64) -> bool {
        (actual as f64 - expected as f64).abs() / expected as f64 <= tol
    }

    #[test]
    fn totals_match_published() {
        // Published: ~0.39 GMACs, ~5.3 M params.
        let m = efficientnet_b0(224);
        assert!(within(m.total_macs(), 390_000_000, 0.15), "MACs {}", m.total_macs());
        assert!(within(m.total_params(), 5_300_000, 0.15), "params {}", m.total_params());
    }

    #[test]
    fn stage_shapes() {
        let m = efficientnet_b0(224);
        let find = |n: &str| m.layers.iter().find(|l| l.name == n).unwrap().out_shape;
        assert_eq!(find("stage1.block0.project").0, 24);
        assert_eq!(find("stage6.block0.project"), (320, 7, 7));
        assert_eq!(find("head.conv"), (1280, 7, 7));
    }

    #[test]
    fn cut_points_exist_at_block_boundaries() {
        // The layer-wise planners need legal cuts; one per MBConv block.
        let m = efficientnet_b0(224);
        assert!(m.cut_points().len() >= 16, "{}", m.cut_points().len());
    }
}
