//! Incremental builder that tracks the running activation shape and emits
//! [`LayerSpec`]s with correct MAC/param/size math.

use crate::{LayerSpec, ModelSpec, OpKind};

/// Builds a [`ModelSpec`] layer by layer, carrying the activation shape.
pub struct SpecBuilder {
    name: String,
    input: (usize, usize, usize),
    cur: (usize, usize, usize),
    layers: Vec<LayerSpec>,
}

fn out_size(size: usize, k: usize, pad: usize, stride: usize) -> usize {
    assert!(size + 2 * pad >= k, "kernel {k} exceeds padded input {size}+2*{pad}");
    (size + 2 * pad - k) / stride + 1
}

impl SpecBuilder {
    /// Starts a model with the given input (channels, height, width).
    pub fn new(name: impl Into<String>, input: (usize, usize, usize)) -> Self {
        SpecBuilder { name: name.into(), input, cur: input, layers: Vec::new() }
    }

    /// Current activation shape.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.cur
    }

    /// Overrides the running shape (used when assembling parallel branches
    /// externally).
    pub fn set_shape(&mut self, shape: (usize, usize, usize)) {
        self.cur = shape;
    }

    /// Marks the previous layer as a legal layer-wise cut point.
    pub fn cut(&mut self) -> &mut Self {
        if let Some(l) = self.layers.last_mut() {
            l.cut_ok = true;
        }
        self
    }

    /// Dense convolution (`groups=1` unless set), with BN+activation cost
    /// folded in (they are negligible next to the conv itself).
    pub fn conv(
        &mut self,
        name: &str,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> &mut Self {
        self.grouped_conv(name, c_out, k, stride, pad, 1)
    }

    /// Grouped convolution; `groups` must divide both channel counts.
    pub fn grouped_conv(
        &mut self,
        name: &str,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> &mut Self {
        let (c_in, h, w) = self.cur;
        assert!(c_in % groups == 0 && c_out.is_multiple_of(groups), "{name}: bad groups");
        let oh = out_size(h, k, pad, stride);
        let ow = out_size(w, k, pad, stride);
        let macs = (oh * ow * k * k * (c_in / groups) * c_out) as u64;
        // weights + BN affine (γ, β per channel).
        let params = (k * k * (c_in / groups) * c_out + 2 * c_out) as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            op: OpKind::Conv,
            macs,
            params,
            out_shape: (c_out, oh, ow),
            cut_ok: false,
            spatial_ok: true,
        });
        self.cur = (c_out, oh, ow);
        self
    }

    /// Rectangular dense convolution (for Inception's 1×7 / 7×1 factorized
    /// kernels).
    #[allow(clippy::too_many_arguments)]
    pub fn conv_rect(
        &mut self,
        name: &str,
        c_out: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        ph: usize,
        pw: usize,
    ) -> &mut Self {
        let (c_in, h, w) = self.cur;
        let oh = out_size(h, kh, ph, stride);
        let ow = out_size(w, kw, pw, stride);
        let macs = (oh * ow * kh * kw * c_in * c_out) as u64;
        let params = (kh * kw * c_in * c_out + 2 * c_out) as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            op: OpKind::Conv,
            macs,
            params,
            out_shape: (c_out, oh, ow),
            cut_ok: false,
            spatial_ok: true,
        });
        self.cur = (c_out, oh, ow);
        self
    }

    /// Depthwise convolution (one filter per channel).
    pub fn dwconv(&mut self, name: &str, k: usize, stride: usize, pad: usize) -> &mut Self {
        let (c, h, w) = self.cur;
        let oh = out_size(h, k, pad, stride);
        let ow = out_size(w, k, pad, stride);
        let macs = (oh * ow * k * k * c) as u64;
        let params = (k * k * c + 2 * c) as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            op: OpKind::DwConv,
            macs,
            params,
            out_shape: (c, oh, ow),
            cut_ok: false,
            spatial_ok: true,
        });
        self.cur = (c, oh, ow);
        self
    }

    /// Max or average pooling; MACs counted as one op per input element of
    /// each window (cheap but not free).
    pub fn pool(&mut self, name: &str, k: usize, stride: usize, pad: usize) -> &mut Self {
        let (c, h, w) = self.cur;
        let oh = out_size(h, k, pad, stride);
        let ow = out_size(w, k, pad, stride);
        let macs = (oh * ow * k * k * c) as u64 / 2;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            op: OpKind::Pool,
            macs,
            params: 0,
            out_shape: (c, oh, ow),
            cut_ok: false,
            spatial_ok: true,
        });
        self.cur = (c, oh, ow);
        self
    }

    /// Global average pooling to 1×1.
    pub fn gap(&mut self, name: &str) -> &mut Self {
        let (c, h, w) = self.cur;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            op: OpKind::Pool,
            macs: (c * h * w) as u64 / 2,
            params: 0,
            out_shape: (c, 1, 1),
            cut_ok: false,
            spatial_ok: false,
        });
        self.cur = (c, 1, 1);
        self
    }

    /// Fully-connected layer from the flattened current activation.
    pub fn fc(&mut self, name: &str, out: usize) -> &mut Self {
        let (c, h, w) = self.cur;
        let inp = c * h * w;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            op: OpKind::Fc,
            macs: (inp * out) as u64,
            params: (inp * out + out) as u64,
            out_shape: (out, 1, 1),
            cut_ok: false,
            spatial_ok: false,
        });
        self.cur = (out, 1, 1);
        self
    }

    /// Squeeze-and-excite module: GAP → FC(c/r) → FC(c) → scale. Adds MACs
    /// and params without changing the running shape.
    pub fn se(&mut self, name: &str, reduction: usize) -> &mut Self {
        let (c, h, w) = self.cur;
        let mid = (c / reduction).max(1);
        let macs = (c * mid * 2 + c * h * w) as u64;
        let params = (c * mid + mid + mid * c + c) as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            op: OpKind::Elementwise,
            macs,
            params,
            out_shape: (c, h, w),
            cut_ok: false,
            spatial_ok: false,
        });
        self
    }

    /// Element-wise layer (residual add, activation counted separately).
    pub fn elementwise(&mut self, name: &str) -> &mut Self {
        let (c, h, w) = self.cur;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            op: OpKind::Elementwise,
            macs: (c * h * w) as u64 / 2,
            params: 0,
            out_shape: (c, h, w),
            cut_ok: false,
            spatial_ok: true,
        });
        self
    }

    /// Appends an externally-built layer (for concat-style branch merges).
    pub fn push_raw(&mut self, layer: LayerSpec) -> &mut Self {
        self.cur = layer.out_shape;
        self.layers.push(layer);
        self
    }

    /// Finalizes into a [`ModelSpec`]. The layer after the last one is
    /// always a legal cut (the classifier boundary).
    pub fn build(mut self, top1: f32) -> ModelSpec {
        if let Some(l) = self.layers.last_mut() {
            l.cut_ok = true;
        }
        ModelSpec { name: self.name, input: self.input, layers: self.layers, top1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs_known_value() {
        // 3→16, k3 s2 p1 on 224: 112*112*9*3*16 MACs.
        let mut b = SpecBuilder::new("t", (3, 224, 224));
        b.conv("stem", 16, 3, 2, 1);
        let l = &b.layers[0];
        assert_eq!(l.macs, 112 * 112 * 9 * 3 * 16);
        assert_eq!(l.out_shape, (16, 112, 112));
        assert_eq!(l.params, (9 * 3 * 16 + 32) as u64);
    }

    #[test]
    fn dwconv_macs_scale_with_channels_not_square() {
        let mut b = SpecBuilder::new("t", (32, 56, 56));
        b.dwconv("dw", 3, 1, 1);
        assert_eq!(b.layers[0].macs, 56 * 56 * 9 * 32);
    }

    #[test]
    fn fc_counts_in_times_out() {
        let mut b = SpecBuilder::new("t", (512, 1, 1));
        b.fc("head", 1000);
        assert_eq!(b.layers[0].macs, 512_000);
        assert_eq!(b.layers[0].params, 513_000);
    }

    #[test]
    fn grouped_conv_divides_macs() {
        let mut b1 = SpecBuilder::new("a", (64, 14, 14));
        b1.conv("c", 64, 3, 1, 1);
        let dense = b1.layers[0].macs;
        let mut b2 = SpecBuilder::new("b", (64, 14, 14));
        b2.grouped_conv("c", 64, 3, 1, 1, 32);
        assert_eq!(b2.layers[0].macs, dense / 32);
    }

    #[test]
    fn build_marks_last_layer_cut() {
        let mut b = SpecBuilder::new("t", (3, 32, 32));
        b.conv("c", 8, 3, 1, 1);
        let m = b.build(70.0);
        assert!(m.layers.last().unwrap().cut_ok);
    }
}
