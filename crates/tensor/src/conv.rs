//! 2-D convolutions: im2col + GEMM standard path and a direct depthwise path.

use crate::gemm::gemm;
use crate::shape::{conv_out_size, Shape};
use crate::tensor::Tensor;

/// Convolution geometry: square kernel, symmetric padding, uniform stride.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dParams {
    pub kernel: usize,
    pub stride: usize,
    pub pad: usize,
}

impl Conv2dParams {
    /// Geometry with "same" padding for odd kernels at stride 1.
    pub fn same(kernel: usize) -> Self {
        assert!(kernel % 2 == 1, "same-padding requires an odd kernel");
        Conv2dParams { kernel, stride: 1, pad: kernel / 2 }
    }

    /// Output (h, w) for an input (h, w).
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_size(h, self.kernel, self.pad, self.stride),
            conv_out_size(w, self.kernel, self.pad, self.stride),
        )
    }
}

/// Unfolds input patches into a `(c_in*k*k) × (out_h*out_w)` column matrix
/// for one image (CHW slice). Out-of-bounds taps read as zero.
pub fn im2col(
    input: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut Vec<f32>,
) -> (usize, usize) {
    let (oh, ow) = p.out_hw(h, w);
    let rows = c_in * p.kernel * p.kernel;
    cols.clear();
    cols.resize(rows, 0.0); // ensure non-empty before the resize below
    cols.clear();
    cols.resize(rows * oh * ow, 0.0);
    for c in 0..c_in {
        for ky in 0..p.kernel {
            for kx in 0..p.kernel {
                let row = (c * p.kernel + ky) * p.kernel + kx;
                let out_base = row * oh * ow;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // stays zero
                    }
                    let in_row = (c * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        cols[out_base + oy * ow + ox] = input[in_row + ix as usize];
                    }
                }
            }
        }
    }
    (rows, oh * ow)
}

/// Folds a column matrix back into a CHW image, accumulating overlapping
/// taps — the adjoint of [`im2col`], used by conv backward.
pub fn col2im(
    cols: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    out: &mut [f32],
) {
    let (oh, ow) = p.out_hw(h, w);
    assert_eq!(out.len(), c_in * h * w);
    out.fill(0.0);
    for c in 0..c_in {
        for ky in 0..p.kernel {
            for kx in 0..p.kernel {
                let row = (c * p.kernel + ky) * p.kernel + kx;
                let col_base = row * oh * ow;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let out_row = (c * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[out_row + ix as usize] += cols[col_base + oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Standard convolution. `input` is NCHW, `weight` is `[c_out, c_in, k, k]`,
/// optional `bias` is `[c_out]`. Returns NCHW output.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, p: Conv2dParams) -> Tensor {
    let (n, c_in, h, w) = (
        input.shape().n(),
        input.shape().c(),
        input.shape().h(),
        input.shape().w(),
    );
    let ws = weight.shape();
    assert_eq!(ws.rank(), 4, "weight must be [c_out, c_in, k, k]");
    let c_out = ws.dim(0);
    assert_eq!(ws.dim(1), c_in, "weight c_in {} vs input c {}", ws.dim(1), c_in);
    assert_eq!(ws.dim(2), p.kernel);
    assert_eq!(ws.dim(3), p.kernel);
    let (oh, ow) = p.out_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, c_out, oh, ow));
    let mut cols = Vec::new();
    let img_in = c_in * h * w;
    let img_out = c_out * oh * ow;
    for b in 0..n {
        let (rows, spatial) = im2col(&input.data()[b * img_in..(b + 1) * img_in], c_in, h, w, p, &mut cols);
        gemm(
            c_out,
            rows,
            spatial,
            weight.data(),
            &cols,
            &mut out.data_mut()[b * img_out..(b + 1) * img_out],
        );
    }
    if let Some(bias) = bias {
        assert_eq!(bias.numel(), c_out, "bias length");
        let od = out.data_mut();
        for b in 0..n {
            for co in 0..c_out {
                let base = (b * c_out + co) * oh * ow;
                let bv = bias.data()[co];
                for v in &mut od[base..base + oh * ow] {
                    *v += bv;
                }
            }
        }
    }
    out
}

/// Depthwise convolution: `weight` is `[c, 1, k, k]`, each channel convolved
/// with its own filter. Direct (non-GEMM) implementation.
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: Conv2dParams,
) -> Tensor {
    let (n, c, h, w) = (
        input.shape().n(),
        input.shape().c(),
        input.shape().h(),
        input.shape().w(),
    );
    let ws = weight.shape();
    assert_eq!(ws.dim(0), c, "depthwise weight channels");
    assert_eq!(ws.dim(1), 1, "depthwise weight must be [c,1,k,k]");
    let (oh, ow) = p.out_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    let k = p.kernel;
    for b in 0..n {
        for ch in 0..c {
            let in_base = (b * c + ch) * h * w;
            let w_base = ch * k * k;
            let out_base = (b * c + ch) * oh * ow;
            let bv = bias.map_or(0.0, |bt| bt.data()[ch]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bv;
                    for ky in 0..k {
                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += input.data()[in_base + iy as usize * w + ix as usize]
                                * weight.data()[w_base + ky * k + kx];
                        }
                    }
                    out.data_mut()[out_base + oy * ow + ox] = acc;
                }
            }
        }
    }
    out
}

/// Naive reference convolution used for testing the im2col path.
pub fn conv2d_ref(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, p: Conv2dParams) -> Tensor {
    let (n, c_in, h, w) = (
        input.shape().n(),
        input.shape().c(),
        input.shape().h(),
        input.shape().w(),
    );
    let c_out = weight.shape().dim(0);
    let k = p.kernel;
    let (oh, ow) = p.out_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, c_out, oh, ow));
    for b in 0..n {
        for co in 0..c_out {
            let bv = bias.map_or(0.0, |bt| bt.data()[co]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bv;
                    for ci in 0..c_in {
                        for ky in 0..k {
                            let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at(b, ci, iy as usize, ix as usize)
                                    * weight.data()
                                        [((co * c_in + ci) * k + ky) * k + kx];
                            }
                        }
                    }
                    *out.at_mut(b, co, oy, ox) = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 conv with weight 1.0 is identity.
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::rand_uniform(Shape::nchw(1, 1, 4, 4), 1.0, &mut rng);
        let w = Tensor::full(Shape::nchw(1, 1, 1, 1), 1.0);
        let p = Conv2dParams { kernel: 1, stride: 1, pad: 0 };
        let y = conv2d(&x, &w, None, p);
        assert_close(y.data(), x.data(), 1e-6);
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // All-ones 3x3 kernel over all-ones 3x3 input with pad 1:
        // corner = 4, edge = 6, center = 9.
        let x = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let w = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let y = conv2d(&x, &w, None, Conv2dParams::same(3));
        let expect = [4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0];
        assert_close(y.data(), &expect, 1e-6);
    }

    #[test]
    fn im2col_matches_reference_conv() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(c_in, c_out, h, w, k, s, pad) in &[
            (3, 8, 8, 8, 3, 1, 1),
            (4, 4, 7, 9, 3, 2, 1),
            (2, 6, 11, 5, 5, 2, 2),
            (1, 2, 6, 6, 1, 1, 0),
            (3, 5, 10, 10, 7, 2, 3),
        ] {
            let p = Conv2dParams { kernel: k, stride: s, pad };
            let x = Tensor::rand_uniform(Shape::nchw(2, c_in, h, w), 1.0, &mut rng);
            let wt = Tensor::rand_uniform(Shape::nchw(c_out, c_in, k, k), 0.5, &mut rng);
            let b = Tensor::rand_uniform(Shape::d1(c_out), 0.5, &mut rng);
            let fast = conv2d(&x, &wt, Some(&b), p);
            let slow = conv2d_ref(&x, &wt, Some(&b), p);
            assert_eq!(fast.shape(), slow.shape());
            assert_close(fast.data(), slow.data(), 1e-3);
        }
    }

    #[test]
    fn depthwise_matches_grouped_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = 4;
        let p = Conv2dParams::same(3);
        let x = Tensor::rand_uniform(Shape::nchw(1, c, 6, 6), 1.0, &mut rng);
        let wt = Tensor::rand_uniform(Shape::nchw(c, 1, 3, 3), 0.5, &mut rng);
        let y = depthwise_conv2d(&x, &wt, None, p);
        // Reference: expand to a block-diagonal standard conv.
        let mut full = Tensor::zeros(Shape::nchw(c, c, 3, 3));
        for ch in 0..c {
            for t in 0..9 {
                full.data_mut()[((ch * c + ch) * 9) + t] = wt.data()[ch * 9 + t];
            }
        }
        let r = conv2d_ref(&x, &full, None, p);
        assert_close(y.data(), r.data(), 1e-4);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let mut rng = StdRng::seed_from_u64(11);
        let (c, h, w) = (2, 5, 5);
        let p = Conv2dParams { kernel: 3, stride: 2, pad: 1 };
        let x = Tensor::rand_uniform(Shape::nchw(1, c, h, w), 1.0, &mut rng);
        let mut cols = Vec::new();
        let (rows, spatial) = im2col(x.data(), c, h, w, p, &mut cols);
        let y: Vec<f32> = (0..rows * spatial)
            .map(|i| ((i * 2654435761) % 97) as f32 / 97.0 - 0.5)
            .collect();
        let lhs: f32 = cols.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0; c * h * w];
        col2im(&y, c, h, w, p, &mut back);
        let rhs: f32 = x.data().iter().zip(back.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn stride_two_halves_spatial() {
        let x = Tensor::zeros(Shape::nchw(1, 3, 224, 224));
        let w = Tensor::zeros(Shape::nchw(16, 3, 3, 3));
        let y = conv2d(&x, &w, None, Conv2dParams { kernel: 3, stride: 2, pad: 1 });
        assert_eq!(y.shape(), &Shape::nchw(1, 16, 112, 112));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_conv_matches_reference(
            c_in in 1usize..4, c_out in 1usize..4,
            h in 3usize..9, w in 3usize..9,
            k in prop::sample::select(vec![1usize, 3]),
            s in 1usize..3, seed in 0u64..500,
        ) {
            let pad = k / 2;
            let p = Conv2dParams { kernel: k, stride: s, pad };
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Tensor::rand_uniform(Shape::nchw(1, c_in, h, w), 1.0, &mut rng);
            let wt = Tensor::rand_uniform(Shape::nchw(c_out, c_in, k, k), 0.5, &mut rng);
            let fast = conv2d(&x, &wt, None, p);
            let slow = conv2d_ref(&x, &wt, None, p);
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
