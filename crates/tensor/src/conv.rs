//! 2-D convolutions: im2col + GEMM standard path and a direct depthwise path.
//!
//! Both hot paths are written for throughput:
//!
//! * [`conv2d`] parallelizes over batch images; each Rayon task pulls its
//!   im2col column buffer from the thread-local [`scratch`](crate::scratch)
//!   pool (zero steady-state allocation) and the bias add is fused into the
//!   GEMM epilogue via [`gemm_bias`].
//! * [`depthwise_conv2d`] parallelizes over `(batch × channel)` planes and
//!   splits every output plane into a bounds-check-free **interior** (with
//!   fully unrolled k=3 / k=5 inner loops) and a checked **border** band, so
//!   the per-tap `isize` casts and range tests of the naive kernel only run
//!   on the few output pixels whose receptive field actually leaves the
//!   input.

use crate::gemm::gemm_bias;
use crate::scratch;
use crate::shape::{conv_out_size, Shape};
use crate::simd;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Below this many output elements a kernel runs sequentially — parallel
/// dispatch overhead dominates for tiny problems.
const PAR_THRESHOLD: usize = 4096;

/// Convolution geometry: square kernel, symmetric padding, uniform stride.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dParams {
    pub kernel: usize,
    pub stride: usize,
    pub pad: usize,
}

impl Conv2dParams {
    /// Geometry with "same" padding for odd kernels at stride 1.
    pub fn same(kernel: usize) -> Self {
        assert!(kernel % 2 == 1, "same-padding requires an odd kernel");
        Conv2dParams { kernel, stride: 1, pad: kernel / 2 }
    }

    /// Output (h, w) for an input (h, w).
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_size(h, self.kernel, self.pad, self.stride),
            conv_out_size(w, self.kernel, self.pad, self.stride),
        )
    }
}

/// Unfolds input patches into a `(c_in*k*k) × (out_h*out_w)` column matrix
/// for one image (CHW slice). Out-of-bounds taps read as zero.
pub fn im2col(
    input: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut Vec<f32>,
) -> (usize, usize) {
    im2col_generic(0.0f32, input, c_in, h, w, p, cols)
}

/// [`im2col`] over i8 activation codes, used by the int8 compute path in
/// [`crate::int8`]. Out-of-bounds taps read as the zero code.
pub fn im2col_i8(
    input: &[i8],
    c_in: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut Vec<i8>,
) -> (usize, usize) {
    im2col_generic(0i8, input, c_in, h, w, p, cols)
}

/// Shared im2col body. At stride 1 each `(c, ky, kx)` unfold row is a set of
/// contiguous input-row segments, so the inner loop becomes one
/// `copy_from_slice` per output row instead of a load/store per pixel — the
/// stride-1 dense convs that dominate the supernet spend most of their
/// non-GEMM time here.
fn im2col_generic<T: Copy>(
    zero: T,
    input: &[T],
    c_in: usize,
    h: usize,
    w: usize,
    p: Conv2dParams,
    cols: &mut Vec<T>,
) -> (usize, usize) {
    let (oh, ow) = p.out_hw(h, w);
    let rows = c_in * p.kernel * p.kernel;
    cols.clear();
    cols.resize(rows * oh * ow, zero);
    for c in 0..c_in {
        for ky in 0..p.kernel {
            for kx in 0..p.kernel {
                let row = (c * p.kernel + ky) * p.kernel + kx;
                let out_base = row * oh * ow;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // stays zero
                    }
                    let in_row = (c * h + iy as usize) * w;
                    if p.stride == 1 {
                        // ix = ox + kx - pad must fall in [0, w): copy the
                        // in-bounds ox span in one memcpy.
                        let ox_lo = p.pad.saturating_sub(kx);
                        let ox_hi = (w + p.pad).saturating_sub(kx).min(ow);
                        if ox_lo >= ox_hi {
                            continue;
                        }
                        let ix0 = ox_lo + kx - p.pad;
                        let dst = out_base + oy * ow;
                        cols[dst + ox_lo..dst + ox_hi]
                            .copy_from_slice(&input[in_row + ix0..in_row + ix0 + (ox_hi - ox_lo)]);
                    } else {
                        for ox in 0..ow {
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            cols[out_base + oy * ow + ox] = input[in_row + ix as usize];
                        }
                    }
                }
            }
        }
    }
    (rows, oh * ow)
}

/// Folds a column matrix back into a CHW image, accumulating overlapping
/// taps — the adjoint of [`im2col`], used by conv backward.
pub fn col2im(cols: &[f32], c_in: usize, h: usize, w: usize, p: Conv2dParams, out: &mut [f32]) {
    let (oh, ow) = p.out_hw(h, w);
    assert_eq!(out.len(), c_in * h * w);
    out.fill(0.0);
    for c in 0..c_in {
        for ky in 0..p.kernel {
            for kx in 0..p.kernel {
                let row = (c * p.kernel + ky) * p.kernel + kx;
                let col_base = row * oh * ow;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let out_row = (c * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[out_row + ix as usize] += cols[col_base + oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Standard convolution. `input` is NCHW, `weight` is `[c_out, c_in, k, k]`,
/// optional `bias` is `[c_out]`. Returns NCHW output.
///
/// Batch images are processed in parallel; each worker unfolds into a pooled
/// scratch buffer and runs one GEMM with the bias fused into its epilogue.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, p: Conv2dParams) -> Tensor {
    let (n, c_in, h, w) =
        (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    let ws = weight.shape();
    assert_eq!(ws.rank(), 4, "weight must be [c_out, c_in, k, k]");
    let c_out = ws.dim(0);
    assert_eq!(ws.dim(1), c_in, "weight c_in {} vs input c {}", ws.dim(1), c_in);
    assert_eq!(ws.dim(2), p.kernel);
    assert_eq!(ws.dim(3), p.kernel);
    let (oh, ow) = p.out_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, c_out, oh, ow));
    let img_in = c_in * h * w;
    let img_out = c_out * oh * ow;
    let in_data = input.data();
    let w_data = weight.data();
    let bias_data = bias.map(|b| {
        assert_eq!(b.numel(), c_out, "bias length");
        b.data()
    });
    let run_image = |b_ix: usize, out_img: &mut [f32]| {
        scratch::with(|cols| {
            let img = &in_data[b_ix * img_in..(b_ix + 1) * img_in];
            let (rows, spatial) = im2col(img, c_in, h, w, p, cols);
            gemm_bias(c_out, rows, spatial, w_data, cols, bias_data, out_img);
        });
    };
    if n > 1 && n * img_out >= PAR_THRESHOLD {
        out.data_mut()
            .par_chunks_mut(img_out)
            .enumerate()
            .for_each(|(b_ix, out_img)| run_image(b_ix, out_img));
    } else {
        for (b_ix, out_img) in out.data_mut().chunks_exact_mut(img_out).enumerate() {
            run_image(b_ix, out_img);
        }
    }
    out
}

/// Depthwise convolution: `weight` is `[c, 1, k, k]`, each channel convolved
/// with its own filter. Direct (non-GEMM) implementation, parallel over
/// `(batch × channel)` planes with an interior/border split per plane.
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: Conv2dParams,
) -> Tensor {
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    let ws = weight.shape();
    assert_eq!(ws.dim(0), c, "depthwise weight channels");
    assert_eq!(ws.dim(1), 1, "depthwise weight must be [c,1,k,k]");
    let (oh, ow) = p.out_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    let k = p.kernel;
    let in_data = input.data();
    let w_data = weight.data();
    let bias_data = bias.map(|bt| bt.data());
    let plane_out = oh * ow;
    let plane_in = h * w;
    let run_plane = |plane: usize, out_plane: &mut [f32]| {
        let ch = plane % c;
        let inp = &in_data[plane * plane_in..(plane + 1) * plane_in];
        let wk = &w_data[ch * k * k..(ch + 1) * k * k];
        let bv = bias_data.map_or(0.0, |bd| bd[ch]);
        dw_plane(inp, wk, bv, h, w, oh, ow, p, out_plane);
    };
    let planes = n * c;
    if planes > 1 && planes * plane_out >= PAR_THRESHOLD {
        out.data_mut()
            .par_chunks_mut(plane_out)
            .enumerate()
            .for_each(|(plane, out_plane)| run_plane(plane, out_plane));
    } else {
        for (plane, out_plane) in out.data_mut().chunks_exact_mut(plane_out).enumerate() {
            run_plane(plane, out_plane);
        }
    }
    out
}

/// One depthwise output plane: checked border band + unchecked interior.
///
/// The interior is the rectangle of output pixels whose receptive field lies
/// entirely inside the input, so taps index without bounds tests; k=3 and
/// k=5 (the supernet's kernel choices) get fully unrolled inner loops.
#[allow(clippy::too_many_arguments)]
fn dw_plane(
    inp: &[f32],
    wk: &[f32],
    bv: f32,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    p: Conv2dParams,
    out: &mut [f32],
) {
    let (k, s, pad) = (p.kernel, p.stride, p.pad);
    // First/last output coords whose k-wide window stays in-bounds.
    let oy_lo = pad.div_ceil(s).min(oh);
    let ox_lo = pad.div_ceil(s).min(ow);
    let oy_hi = if h + pad >= k { ((h + pad - k) / s + 1).min(oh) } else { 0 };
    let ox_hi = if w + pad >= k { ((w + pad - k) / s + 1).min(ow) } else { 0 };
    if oy_lo >= oy_hi || ox_lo >= ox_hi {
        dw_checked(inp, wk, bv, h, w, ow, p, out, 0..oh, 0..ow);
        return;
    }
    // Border bands: top and bottom full-width, then the left/right strips of
    // the interior rows.
    dw_checked(inp, wk, bv, h, w, ow, p, out, 0..oy_lo, 0..ow);
    dw_checked(inp, wk, bv, h, w, ow, p, out, oy_hi..oh, 0..ow);
    dw_checked(inp, wk, bv, h, w, ow, p, out, oy_lo..oy_hi, 0..ox_lo);
    dw_checked(inp, wk, bv, h, w, ow, p, out, oy_lo..oy_hi, ox_hi..ow);
    match k {
        3 => dw_interior_k3(inp, wk, bv, w, ow, s, pad, out, oy_lo..oy_hi, ox_lo..ox_hi),
        5 => dw_interior_k5(inp, wk, bv, w, ow, s, pad, out, oy_lo..oy_hi, ox_lo..ox_hi),
        _ => dw_interior(inp, wk, bv, w, ow, p, out, oy_lo..oy_hi, ox_lo..ox_hi),
    }
}

/// Border path, restricted to an output sub-rectangle. Instead of testing
/// every tap, the valid `ky`/`kx` ranges are clipped up front per output
/// pixel: the surviving inner loop is a branch-free dot product over two
/// contiguous slices (consecutive `kx` taps read consecutive `ix`).
#[allow(clippy::too_many_arguments)]
fn dw_checked(
    inp: &[f32],
    wk: &[f32],
    bv: f32,
    h: usize,
    w: usize,
    ow: usize,
    p: Conv2dParams,
    out: &mut [f32],
    oy_range: std::ops::Range<usize>,
    ox_range: std::ops::Range<usize>,
) {
    let (k, s, pad) = (p.kernel, p.stride, p.pad);
    for oy in oy_range {
        // iy = oy*s + ky - pad must fall in [0, h).
        let ky_lo = pad.saturating_sub(oy * s);
        let ky_hi = (h + pad).saturating_sub(oy * s).min(k);
        for ox in ox_range.clone() {
            let kx_lo = pad.saturating_sub(ox * s);
            let kx_hi = (w + pad).saturating_sub(ox * s).min(k);
            let mut acc = bv;
            if kx_lo < kx_hi {
                let ix0 = ox * s + kx_lo - pad;
                let span = kx_hi - kx_lo;
                for ky in ky_lo..ky_hi {
                    let iy = oy * s + ky - pad;
                    let irow = &inp[iy * w + ix0..iy * w + ix0 + span];
                    let wrow = &wk[ky * k + kx_lo..ky * k + kx_hi];
                    for (iv, wv) in irow.iter().zip(wrow.iter()) {
                        acc += iv * wv;
                    }
                }
            }
            out[oy * ow + ox] = acc;
        }
    }
}

/// Generic-k interior: windows fully in-bounds, slice-iterator taps.
#[allow(clippy::too_many_arguments)]
fn dw_interior(
    inp: &[f32],
    wk: &[f32],
    bv: f32,
    w: usize,
    ow: usize,
    p: Conv2dParams,
    out: &mut [f32],
    oy_range: std::ops::Range<usize>,
    ox_range: std::ops::Range<usize>,
) {
    let (k, s, pad) = (p.kernel, p.stride, p.pad);
    for oy in oy_range {
        let iy0 = oy * s - pad;
        let out_row = &mut out[oy * ow..(oy + 1) * ow];
        for ox in ox_range.clone() {
            let ix0 = ox * s - pad;
            let mut acc = bv;
            for ky in 0..k {
                let irow = &inp[(iy0 + ky) * w + ix0..(iy0 + ky) * w + ix0 + k];
                let wrow = &wk[ky * k..(ky + 1) * k];
                for (iv, wv) in irow.iter().zip(wrow.iter()) {
                    acc += iv * wv;
                }
            }
            out_row[ox] = acc;
        }
    }
}

/// Fully unrolled 3×3 interior.
#[allow(clippy::too_many_arguments)]
fn dw_interior_k3(
    inp: &[f32],
    wk: &[f32],
    bv: f32,
    w: usize,
    ow: usize,
    s: usize,
    pad: usize,
    out: &mut [f32],
    oy_range: std::ops::Range<usize>,
    ox_range: std::ops::Range<usize>,
) {
    let wk: &[f32; 9] = wk.try_into().expect("k=3 weight plane");
    // At stride 1 the interior row is a contiguous sliding window — hand it
    // to the AVX2 row kernel when available (8 outputs per step).
    let use_simd = s == 1 && simd::simd_active();
    for oy in oy_range {
        let iy0 = oy * s - pad;
        let r0 = &inp[iy0 * w..(iy0 + 1) * w];
        let r1 = &inp[(iy0 + 1) * w..(iy0 + 2) * w];
        let r2 = &inp[(iy0 + 2) * w..(iy0 + 3) * w];
        let out_row = &mut out[oy * ow..(oy + 1) * ow];
        if use_simd {
            let base = ox_range.start - pad; // ix of the first interior tap
            if simd::dw_row_s1(
                &[&r0[base..], &r1[base..], &r2[base..]],
                wk,
                bv,
                &mut out_row[ox_range.clone()],
            ) {
                continue;
            }
        }
        for ox in ox_range.clone() {
            let i = ox * s - pad;
            out_row[ox] = bv
                + r0[i] * wk[0]
                + r0[i + 1] * wk[1]
                + r0[i + 2] * wk[2]
                + r1[i] * wk[3]
                + r1[i + 1] * wk[4]
                + r1[i + 2] * wk[5]
                + r2[i] * wk[6]
                + r2[i + 1] * wk[7]
                + r2[i + 2] * wk[8];
        }
    }
}

/// Fully unrolled 5×5 interior.
#[allow(clippy::too_many_arguments)]
fn dw_interior_k5(
    inp: &[f32],
    wk: &[f32],
    bv: f32,
    w: usize,
    ow: usize,
    s: usize,
    pad: usize,
    out: &mut [f32],
    oy_range: std::ops::Range<usize>,
    ox_range: std::ops::Range<usize>,
) {
    let wk: &[f32; 25] = wk.try_into().expect("k=5 weight plane");
    let use_simd = s == 1 && simd::simd_active();
    for oy in oy_range {
        let iy0 = oy * s - pad;
        let r0 = &inp[iy0 * w..(iy0 + 1) * w];
        let r1 = &inp[(iy0 + 1) * w..(iy0 + 2) * w];
        let r2 = &inp[(iy0 + 2) * w..(iy0 + 3) * w];
        let r3 = &inp[(iy0 + 3) * w..(iy0 + 4) * w];
        let r4 = &inp[(iy0 + 4) * w..(iy0 + 5) * w];
        let out_row = &mut out[oy * ow..(oy + 1) * ow];
        if use_simd {
            let base = ox_range.start - pad; // ix of the first interior tap
            if simd::dw_row_s1(
                &[&r0[base..], &r1[base..], &r2[base..], &r3[base..], &r4[base..]],
                wk,
                bv,
                &mut out_row[ox_range.clone()],
            ) {
                continue;
            }
        }
        for ox in ox_range.clone() {
            let i = ox * s - pad;
            let mut acc = bv;
            acc += r0[i] * wk[0]
                + r0[i + 1] * wk[1]
                + r0[i + 2] * wk[2]
                + r0[i + 3] * wk[3]
                + r0[i + 4] * wk[4];
            acc += r1[i] * wk[5]
                + r1[i + 1] * wk[6]
                + r1[i + 2] * wk[7]
                + r1[i + 3] * wk[8]
                + r1[i + 4] * wk[9];
            acc += r2[i] * wk[10]
                + r2[i + 1] * wk[11]
                + r2[i + 2] * wk[12]
                + r2[i + 3] * wk[13]
                + r2[i + 4] * wk[14];
            acc += r3[i] * wk[15]
                + r3[i + 1] * wk[16]
                + r3[i + 2] * wk[17]
                + r3[i + 3] * wk[18]
                + r3[i + 4] * wk[19];
            acc += r4[i] * wk[20]
                + r4[i + 1] * wk[21]
                + r4[i + 2] * wk[22]
                + r4[i + 3] * wk[23]
                + r4[i + 4] * wk[24];
            out_row[ox] = acc;
        }
    }
}

/// Naive reference convolution used for testing the im2col path.
pub fn conv2d_ref(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: Conv2dParams,
) -> Tensor {
    let (n, c_in, h, w) =
        (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    let c_out = weight.shape().dim(0);
    let k = p.kernel;
    let (oh, ow) = p.out_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, c_out, oh, ow));
    for b in 0..n {
        for co in 0..c_out {
            let bv = bias.map_or(0.0, |bt| bt.data()[co]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bv;
                    for ci in 0..c_in {
                        for ky in 0..k {
                            let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at(b, ci, iy as usize, ix as usize)
                                    * weight.data()[((co * c_in + ci) * k + ky) * k + kx];
                            }
                        }
                    }
                    *out.at_mut(b, co, oy, ox) = acc;
                }
            }
        }
    }
    out
}

/// Naive reference depthwise convolution (per-tap bounds checks everywhere),
/// used to validate the interior/border fast path.
pub fn depthwise_conv2d_ref(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: Conv2dParams,
) -> Tensor {
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    let (oh, ow) = p.out_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    let k = p.kernel;
    for b in 0..n {
        for ch in 0..c {
            let in_base = (b * c + ch) * h * w;
            let w_base = ch * k * k;
            let out_base = (b * c + ch) * oh * ow;
            let bv = bias.map_or(0.0, |bt| bt.data()[ch]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bv;
                    for ky in 0..k {
                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += input.data()[in_base + iy as usize * w + ix as usize]
                                * weight.data()[w_base + ky * k + kx];
                        }
                    }
                    out.data_mut()[out_base + oy * ow + ox] = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 conv with weight 1.0 is identity.
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::rand_uniform(Shape::nchw(1, 1, 4, 4), 1.0, &mut rng);
        let w = Tensor::full(Shape::nchw(1, 1, 1, 1), 1.0);
        let p = Conv2dParams { kernel: 1, stride: 1, pad: 0 };
        let y = conv2d(&x, &w, None, p);
        assert_close(y.data(), x.data(), 1e-6);
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // All-ones 3x3 kernel over all-ones 3x3 input with pad 1:
        // corner = 4, edge = 6, center = 9.
        let x = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let w = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let y = conv2d(&x, &w, None, Conv2dParams::same(3));
        let expect = [4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0];
        assert_close(y.data(), &expect, 1e-6);
    }

    #[test]
    fn im2col_matches_reference_conv() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(c_in, c_out, h, w, k, s, pad) in &[
            (3, 8, 8, 8, 3, 1, 1),
            (4, 4, 7, 9, 3, 2, 1),
            (2, 6, 11, 5, 5, 2, 2),
            (1, 2, 6, 6, 1, 1, 0),
            (3, 5, 10, 10, 7, 2, 3),
        ] {
            let p = Conv2dParams { kernel: k, stride: s, pad };
            let x = Tensor::rand_uniform(Shape::nchw(2, c_in, h, w), 1.0, &mut rng);
            let wt = Tensor::rand_uniform(Shape::nchw(c_out, c_in, k, k), 0.5, &mut rng);
            let b = Tensor::rand_uniform(Shape::d1(c_out), 0.5, &mut rng);
            let fast = conv2d(&x, &wt, Some(&b), p);
            let slow = conv2d_ref(&x, &wt, Some(&b), p);
            assert_eq!(fast.shape(), slow.shape());
            assert_close(fast.data(), slow.data(), 1e-3);
        }
    }

    #[test]
    fn depthwise_matches_grouped_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = 4;
        let p = Conv2dParams::same(3);
        let x = Tensor::rand_uniform(Shape::nchw(1, c, 6, 6), 1.0, &mut rng);
        let wt = Tensor::rand_uniform(Shape::nchw(c, 1, 3, 3), 0.5, &mut rng);
        let y = depthwise_conv2d(&x, &wt, None, p);
        // Reference: expand to a block-diagonal standard conv.
        let mut full = Tensor::zeros(Shape::nchw(c, c, 3, 3));
        for ch in 0..c {
            for t in 0..9 {
                full.data_mut()[((ch * c + ch) * 9) + t] = wt.data()[ch * 9 + t];
            }
        }
        let r = conv2d_ref(&x, &full, None, p);
        assert_close(y.data(), r.data(), 1e-4);
    }

    #[test]
    fn depthwise_border_heavy_geometries_match_reference() {
        // Geometries chosen so most (or all) of the plane is border: h/w near
        // k, stride 2, pad up to 2, non-square.
        let mut rng = StdRng::seed_from_u64(12);
        for &(c, h, w, k, s, pad) in &[
            (3, 5, 5, 5, 1, 2), // interior is a single pixel
            (2, 4, 7, 5, 2, 2), // h < k without padding
            (4, 3, 3, 3, 2, 1), // everything border
            (2, 28, 28, 5, 2, 2),
            (1, 6, 11, 7, 2, 3),
            (5, 9, 4, 3, 1, 1),
        ] {
            let p = Conv2dParams { kernel: k, stride: s, pad };
            let x = Tensor::rand_uniform(Shape::nchw(2, c, h, w), 1.0, &mut rng);
            let wt = Tensor::rand_uniform(Shape::nchw(c, 1, k, k), 0.5, &mut rng);
            let b = Tensor::rand_uniform(Shape::d1(c), 0.5, &mut rng);
            let fast = depthwise_conv2d(&x, &wt, Some(&b), p);
            let slow = depthwise_conv2d_ref(&x, &wt, Some(&b), p);
            assert_eq!(fast.shape(), slow.shape());
            assert_close(fast.data(), slow.data(), 1e-4);
        }
    }

    #[test]
    fn scratch_pool_reuse_is_deterministic() {
        // Repeated forwards through the pooled-scratch paths must be
        // bit-identical (the pool hands back dirty buffers; kernels must
        // fully overwrite or zero what they read).
        let mut rng = StdRng::seed_from_u64(21);
        let p = Conv2dParams { kernel: 3, stride: 2, pad: 1 };
        let x = Tensor::rand_uniform(Shape::nchw(3, 4, 9, 7), 1.0, &mut rng);
        let wt = Tensor::rand_uniform(Shape::nchw(6, 4, 3, 3), 0.5, &mut rng);
        let b = Tensor::rand_uniform(Shape::d1(6), 0.5, &mut rng);
        let first = conv2d(&x, &wt, Some(&b), p);
        for _ in 0..3 {
            let again = conv2d(&x, &wt, Some(&b), p);
            assert_eq!(first.data(), again.data(), "conv2d must be deterministic");
        }
        let dwt = Tensor::rand_uniform(Shape::nchw(4, 1, 3, 3), 0.5, &mut rng);
        let d1 = depthwise_conv2d(&x, &dwt, None, p);
        let d2 = depthwise_conv2d(&x, &dwt, None, p);
        assert_eq!(d1.data(), d2.data(), "depthwise must be deterministic");
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let mut rng = StdRng::seed_from_u64(11);
        let (c, h, w) = (2, 5, 5);
        let p = Conv2dParams { kernel: 3, stride: 2, pad: 1 };
        let x = Tensor::rand_uniform(Shape::nchw(1, c, h, w), 1.0, &mut rng);
        let mut cols = Vec::new();
        let (rows, spatial) = im2col(x.data(), c, h, w, p, &mut cols);
        let y: Vec<f32> =
            (0..rows * spatial).map(|i| ((i * 2654435761) % 97) as f32 / 97.0 - 0.5).collect();
        let lhs: f32 = cols.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0; c * h * w];
        col2im(&y, c, h, w, p, &mut back);
        let rhs: f32 = x.data().iter().zip(back.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn stride_two_halves_spatial() {
        let x = Tensor::zeros(Shape::nchw(1, 3, 224, 224));
        let w = Tensor::zeros(Shape::nchw(16, 3, 3, 3));
        let y = conv2d(&x, &w, None, Conv2dParams { kernel: 3, stride: 2, pad: 1 });
        assert_eq!(y.shape(), &Shape::nchw(1, 16, 112, 112));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_conv_matches_reference(
            c_in in 1usize..4, c_out in 1usize..4,
            h in 3usize..9, w in 3usize..9,
            k in prop::sample::select(vec![1usize, 3]),
            s in 1usize..3, seed in 0u64..500,
        ) {
            let pad = k / 2;
            let p = Conv2dParams { kernel: k, stride: s, pad };
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Tensor::rand_uniform(Shape::nchw(1, c_in, h, w), 1.0, &mut rng);
            let wt = Tensor::rand_uniform(Shape::nchw(c_out, c_in, k, k), 0.5, &mut rng);
            let fast = conv2d(&x, &wt, None, p);
            let slow = conv2d_ref(&x, &wt, None, p);
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_batched_conv_border_heavy_matches_reference(
            n in 1usize..4, c_in in 1usize..3, c_out in 1usize..4,
            h in 3usize..10, dw in 1usize..4,
            k in prop::sample::select(vec![1usize, 3, 5]),
            s in 1usize..3, pad in 1usize..3, seed in 0u64..500,
        ) {
            let w = h + dw; // non-square planes
            prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
            let p = Conv2dParams { kernel: k, stride: s, pad };
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Tensor::rand_uniform(Shape::nchw(n, c_in, h, w), 1.0, &mut rng);
            let wt = Tensor::rand_uniform(Shape::nchw(c_out, c_in, k, k), 0.5, &mut rng);
            let b = Tensor::rand_uniform(Shape::d1(c_out), 0.5, &mut rng);
            let fast = conv2d(&x, &wt, Some(&b), p);
            let slow = conv2d_ref(&x, &wt, Some(&b), p);
            prop_assert_eq!(fast.shape(), slow.shape());
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_depthwise_border_heavy_matches_reference(
            n in 1usize..3, c in 1usize..5,
            h in 2usize..9, dw in 1usize..4,
            k in prop::sample::select(vec![3usize, 5, 7]),
            s in 1usize..3, pad in 1usize..4, seed in 0u64..500,
        ) {
            let w = h + dw; // h ≠ w exercises row/col border asymmetry
            prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
            let p = Conv2dParams { kernel: k, stride: s, pad };
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Tensor::rand_uniform(Shape::nchw(n, c, h, w), 1.0, &mut rng);
            let wt = Tensor::rand_uniform(Shape::nchw(c, 1, k, k), 0.5, &mut rng);
            let fast = depthwise_conv2d(&x, &wt, None, p);
            let slow = depthwise_conv2d_ref(&x, &wt, None, p);
            prop_assert_eq!(fast.shape(), slow.shape());
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
