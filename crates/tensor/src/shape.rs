//! Shape algebra for NCHW tensors.

use std::fmt;

/// A tensor shape. Stored as up to 4 dimensions (N, C, H, W); lower-rank
/// tensors use the trailing dimensions (a vector of length `n` is `[n]`,
/// a matrix is `[rows, cols]`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// 1-D shape.
    pub fn d1(n: usize) -> Self {
        Shape(vec![n])
    }

    /// 2-D shape (rows, cols).
    pub fn d2(r: usize, c: usize) -> Self {
        Shape(vec![r, c])
    }

    /// 4-D NCHW shape.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape(vec![n, c, h, w])
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension `i`, panicking with a clear message when out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Batch dimension for a 4-D shape.
    pub fn n(&self) -> usize {
        assert_eq!(self.rank(), 4, "n() requires a 4-D shape, got {self}");
        self.0[0]
    }

    /// Channel dimension for a 4-D shape.
    pub fn c(&self) -> usize {
        assert_eq!(self.rank(), 4, "c() requires a 4-D shape, got {self}");
        self.0[1]
    }

    /// Height dimension for a 4-D shape.
    pub fn h(&self) -> usize {
        assert_eq!(self.rank(), 4, "h() requires a 4-D shape, got {self}");
        self.0[2]
    }

    /// Width dimension for a 4-D shape.
    pub fn w(&self) -> usize {
        assert_eq!(self.rank(), 4, "w() requires a 4-D shape, got {self}");
        self.0[3]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

/// Output spatial size of a convolution/pooling window.
///
/// `size` is the input extent, `k` the kernel extent, `pad` the (symmetric)
/// zero padding and `stride` the step.
pub fn conv_out_size(size: usize, k: usize, pad: usize, stride: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(size + 2 * pad >= k, "window {k} larger than padded input {size}+2*{pad}");
    (size + 2 * pad - k) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_dims() {
        let s = Shape::nchw(2, 3, 8, 8);
        assert_eq!(s.numel(), 2 * 3 * 8 * 8);
        assert_eq!((s.n(), s.c(), s.h(), s.w()), (2, 3, 8, 8));
        assert_eq!(s.rank(), 4);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
        let m = Shape::d2(3, 7);
        assert_eq!(m.strides(), vec![7, 1]);
    }

    #[test]
    fn conv_out_size_matches_known_cases() {
        // 224x224, k=3, pad=1, stride=2 -> 112 (MobileNet stem).
        assert_eq!(conv_out_size(224, 3, 1, 2), 112);
        // Same-padding k=3 s=1 preserves size.
        assert_eq!(conv_out_size(56, 3, 1, 1), 56);
        // 7x7 s=2 pad=3 on 224 -> 112 (ResNet stem).
        assert_eq!(conv_out_size(224, 7, 3, 2), 112);
        // Valid 1x1.
        assert_eq!(conv_out_size(14, 1, 0, 1), 14);
    }

    #[test]
    #[should_panic]
    fn conv_out_size_rejects_oversized_kernel() {
        conv_out_size(2, 5, 0, 1);
    }
}
