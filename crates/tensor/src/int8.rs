//! End-to-end int8 compute path: quantized GEMM with i32 accumulation and a
//! fused requantize epilogue.
//!
//! The wire quantization in [`crate::quant`] only shrinks *transfer* cost —
//! compute still runs in f32 after dequantize. This module makes low-bit
//! subnet configs win on compute too:
//!
//! * **Weights** ([`QGemmWeights`]) are quantized per output channel (one
//!   scale per GEMM row) to codes in `[-63, 63]` ([`W_QMAX`]). The 7-bit
//!   bound is what makes the AVX2 `vpmaddubsw` inner product exact: each
//!   instruction sums two adjacent `u8 × i8` products into an i16, and
//!   `255·63·2 = 32130 < i16::MAX`, so the pair sum can never saturate.
//! * **Activations** are quantized per tensor to `[-127, 127]` ([`A_QMAX`])
//!   with round-to-nearest-even — the same formula as the AVX2 encode, so
//!   codes are bit-identical across paths.
//! * **The GEMM** accumulates in i32, which is exact for any `k` used here
//!   (`|acc| ≤ k · 63 · 255 < 2³¹` for `k` up to ~130 000). The vector
//!   kernel feeds `vpmaddubsw` *unsigned* activation bytes, so the packed
//!   panels store `code + 128` (`code ^ 0x80`) and the driver subtracts
//!   `128 · Σ_k w[r,k]` — precomputed per weight row — after each tile.
//!   Scalar and SIMD paths therefore produce **identical i32 accumulators**.
//! * **Epilogues** are fused per register tile (the accumulator never
//!   round-trips through memory as a full i32 matrix): either dequantize to
//!   f32 with an optional bias ([`qgemm_f32`]) or requantize back to i8
//!   codes ([`qgemm_requant`]). Epilogue arithmetic is the same scalar f32
//!   code on both paths, so whole-op outputs stay bit-identical — a property
//!   the distributed executor relies on for cross-device determinism, and
//!   which `tests/int8_exact.rs` locks in.
//!
//! Packed-panel layout (shared by [`crate::simd::qgemm_tile_16`]): for each
//! 16-column panel, `k` is walked in groups of 4; one group is 64 bytes —
//! 16 columns × 4 consecutive k-bytes, each byte an offset activation code.
//! Weight rows are stored padded to a multiple of 4 codes (zeros) so the
//! kernel's 4-byte broadcast loads never read past the row.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::conv::{im2col_i8, Conv2dParams};
use crate::scratch;
use crate::shape::Shape;
use crate::simd;
use crate::tensor::Tensor;

/// Weight-code magnitude bound. 63 (7 bits) keeps the `vpmaddubsw` i16 pair
/// sums saturation-free; see the module docs.
pub const W_QMAX: f32 = 63.0;
/// Activation-code magnitude bound (full signed 8-bit range).
pub const A_QMAX: f32 = 127.0;

/// Register-tile rows (matches the f32 GEMM's `MR`).
const QMR: usize = 4;
/// Register-tile columns (matches the f32 GEMM's `NR`).
const QNR: usize = 16;
/// k-elements per packed group (one `vpmaddubsw`+`vpmaddwd` step).
const K_GROUP: usize = 4;

/// A weight matrix quantized for int8 GEMM: `m × k` row-major i8 codes with
/// one scale per row (per output channel), rows zero-padded to a multiple of
/// [`K_GROUP`], plus the per-row code sums the vector path needs to undo the
/// +128 activation offset.
#[derive(Clone, Debug)]
pub struct QGemmWeights {
    codes: Vec<i8>,
    scales: Vec<f32>,
    row_sums: Vec<i32>,
    m: usize,
    k: usize,
    k_pad: usize,
}

impl QGemmWeights {
    /// Quantizes a row-major `m × k` f32 matrix, one symmetric scale per row.
    pub fn quantize(m: usize, k: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), m * k, "weight matrix must be m*k");
        assert!(k > 0, "weight rows must be non-empty");
        let k_pad = k.div_ceil(K_GROUP) * K_GROUP;
        let mut codes = vec![0i8; m * k_pad];
        let mut scales = Vec::with_capacity(m);
        let mut row_sums = Vec::with_capacity(m);
        for (row, dst) in data.chunks_exact(k).zip(codes.chunks_exact_mut(k_pad)) {
            let absmax = row.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let scale = if absmax == 0.0 { 1.0 } else { absmax / W_QMAX };
            let inv = 1.0 / scale;
            let mut sum = 0i32;
            for (c, &v) in dst.iter_mut().zip(row.iter()) {
                let q = ((v * inv).clamp(-W_QMAX, W_QMAX)).round_ties_even() as i8;
                *c = q;
                sum += q as i32;
            }
            scales.push(scale);
            row_sums.push(sum);
        }
        QGemmWeights { codes, scales, row_sums, m, k, k_pad }
    }

    /// Number of rows (output channels).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Logical k (columns before padding).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-row quantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Raw codes of row `i` (padded tail included, pad codes are 0).
    fn row(&self, i: usize) -> &[i8] {
        &self.codes[i * self.k_pad..(i + 1) * self.k_pad]
    }

    /// Reconstructs the f32 weights (tests/diagnostics).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.m * self.k);
        for i in 0..self.m {
            let s = self.scales[i];
            out.extend(self.row(i)[..self.k].iter().map(|&c| c as f32 * s));
        }
        out
    }
}

/// Quantizes activations per tensor into `out` (resized to `data.len()`)
/// and returns the scale. Codes are in `[-A_QMAX, A_QMAX]`, rounded
/// half-to-even — bit-identical between the scalar and AVX2 paths.
pub fn quantize_activations_into(data: &[f32], out: &mut Vec<i8>) -> f32 {
    out.clear();
    out.resize(data.len(), 0);
    let use_simd = simd::simd_active();
    let absmax = if use_simd { simd::absmax(data) } else { None }
        .unwrap_or_else(|| data.iter().fold(0.0f32, |a, &v| a.max(v.abs())));
    let scale = if absmax == 0.0 { 1.0 } else { absmax / A_QMAX };
    let inv = 1.0 / scale;
    if !(use_simd && simd::encode_i8(data, inv, A_QMAX, out)) {
        for (c, &v) in out.iter_mut().zip(data.iter()) {
            *c = ((v * inv).clamp(-A_QMAX, A_QMAX)).round_ties_even() as i8;
        }
    }
    scale
}

/// Convenience wrapper around [`quantize_activations_into`].
pub fn quantize_activations(data: &[f32]) -> (Vec<i8>, f32) {
    let mut codes = Vec::new();
    let scale = quantize_activations_into(data, &mut codes);
    (codes, scale)
}

/// The fused requantize step applied to one i32 accumulator:
/// `round_ties_even(clamp(acc · m, ±A_QMAX))`. Clamping *before* rounding
/// matches the AVX2 encode kernels (min/max then `vcvtps2dq`), keeping the
/// epilogue bit-exact across paths.
#[inline]
pub fn requant_one(acc: i32, multiplier: f32) -> i8 {
    ((acc as f32 * multiplier).clamp(-A_QMAX, A_QMAX)).round_ties_even() as i8
}

/// How the activation operand is stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BLayout {
    /// Row-major `k × n` (im2col columns: one unfold row per k).
    KxN,
    /// Row-major `n × k` (a batch of activation vectors, as in a linear
    /// layer — the logical B transposed).
    NxK,
}

/// Packs activation codes into offset-u8 panels for the vector kernel; see
/// the module docs for the layout. Out-of-range columns and padded k pick up
/// code 0 (byte 128), which contributes nothing after offset correction.
fn pack_b(b: &[i8], k: usize, n: usize, layout: BLayout, packed: &mut [u8]) {
    let groups = k.div_ceil(K_GROUP);
    let panel_bytes = groups * K_GROUP * QNR;
    for (jp, panel) in packed.chunks_exact_mut(panel_bytes).enumerate() {
        let j0 = jp * QNR;
        for g in 0..groups {
            let kb = g * K_GROUP;
            let dst = &mut panel[g * K_GROUP * QNR..(g + 1) * K_GROUP * QNR];
            for j in 0..QNR {
                let col = j0 + j;
                for kk in 0..K_GROUP {
                    let kidx = kb + kk;
                    let code = if col < n && kidx < k {
                        match layout {
                            BLayout::KxN => b[kidx * n + col],
                            BLayout::NxK => b[col * k + kidx],
                        }
                    } else {
                        0
                    };
                    dst[j * K_GROUP + kk] = (code as u8) ^ 0x80;
                }
            }
        }
    }
}

/// Reads activation element `(kidx, col)` of the logical `k × n` B matrix.
#[inline]
fn b_at(b: &[i8], k: usize, n: usize, layout: BLayout, kidx: usize, col: usize) -> i32 {
    match layout {
        BLayout::KxN => b[kidx * n + col] as i32,
        BLayout::NxK => b[col * k + kidx] as i32,
    }
}

/// Row-segment sink for [`qgemm_drive`]: called as `(row, j0, nr, acc_seg)`
/// with the exact i32 accumulators for columns `j0..j0 + nr`.
type Epilogue<'a> = &'a mut dyn FnMut(usize, usize, usize, &[i32; QNR]);

/// Core quantized-GEMM driver: walks `MR×NR` tiles, produces exact i32
/// accumulators, and hands each finished row segment to `epilogue(row, j0,
/// nr, acc_seg)` while it is still register/cache hot. The vector and scalar
/// paths produce identical accumulators (see module docs), so the choice of
/// path never changes the output.
fn qgemm_drive(w: &QGemmWeights, b: &[i8], n: usize, layout: BLayout, epilogue: Epilogue) {
    match layout {
        BLayout::KxN => assert_eq!(b.len(), w.k * n, "B must be k*n"),
        BLayout::NxK => assert_eq!(b.len(), n * w.k, "B must be n*k"),
    }
    if w.m == 0 || n == 0 {
        return;
    }
    let groups = w.k_pad / K_GROUP;
    let n_panels = n.div_ceil(QNR);
    if simd::simd_active() && simd::detected() {
        scratch::with_u8(|packed| {
            packed.clear();
            packed.resize(n_panels * groups * K_GROUP * QNR, 0);
            pack_b(b, w.k, n, layout, packed);
            let mut i0 = 0;
            while i0 < w.m {
                let mr = QMR.min(w.m - i0);
                // Remainder tiles alias the last valid row; only `mr` rows
                // of the accumulator are consumed.
                let rows: [&[i8]; QMR] = [
                    w.row(i0),
                    w.row(i0 + 1.min(mr - 1)),
                    w.row(i0 + 2.min(mr - 1)),
                    w.row(i0 + 3.min(mr - 1)),
                ];
                for (jp, panel) in
                    packed.chunks_exact(groups * K_GROUP * QNR).take(n_panels).enumerate()
                {
                    let j0 = jp * QNR;
                    let nr = QNR.min(n - j0);
                    let mut acc = [[0i32; QNR]; QMR];
                    if !simd::qgemm_tile_16(groups, &rows, panel, &mut acc) {
                        // CPU support cannot vanish mid-run; fall back to the
                        // scalar tile over the same offset panel regardless.
                        scalar_tile_from_panel(groups, &rows, panel, &mut acc);
                    }
                    for (ri, acc_row) in acc.iter_mut().enumerate().take(mr) {
                        // Undo the +128 activation offset: raw − 128·Σw.
                        let corr = 128 * w.row_sums[i0 + ri];
                        for v in acc_row.iter_mut() {
                            *v -= corr;
                        }
                        epilogue(i0 + ri, j0, nr, acc_row);
                    }
                }
                i0 += mr;
            }
        });
    } else {
        // Portable path: per-row i32 accumulation straight from the codes
        // (no packing, no offset), then the same fused epilogue per segment.
        scratch::with_i32(|acc_row| {
            for i in 0..w.m {
                acc_row.clear();
                acc_row.resize(n, 0);
                let a_row = &w.row(i)[..w.k];
                match layout {
                    BLayout::NxK => {
                        for (j, av) in acc_row.iter_mut().enumerate() {
                            let brow = &b[j * w.k..j * w.k + w.k];
                            let mut s = 0i32;
                            for (&wa, &ba) in a_row.iter().zip(brow.iter()) {
                                s += wa as i32 * ba as i32;
                            }
                            *av = s;
                        }
                    }
                    BLayout::KxN => {
                        for (kk, &wa) in a_row.iter().enumerate() {
                            if wa == 0 {
                                continue;
                            }
                            let wa = wa as i32;
                            let brow = &b[kk * n..kk * n + n];
                            for (av, &ba) in acc_row.iter_mut().zip(brow.iter()) {
                                *av += wa * ba as i32;
                            }
                        }
                    }
                }
                let mut seg = [0i32; QNR];
                for j0 in (0..n).step_by(QNR) {
                    let nr = QNR.min(n - j0);
                    seg[..nr].copy_from_slice(&acc_row[j0..j0 + nr]);
                    epilogue(i, j0, nr, &seg);
                }
            }
        });
    }
}

/// Scalar register tile over the *packed offset* panel — only reached if the
/// vector wrapper declines after the driver chose the packed path; kept so
/// that path is total. Produces the same raw (offset) accumulators as the
/// vector kernel.
fn scalar_tile_from_panel(
    groups: usize,
    rows: &[&[i8]; QMR],
    panel: &[u8],
    acc: &mut [[i32; QNR]; QMR],
) {
    for g in 0..groups {
        let grp = &panel[g * K_GROUP * QNR..(g + 1) * K_GROUP * QNR];
        for (r, row) in rows.iter().enumerate() {
            let wv = &row[g * K_GROUP..(g + 1) * K_GROUP];
            for j in 0..QNR {
                let mut s = acc[r][j];
                for kk in 0..K_GROUP {
                    s += wv[kk] as i32 * grp[j * K_GROUP + kk] as i32;
                }
                acc[r][j] = s;
            }
        }
    }
}

/// Quantized GEMM with fused dequantize epilogue:
/// `out[i*n+j] = acc[i][j] · (scales[i] · b_scale) + bias[i]`, with `b` the
/// logical `k × n` activation codes stored row-major (im2col layout).
pub fn qgemm_f32(
    w: &QGemmWeights,
    b: &[i8],
    n: usize,
    b_scale: f32,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(out.len(), w.m * n, "out must be m*n");
    if let Some(bv) = bias {
        assert_eq!(bv.len(), w.m, "bias must have one entry per row");
    }
    qgemm_drive(w, b, n, BLayout::KxN, &mut |i, j0, nr, acc| {
        let mul = w.scales[i] * b_scale;
        let add = bias.map_or(0.0, |bv| bv[i]);
        let base = i * n + j0;
        for (o, &a) in out[base..base + nr].iter_mut().zip(acc.iter()) {
            *o = a as f32 * mul + add;
        }
    });
}

/// Quantized GEMM with fused requantize epilogue: output is i8 codes at
/// `out_scale` (`out[i*n+j] = requant(acc, scales[i]·b_scale/out_scale)`),
/// ready to travel the wire or feed the next int8 stage without leaving the
/// 8-bit domain.
pub fn qgemm_requant(
    w: &QGemmWeights,
    b: &[i8],
    n: usize,
    b_scale: f32,
    out_scale: f32,
    out: &mut [i8],
) {
    assert_eq!(out.len(), w.m * n, "out must be m*n");
    assert!(out_scale > 0.0, "output scale must be positive");
    qgemm_drive(w, b, n, BLayout::KxN, &mut |i, j0, nr, acc| {
        let mul = w.scales[i] * b_scale / out_scale;
        let base = i * n + j0;
        for (o, &a) in out[base..base + nr].iter_mut().zip(acc.iter()) {
            *o = requant_one(a, mul);
        }
    });
}

/// Naive i32 reference for the quantized GEMM (`b` logical `k × n`,
/// row-major): the ground truth the exactness proptests compare against.
pub fn qgemm_ref_i32(w: &QGemmWeights, b: &[i8], n: usize, out: &mut [i32]) {
    assert_eq!(b.len(), w.k * n, "B must be k*n");
    assert_eq!(out.len(), w.m * n, "out must be m*n");
    for i in 0..w.m {
        let a_row = &w.row(i)[..w.k];
        for j in 0..n {
            let mut s = 0i32;
            for (kk, &wa) in a_row.iter().enumerate() {
                s += wa as i32 * b_at(b, w.k, n, BLayout::KxN, kk, j);
            }
            out[i * n + j] = s;
        }
    }
}

/// Quantized linear layer forward: `x` is `[batch, in]`, weights are
/// `[out, in]` rows; returns `[batch, out]` f32. Activations are quantized
/// per call (per tensor); the GEMM reads them in their native `n × k`
/// layout, so no transpose is materialized.
pub fn qlinear(x: &Tensor, w: &QGemmWeights, bias: Option<&[f32]>) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "qlinear input must be [batch, in]");
    let batch = x.shape().dim(0);
    assert_eq!(x.shape().dim(1), w.k, "input features {} vs weight k {}", x.shape().dim(1), w.k);
    if let Some(bv) = bias {
        assert_eq!(bv.len(), w.m, "bias must have one entry per output");
    }
    let mut out = Tensor::zeros(Shape::d2(batch, w.m));
    scratch::with_i8(|codes| {
        let x_scale = quantize_activations_into(x.data(), codes);
        let out_data = out.data_mut();
        qgemm_drive(w, codes, batch, BLayout::NxK, &mut |i, j0, nr, acc| {
            // C[i][j] = y[sample j][feature i]: scatter the segment across
            // the output's batch rows.
            let mul = w.scales[i] * x_scale;
            let add = bias.map_or(0.0, |bv| bv[i]);
            for (t, &a) in acc.iter().enumerate().take(nr) {
                out_data[(j0 + t) * w.m + i] = a as f32 * mul + add;
            }
        });
    });
    out
}

/// Convolution weights quantized for the int8 path: the `[c_out, c_in, k,
/// k]` tensor flattened to `c_out × (c_in·k·k)` GEMM rows, one scale per
/// output channel.
#[derive(Clone, Debug)]
pub struct QConv2dWeights {
    q: QGemmWeights,
    c_in: usize,
    kernel: usize,
}

impl QConv2dWeights {
    /// Quantizes a `[c_out, c_in, k, k]` weight tensor per output channel.
    pub fn quantize(weight: &Tensor) -> Self {
        let ws = weight.shape();
        assert_eq!(ws.rank(), 4, "conv weight must be [c_out, c_in, k, k]");
        assert_eq!(ws.dim(2), ws.dim(3), "conv kernel must be square");
        let (c_out, c_in, k) = (ws.dim(0), ws.dim(1), ws.dim(2));
        QConv2dWeights {
            q: QGemmWeights::quantize(c_out, c_in * k * k, weight.data()),
            c_in,
            kernel: k,
        }
    }

    /// Output channels.
    pub fn c_out(&self) -> usize {
        self.q.m
    }

    /// The underlying GEMM-shaped weights.
    pub fn gemm_weights(&self) -> &QGemmWeights {
        &self.q
    }
}

/// int8 convolution: quantize each input image per tensor, unfold the codes
/// with [`im2col_i8`], and run the quantized GEMM with the dequantize+bias
/// epilogue fused. Same signature and output shape as
/// [`conv2d`](crate::conv::conv2d); output is f32.
pub fn qconv2d(
    input: &Tensor,
    w: &QConv2dWeights,
    bias: Option<&Tensor>,
    p: Conv2dParams,
) -> Tensor {
    let (n, c_in, h, iw) =
        (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    assert_eq!(c_in, w.c_in, "input channels {} vs weight c_in {}", c_in, w.c_in);
    assert_eq!(p.kernel, w.kernel, "conv params kernel {} vs weight kernel {}", p.kernel, w.kernel);
    let (oh, ow) = p.out_hw(h, iw);
    let c_out = w.q.m;
    let mut out = Tensor::zeros(Shape::nchw(n, c_out, oh, ow));
    let img_in = c_in * h * iw;
    let img_out = c_out * oh * ow;
    let in_data = input.data();
    let bias_data = bias.map(|b| {
        assert_eq!(b.numel(), c_out, "bias length");
        b.data()
    });
    for (b_ix, out_img) in out.data_mut().chunks_exact_mut(img_out).enumerate() {
        scratch::with_i8(|img_codes| {
            scratch::with_i8(|cols| {
                let img = &in_data[b_ix * img_in..(b_ix + 1) * img_in];
                let a_scale = quantize_activations_into(img, img_codes);
                let (_, spatial) = im2col_i8(img_codes, c_in, h, iw, p, cols);
                qgemm_f32(&w.q, cols, spatial, a_scale, bias_data, out_img);
            });
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn weight_quantization_bounds_and_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let (m, k) = (7, 13);
        let data = rand_vec(m * k, &mut rng);
        let q = QGemmWeights::quantize(m, k, &data);
        for i in 0..m {
            for &c in q.row(i) {
                assert!((-63..=63).contains(&(c as i32)), "weight code {c} out of 7-bit range");
            }
        }
        let back = q.dequantize();
        for (i, (&a, &b)) in data.iter().zip(back.iter()).enumerate() {
            // Per-row scale = absmax/63 ⇒ error ≤ scale/2 ≤ 1/126 of absmax.
            let bound = q.scales[i / k] * 0.5 + 1e-6;
            assert!((a - b).abs() <= bound, "element {i}: {a} vs {b}");
        }
    }

    #[test]
    fn qgemm_f32_matches_dequantized_f32_gemm() {
        let mut rng = StdRng::seed_from_u64(2);
        let (m, k, n) = (9, 31, 21);
        let wdata = rand_vec(m * k, &mut rng);
        let xdata = rand_vec(k * n, &mut rng);
        let qw = QGemmWeights::quantize(m, k, &wdata);
        let (codes, b_scale) = quantize_activations(&xdata);
        let mut got = vec![0.0f32; m * n];
        qgemm_f32(&qw, &codes, n, b_scale, None, &mut got);
        // Reference: f32 GEMM over the *dequantized* operands must agree to
        // f32 rounding (the int path is exact on the quantized values).
        let wd = qw.dequantize();
        let xd: Vec<f32> = codes.iter().map(|&c| c as f32 * b_scale).collect();
        let mut want = vec![0.0f32; m * n];
        crate::gemm::gemm_ref(m, k, n, &wd, &xd, &mut want);
        for (i, (&g, &r)) in got.iter().zip(want.iter()).enumerate() {
            assert!((g - r).abs() <= 1e-3 * (1.0 + r.abs()), "element {i}: {g} vs {r}");
        }
    }

    #[test]
    fn qgemm_matches_i32_reference_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 8, 16), (5, 9, 33), (17, 40, 18)] {
            let wdata = rand_vec(m * k, &mut rng);
            let xdata = rand_vec(k * n, &mut rng);
            let qw = QGemmWeights::quantize(m, k, &wdata);
            let (codes, b_scale) = quantize_activations(&xdata);
            let mut refi = vec![0i32; m * n];
            qgemm_ref_i32(&qw, &codes, n, &mut refi);
            let mut got = vec![0.0f32; m * n];
            qgemm_f32(&qw, &codes, n, b_scale, None, &mut got);
            for (i, (&g, &ri)) in got.iter().zip(refi.iter()).enumerate() {
                let want = ri as f32 * (qw.scales[i / n] * b_scale);
                assert_eq!(g, want, "({m},{k},{n}) element {i}");
            }
        }
    }

    #[test]
    fn requant_output_stays_in_range_and_matches_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, k, n) = (6, 22, 19);
        let wdata = rand_vec(m * k, &mut rng);
        let xdata = rand_vec(k * n, &mut rng);
        let qw = QGemmWeights::quantize(m, k, &wdata);
        let (codes, b_scale) = quantize_activations(&xdata);
        let out_scale = 0.05f32;
        let mut got = vec![0i8; m * n];
        qgemm_requant(&qw, &codes, n, b_scale, out_scale, &mut got);
        let mut refi = vec![0i32; m * n];
        qgemm_ref_i32(&qw, &codes, n, &mut refi);
        for (i, (&g, &ri)) in got.iter().zip(refi.iter()).enumerate() {
            let want = requant_one(ri, qw.scales[i / n] * b_scale / out_scale);
            assert_eq!(g, want, "element {i}");
            assert!((-127..=127).contains(&(g as i32)));
        }
    }

    #[test]
    fn qconv2d_close_to_f32_conv() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Conv2dParams::same(3);
        let x = Tensor::rand_uniform(Shape::nchw(2, 3, 9, 8), 1.0, &mut rng);
        let wt = Tensor::rand_uniform(Shape::nchw(5, 3, 3, 3), 0.5, &mut rng);
        let b = Tensor::rand_uniform(Shape::d1(5), 0.5, &mut rng);
        let qw = QConv2dWeights::quantize(&wt);
        let got = qconv2d(&x, &qw, Some(&b), p);
        let want = conv2d(&x, &wt, Some(&b), p);
        assert_eq!(got.shape(), want.shape());
        // 8-bit weights and activations: relative error well under 2% on
        // these magnitudes.
        let mut worst = 0.0f32;
        let scale_ref = want.data().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        for (&g, &r) in got.data().iter().zip(want.data().iter()) {
            worst = worst.max((g - r).abs());
        }
        assert!(
            worst <= 0.02 * scale_ref.max(1.0),
            "worst abs err {worst} (ref scale {scale_ref})"
        );
    }

    #[test]
    fn qlinear_close_to_f32_matmul() {
        let mut rng = StdRng::seed_from_u64(6);
        let (batch, fin, fout) = (5, 17, 11);
        let x = Tensor::rand_uniform(Shape::d2(batch, fin), 1.0, &mut rng);
        let wdata = rand_vec(fout * fin, &mut rng);
        let bias: Vec<f32> = rand_vec(fout, &mut rng);
        let qw = QGemmWeights::quantize(fout, fin, &wdata);
        let got = qlinear(&x, &qw, Some(&bias));
        assert_eq!(got.shape(), &Shape::d2(batch, fout));
        for bi in 0..batch {
            for o in 0..fout {
                let mut want = bias[o];
                for i in 0..fin {
                    want += x.data()[bi * fin + i] * wdata[o * fin + i];
                }
                let g = got.data()[bi * fout + o];
                assert!((g - want).abs() <= 0.05 * (1.0 + want.abs()), "[{bi},{o}]: {g} vs {want}");
            }
        }
    }

    #[test]
    fn zero_input_gives_bias_only() {
        let x = Tensor::zeros(Shape::nchw(1, 2, 4, 4));
        let wt = Tensor::full(Shape::nchw(3, 2, 3, 3), 0.25);
        let b = Tensor::from_vec(Shape::d1(3), vec![1.0, -2.0, 0.5]);
        let qw = QConv2dWeights::quantize(&wt);
        let y = qconv2d(&x, &qw, Some(&b), Conv2dParams::same(3));
        for co in 0..3 {
            for t in 0..16 {
                assert_eq!(y.data()[co * 16 + t], b.data()[co]);
            }
        }
    }
}
