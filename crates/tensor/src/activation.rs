//! Element-wise activations and softmax, with the derivatives the trainer
//! needs.

use crate::tensor::Tensor;

/// ReLU, in place.
pub fn relu_inplace(t: &mut Tensor) {
    for v in t.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// ReLU gradient mask: `dy * (x > 0)`.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), dy.shape());
    let data = x
        .data()
        .iter()
        .zip(dy.data().iter())
        .map(|(&xv, &g)| if xv > 0.0 { g } else { 0.0 })
        .collect();
    Tensor::from_vec(x.shape().clone(), data)
}

/// Hard-sigmoid: `clamp((x + 3) / 6, 0, 1)` (the MobileNetV3 variant).
#[inline]
pub fn hsigmoid(x: f32) -> f32 {
    ((x + 3.0) / 6.0).clamp(0.0, 1.0)
}

/// Hard-swish: `x * hsigmoid(x)` — MobileNetV3's cheap swish.
#[inline]
pub fn hswish(x: f32) -> f32 {
    x * hsigmoid(x)
}

/// Hard-swish, in place.
pub fn hswish_inplace(t: &mut Tensor) {
    for v in t.data_mut() {
        *v = hswish(*v);
    }
}

/// Hard-swish derivative at `x`.
#[inline]
pub fn hswish_grad(x: f32) -> f32 {
    if x <= -3.0 {
        0.0
    } else if x >= 3.0 {
        1.0
    } else {
        (2.0 * x + 3.0) / 6.0
    }
}

/// Hard-swish backward: `dy * hswish'(x)`.
pub fn hswish_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), dy.shape());
    let data = x.data().iter().zip(dy.data().iter()).map(|(&xv, &g)| g * hswish_grad(xv)).collect();
    Tensor::from_vec(x.shape().clone(), data)
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Tanh (re-exported for the LSTM cell).
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Numerically stable softmax over a logits slice, written into `out`.
pub fn softmax_into(logits: &[f32], out: &mut [f32]) {
    assert_eq!(logits.len(), out.len());
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &l) in out.iter_mut().zip(logits.iter()) {
        *o = (l - max).exp();
        sum += *o;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Softmax returning a fresh vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// Log of softmax probability of `target` under `logits` — a numerically
/// stable `log p(target)`.
pub fn log_softmax_at(logits: &[f32], target: usize) -> f32 {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let logsum: f32 = logits.iter().map(|&l| (l - max).exp()).sum::<f32>().ln() + max;
    logits[target] - logsum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn relu_clamps_negatives() {
        let mut t = Tensor::from_vec(Shape::d1(4), vec![-1.0, 0.0, 2.0, -0.5]);
        relu_inplace(&mut t);
        assert_eq!(t.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn hswish_known_points() {
        assert_eq!(hswish(-4.0), 0.0);
        assert_eq!(hswish(4.0), 4.0);
        assert!((hswish(0.0)).abs() < 1e-7);
        // hswish(1) = 1 * 4/6
        assert!((hswish(1.0) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn hswish_grad_matches_finite_difference() {
        let eps = 1e-3;
        for &x in &[-2.5f32, -1.0, 0.0, 0.7, 2.9] {
            let fd = (hswish(x + eps) - hswish(x - eps)) / (2.0 * eps);
            assert!(
                (fd - hswish_grad(x)).abs() < 1e-2,
                "x={x}: fd {fd} vs analytic {}",
                hswish_grad(x)
            );
        }
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 999.0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(p[0] > p[2]);
        assert!((p[0] - p[1]).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let logits = [0.3f32, -1.2, 2.0, 0.0];
        let p = softmax(&logits);
        for (i, &pi) in p.iter().enumerate() {
            assert!((log_softmax_at(&logits, i) - pi.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn relu_backward_masks() {
        let x = Tensor::from_vec(Shape::d1(3), vec![-1.0, 0.5, 2.0]);
        let dy = Tensor::from_vec(Shape::d1(3), vec![1.0, 1.0, 1.0]);
        let dx = relu_backward(&x, &dy);
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0]);
    }
}
