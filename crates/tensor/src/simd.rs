//! Runtime-dispatched AVX2/FMA microkernels for the tensor hot loops.
//!
//! Every kernel in this crate is written twice: a portable scalar version
//! (the code that lives in `gemm.rs` / `conv.rs` / `quant.rs` / `int8.rs`)
//! and, on x86-64, a hand-written AVX2/FMA version in this module. Dispatch
//! is decided at runtime:
//!
//! * [`simd_active`] is true only when the CPU reports `avx2` **and** `fma`
//!   via `is_x86_feature_detected!` *and* the scalar override is off.
//! * Setting `MURMURATION_FORCE_SCALAR` (to anything but `0` or the empty
//!   string) in the environment forces the portable path process-wide; the
//!   variable is read once, on first dispatch.
//! * [`force_scalar`] toggles the same switch programmatically so tests and
//!   benches can compare both paths inside one process.
//!
//! The public functions here are *safe* wrappers: each validates its slice
//!   bounds, then calls the `#[target_feature]` kernel. They return `false`
//! (or `None`) when the vector path is unavailable — either the build is not
//! x86-64 or the CPU lacks AVX2/FMA — and the caller runs its scalar
//! fallback. The scalar *override* is deliberately not consulted here: policy
//! lives at the call sites (which check [`simd_active`] once per operation),
//! so a concurrent toggle cannot strand a caller halfway through an
//! operation with no fallback.
//!
//! Numeric contract (documented in DESIGN.md §8):
//!
//! * f32 kernels are ULP-bounded against scalar: FMA contracts each
//!   multiply-add to one rounding, so results may differ from the scalar
//!   path by O(k) ULPs over a k-long reduction — never more.
//! * Integer kernels (int8 GEMM, quantize encode) are **bit-exact** against
//!   their scalar counterparts: i32 accumulation is exact in both, and both
//!   sides round with round-to-nearest-even (`f32::round_ties_even` scalar,
//!   `vcvtps2dq` vector).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// Dispatch state
// ---------------------------------------------------------------------------

/// Override state: 0 = uninitialised (env not read yet), 1 = auto, 2 = scalar.
static MODE: AtomicU8 = AtomicU8::new(0);
const MODE_AUTO: u8 = 1;
const MODE_SCALAR: u8 = 2;

fn mode() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m != 0 {
        return m;
    }
    let forced = match std::env::var("MURMURATION_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    };
    let m = if forced { MODE_SCALAR } else { MODE_AUTO };
    // A racing first call computes the same value; last store wins harmlessly.
    MODE.store(m, Ordering::Relaxed);
    m
}

/// Forces (or releases) the portable scalar path process-wide.
///
/// Used by parity tests and benches to run both paths in one process. Takes
/// precedence over the `MURMURATION_FORCE_SCALAR` environment variable.
pub fn force_scalar(on: bool) {
    MODE.store(if on { MODE_SCALAR } else { MODE_AUTO }, Ordering::Relaxed);
}

/// True when the CPU supports the AVX2/FMA kernels (ignores the override).
#[cfg(target_arch = "x86_64")]
pub fn detected() -> bool {
    use std::sync::OnceLock;
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// True when the CPU supports the AVX2/FMA kernels (ignores the override).
#[cfg(not(target_arch = "x86_64"))]
pub fn detected() -> bool {
    false
}

/// True when the CPU additionally supports AVX-VNNI (`vpdpbusd` on 256-bit
/// registers). Upgrades the int8 GEMM tile from the three-instruction
/// `maddubs`/`madd`/`add` widening sequence to one fused dot-product per
/// panel — same exact i32 results, roughly half the inner-loop µops.
#[cfg(target_arch = "x86_64")]
pub fn detected_vnni() -> bool {
    use std::sync::OnceLock;
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| detected() && std::arch::is_x86_feature_detected!("avxvnni"))
}

/// True when the CPU additionally supports AVX-VNNI.
#[cfg(not(target_arch = "x86_64"))]
pub fn detected_vnni() -> bool {
    false
}

/// True when callers should dispatch to the vector kernels: the CPU has
/// AVX2+FMA and neither `MURMURATION_FORCE_SCALAR` nor [`force_scalar`] is in
/// effect. Call sites read this once per operation so the choice is stable
/// for that operation even if the override is toggled concurrently.
pub fn simd_active() -> bool {
    detected() && mode() == MODE_AUTO
}

// ---------------------------------------------------------------------------
// f32 GEMM register tile
// ---------------------------------------------------------------------------

/// Computes a 4×16 f32 GEMM register tile: `acc[r][j] = Σ_p a[r][p] * panel[p*16 + j]`.
///
/// `rows_a` are the four A rows of the tile (rows may alias when `mr < 4`;
/// callers simply ignore the duplicate output rows). `panel` is a packed
/// `kc × 16` B panel as produced by `gemm::pack_b_panels`. Returns `false`
/// when the CPU lacks AVX2/FMA, in which case nothing is written and the
/// caller must run the scalar microkernel.
pub fn gemm_tile_16(
    kc: usize,
    rows_a: &[&[f32]; 4],
    panel: &[f32],
    acc: &mut [[f32; 16]; 4],
) -> bool {
    if !detected() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        assert!(panel.len() >= kc * 16, "panel too short for kc={kc}");
        for r in rows_a {
            assert!(r.len() >= kc, "A row shorter than kc={kc}");
        }
        // SAFETY: AVX2+FMA presence was checked via `detected()`. The asserts
        // above guarantee each A-row pointer is readable for `kc` f32 and the
        // panel pointer for `kc * 16` f32; `acc` is a plain &mut to stack
        // storage the kernel fully overwrites.
        unsafe {
            f32_tile_16_avx2(
                kc,
                [rows_a[0].as_ptr(), rows_a[1].as_ptr(), rows_a[2].as_ptr(), rows_a[3].as_ptr()],
                panel.as_ptr(),
                acc,
            );
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (kc, rows_a, panel, acc);
        false
    }
}

/// # Safety
/// Caller must ensure AVX2+FMA are available, each `a[r]` is valid for `kc`
/// f32 reads, and `panel` is valid for `kc * 16` f32 reads.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn f32_tile_16_avx2(
    kc: usize,
    a: [*const f32; 4],
    panel: *const f32,
    out: &mut [[f32; 16]; 4],
) {
    use std::arch::x86_64::*;
    // 8 independent accumulator chains (4 rows × 2 ymm) keep the two FMA
    // ports saturated across the ~4-cycle FMA latency.
    let mut acc = [[_mm256_setzero_ps(); 2]; 4];
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(panel.add(p * 16));
        let b1 = _mm256_loadu_ps(panel.add(p * 16 + 8));
        for r in 0..4 {
            let av = _mm256_set1_ps(*a[r].add(p));
            acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
            acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
    }
    for r in 0..4 {
        _mm256_storeu_ps(out[r].as_mut_ptr(), acc[r][0]);
        _mm256_storeu_ps(out[r].as_mut_ptr().add(8), acc[r][1]);
    }
}

// ---------------------------------------------------------------------------
// Depthwise stride-1 interior rows
// ---------------------------------------------------------------------------

/// Computes one stride-1 depthwise output row over the plane interior:
/// `out[t] = bias + Σ_{ky,kx} rows[ky][t + kx] * wk[ky*k + kx]`.
///
/// `rows.len()` selects the kernel size (3 or 5 are vectorized; anything else
/// returns `false`). Each input row slice must hold `out.len() + k - 1`
/// elements — the caller (the interior splitter in `conv.rs`) guarantees all
/// taps are in bounds. Returns `false` when unvectorizable; nothing written.
pub fn dw_row_s1(rows: &[&[f32]], wk: &[f32], bias: f32, out: &mut [f32]) -> bool {
    if !detected() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        let k = rows.len();
        if k != 3 && k != 5 {
            return false;
        }
        let len = out.len();
        assert!(wk.len() >= k * k, "weights shorter than k*k");
        for r in rows {
            assert!(r.len() >= len + k - 1, "input row shorter than len + k - 1");
        }
        // SAFETY: AVX2+FMA presence was checked via `detected()`. Each row
        // pointer is readable for `len + k - 1` f32 (asserted above), so the
        // widest access `rows[ky][t + kx]` with `t < len`, `kx < k` is in
        // bounds; `wk` holds the k*k taps; `out` is writable for `len`.
        unsafe {
            match k {
                3 => dw_row3_s1_avx2(
                    [rows[0].as_ptr(), rows[1].as_ptr(), rows[2].as_ptr()],
                    wk.as_ptr(),
                    bias,
                    out.as_mut_ptr(),
                    len,
                ),
                _ => dw_row5_s1_avx2(
                    [
                        rows[0].as_ptr(),
                        rows[1].as_ptr(),
                        rows[2].as_ptr(),
                        rows[3].as_ptr(),
                        rows[4].as_ptr(),
                    ],
                    wk.as_ptr(),
                    bias,
                    out.as_mut_ptr(),
                    len,
                ),
            }
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (rows, wk, bias, out);
        false
    }
}

/// # Safety
/// Caller must ensure AVX2+FMA are available, each `r[ky]` is valid for
/// `len + 2` f32 reads, `wk` for 9 reads, and `out` for `len` writes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dw_row3_s1_avx2(
    r: [*const f32; 3],
    wk: *const f32,
    bias: f32,
    out: *mut f32,
    len: usize,
) {
    use std::arch::x86_64::*;
    let bv = _mm256_set1_ps(bias);
    let mut t = 0;
    while t + 8 <= len {
        let mut acc = bv;
        for (ky, &row) in r.iter().enumerate() {
            for kx in 0..3 {
                let w = _mm256_broadcast_ss(&*wk.add(ky * 3 + kx));
                acc = _mm256_fmadd_ps(_mm256_loadu_ps(row.add(t + kx)), w, acc);
            }
        }
        _mm256_storeu_ps(out.add(t), acc);
        t += 8;
    }
    while t < len {
        let mut s = bias;
        for (ky, &row) in r.iter().enumerate() {
            for kx in 0..3 {
                s = (*row.add(t + kx)).mul_add(*wk.add(ky * 3 + kx), s);
            }
        }
        *out.add(t) = s;
        t += 1;
    }
}

/// # Safety
/// Caller must ensure AVX2+FMA are available, each `r[ky]` is valid for
/// `len + 4` f32 reads, `wk` for 25 reads, and `out` for `len` writes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dw_row5_s1_avx2(
    r: [*const f32; 5],
    wk: *const f32,
    bias: f32,
    out: *mut f32,
    len: usize,
) {
    use std::arch::x86_64::*;
    let bv = _mm256_set1_ps(bias);
    let mut t = 0;
    while t + 8 <= len {
        let mut acc = bv;
        for (ky, &row) in r.iter().enumerate() {
            for kx in 0..5 {
                let w = _mm256_broadcast_ss(&*wk.add(ky * 5 + kx));
                acc = _mm256_fmadd_ps(_mm256_loadu_ps(row.add(t + kx)), w, acc);
            }
        }
        _mm256_storeu_ps(out.add(t), acc);
        t += 8;
    }
    while t < len {
        let mut s = bias;
        for (ky, &row) in r.iter().enumerate() {
            for kx in 0..5 {
                s = (*row.add(t + kx)).mul_add(*wk.add(ky * 5 + kx), s);
            }
        }
        *out.add(t) = s;
        t += 1;
    }
}

// ---------------------------------------------------------------------------
// Quantization helpers
// ---------------------------------------------------------------------------

/// Vectorized `max(|x|)` over a slice. `None` when the vector path is
/// unavailable (or the slice is empty); the caller runs its scalar fold.
pub fn absmax(data: &[f32]) -> Option<f32> {
    if !detected() || data.is_empty() {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: AVX2 presence was checked via `detected()`; the kernel only
        // reads `data.len()` f32 through the slice pointer.
        Some(unsafe { absmax_avx2(data.as_ptr(), data.len()) })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        None
    }
}

/// # Safety
/// Caller must ensure AVX2 is available and `d` is valid for `n` f32 reads.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn absmax_avx2(d: *const f32, n: usize) -> f32 {
    use std::arch::x86_64::*;
    let sign_mask = _mm256_set1_ps(f32::from_bits(0x7fff_ffff));
    let mut m0 = _mm256_setzero_ps();
    let mut m1 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 16 <= n {
        m0 = _mm256_max_ps(m0, _mm256_and_ps(_mm256_loadu_ps(d.add(i)), sign_mask));
        m1 = _mm256_max_ps(m1, _mm256_and_ps(_mm256_loadu_ps(d.add(i + 8)), sign_mask));
        i += 16;
    }
    while i + 8 <= n {
        m0 = _mm256_max_ps(m0, _mm256_and_ps(_mm256_loadu_ps(d.add(i)), sign_mask));
        i += 8;
    }
    let m = _mm256_max_ps(m0, m1);
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), m);
    let mut best = lanes.iter().fold(0.0f32, |a, &b| a.max(b));
    while i < n {
        best = best.max((*d.add(i)).abs());
        i += 1;
    }
    best
}

/// Vectorized symmetric encode to i32 codes:
/// `out[i] = round_ties_even(clamp(data[i] * inv, -qmax, qmax))`.
///
/// Bit-exact with the scalar formula (both clamp before rounding and round
/// half-to-even). Returns `false` when the vector path is unavailable.
pub fn encode_i32(data: &[f32], inv: f32, qmax: f32, out: &mut [i32]) -> bool {
    if !detected() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        assert_eq!(data.len(), out.len(), "encode length mismatch");
        // SAFETY: AVX2 presence was checked via `detected()`; `data` and
        // `out` have equal lengths (asserted), and the kernel stays within
        // `n` elements of both.
        unsafe { encode_i32_avx2(data.as_ptr(), data.len(), inv, qmax, out.as_mut_ptr()) }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, inv, qmax, out);
        false
    }
}

/// # Safety
/// Caller must ensure AVX2 is available, `d` is valid for `n` f32 reads, and
/// `out` for `n` i32 writes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn encode_i32_avx2(d: *const f32, n: usize, inv: f32, qmax: f32, out: *mut i32) {
    use std::arch::x86_64::*;
    let vi = _mm256_set1_ps(inv);
    let lo = _mm256_set1_ps(-qmax);
    let hi = _mm256_set1_ps(qmax);
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_mul_ps(_mm256_loadu_ps(d.add(i)), vi);
        let c = _mm256_min_ps(_mm256_max_ps(v, lo), hi);
        // vcvtps2dq rounds to nearest-even, matching f32::round_ties_even.
        _mm256_storeu_si256(out.add(i).cast(), _mm256_cvtps_epi32(c));
        i += 8;
    }
    while i < n {
        *out.add(i) = ((*d.add(i) * inv).clamp(-qmax, qmax)).round_ties_even() as i32;
        i += 1;
    }
}

/// Vectorized symmetric encode straight to i8 codes (same formula as
/// [`encode_i32`], `qmax ≤ 127`). Bit-exact with the scalar path. Returns
/// `false` when the vector path is unavailable.
pub fn encode_i8(data: &[f32], inv: f32, qmax: f32, out: &mut [i8]) -> bool {
    if !detected() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        assert_eq!(data.len(), out.len(), "encode length mismatch");
        assert!(qmax <= 127.0, "i8 encode requires qmax <= 127");
        // SAFETY: AVX2 presence was checked via `detected()`; `data` and
        // `out` have equal lengths (asserted), and clamped codes fit i8
        // because qmax <= 127 (asserted).
        unsafe { encode_i8_avx2(data.as_ptr(), data.len(), inv, qmax, out.as_mut_ptr()) }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, inv, qmax, out);
        false
    }
}

/// # Safety
/// Caller must ensure AVX2 is available, `d` is valid for `n` f32 reads,
/// `out` for `n` i8 writes, and `qmax <= 127` so codes fit i8.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn encode_i8_avx2(d: *const f32, n: usize, inv: f32, qmax: f32, out: *mut i8) {
    use std::arch::x86_64::*;
    let vi = _mm256_set1_ps(inv);
    let lo = _mm256_set1_ps(-qmax);
    let hi = _mm256_set1_ps(qmax);
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_mul_ps(_mm256_loadu_ps(d.add(i)), vi);
        let c = _mm256_cvtps_epi32(_mm256_min_ps(_mm256_max_ps(v, lo), hi));
        // Narrow 8×i32 → 8×i8: the values are already in [-127, 127], so the
        // saturating packs are pure width changes.
        let lo128 = _mm256_castsi256_si128(c);
        let hi128 = _mm256_extracti128_si256(c, 1);
        let w16 = _mm_packs_epi32(lo128, hi128);
        let b8 = _mm_packs_epi16(w16, w16);
        _mm_storel_epi64(out.add(i).cast(), b8);
        i += 8;
    }
    while i < n {
        *out.add(i) = ((*d.add(i) * inv).clamp(-qmax, qmax)).round_ties_even() as i8;
        i += 1;
    }
}

/// Vectorized symmetric decode: `out[i] = codes[i] as f32 * scale`. Bit-exact
/// with the scalar loop (same convert + multiply per element). Returns
/// `false` when the vector path is unavailable.
pub fn dequant_i32(codes: &[i32], scale: f32, out: &mut [f32]) -> bool {
    if !detected() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        assert_eq!(codes.len(), out.len(), "dequant length mismatch");
        // SAFETY: AVX2 presence was checked via `detected()`; `codes` and
        // `out` have equal lengths (asserted) and the kernel stays within
        // `n` elements of both.
        unsafe { dequant_i32_avx2(codes.as_ptr(), codes.len(), scale, out.as_mut_ptr()) }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (codes, scale, out);
        false
    }
}

/// Vectorized symmetric decode into a *fresh* vector — the allocation is
/// filled exactly once (no zero prefill, so the output memory is touched a
/// single time; this kernel is bandwidth-bound). Bit-exact with the scalar
/// loop. Returns `None` when the vector path is unavailable.
pub fn dequant_i32_vec(codes: &[i32], scale: f32) -> Option<Vec<f32>> {
    if !detected() {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    {
        let n = codes.len();
        let mut out: Vec<f32> = Vec::with_capacity(n);
        // SAFETY: AVX2 presence was checked via `detected()`; `codes` is
        // valid for `n` i32 reads and `out`'s freshly reserved buffer for
        // `n` f32 writes. The kernel writes all `n` elements before
        // `set_len` exposes them.
        unsafe {
            dequant_i32_avx2(codes.as_ptr(), n, scale, out.as_mut_ptr());
            out.set_len(n);
        }
        Some(out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = scale;
        None
    }
}

/// # Safety
/// Caller must ensure AVX2 is available, `c` is valid for `n` i32 reads, and
/// `out` for `n` f32 writes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dequant_i32_avx2(c: *const i32, n: usize, scale: f32, out: *mut f32) {
    use std::arch::x86_64::*;
    let vs = _mm256_set1_ps(scale);
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_cvtepi32_ps(_mm256_loadu_si256(c.add(i).cast()));
        _mm256_storeu_ps(out.add(i), _mm256_mul_ps(v, vs));
        i += 8;
    }
    while i < n {
        *out.add(i) = *c.add(i) as f32 * scale;
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// int8 GEMM register tile
// ---------------------------------------------------------------------------

/// Computes a 4×16 int8 GEMM register tile with i32 accumulation over the
/// offset-u8 panel layout of `int8::pack_b` (see that module for the layout):
///
/// `acc[r][j] = Σ_k a[r][k] * (panel_byte(k, j) as i32)`  — where the panel
/// bytes are activation codes offset by +128, so the caller must subtract
/// `128 * row_sum(a[r])` afterwards to recover the true product.
///
/// The accumulation is exact: weights are bounded to |w| ≤ 63 by
/// `int8::QGemmWeights`, so each `vpmaddubsw` pair sum |u8·w + u8·w| ≤
/// 255·63·2 = 32130 < i16::MAX and can never saturate. Returns `false` when
/// the CPU lacks AVX2; nothing is written.
pub fn qgemm_tile_16(
    groups: usize,
    rows_a: &[&[i8]; 4],
    panel: &[u8],
    acc: &mut [[i32; 16]; 4],
) -> bool {
    if !detected() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        assert!(panel.len() >= groups * 64, "panel too short for {groups} k-groups");
        for r in rows_a {
            assert!(r.len() >= groups * 4, "A row shorter than groups*4");
        }
        let a = [rows_a[0].as_ptr(), rows_a[1].as_ptr(), rows_a[2].as_ptr(), rows_a[3].as_ptr()];
        // SAFETY: AVX2 presence was checked via `detected()` (and AVX-VNNI
        // via `detected_vnni()` on that branch). Each A-row pointer is
        // readable for `groups * 4` bytes and the panel pointer for
        // `groups * 64` bytes (asserted above); `acc` is fully overwritten.
        // The unaligned 4-byte weight loads stay within the asserted row
        // bounds. Both kernels produce identical exact i32 sums.
        unsafe {
            if detected_vnni() {
                i8_tile_16_vnni(groups, a, panel.as_ptr(), acc);
            } else {
                i8_tile_16_avx2(groups, a, panel.as_ptr(), acc);
            }
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (groups, rows_a, panel, acc);
        false
    }
}

/// # Safety
/// Caller must ensure AVX2 is available, each `a[r]` is valid for
/// `groups * 4` byte reads, and `panel` for `groups * 64` byte reads.
/// Weight codes must satisfy |w| ≤ 63 so the i16 pair sums cannot saturate.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn i8_tile_16_avx2(
    groups: usize,
    a: [*const i8; 4],
    panel: *const u8,
    out: &mut [[i32; 16]; 4],
) {
    use std::arch::x86_64::*;
    let ones = _mm256_set1_epi16(1);
    let mut acc = [[_mm256_setzero_si256(); 2]; 4];
    for g in 0..groups {
        // 64-byte k-group: columns j0..j0+7 in b0, j0+8..j0+15 in b1, each
        // column as 4 consecutive k-bytes (activations, offset +128 → u8).
        let b0 = _mm256_loadu_si256(panel.add(g * 64).cast());
        let b1 = _mm256_loadu_si256(panel.add(g * 64 + 32).cast());
        for r in 0..4 {
            let aw = _mm256_set1_epi32(a[r].add(g * 4).cast::<i32>().read_unaligned());
            // u8 activations × i8 weights → i16 pair sums (saturation-free
            // because |w| ≤ 63), then widen pairs to the i32 accumulators.
            let p0 = _mm256_maddubs_epi16(b0, aw);
            let p1 = _mm256_maddubs_epi16(b1, aw);
            acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(p0, ones));
            acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(p1, ones));
        }
    }
    for r in 0..4 {
        _mm256_storeu_si256(out[r].as_mut_ptr().cast(), acc[r][0]);
        _mm256_storeu_si256(out[r].as_mut_ptr().add(8).cast(), acc[r][1]);
    }
}

/// # Safety
/// Caller must ensure AVX2 **and** AVX-VNNI are available, each `a[r]` is
/// valid for `groups * 4` byte reads, and `panel` for `groups * 64` byte
/// reads.
///
/// `vpdpbusd` sums the four u8·i8 products of each lane group into the i32
/// accumulator *without* an intermediate i16 — exact for any i8 weights, so
/// it matches the `maddubs` kernel and the scalar path bit for bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "avxvnni")]
unsafe fn i8_tile_16_vnni(
    groups: usize,
    a: [*const i8; 4],
    panel: *const u8,
    out: &mut [[i32; 16]; 4],
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_si256(); 2]; 4];
    for g in 0..groups {
        let b0 = _mm256_loadu_si256(panel.add(g * 64).cast());
        let b1 = _mm256_loadu_si256(panel.add(g * 64 + 32).cast());
        for r in 0..4 {
            let aw = _mm256_set1_epi32(a[r].add(g * 4).cast::<i32>().read_unaligned());
            acc[r][0] = _mm256_dpbusd_avx_epi32(acc[r][0], b0, aw);
            acc[r][1] = _mm256_dpbusd_avx_epi32(acc[r][1], b1, aw);
        }
    }
    for r in 0..4 {
        _mm256_storeu_si256(out[r].as_mut_ptr().cast(), acc[r][0]);
        _mm256_storeu_si256(out[r].as_mut_ptr().add(8).cast(), acc[r][1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_toggles_dispatch() {
        let was = simd_active();
        force_scalar(true);
        assert!(!simd_active(), "override must force the scalar path");
        force_scalar(false);
        assert_eq!(simd_active(), detected());
        // Restore whatever the process-wide state was.
        force_scalar(!was && detected());
        force_scalar(false);
    }

    #[test]
    fn gemm_tile_matches_scalar() {
        if !detected() {
            return;
        }
        let kc = 37;
        let a: Vec<f32> = (0..4 * kc).map(|i| (i as f32 * 0.37).sin()).collect();
        let panel: Vec<f32> = (0..kc * 16).map(|i| (i as f32 * 0.11).cos()).collect();
        let rows: [&[f32]; 4] = [&a[0..kc], &a[kc..2 * kc], &a[2 * kc..3 * kc], &a[3 * kc..4 * kc]];
        let mut acc = [[0.0f32; 16]; 4];
        assert!(gemm_tile_16(kc, &rows, &panel, &mut acc));
        for r in 0..4 {
            for j in 0..16 {
                let want: f32 = (0..kc).map(|p| rows[r][p] * panel[p * 16 + j]).sum();
                assert!(
                    (acc[r][j] - want).abs() <= 1e-4 * (1.0 + want.abs()),
                    "tile[{r}][{j}] = {} vs scalar {want}",
                    acc[r][j]
                );
            }
        }
    }

    #[test]
    fn qgemm_tile_matches_exact_reference() {
        if !detected() {
            return;
        }
        // Worst-case magnitudes: activations at the u8 extremes, weights at
        // the ±63 bound — exercises the saturation-freedom argument.
        let groups = 9;
        let k = groups * 4;
        let mut a = vec![0i8; 4 * k];
        let mut panel = vec![0u8; groups * 64];
        for (i, v) in a.iter_mut().enumerate() {
            *v = if i % 2 == 0 { 63 } else { -63 };
        }
        for (i, v) in panel.iter_mut().enumerate() {
            *v = if i % 3 == 0 { 255 } else { 1 };
        }
        let rows: [&[i8]; 4] = [&a[0..k], &a[k..2 * k], &a[2 * k..3 * k], &a[3 * k..4 * k]];
        let mut acc = [[0i32; 16]; 4];
        assert!(qgemm_tile_16(groups, &rows, &panel, &mut acc));
        for r in 0..4 {
            for j in 0..16 {
                let mut want = 0i64;
                for g in 0..groups {
                    for kk in 0..4 {
                        let b = panel[g * 64 + j * 4 + kk] as i64;
                        want += rows[r][g * 4 + kk] as i64 * b;
                    }
                }
                assert_eq!(acc[r][j] as i64, want, "tile[{r}][{j}]");
            }
        }
    }

    #[test]
    fn encode_roundtrip_helpers_match_scalar_exactly() {
        if !detected() {
            return;
        }
        let data: Vec<f32> = (0..1003).map(|i| ((i as f32 * 0.7).sin() - 0.5) * 3.0).collect();
        let inv = 127.0 / 2.9;
        let mut v32 = vec![0i32; data.len()];
        assert!(encode_i32(&data, inv, 127.0, &mut v32));
        let mut v8 = vec![0i8; data.len()];
        assert!(encode_i8(&data, inv, 127.0, &mut v8));
        for (i, &x) in data.iter().enumerate() {
            let want = ((x * inv).clamp(-127.0, 127.0)).round_ties_even() as i32;
            assert_eq!(v32[i], want, "i32 code {i}");
            assert_eq!(v8[i] as i32, want, "i8 code {i}");
        }
        let mx = absmax(&data);
        let want_mx = data.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert_eq!(mx, Some(want_mx));
        let mut back = vec![0.0f32; data.len()];
        assert!(dequant_i32(&v32, 1.0 / inv, &mut back));
        for (i, &b) in back.iter().enumerate() {
            assert_eq!(b, v32[i] as f32 * (1.0 / inv), "dequant {i}");
        }
    }
}
