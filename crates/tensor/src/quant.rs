//! Symmetric feature-map quantization with exact wire-size accounting.
//!
//! Murmuration's search space includes the bit-width used to transmit
//! intermediate feature maps between devices (32 → 16 → 8 bits). Quantizing
//! shrinks transfer volume proportionally at a small accuracy cost. This
//! module implements the actual quantize/dequantize kernels so the executor
//! can round-trip real activations, plus the byte accounting used by the
//! latency estimator.

use crate::simd;
use crate::tensor::Tensor;

/// Wire bit-width for inter-device feature-map transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BitWidth {
    /// Raw f32 — no quantization.
    B32,
    /// Symmetric 16-bit integer quantization.
    B16,
    /// Symmetric 8-bit integer quantization.
    B8,
}

impl BitWidth {
    /// Bits per element on the wire.
    pub fn bits(self) -> usize {
        match self {
            BitWidth::B32 => 32,
            BitWidth::B16 => 16,
            BitWidth::B8 => 8,
        }
    }

    /// Bytes needed to ship `numel` elements (plus the 4-byte scale for
    /// quantized payloads).
    pub fn wire_bytes(self, numel: usize) -> usize {
        let payload = (numel * self.bits()).div_ceil(8);
        match self {
            BitWidth::B32 => payload,
            _ => payload + 4, // scale factor travels with the tensor
        }
    }

    /// The paper's quantization search space, widest first.
    pub fn search_space() -> Vec<BitWidth> {
        vec![BitWidth::B32, BitWidth::B16, BitWidth::B8]
    }
}

/// A quantized feature map as it would travel on the wire.
#[derive(Clone, Debug)]
pub struct QuantizedTensor {
    /// Integer codes, stored widened; the wire format packs them to
    /// [`BitWidth::bits`] bits.
    codes: Vec<i32>,
    scale: f32,
    bits: BitWidth,
    shape: crate::shape::Shape,
}

impl QuantizedTensor {
    /// Quantizes symmetrically: `code = round_ties_even(clamp(x / scale))`
    /// with `scale = max|x| / qmax`.
    ///
    /// Both passes (absmax reduction, encode) dispatch to the AVX2 kernels in
    /// [`crate::simd`] when available; the scalar fallback uses the same
    /// clamp-then-round-to-nearest-even formula, so the two paths produce
    /// bit-identical codes (`vcvtps2dq` rounds half-to-even, exactly like
    /// `f32::round_ties_even`).
    pub fn quantize(t: &Tensor, bits: BitWidth) -> Self {
        assert_ne!(bits, BitWidth::B32, "use the raw path for 32-bit transfer");
        let qmax = match bits {
            BitWidth::B8 => 127.0f32,
            BitWidth::B16 => 32767.0,
            BitWidth::B32 => unreachable!(),
        };
        let data = t.data();
        let use_simd = simd::simd_active();
        let absmax = if use_simd { simd::absmax(data) } else { None }
            .unwrap_or_else(|| data.iter().fold(0.0f32, |m, &v| m.max(v.abs())));
        let scale = if absmax == 0.0 { 1.0 } else { absmax / qmax };
        let inv = 1.0 / scale;
        let mut codes = vec![0i32; data.len()];
        if !(use_simd && simd::encode_i32(data, inv, qmax, &mut codes)) {
            for (c, &v) in codes.iter_mut().zip(data.iter()) {
                *c = ((v * inv).clamp(-qmax, qmax)).round_ties_even() as i32;
            }
        }
        QuantizedTensor { codes, scale, bits, shape: t.shape().clone() }
    }

    /// Reconstructs the f32 tensor. Both paths fill the output allocation in
    /// a single pass (no zero prefill — the decode is bandwidth-bound).
    pub fn dequantize(&self) -> Tensor {
        let scale = self.scale;
        let data =
            if simd::simd_active() { simd::dequant_i32_vec(&self.codes, scale) } else { None }
                .unwrap_or_else(|| self.codes.iter().map(|&c| c as f32 * scale).collect());
        Tensor::from_vec(self.shape.clone(), data)
    }

    /// Exact wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.bits.wire_bytes(self.codes.len())
    }

    /// The bit-width this tensor was quantized to.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Worst-case absolute reconstruction error (half a quantization step).
    pub fn max_abs_error_bound(&self) -> f32 {
        self.scale * 0.5
    }
}

/// Quantize→dequantize round trip, as the receiving device would see the
/// tensor. `B32` is the identity.
pub fn simulate_wire_roundtrip(t: &Tensor, bits: BitWidth) -> Tensor {
    match bits {
        BitWidth::B32 => t.clone(),
        _ => QuantizedTensor::quantize(t, bits).dequantize(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn wire_bytes_scale_with_bits() {
        assert_eq!(BitWidth::B32.wire_bytes(100), 400);
        assert_eq!(BitWidth::B16.wire_bytes(100), 204);
        assert_eq!(BitWidth::B8.wire_bytes(100), 104);
        // Odd element counts round up whole bytes.
        assert_eq!(BitWidth::B8.wire_bytes(3), 7);
    }

    #[test]
    fn roundtrip_error_within_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform(Shape::nchw(1, 4, 8, 8), 5.0, &mut rng);
        for bits in [BitWidth::B8, BitWidth::B16] {
            let q = QuantizedTensor::quantize(&t, bits);
            let r = q.dequantize();
            let bound = q.max_abs_error_bound() + 1e-6;
            for (a, b) in t.data().iter().zip(r.data().iter()) {
                assert!((a - b).abs() <= bound, "{a} vs {b}, bound {bound}");
            }
        }
    }

    #[test]
    fn sixteen_bit_is_tighter_than_eight() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tensor::rand_uniform(Shape::d1(1000), 3.0, &mut rng);
        let e8: f32 = {
            let r = simulate_wire_roundtrip(&t, BitWidth::B8);
            t.data().iter().zip(r.data().iter()).map(|(a, b)| (a - b).abs()).sum()
        };
        let e16: f32 = {
            let r = simulate_wire_roundtrip(&t, BitWidth::B16);
            t.data().iter().zip(r.data().iter()).map(|(a, b)| (a - b).abs()).sum()
        };
        assert!(e16 < e8 / 10.0, "16-bit ({e16}) must beat 8-bit ({e8})");
    }

    #[test]
    fn large_tensor_vector_path_round_trips() {
        // Large enough that the AVX2 absmax/encode main loops (not just the
        // scalar tails) do the bulk of the work; the error bound must hold.
        let n = 20_000;
        let vals: Vec<f32> = (0..n).map(|i| ((i % 255) as f32 - 127.0) / 16.0).collect();
        let t = Tensor::from_vec(Shape::d1(n), vals);
        let q = QuantizedTensor::quantize(&t, BitWidth::B8);
        let r = q.dequantize();
        let bound = q.max_abs_error_bound() + 1e-6;
        for (a, b) in t.data().iter().zip(r.data().iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_tensor_round_trips() {
        let t = Tensor::zeros(Shape::d1(16));
        let q = QuantizedTensor::quantize(&t, BitWidth::B8);
        assert_eq!(q.dequantize().data(), t.data());
    }

    #[test]
    fn b32_roundtrip_is_identity() {
        let t = Tensor::from_vec(Shape::d1(3), vec![1.5, -2.25, 0.0]);
        let r = simulate_wire_roundtrip(&t, BitWidth::B32);
        assert_eq!(r.data(), t.data());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_quant_error_bounded(vals in prop::collection::vec(-10.0f32..10.0, 1..200)) {
            let n = vals.len();
            let t = Tensor::from_vec(Shape::d1(n), vals);
            let q = QuantizedTensor::quantize(&t, BitWidth::B8);
            let r = q.dequantize();
            let bound = q.max_abs_error_bound() + 1e-5;
            for (a, b) in t.data().iter().zip(r.data().iter()) {
                prop_assert!((a - b).abs() <= bound);
            }
        }

        #[test]
        fn prop_wire_bytes_monotone_in_bits(n in 1usize..10_000) {
            prop_assert!(BitWidth::B8.wire_bytes(n) <= BitWidth::B16.wire_bytes(n));
            prop_assert!(BitWidth::B16.wire_bytes(n) <= BitWidth::B32.wire_bytes(n) + 4);
        }
    }
}
