//! Packed, register-blocked, Rayon-parallel GEMM.
//!
//! `C = A · B` with `A: m×k`, `B: k×n`, `C: m×n`, all row-major. The
//! implementation follows the classic BLIS/GotoBLAS decomposition, sized for
//! the small-to-medium matrices produced by im2col convolution:
//!
//! * **k-blocking** — `B` is processed in `KC`-row slabs so the packed slab
//!   stays cache-resident while every row of `A` streams over it.
//! * **packing** — each slab of `B` is repacked into `NR`-column panels
//!   (`kc × NR`, zero-padded on the right edge) pulled from the thread-local
//!   [`scratch`](crate::scratch) pool, so the microkernel reads `B`
//!   contiguously regardless of `n` and steady-state calls do not allocate.
//! * **microkernel** — an `MR×NR` (4 × 16) register tile: 64 f32 accumulators
//!   that the compiler keeps in SIMD registers, with no per-element branches
//!   (the old `av == 0.0` skip is gone — it cost a branch per multiply on
//!   dense data to save work only on exact zeros).
//! * **parallelism** — row blocks of `C` are distributed over Rayon tasks;
//!   each task owns a disjoint `&mut` slice of `C`, the pattern the Rayon
//!   guide recommends for data-race-free output writes.
//!
//! [`gemm_bt`] packs the transposed operand directly from its `n×k` storage
//! and [`gemm_at`] transposes `A` once into scratch, so all four entry points
//! dispatch the same microkernel.
//!
//! On x86-64 the register tile dispatches to the AVX2/FMA microkernel in
//! [`crate::simd`] when the CPU supports it (checked once at runtime); the
//! scalar microkernels below remain the portable fallback and the reference
//! for the SIMD-vs-scalar parity tests.

use crate::scratch;
use crate::simd;
use rayon::prelude::*;

/// Microkernel tile rows (rows of `A`/`C` per register tile).
const MR: usize = 4;
/// Microkernel tile columns (f32 accumulator lanes per row).
const NR: usize = 16;
/// k-dimension slab size: one packed slab is at most `KC × n` elements.
const KC: usize = 256;
/// Row-block height processed per Rayon task (multiple of `MR`).
const ROW_BLOCK: usize = 32;
/// Below this many output elements the sequential path is used (parallel
/// dispatch overhead dominates for tiny problems).
const PAR_THRESHOLD: usize = 64 * 64;

/// `c = a · b` where `a` is `m×k`, `b` is `k×n`, `c` is `m×n` (row-major).
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_bias(m, k, n, a, b, None, c);
}

/// `c = a · b + bias` with `bias` broadcast along rows: row `i` of `c` is
/// initialized to `bias[i]` before accumulation, fusing the bias add into the
/// GEMM epilogue (used by the convolution forward path, where each output
/// channel is one row of `c`).
pub fn gemm_bias(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    if m == 0 || n == 0 {
        return;
    }
    match bias {
        Some(bv) => {
            assert_eq!(bv.len(), m, "bias must have one entry per output row");
            for (row, &b0) in c.chunks_exact_mut(n).zip(bv.iter()) {
                row.fill(b0);
            }
        }
        None => c.fill(0.0),
    }
    gemm_acc_packed(m, k, n, a, c, |k0, kc, packed| pack_b_panels(b, k0, kc, n, packed));
}

/// `c += a · b`; same contract as [`gemm`] but accumulates into `c`.
pub fn gemm_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    gemm_acc_packed(m, k, n, a, c, |k0, kc, packed| pack_b_panels(b, k0, kc, n, packed));
}

/// `c = a · bᵀ` where `a` is `m×k`, `b` is `n×k` (so `bᵀ` is `k×n`).
///
/// Used by backward passes where the weight gradient needs a transposed
/// operand; the packing step reads `b` in its native `n×k` layout, so the
/// transpose is never materialized.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), n * k, "B must be n*k");
    assert_eq!(c.len(), m * n, "C must be m*n");
    c.fill(0.0);
    gemm_acc_packed(m, k, n, a, c, |k0, kc, packed| pack_bt_panels(b, k, k0, kc, n, packed));
}

/// `c = aᵀ · b` where `a` is `k×m`, `b` is `k×n`, `c` is `m×n`.
///
/// `aᵀ` is materialized once into a pooled scratch buffer (it is the small
/// operand on every call site — e.g. the weight matrix in conv backward), and
/// the product then runs through the packed microkernel path.
pub fn gemm_at(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A must be k*m");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    c.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    scratch::with(|at| {
        at.clear();
        at.resize(m * k, 0.0);
        for (kk, a_row) in a.chunks_exact(m).enumerate() {
            for (i, &v) in a_row.iter().enumerate() {
                at[i * k + kk] = v;
            }
        }
        gemm_acc_packed(m, k, n, at, c, |k0, kc, packed| pack_b_panels(b, k0, kc, n, packed));
    });
}

/// Shared driver: for each `KC` slab, pack `B` via `pack_blk` and accumulate
/// into `c`, parallelizing over disjoint row blocks of `c` when the output is
/// large enough to amortize the dispatch.
fn gemm_acc_packed(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    c: &mut [f32],
    pack_blk: impl Fn(usize, usize, &mut [f32]),
) {
    if m == 0 || n == 0 {
        return;
    }
    let n_panels = n.div_ceil(NR);
    scratch::with(|packed| {
        packed.clear();
        packed.resize(n_panels * KC.min(k.max(1)) * NR, 0.0);
        for k0 in (0..k).step_by(KC) {
            let kc = KC.min(k - k0);
            let slab = &mut packed[..n_panels * kc * NR];
            pack_blk(k0, kc, slab);
            let slab: &[f32] = slab;
            if m * n >= PAR_THRESHOLD && m > 1 {
                c.par_chunks_mut(ROW_BLOCK * n).enumerate().for_each(|(blk, c_blk)| {
                    let rows = c_blk.len() / n;
                    gemm_block_packed(blk * ROW_BLOCK, rows, k0, kc, k, n, a, slab, c_blk);
                });
            } else {
                gemm_block_packed(0, m, k0, kc, k, n, a, slab, c);
            }
        }
    });
}

/// Packs the `kc × n` slab of row-major `B` starting at row `k0` into
/// `NR`-column panels: panel `jp` holds columns `jp*NR ..`, laid out as `kc`
/// consecutive `NR`-wide rows, zero-padded past column `n`.
fn pack_b_panels(b: &[f32], k0: usize, kc: usize, n: usize, packed: &mut [f32]) {
    for (jp, panel) in packed.chunks_exact_mut(kc * NR).enumerate() {
        let j0 = jp * NR;
        let nr = NR.min(n - j0);
        for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
            let src = &b[(k0 + p) * n + j0..(k0 + p) * n + j0 + nr];
            dst[..nr].copy_from_slice(src);
            dst[nr..].fill(0.0);
        }
    }
}

/// Same panel layout as [`pack_b_panels`], but reading the operand stored
/// transposed (`n×k` row-major, i.e. `bᵀ` of the logical `k×n` matrix).
fn pack_bt_panels(b: &[f32], k: usize, k0: usize, kc: usize, n: usize, packed: &mut [f32]) {
    for (jp, panel) in packed.chunks_exact_mut(kc * NR).enumerate() {
        let j0 = jp * NR;
        let nr = NR.min(n - j0);
        for jj in 0..NR {
            if jj < nr {
                let src = &b[(j0 + jj) * k + k0..(j0 + jj) * k + k0 + kc];
                for (p, &v) in src.iter().enumerate() {
                    panel[p * NR + jj] = v;
                }
            } else {
                for p in 0..kc {
                    panel[p * NR + jj] = 0.0;
                }
            }
        }
    }
}

/// Accumulates rows `[i0, i0+rows)` of `C` for one packed slab, walking the
/// output in `MR×NR` register tiles.
#[allow(clippy::too_many_arguments)]
fn gemm_block_packed(
    i0: usize,
    rows: usize,
    k0: usize,
    kc: usize,
    k: usize,
    n: usize,
    a: &[f32],
    packed: &[f32],
    c_blk: &mut [f32],
) {
    let n_panels = n.div_ceil(NR);
    // Dispatch is decided once per block so a concurrent scalar-override
    // toggle cannot change paths halfway through an output row.
    let use_simd = simd::simd_active();
    let mut r = 0;
    while r < rows {
        let mr = MR.min(rows - r);
        let a_row = |ri: usize| {
            let base = (i0 + r + ri) * k + k0;
            &a[base..base + kc]
        };
        // Remainder tiles alias the last valid row; only `mr` rows are read.
        let rows_a = [a_row(0), a_row(1.min(mr - 1)), a_row(2.min(mr - 1)), a_row(3.min(mr - 1))];
        for (jp, panel) in packed.chunks_exact(kc * NR).take(n_panels).enumerate() {
            let j0 = jp * NR;
            let nr = NR.min(n - j0);
            let mut tile = [[0.0f32; NR]; MR];
            let acc = if use_simd && simd::gemm_tile_16(kc, &rows_a, panel, &mut tile) {
                tile
            } else if mr == MR {
                micro_4(kc, rows_a[0], rows_a[1], rows_a[2], rows_a[3], panel)
            } else {
                micro_r(kc, &rows_a[..mr], panel)
            };
            for (ri, acc_row) in acc.iter().enumerate().take(mr) {
                let base = (r + ri) * n + j0;
                for (cv, &av) in c_blk[base..base + nr].iter_mut().zip(acc_row.iter()) {
                    *cv += av;
                }
            }
        }
        r += mr;
    }
}

/// Full `MR×NR` microkernel: 4 rows of `A` against one packed panel of `B`.
/// The accumulator tile lives in registers for the whole `kc` loop.
#[inline(always)]
fn micro_4(
    kc: usize,
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    panel: &[f32],
) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (p, bl) in panel.chunks_exact(NR).take(kc).enumerate() {
        let av = [a0[p], a1[p], a2[p], a3[p]];
        for (acc_row, &a_val) in acc.iter_mut().zip(av.iter()) {
            for (cv, &bv) in acc_row.iter_mut().zip(bl.iter()) {
                *cv += a_val * bv;
            }
        }
    }
    acc
}

/// Remainder microkernel for 1–3 rows; same layout as [`micro_4`].
#[inline(always)]
fn micro_r(kc: usize, a_rows: &[&[f32]], panel: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (p, bl) in panel.chunks_exact(NR).take(kc).enumerate() {
        for (acc_row, a_row) in acc.iter_mut().zip(a_rows.iter()) {
            let a_val = a_row[p];
            for (cv, &bv) in acc_row.iter_mut().zip(bl.iter()) {
                *cv += a_val * bv;
            }
        }
    }
    acc
}

/// Naive reference GEMM used by tests and property checks.
pub fn gemm_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn small_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matches_reference_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        // Sizes straddle the MR=4 / NR=16 tile edges and the KC=256 slab edge.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 16),
            (5, 9, 17),
            (17, 33, 9),
            (64, 129, 65),
            (100, 300, 50),
            (13, 257, 31),
        ] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c = vec![0.0; m * n];
            let mut r = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            gemm_ref(m, k, n, &a, &b, &mut r);
            assert_close(&c, &r, 1e-3);
        }
    }

    #[test]
    fn parallel_path_matches_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let (m, k, n) = (130, 64, 70); // m*n > PAR_THRESHOLD
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c = vec![0.0; m * n];
        let mut r = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        gemm_ref(m, k, n, &a, &b, &mut r);
        assert_close(&c, &r, 1e-2);
    }

    #[test]
    fn bt_and_at_variants() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m, k, n) = (6, 10, 4);
        let a = rand_vec(m * k, &mut rng);
        let bt = rand_vec(n * k, &mut rng); // b stored as n×k
                                            // Materialize b = btᵀ and compare.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_bt(m, k, n, &a, &bt, &mut c1);
        gemm_ref(m, k, n, &a, &b, &mut c2);
        assert_close(&c1, &c2, 1e-3);

        // aᵀ · b with a stored k×m.
        let at = rand_vec(k * m, &mut rng);
        let mut a_mat = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                a_mat[i * k + kk] = at[kk * m + i];
            }
        }
        let mut c3 = vec![0.0; m * n];
        let mut c4 = vec![0.0; m * n];
        gemm_at(m, k, n, &at, &b, &mut c3);
        gemm_ref(m, k, n, &a_mat, &b, &mut c4);
        assert_close(&c3, &c4, 1e-3);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 0.0, 0.0, 2.0];
        let mut c = [1.0, 1.0, 1.0, 1.0];
        gemm_acc(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn gemm_bias_initializes_rows() {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, k, n) = (5, 6, 18); // row remainder + column remainder
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let bias: Vec<f32> = (0..m).map(|i| i as f32 - 2.0).collect();
        let mut c = vec![9.0; m * n]; // stale contents must be overwritten
        gemm_bias(m, k, n, &a, &b, Some(&bias), &mut c);
        let mut r = vec![0.0; m * n];
        gemm_ref(m, k, n, &a, &b, &mut r);
        for (i, row) in r.chunks_exact_mut(n).enumerate() {
            for v in row.iter_mut() {
                *v += bias[i];
            }
        }
        assert_close(&c, &r, 1e-3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matches_reference(m in 1usize..20, k in 1usize..24, n in 1usize..20, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c = vec![0.0; m * n];
            let mut r = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            gemm_ref(m, k, n, &a, &b, &mut r);
            for (x, y) in c.iter().zip(r.iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_identity_is_noop(n in 1usize..16, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let x = rand_vec(n * n, &mut rng);
            let mut id = vec![0.0; n * n];
            for i in 0..n { id[i * n + i] = 1.0; }
            let mut c = vec![0.0; n * n];
            gemm(n, n, n, &id, &x, &mut c);
            for (a, b) in c.iter().zip(x.iter()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_bt_matches_materialized_transpose(
            m in 1usize..12, k in 1usize..20, n in 1usize..20, seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = rand_vec(m * k, &mut rng);
            let bt = rand_vec(n * k, &mut rng);
            let mut b = vec![0.0; k * n];
            for j in 0..n {
                for kk in 0..k {
                    b[kk * n + j] = bt[j * k + kk];
                }
            }
            let mut c = vec![0.0; m * n];
            let mut r = vec![0.0; m * n];
            gemm_bt(m, k, n, &a, &bt, &mut c);
            gemm_ref(m, k, n, &a, &b, &mut r);
            for (x, y) in c.iter().zip(r.iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
