//! Blocked, Rayon-parallel GEMM.
//!
//! `C = A · B` with `A: m×k`, `B: k×n`, `C: m×n`, all row-major. The kernel
//! blocks over `k` to keep the working set in cache and parallelizes over
//! row blocks of `C` so each Rayon task owns a disjoint `&mut` slice — the
//! pattern the Rayon guide recommends for data-race-free output writes.

use rayon::prelude::*;

/// Row-block height processed per Rayon task.
const ROW_BLOCK: usize = 32;
/// k-dimension blocking factor.
const K_BLOCK: usize = 256;
/// Below this many output elements the sequential path is used (parallel
/// dispatch overhead dominates for tiny problems).
const PAR_THRESHOLD: usize = 64 * 64;

/// `c = a · b` where `a` is `m×k`, `b` is `k×n`, `c` is `m×n` (row-major).
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    c.fill(0.0);
    gemm_acc(m, k, n, a, b, c);
}

/// `c += a · b`; same contract as [`gemm`] but accumulates into `c`.
pub fn gemm_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, c_blk)| {
                let i0 = blk * ROW_BLOCK;
                let rows = c_blk.len() / n;
                gemm_block(i0, rows, k, n, a, b, c_blk);
            });
    } else {
        gemm_block(0, m, k, n, a, b, c);
    }
}

/// Sequential kernel over rows `[i0, i0+rows)` of `A`/`C`, writing into the
/// `rows×n` slice `c_blk`.
fn gemm_block(i0: usize, rows: usize, k: usize, n: usize, a: &[f32], b: &[f32], c_blk: &mut [f32]) {
    for k0 in (0..k).step_by(K_BLOCK) {
        let k1 = (k0 + K_BLOCK).min(k);
        for r in 0..rows {
            let a_row = &a[(i0 + r) * k..(i0 + r) * k + k];
            let c_row = &mut c_blk[r * n..(r + 1) * n];
            for kk in k0..k1 {
                let av = a_row[kk];
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..kk * n + n];
                // The compiler auto-vectorizes this axpy loop.
                for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `c = a · bᵀ` where `a` is `m×k`, `b` is `n×k` (so `bᵀ` is `k×n`).
///
/// Used by backward passes where the weight gradient needs a transposed
/// operand without materializing the transpose.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), n * k, "B must be n*k");
    assert_eq!(c.len(), m * n, "C must be m*n");
    let body = |i0: usize, c_blk: &mut [f32]| {
        let rows = c_blk.len() / n;
        for r in 0..rows {
            let a_row = &a[(i0 + r) * k..(i0 + r) * k + k];
            for j in 0..n {
                let b_row = &b[j * k..j * k + k];
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a_row[kk] * b_row[kk];
                }
                c_blk[r * n + j] = acc;
            }
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, c_blk)| body(blk * ROW_BLOCK, c_blk));
    } else {
        body(0, c);
    }
}

/// `c = aᵀ · b` where `a` is `k×m`, `b` is `k×n`, `c` is `m×n`.
pub fn gemm_at(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A must be k*m");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    c.fill(0.0);
    for kk in 0..k {
        let a_row = &a[kk * m..kk * m + m];
        let b_row = &b[kk * n..kk * n + n];
        for i in 0..m {
            let av = a_row[i];
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..i * n + n];
            for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// Naive reference GEMM used by tests and property checks.
pub fn gemm_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn small_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matches_reference_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 33, 9), (64, 129, 65), (100, 300, 50)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c = vec![0.0; m * n];
            let mut r = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            gemm_ref(m, k, n, &a, &b, &mut r);
            assert_close(&c, &r, 1e-3);
        }
    }

    #[test]
    fn parallel_path_matches_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let (m, k, n) = (130, 64, 70); // m*n > PAR_THRESHOLD
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c = vec![0.0; m * n];
        let mut r = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        gemm_ref(m, k, n, &a, &b, &mut r);
        assert_close(&c, &r, 1e-2);
    }

    #[test]
    fn bt_and_at_variants() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m, k, n) = (6, 10, 4);
        let a = rand_vec(m * k, &mut rng);
        let bt = rand_vec(n * k, &mut rng); // b stored as n×k
        // Materialize b = btᵀ and compare.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_bt(m, k, n, &a, &bt, &mut c1);
        gemm_ref(m, k, n, &a, &b, &mut c2);
        assert_close(&c1, &c2, 1e-3);

        // aᵀ · b with a stored k×m.
        let at = rand_vec(k * m, &mut rng);
        let mut a_mat = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                a_mat[i * k + kk] = at[kk * m + i];
            }
        }
        let mut c3 = vec![0.0; m * n];
        let mut c4 = vec![0.0; m * n];
        gemm_at(m, k, n, &at, &b, &mut c3);
        gemm_ref(m, k, n, &a_mat, &b, &mut c4);
        assert_close(&c3, &c4, 1e-3);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 0.0, 0.0, 2.0];
        let mut c = [1.0, 1.0, 1.0, 1.0];
        gemm_acc(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [3.0, 1.0, 1.0, 3.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matches_reference(m in 1usize..20, k in 1usize..24, n in 1usize..20, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c = vec![0.0; m * n];
            let mut r = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            gemm_ref(m, k, n, &a, &b, &mut r);
            for (x, y) in c.iter().zip(r.iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_identity_is_noop(n in 1usize..16, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let x = rand_vec(n * n, &mut rng);
            let mut id = vec![0.0; n * n];
            for i in 0..n { id[i * n + i] = 1.0; }
            let mut c = vec![0.0; n * n];
            gemm(n, n, n, &id, &x, &mut c);
            for (a, b) in c.iter().zip(x.iter()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
