//! # murmuration-tensor
//!
//! Minimal, dependency-light tensor kernels used by the Murmuration
//! reproduction. Everything is `f32`, NCHW, contiguous row-major.
//!
//! The crate provides exactly what the rest of the system needs:
//!
//! * [`Tensor`] — an owned, contiguous NCHW tensor with shape algebra.
//! * [`gemm`] — a blocked, Rayon-parallel matrix multiply; the backbone of
//!   the im2col convolution path.
//! * [`conv`] — direct/depthwise/im2col 2-D convolutions used by the
//!   inference engine and the supernet trainer.
//! * [`pool`], [`activation`], [`pad`] — the remaining CNN primitives.
//! * [`tile`] — FDSP-style spatial tiling (split a feature map into a
//!   `rows × cols` grid with zero-padded halos so tiles can be convolved
//!   independently on different devices, per ADCNN \[Zhang et al., ICPP '20\]).
//! * [`quant`] — symmetric feature-map quantization (8/16-bit) with exact
//!   wire-size accounting, used when intermediate activations cross a
//!   device boundary.
//! * [`int8`] — an end-to-end int8 *compute* path: per-channel i8 weights,
//!   per-tensor i8 activations, i32-accumulating quantized GEMM with a fused
//!   requantize epilogue, and an int8 im2col convolution.
//! * [`simd`] — runtime-dispatched AVX2/FMA microkernels behind every hot
//!   loop above, with `MURMURATION_FORCE_SCALAR` forcing the portable
//!   fallback for testing.
//!
//! Design notes: hot loops are written over slices with explicit blocking;
//! GEMM packs its B operand into cache-resident `NR`-column panels and
//! dispatches a 4×16 register-tiled microkernel (AVX2/FMA when the CPU has
//! it, scalar otherwise); the depthwise kernel splits each plane into a
//! bounds-check-free interior and a checked border; parallelism uses Rayon
//! over disjoint `&mut` output chunks (row blocks for GEMM, batch images for
//! conv2d, batch×channel planes for depthwise); and steady-state forward
//! passes do zero heap allocation — every kernel workspace (im2col columns,
//! packing panels, transposes, int8 code buffers) comes from the
//! thread-local [`scratch`] pools.

pub mod activation;
pub mod conv;
pub mod gemm;
pub mod int8;
pub mod pad;
pub mod pool;
pub mod quant;
pub mod scratch;
pub mod shape;
pub mod simd;
pub mod tensor;
pub mod tile;

pub use shape::Shape;
pub use tensor::Tensor;

/// Maximum |a - b| tolerated by the numeric test helpers in this workspace.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts two f32 slices are element-wise close; used across the workspace's
/// numeric tests.
pub fn assert_close(a: &[f32], b: &[f32], eps: f32) {
    assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        assert!((x - y).abs() <= eps, "element {i} differs: {x} vs {y} (eps {eps})");
    }
}
