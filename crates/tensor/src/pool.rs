//! Pooling primitives: max, average, and global average pooling.

use crate::shape::{conv_out_size, Shape};
use crate::tensor::Tensor;

/// Max pooling over square windows. Returns `(output, argmax_indices)` where
/// indices address the flattened input buffer (used by the backward pass).
pub fn maxpool2d(input: &Tensor, k: usize, stride: usize, pad: usize) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    let oh = conv_out_size(h, k, pad, stride);
    let ow = conv_out_size(w, k, pad, stride);
    let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    let mut arg = vec![0usize; n * c * oh * ow];
    let mut oi = 0;
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = base; // fall back to first element
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = base + iy as usize * w + ix as usize;
                            let v = input.data()[idx];
                            if v > best {
                                best = v;
                                best_idx = idx;
                            }
                        }
                    }
                    // A fully-padded window (possible only with pad >= k) is
                    // treated as zero.
                    if best == f32::NEG_INFINITY {
                        best = 0.0;
                    }
                    out.data_mut()[oi] = best;
                    arg[oi] = best_idx;
                    oi += 1;
                }
            }
        }
    }
    (out, arg)
}

/// Average pooling over square windows; padding contributes zeros and the
/// divisor is the full window size (PyTorch `count_include_pad=True`).
pub fn avgpool2d(input: &Tensor, k: usize, stride: usize, pad: usize) -> Tensor {
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    let oh = conv_out_size(h, k, pad, stride);
    let ow = conv_out_size(w, k, pad, stride);
    let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    let inv = 1.0 / (k * k) as f32;
    let mut oi = 0;
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += input.data()[base + iy as usize * w + ix as usize];
                        }
                    }
                    out.data_mut()[oi] = acc * inv;
                    oi += 1;
                }
            }
        }
    }
    out
}

/// Global average pooling: NCHW → `[n, c, 1, 1]`.
pub fn global_avgpool(input: &Tensor) -> Tensor {
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    let mut out = Tensor::zeros(Shape::nchw(n, c, 1, 1));
    let inv = 1.0 / (h * w) as f32;
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            let s: f32 = input.data()[base..base + h * w].iter().sum();
            out.data_mut()[b * c + ch] = s * inv;
        }
    }
    out
}

/// Backward for [`global_avgpool`]: spreads each channel gradient uniformly.
pub fn global_avgpool_backward(dy: &Tensor, in_h: usize, in_w: usize) -> Tensor {
    let (n, c) = (dy.shape().n(), dy.shape().c());
    let mut dx = Tensor::zeros(Shape::nchw(n, c, in_h, in_w));
    let inv = 1.0 / (in_h * in_w) as f32;
    for b in 0..n {
        for ch in 0..c {
            let g = dy.data()[b * c + ch] * inv;
            let base = (b * c + ch) * in_h * in_w;
            for v in &mut dx.data_mut()[base..base + in_h * in_w] {
                *v = g;
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn maxpool_2x2() {
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 4, 4),
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let (y, arg) = maxpool2d(&x, 2, 2, 0);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn avgpool_uniform_input() {
        let x = Tensor::full(Shape::nchw(1, 2, 4, 4), 2.0);
        let y = avgpool2d(&x, 2, 2, 0);
        assert_eq!(y.shape(), &Shape::nchw(1, 2, 2, 2));
        assert!(y.data().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn global_avgpool_means_channels() {
        let mut x = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
        x.data_mut()[..4].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]); // ch 0
        x.data_mut()[4..].copy_from_slice(&[10.0, 10.0, 10.0, 10.0]); // ch 1
        let y = global_avgpool(&x);
        assert_close(y.data(), &[2.5, 10.0], 1e-6);
    }

    #[test]
    fn global_avgpool_backward_spreads() {
        let dy = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![8.0]);
        let dx = global_avgpool_backward(&dy, 2, 2);
        assert_close(dx.data(), &[2.0, 2.0, 2.0, 2.0], 1e-6);
    }

    #[test]
    fn maxpool_with_padding() {
        let x = Tensor::full(Shape::nchw(1, 1, 2, 2), -1.0);
        // k=3 pad=1 stride=2 -> single output, max over padded window is -1
        // (padding positions are skipped, not treated as 0).
        let (y, _) = maxpool2d(&x, 3, 2, 1);
        assert_eq!(y.numel(), 1);
        assert_eq!(y.data()[0], -1.0);
    }
}
