//! Thread-local scratch-buffer pool for kernel workspaces.
//!
//! The im2col column matrix, GEMM packing panels, and backward-pass
//! temporaries are all short-lived `Vec<f32>` workspaces whose size repeats
//! from call to call. Allocating them fresh on every forward pass puts an
//! allocator round-trip (and a page-fault storm on first touch) on the
//! inference hot path. This module keeps a small per-thread stack of
//! reusable buffers so that steady-state forward passes do zero heap
//! allocation: a buffer is popped on [`with`], handed to the closure, and
//! pushed back afterwards with its capacity intact.
//!
//! Contract:
//!
//! * Buffers come back with unspecified length and contents — callers must
//!   `clear()`/`resize()` before use (or overwrite every element they read).
//! * Calls nest: each nested [`with`] pops a distinct buffer, so a kernel
//!   that needs three workspaces simply nests three closures.
//! * The pool is per-thread (no locks); Rayon workers each warm their own
//!   pool after the first task they run.
//! * At most [`MAX_POOLED`] buffers are retained per thread; extras are
//!   freed on return so pathological nesting cannot hoard memory.

use std::cell::RefCell;

/// Maximum buffers retained per thread.
const MAX_POOLED: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a pooled scratch buffer, returning the buffer to the
/// per-thread pool afterwards. The buffer's length and contents on entry are
/// unspecified; its capacity persists across calls on the same thread.
pub fn with<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    let out = f(&mut buf);
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
    out
}

/// Number of buffers currently pooled on this thread (diagnostics/tests).
pub fn pooled_buffers() -> usize {
    POOL.with(|p| p.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_capacity_is_reused() {
        let cap0 = with(|buf| {
            buf.clear();
            buf.resize(4096, 1.0);
            buf.capacity()
        });
        // Second call on the same thread sees the retained capacity.
        let cap1 = with(|buf| buf.capacity());
        assert!(cap1 >= cap0.min(4096), "capacity {cap1} lost (was {cap0})");
    }

    #[test]
    fn nested_calls_get_distinct_buffers() {
        with(|a| {
            a.clear();
            a.resize(8, 1.0);
            with(|b| {
                b.clear();
                b.resize(8, 2.0);
                assert_eq!(a[0], 1.0, "outer buffer must be untouched");
                assert_eq!(b[0], 2.0);
            });
            assert_eq!(a[7], 1.0);
        });
        assert!(pooled_buffers() >= 2);
    }
}
