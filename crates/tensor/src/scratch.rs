//! Thread-local scratch-buffer pools for kernel workspaces.
//!
//! The im2col column matrix, GEMM packing panels, and backward-pass
//! temporaries are all short-lived workspaces whose size repeats from call
//! to call. Allocating them fresh on every forward pass puts an allocator
//! round-trip (and a page-fault storm on first touch) on the inference hot
//! path. This module keeps a small per-thread stack of reusable buffers so
//! that steady-state forward passes do zero heap allocation: a buffer is
//! popped on [`with`], handed to the closure, and pushed back afterwards
//! with its capacity intact.
//!
//! The int8 compute path ([`crate::int8`]) needs byte-typed workspaces too
//! (i8 activation codes / im2col columns, u8 packed GEMM panels, i32 scalar
//! accumulators), so the pool is stamped out per element type: [`with`]
//! (f32), [`with_i8`], [`with_u8`], and [`with_i32`].
//!
//! Contract (identical for every pool):
//!
//! * Buffers come back with unspecified length and contents — callers must
//!   `clear()`/`resize()` before use (or overwrite every element they read).
//! * Calls nest: each nested `with_*` pops a distinct buffer, so a kernel
//!   that needs three workspaces simply nests three closures.
//! * The pool is per-thread (no locks); Rayon workers each warm their own
//!   pool after the first task they run.
//! * At most [`MAX_POOLED`] buffers are retained per thread per type;
//!   extras are freed on return so pathological nesting cannot hoard
//!   memory.

use std::cell::RefCell;

/// Maximum buffers retained per thread (per element type).
const MAX_POOLED: usize = 8;

macro_rules! pool {
    ($pool:ident, $with:ident, $ty:ty, $doc:literal) => {
        thread_local! {
            static $pool: RefCell<Vec<Vec<$ty>>> = const { RefCell::new(Vec::new()) };
        }

        #[doc = $doc]
        ///
        /// The buffer's length and contents on entry are unspecified; its
        /// capacity persists across calls on the same thread.
        pub fn $with<R>(f: impl FnOnce(&mut Vec<$ty>) -> R) -> R {
            let mut buf = $pool.with(|p| p.borrow_mut().pop()).unwrap_or_default();
            let out = f(&mut buf);
            $pool.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < MAX_POOLED {
                    pool.push(buf);
                }
            });
            out
        }
    };
}

pool!(POOL_F32, with, f32, "Runs `f` with a pooled f32 scratch buffer.");
pool!(POOL_I8, with_i8, i8, "Runs `f` with a pooled i8 scratch buffer (quantized codes).");
pool!(POOL_U8, with_u8, u8, "Runs `f` with a pooled u8 scratch buffer (packed int8 panels).");
pool!(POOL_I32, with_i32, i32, "Runs `f` with a pooled i32 scratch buffer (int8 accumulators).");

/// Number of f32 buffers currently pooled on this thread (diagnostics/tests).
pub fn pooled_buffers() -> usize {
    POOL_F32.with(|p| p.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_capacity_is_reused() {
        let cap0 = with(|buf| {
            buf.clear();
            buf.resize(4096, 1.0);
            buf.capacity()
        });
        // Second call on the same thread sees the retained capacity.
        let cap1 = with(|buf| buf.capacity());
        assert!(cap1 >= cap0.min(4096), "capacity {cap1} lost (was {cap0})");
    }

    #[test]
    fn nested_calls_get_distinct_buffers() {
        with(|a| {
            a.clear();
            a.resize(8, 1.0);
            with(|b| {
                b.clear();
                b.resize(8, 2.0);
                assert_eq!(a[0], 1.0, "outer buffer must be untouched");
                assert_eq!(b[0], 2.0);
            });
            assert_eq!(a[7], 1.0);
        });
        assert!(pooled_buffers() >= 2);
    }

    #[test]
    fn typed_pools_are_independent() {
        with_i8(|a| {
            a.clear();
            a.resize(4, -3);
            with_u8(|b| {
                b.clear();
                b.resize(4, 7);
                with_i32(|c| {
                    c.clear();
                    c.resize(4, 9);
                    assert_eq!((a[0], b[0], c[0]), (-3, 7, 9));
                });
            });
        });
    }
}
