//! The owned, contiguous `f32` tensor type.

use crate::shape::Shape;
use rand::Rng;
use std::fmt;

/// An owned, contiguous, row-major `f32` tensor.
///
/// 4-D tensors are interpreted as NCHW. Lower ranks are used for weights
/// (`[out, in]` matrices) and vectors (biases, logits).
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor { data: vec![0.0; shape.numel()], shape }
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Shape>, v: f32) -> Self {
        let shape = shape.into();
        Tensor { data: vec![v; shape.numel()], shape }
    }

    /// Tensor from existing data; panics if the element count mismatches.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {shape} wants {} elements, got {}",
            shape.numel(),
            data.len()
        );
        Tensor { data, shape }
    }

    /// Uniform random tensor in `[-limit, limit]`.
    pub fn rand_uniform<R: Rng>(shape: impl Into<Shape>, limit: f32, rng: &mut R) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.gen_range(-limit..=limit)).collect();
        Tensor { data, shape }
    }

    /// Kaiming/He-style init for a conv/linear weight with `fan_in` inputs.
    pub fn kaiming<R: Rng>(shape: impl Into<Shape>, fan_in: usize, rng: &mut R) -> Self {
        let limit = (6.0 / fan_in.max(1) as f32).sqrt();
        Self::rand_uniform(shape, limit, rng)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(shape.numel(), self.data.len(), "reshape to {shape} changes element count");
        self.shape = shape;
        self
    }

    /// Element at NCHW coordinates (4-D tensors only).
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let s = &self.shape.0;
        debug_assert_eq!(s.len(), 4);
        self.data[((n * s[1] + c) * s[2] + h) * s[3] + w]
    }

    /// Mutable element at NCHW coordinates (4-D tensors only).
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let s = &self.shape.0;
        debug_assert_eq!(s.len(), 4);
        &mut self.data[((n * s[1] + c) * s[2] + h) * s[3] + w]
    }

    /// In-place element-wise addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// In-place `self += k * other` (axpy).
    pub fn axpy(&mut self, k: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += k * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element (first on ties); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// L2 norm of the buffer.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Wire size of the raw f32 representation in bytes.
    pub fn byte_size_f32(&self) -> usize {
        self.data.len() * 4
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}, {} elems)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn construction_and_indexing() {
        let mut t = Tensor::zeros(Shape::nchw(1, 2, 3, 3));
        *t.at_mut(0, 1, 2, 2) = 5.0;
        assert_eq!(t.at(0, 1, 2, 2), 5.0);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
        assert_eq!(t.numel(), 18);
    }

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_len() {
        Tensor::from_vec(Shape::d2(2, 2), vec![1.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full(Shape::d1(3), 1.0);
        let b = Tensor::from_vec(Shape::d1(3), vec![1.0, 2.0, 3.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn argmax_ties_first() {
        let t = Tensor::from_vec(Shape::d1(4), vec![1.0, 9.0, 9.0, 2.0]);
        assert_eq!(t.argmax(), Some(1));
        let e = Tensor::zeros(Shape::d1(0));
        assert_eq!(e.argmax(), None);
    }

    #[test]
    fn kaiming_stays_within_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::kaiming(Shape::d2(16, 9), 9, &mut rng);
        let limit = (6.0f32 / 9.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit + 1e-6));
        // Not all-zero.
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::d1(6), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let m = t.reshape(Shape::d2(2, 3));
        assert_eq!(m.shape().dim(0), 2);
        assert_eq!(m.data()[4], 4.0);
    }
}
