//! FDSP spatial tiling (ADCNN, Zhang et al., ICPP '20).
//!
//! Fully Decomposable Spatial Partition splits a feature map into a
//! `rows × cols` grid of tiles. Each tile is then convolved *independently*
//! with ordinary zero padding at every tile edge — including interior edges,
//! where real data from the neighbouring tile would be needed for an exact
//! result. Trading those halo exchanges for zeros removes all cross-device
//! communication inside a partitioned stage (latency win) at the cost of a
//! small accuracy drop near the seams, which the paper recovers with
//! progressive fine-tuning and we account for in the accuracy model.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// A spatial partition grid. `1×1` means "no spatial partitioning".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridSpec {
    pub rows: usize,
    pub cols: usize,
}

impl GridSpec {
    /// Creates a grid, rejecting empty dimensions.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dims must be positive");
        GridSpec { rows, cols }
    }

    /// Number of tiles (= number of parallel workers usable by the stage).
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the grid is the trivial 1×1 partition.
    pub fn is_identity(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// The grids in the paper's search space: 1×1, 1×2, 2×1, 2×2.
    pub fn search_space() -> Vec<GridSpec> {
        vec![GridSpec::new(1, 1), GridSpec::new(1, 2), GridSpec::new(2, 1), GridSpec::new(2, 2)]
    }
}

/// Bounds of one tile: `(y0, x0, height, width)`.
pub type TileBounds = (usize, usize, usize, usize);

/// Near-equal split of `len` into `parts` contiguous ranges; earlier parts
/// take the remainder (e.g. 7 into 2 → 4 + 3).
pub fn split_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0 && parts <= len, "cannot split {len} into {parts}");
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < rem);
        out.push((start, sz));
        start += sz;
    }
    out
}

/// Tile bounds for an `h × w` plane under `grid`.
pub fn tile_bounds(h: usize, w: usize, grid: GridSpec) -> Vec<TileBounds> {
    let rs = split_ranges(h, grid.rows);
    let cs = split_ranges(w, grid.cols);
    let mut out = Vec::with_capacity(grid.tiles());
    for &(y0, th) in &rs {
        for &(x0, tw) in &cs {
            out.push((y0, x0, th, tw));
        }
    }
    out
}

/// Splits an NCHW tensor into FDSP tiles (row-major tile order).
///
/// Each tile is one streaming [`crop`](crate::pad::crop): rows are appended
/// into a pre-reserved buffer so every tile byte is written exactly once.
/// (An earlier revision fanned the crops out over Rayon, but the per-tile
/// work is a short memcpy sequence — dispatch overhead regressed the split
/// below seed, and the workspace's rayon stand-in is sequential anyway.)
pub fn split_fdsp(input: &Tensor, grid: GridSpec) -> Vec<Tensor> {
    let (h, w) = (input.shape().h(), input.shape().w());
    tile_bounds(h, w, grid)
        .into_iter()
        .map(|(y0, x0, th, tw)| crate::pad::crop(input, y0, x0, th, tw))
        .collect()
}

/// Reassembles FDSP tiles produced by [`split_fdsp`] (or per-tile outputs of
/// the same grid shape) back into one tensor.
///
/// All tiles must agree on N and C; tile heights/widths may differ per
/// row/column but must be consistent within each.
pub fn merge_fdsp(tiles: &[Tensor], grid: GridSpec) -> Tensor {
    assert_eq!(tiles.len(), grid.tiles(), "tile count mismatch");
    let n = tiles[0].shape().n();
    let c = tiles[0].shape().c();
    // Row heights from the first tile of each row; column widths from the
    // first row's tiles.
    let row_h: Vec<usize> = (0..grid.rows).map(|r| tiles[r * grid.cols].shape().h()).collect();
    let col_w: Vec<usize> = (0..grid.cols).map(|cix| tiles[cix].shape().w()).collect();
    let h: usize = row_h.iter().sum();
    let w: usize = col_w.iter().sum();
    // Validate every tile up front so the copy loop below is assertion-free.
    for r in 0..grid.rows {
        for cix in 0..grid.cols {
            let t = &tiles[r * grid.cols + cix];
            assert_eq!(t.shape().n(), n, "tile N mismatch");
            assert_eq!(t.shape().c(), c, "tile C mismatch");
            assert_eq!(t.shape().h(), row_h[r], "tile height inconsistent in row {r}");
            assert_eq!(t.shape().w(), col_w[cix], "tile width inconsistent in col {cix}");
        }
    }
    // Build the output by walking its rows in storage order and appending the
    // matching column band from each tile in the row's grid band. Every
    // output byte is written exactly once into a pre-reserved buffer — no
    // zero prefill, no scattered destination writes.
    let mut data = Vec::with_capacity(n * c * h * w);
    for plane in 0..n * c {
        for (r, &th) in row_h.iter().enumerate() {
            let band = &tiles[r * grid.cols..(r + 1) * grid.cols];
            for y in 0..th {
                for (t, &tw) in band.iter().zip(col_w.iter()) {
                    let s = (plane * th + y) * tw;
                    data.extend_from_slice(&t.data()[s..s + tw]);
                }
            }
        }
    }
    Tensor::from_vec(Shape::nchw(n, c, h, w), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d, Conv2dParams};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn split_ranges_distributes_remainder() {
        assert_eq!(split_ranges(7, 2), vec![(0, 4), (4, 3)]);
        assert_eq!(split_ranges(9, 3), vec![(0, 3), (3, 3), (6, 3)]);
        assert_eq!(split_ranges(5, 5), vec![(0, 1), (1, 1), (2, 1), (3, 1), (4, 1)]);
    }

    #[test]
    fn split_merge_round_trip_2x2() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_uniform(Shape::nchw(2, 3, 7, 9), 1.0, &mut rng);
        let grid = GridSpec::new(2, 2);
        let tiles = split_fdsp(&x, grid);
        assert_eq!(tiles.len(), 4);
        assert_eq!(tiles[0].shape(), &Shape::nchw(2, 3, 4, 5));
        assert_eq!(tiles[3].shape(), &Shape::nchw(2, 3, 3, 4));
        let back = merge_fdsp(&tiles, grid);
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn identity_grid_is_noop() {
        let x = Tensor::full(Shape::nchw(1, 1, 4, 4), 3.0);
        let grid = GridSpec::new(1, 1);
        let tiles = split_fdsp(&x, grid);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].data(), x.data());
    }

    #[test]
    fn fdsp_conv_exact_away_from_seams() {
        // Per-tile zero-padded conv equals the full conv except in the
        // 1-pixel band along interior seams (k=3, pad=1).
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::rand_uniform(Shape::nchw(1, 2, 8, 8), 1.0, &mut rng);
        let w = Tensor::rand_uniform(Shape::nchw(2, 2, 3, 3), 0.5, &mut rng);
        let p = Conv2dParams::same(3);
        let full = conv2d(&x, &w, None, p);

        let grid = GridSpec::new(2, 2);
        let tiles = split_fdsp(&x, grid);
        let outs: Vec<Tensor> = tiles.iter().map(|t| conv2d(t, &w, None, p)).collect();
        let merged = merge_fdsp(&outs, grid);
        assert_eq!(merged.shape(), full.shape());
        // Seams are at y=3/4 and x=3/4; everything else matches.
        let mut mismatch_off_seam = 0;
        for c in 0..2 {
            for y in 0..8 {
                for xx in 0..8 {
                    let on_seam = (3..=4).contains(&y) || (3..=4).contains(&xx);
                    let d = (merged.at(0, c, y, xx) - full.at(0, c, y, xx)).abs();
                    if !on_seam && d > 1e-4 {
                        mismatch_off_seam += 1;
                    }
                }
            }
        }
        assert_eq!(mismatch_off_seam, 0, "FDSP must be exact away from seams");
        // And the seam really does differ (otherwise the test is vacuous).
        let seam_diff: f32 =
            (0..8).map(|xx| (merged.at(0, 0, 3, xx) - full.at(0, 0, 3, xx)).abs()).sum();
        assert!(seam_diff > 1e-4, "expected nonzero seam error, got {seam_diff}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_split_merge_round_trip(
            h in 2usize..12, w in 2usize..12,
            rows in 1usize..3, cols in 1usize..3,
            seed in 0u64..500,
        ) {
            prop_assume!(rows <= h && cols <= w);
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Tensor::rand_uniform(Shape::nchw(1, 2, h, w), 1.0, &mut rng);
            let grid = GridSpec::new(rows, cols);
            let back = merge_fdsp(&split_fdsp(&x, grid), grid);
            prop_assert_eq!(back.data(), x.data());
        }

        #[test]
        fn prop_tile_bounds_cover_exactly(
            h in 1usize..20, w in 1usize..20,
            rows in 1usize..4, cols in 1usize..4,
        ) {
            prop_assume!(rows <= h && cols <= w);
            let grid = GridSpec::new(rows, cols);
            let bounds = tile_bounds(h, w, grid);
            let mut covered = vec![0u8; h * w];
            for (y0, x0, th, tw) in bounds {
                for y in y0..y0 + th {
                    for x in x0..x0 + tw {
                        covered[y * w + x] += 1;
                    }
                }
            }
            prop_assert!(covered.iter().all(|&c| c == 1), "tiles must tile the plane");
        }
    }
}
