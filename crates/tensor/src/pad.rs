//! Zero padding and cropping of NCHW feature maps.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Pads each spatial plane with zeros: `top/bottom/left/right` extra rows
/// and columns.
pub fn zero_pad(input: &Tensor, top: usize, bottom: usize, left: usize, right: usize) -> Tensor {
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    let nh = h + top + bottom;
    let nw = w + left + right;
    let mut out = Tensor::zeros(Shape::nchw(n, c, nh, nw));
    for b in 0..n {
        for ch in 0..c {
            let src = (b * c + ch) * h * w;
            let dst = (b * c + ch) * nh * nw;
            for y in 0..h {
                let s = src + y * w;
                let d = dst + (y + top) * nw + left;
                out.data_mut()[d..d + w].copy_from_slice(&input.data()[s..s + w]);
            }
        }
    }
    out
}

/// Crops a spatial window `[y0, y0+ch_h) × [x0, x0+ch_w)` from each plane.
///
/// The output is built by appending one source row at a time into a
/// pre-reserved buffer — every destination byte is written exactly once, so
/// the crop never pays the zero-prefill + overwrite double touch that the
/// `Tensor::zeros` + `copy_from_slice` formulation did (it showed up as the
/// FDSP split regressing below seed in BENCH_kernels).
pub fn crop(input: &Tensor, y0: usize, x0: usize, ch_h: usize, ch_w: usize) -> Tensor {
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    assert!(y0 + ch_h <= h, "crop rows out of range");
    assert!(x0 + ch_w <= w, "crop cols out of range");
    let in_data = input.data();
    let mut data = Vec::with_capacity(n * c * ch_h * ch_w);
    for plane in 0..n * c {
        let src = plane * h * w;
        for y in 0..ch_h {
            let s = src + (y0 + y) * w + x0;
            data.extend_from_slice(&in_data[s..s + ch_w]);
        }
    }
    Tensor::from_vec(Shape::nchw(n, c, ch_h, ch_w), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_then_crop_round_trips() {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let p = zero_pad(&x, 1, 2, 3, 0);
        assert_eq!(p.shape(), &Shape::nchw(1, 1, 5, 5));
        assert_eq!(p.at(0, 0, 1, 3), 1.0);
        assert_eq!(p.at(0, 0, 2, 4), 4.0);
        assert_eq!(p.at(0, 0, 0, 0), 0.0);
        let back = crop(&p, 1, 3, 2, 2);
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn crop_center() {
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 3, 3),
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        );
        let c = crop(&x, 1, 1, 1, 1);
        assert_eq!(c.data(), &[4.0]);
    }

    #[test]
    #[should_panic]
    fn crop_out_of_range_panics() {
        let x = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        crop(&x, 2, 2, 2, 2);
    }
}
