//! Bit-exactness of the int8 compute path.
//!
//! The contract (DESIGN.md §8): quantize → int8 GEMM → requantize produces
//! *identical* results on the AVX2 and scalar paths, and both match the
//! naive i32 reference, for arbitrary shapes and scales. This is stronger
//! than the f32 ULP bound — i32 accumulation is exact, the offset-panel
//! correction is exact integer arithmetic, and both epilogues round
//! half-to-even — and it is what lets the distributed executor mix SIMD and
//! non-SIMD devices without cross-device divergence.
//!
//! The scalar override is process-global; every test serializes on a mutex.

use std::sync::{Mutex, MutexGuard};

use murmuration_tensor::conv::Conv2dParams;
use murmuration_tensor::int8::{
    qconv2d, qgemm_f32, qgemm_ref_i32, qgemm_requant, qlinear, quantize_activations, requant_one,
    QConv2dWeights, QGemmWeights,
};
use murmuration_tensor::simd;
use murmuration_tensor::{Shape, Tensor};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

fn both_paths<T>(mut f: impl FnMut() -> T) -> (T, T, MutexGuard<'static, ()>) {
    let guard = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    simd::force_scalar(false);
    let vec_out = f();
    simd::force_scalar(true);
    let scalar_out = f();
    simd::force_scalar(false);
    (vec_out, scalar_out, guard)
}

fn rand_vec(n: usize, rng: &mut StdRng, amp: f32) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-amp..amp)).collect()
}

#[test]
fn extreme_codes_cannot_saturate_the_vector_kernel() {
    // Adversarial operands: weights pinned at the ±63 bound, activations
    // spanning the full ±127 range — the worst case for the i16 pair sums
    // inside vpmaddubsw. SIMD must still match the i32 reference exactly.
    let (m, k, n) = (5, 67, 19);
    let wdata: Vec<f32> = (0..m * k).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    let xdata: Vec<f32> = (0..k * n)
        .map(|i| match i % 3 {
            0 => 1.0,
            1 => -1.0,
            _ => 127.0f32 / 127.0,
        })
        .collect();
    let qw = QGemmWeights::quantize(m, k, &wdata);
    let (codes, b_scale) = quantize_activations(&xdata);
    let mut want = vec![0i32; m * n];
    qgemm_ref_i32(&qw, &codes, n, &mut want);
    let (v, s, _g) = both_paths(|| {
        let mut out = vec![0.0f32; m * n];
        qgemm_f32(&qw, &codes, n, b_scale, None, &mut out);
        out
    });
    assert_eq!(v, s, "SIMD and scalar int8 GEMM must be bit-identical");
    for (i, (&g, &ri)) in v.iter().zip(want.iter()).enumerate() {
        assert_eq!(g, ri as f32 * (qw.scales()[i / n] * b_scale), "element {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_qgemm_f32_bit_identical_and_matches_reference(
        m in 1usize..14, k in 1usize..40, n in 1usize..36,
        amp in 0.1f32..8.0, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wdata = rand_vec(m * k, &mut rng, amp);
        let xdata = rand_vec(k * n, &mut rng, amp);
        let bias = rand_vec(m, &mut rng, amp);
        let qw = QGemmWeights::quantize(m, k, &wdata);
        let (codes, b_scale) = quantize_activations(&xdata);
        let (v, s, _g) = both_paths(|| {
            let mut out = vec![0.0f32; m * n];
            qgemm_f32(&qw, &codes, n, b_scale, Some(&bias), &mut out);
            out
        });
        prop_assert_eq!(&v, &s);
        let mut refi = vec![0i32; m * n];
        qgemm_ref_i32(&qw, &codes, n, &mut refi);
        for (i, (&g, &ri)) in v.iter().zip(refi.iter()).enumerate() {
            let want = ri as f32 * (qw.scales()[i / n] * b_scale) + bias[i / n];
            prop_assert_eq!(g, want);
        }
    }

    #[test]
    fn prop_requant_epilogue_bit_identical_and_matches_reference(
        m in 1usize..12, k in 1usize..48, n in 1usize..30,
        amp in 0.1f32..6.0, out_scale in 0.001f32..2.0, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wdata = rand_vec(m * k, &mut rng, amp);
        let xdata = rand_vec(k * n, &mut rng, amp);
        let qw = QGemmWeights::quantize(m, k, &wdata);
        let (codes, b_scale) = quantize_activations(&xdata);
        let (v, s, _g) = both_paths(|| {
            let mut out = vec![0i8; m * n];
            qgemm_requant(&qw, &codes, n, b_scale, out_scale, &mut out);
            out
        });
        prop_assert_eq!(&v, &s);
        // quantize → int8 GEMM → requant must equal the scalar i32 reference
        // pushed through the same epilogue formula, element for element.
        let mut refi = vec![0i32; m * n];
        qgemm_ref_i32(&qw, &codes, n, &mut refi);
        for (i, (&g, &ri)) in v.iter().zip(refi.iter()).enumerate() {
            let want = requant_one(ri, qw.scales()[i / n] * b_scale / out_scale);
            prop_assert_eq!(g, want);
        }
    }

    #[test]
    fn prop_qconv2d_bit_identical_across_paths(
        c_in in 1usize..4, c_out in 1usize..5,
        h in 3usize..9, w in 3usize..9,
        k in prop::sample::select(vec![1usize, 3]),
        s in 1usize..3, seed in 0u64..1000,
    ) {
        let pad = k / 2;
        let p = Conv2dParams { kernel: k, stride: s, pad };
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(Shape::nchw(2, c_in, h, w), 1.0, &mut rng);
        let wt = Tensor::rand_uniform(Shape::nchw(c_out, c_in, k, k), 0.5, &mut rng);
        let b = Tensor::rand_uniform(Shape::d1(c_out), 0.5, &mut rng);
        let qw = QConv2dWeights::quantize(&wt);
        let (v, sres, _g) = both_paths(|| qconv2d(&x, &qw, Some(&b), p).data().to_vec());
        prop_assert_eq!(v, sres);
    }

    #[test]
    fn prop_qlinear_bit_identical_across_paths(
        batch in 1usize..20, fin in 1usize..30, fout in 1usize..18, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(Shape::d2(batch, fin), 1.0, &mut rng);
        let wdata = rand_vec(fout * fin, &mut rng, 1.0);
        let bias = rand_vec(fout, &mut rng, 1.0);
        let qw = QGemmWeights::quantize(fout, fin, &wdata);
        let (v, s, _g) = both_paths(|| qlinear(&x, &qw, Some(&bias)).data().to_vec());
        prop_assert_eq!(v, s);
    }
}
