//! SIMD-vs-scalar equivalence for the f32 microkernels and bit-exactness for
//! the quantize encode/decode kernels.
//!
//! Each case runs the same operation twice — once with the AVX2 path active,
//! once with the scalar override forced — and compares. f32 kernels are
//! ULP-bounded (FMA contracts one rounding per multiply-add, so a k-long
//! reduction may drift by O(k) ULPs); the integer quantize codes must match
//! bit for bit. On machines without AVX2 both runs take the scalar path and
//! every case passes trivially.
//!
//! The scalar override is process-global, so all tests in this binary
//! serialize on one mutex.

use std::sync::{Mutex, MutexGuard};

use murmuration_tensor::conv::{conv2d, depthwise_conv2d, Conv2dParams};
use murmuration_tensor::gemm::gemm;
use murmuration_tensor::quant::{BitWidth, QuantizedTensor};
use murmuration_tensor::simd;
use murmuration_tensor::{Shape, Tensor};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` twice — vector path, then forced-scalar path — returning both
/// results. Restores auto dispatch even if `f` panics mid-run would poison
/// the mutex (the next test clears it).
fn both_paths<T>(mut f: impl FnMut() -> T) -> (T, T, MutexGuard<'static, ()>) {
    let guard = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    simd::force_scalar(false);
    let vec_out = f();
    simd::force_scalar(true);
    let scalar_out = f();
    simd::force_scalar(false);
    (vec_out, scalar_out, guard)
}

/// |a-b| within `ulps` float steps at the magnitude of the *summands*, not
/// the result: inputs here are O(1), so intermediate partial sums are O(1)
/// even when the final value cancels to near zero — the floor of 1.0 keeps
/// the bound meaningful under that cancellation.
fn close_ulps(a: f32, b: f32, ulps: f32) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= ulps * scale * f32::EPSILON
}

fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[test]
fn gemm_paths_agree_on_tile_edge_sizes() {
    // Straddles full tiles, row remainders, column remainders, KC slabs.
    for &(m, k, n) in
        &[(4, 16, 16), (5, 17, 18), (1, 1, 1), (3, 300, 33), (64, 257, 48), (31, 64, 95)]
    {
        let mut rng = StdRng::seed_from_u64((m * 31 + k * 7 + n) as u64);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let (v, s, _g) = both_paths(|| {
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            c
        });
        for (i, (&x, &y)) in v.iter().zip(s.iter()).enumerate() {
            assert!(
                close_ulps(x, y, 4.0 * k as f32),
                "({m},{k},{n}) element {i}: simd {x} vs scalar {y}"
            );
        }
    }
}

#[test]
fn quantize_codes_are_bit_identical() {
    // Includes exact .5 multiples to pin the ties-even agreement.
    let mut vals: Vec<f32> = (0..3000).map(|i| ((i as f32 * 0.77).sin() - 0.3) * 4.0).collect();
    for (i, v) in vals.iter_mut().enumerate() {
        if i % 7 == 0 {
            *v = (i as f32 / 2.0 - 400.0) * (4.0 / 127.0); // lands on n+0.5 codes
        }
    }
    let t = Tensor::from_vec(Shape::d1(vals.len()), vals);
    for bits in [BitWidth::B8, BitWidth::B16] {
        let (v, s, _g) = both_paths(|| {
            let q = QuantizedTensor::quantize(&t, bits);
            q.dequantize().data().to_vec()
        });
        assert_eq!(v, s, "quantize({bits:?}) round-trip must be bit-identical across paths");
    }
}

#[test]
fn activation_codes_are_bit_identical() {
    let data: Vec<f32> = (0..777).map(|i| ((i as f32 * 1.3).cos() - 0.1) * 2.5).collect();
    let (v, s, _g) = both_paths(|| murmuration_tensor::int8::quantize_activations(&data));
    assert_eq!(v.1, s.1, "activation scale");
    assert_eq!(v.0, s.0, "activation codes must be bit-identical across paths");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_gemm_paths_agree(
        m in 1usize..24, k in 1usize..48, n in 1usize..40, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let (v, s, _g) = both_paths(|| {
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            c
        });
        for (x, y) in v.iter().zip(s.iter()) {
            prop_assert!(close_ulps(*x, *y, 4.0 * k as f32), "{x} vs {y} (k={k})");
        }
    }

    #[test]
    fn prop_conv2d_paths_agree(
        c_in in 1usize..4, c_out in 1usize..5,
        h in 3usize..10, w in 3usize..10,
        k in prop::sample::select(vec![1usize, 3, 5]),
        s in 1usize..3, seed in 0u64..1000,
    ) {
        let pad = k / 2;
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let p = Conv2dParams { kernel: k, stride: s, pad };
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(Shape::nchw(2, c_in, h, w), 1.0, &mut rng);
        let wt = Tensor::rand_uniform(Shape::nchw(c_out, c_in, k, k), 0.5, &mut rng);
        let b = Tensor::rand_uniform(Shape::d1(c_out), 0.5, &mut rng);
        let (v, sres, _g) = both_paths(|| conv2d(&x, &wt, Some(&b), p).data().to_vec());
        let red = c_in * k * k;
        for (a, bb) in v.iter().zip(sres.iter()) {
            prop_assert!(close_ulps(*a, *bb, 8.0 * red as f32), "{a} vs {bb}");
        }
    }

    #[test]
    fn prop_depthwise_paths_agree(
        c in 1usize..5, h in 3usize..14, dw in 0usize..4,
        k in prop::sample::select(vec![3usize, 5]),
        s in 1usize..3, seed in 0u64..1000,
    ) {
        let w = h + dw;
        let pad = k / 2;
        let p = Conv2dParams { kernel: k, stride: s, pad };
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(Shape::nchw(1, c, h, w), 1.0, &mut rng);
        let wt = Tensor::rand_uniform(Shape::nchw(c, 1, k, k), 0.5, &mut rng);
        let (v, sres, _g) = both_paths(|| depthwise_conv2d(&x, &wt, None, p).data().to_vec());
        for (a, bb) in v.iter().zip(sres.iter()) {
            prop_assert!(close_ulps(*a, *bb, 8.0 * (k * k) as f32), "{a} vs {bb}");
        }
    }

    #[test]
    fn prop_quantize_codes_bit_identical(
        vals in prop::collection::vec(-8.0f32..8.0, 1..300),
    ) {
        let t = Tensor::from_vec(Shape::d1(vals.len()), vals);
        let (v, s, _g) = both_paths(|| {
            QuantizedTensor::quantize(&t, BitWidth::B8).dequantize().data().to_vec()
        });
        prop_assert_eq!(v, s);
    }
}
