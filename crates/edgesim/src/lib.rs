//! # murmuration-edgesim
//!
//! The testbed substitute. The paper evaluates on physical Raspberry Pi 4s
//! and a Ryzen 5500 + GTX 1080 desktop behind a `tc`-shaped 1 Gbps switch;
//! this crate models exactly the quantities that setup exposes to the rest
//! of the system:
//!
//! * [`device`] — per-device compute profiles (effective MAC throughput per
//!   operator class, per-layer dispatch overhead, memory/disk bandwidth for
//!   model loading), calibrated in `DESIGN.md §6` so the baseline models
//!   land in the paper's latency ranges.
//! * [`net`] — star-topology link state (bandwidth, propagation delay) and
//!   transfer-time math.
//! * [`tc`] — the traffic-control handle used by experiments to sweep
//!   network conditions, mirroring the paper's use of `tc`.
//! * [`trace`] — dynamic network traces (step changes, bounded random
//!   walks) for the "dynamic edge environment" experiments.
//! * [`monitor`] — noisy bandwidth/delay observation, the input to
//!   Murmuration's network-monitoring module.
//! * [`des`] — a small deterministic discrete-event engine used by the
//!   partition crate to simulate distributed plan execution.
//! * [`fault`] — deterministic device up/down/slow traces ([`DeviceTrace`],
//!   [`FleetTrace`]) for fault-injection experiments.
//! * [`arrivals`] — replayable request-arrival traces (open-loop Poisson,
//!   rate ramps, mixed SLO classes) for sustained-load experiments.
//! * [`scenario`] — the declarative chaos-scenario DSL: one seeded spec
//!   composing fleet, traffic, churn, brownouts, partitions, slow links,
//!   gossip chaos, and coordinator death, lowered onto the trace types
//!   above so every scenario replays bit-for-bit.

pub mod arrivals;
pub mod des;
pub mod device;
pub mod fault;
pub mod monitor;
pub mod net;
pub mod scenario;
pub mod tc;
pub mod trace;

pub use arrivals::{Arrival, ArrivalTrace, RateShape};
pub use device::{ComputeProfile, Device, DeviceId, DeviceKind};
pub use fault::{DeviceStatus, DeviceTrace, FleetTrace, PartitionSchedule};
pub use net::{LinkState, NetworkState};
pub use scenario::{
    builtin_by_name, builtin_matrix, ArrivalShape, BrownoutSpec, ChurnSpec, FleetKind, GossipChaos,
    LoweredScenario, NetSpec, PartitionSpec, ScenarioSpec, SlowLinkSpec,
};
pub use tc::TrafficControl;
