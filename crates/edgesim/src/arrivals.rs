//! Request-arrival traces for sustained-load experiments.
//!
//! Where [`trace`](crate::trace) models *how the network changes*, this
//! module models *when requests arrive*: open-loop Poisson processes
//! (arrivals independent of service — the honest way to measure overload),
//! deterministic periodic streams, and rate ramps for saturation sweeps.
//! A trace is materialized once, seeded, and immutable — replaying the
//! same trace against two server configurations is an apples-to-apples
//! comparison.
//!
//! Class mixing: every arrival carries a class index drawn from a weighted
//! distribution, so mixed SLO-class traffic (interactive + standard +
//! best-effort) comes from one trace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request arrival: when, and which SLO class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// Virtual arrival time (ms).
    pub t_ms: f64,
    /// Index into the server's class table.
    pub class: usize,
}

/// Offered-load shape over the trace duration, in requests per second.
#[derive(Clone, Debug)]
pub enum RateShape {
    /// Constant rate.
    Constant(f64),
    /// Linear ramp from `from_rps` at t=0 to `to_rps` at the end — the
    /// overload-ramp experiment's generator.
    Ramp { from_rps: f64, to_rps: f64 },
    /// Piecewise-constant steps: `(start_ms, rps)`, time-sorted from 0.
    Steps(Vec<(f64, f64)>),
    /// A diurnal cycle: raised-cosine oscillation between `base_rps`
    /// (trough) and `peak_rps` (crest) with period `period_ms`, starting
    /// at the trough — the daily traffic curve every edge deployment
    /// rides.
    Diurnal { base_rps: f64, peak_rps: f64, period_ms: f64 },
}

impl RateShape {
    /// Instantaneous rate at `t_ms` (req/s).
    pub fn rate_at(&self, t_ms: f64, duration_ms: f64) -> f64 {
        match self {
            RateShape::Constant(r) => *r,
            RateShape::Ramp { from_rps, to_rps } => {
                let frac = (t_ms / duration_ms).clamp(0.0, 1.0);
                from_rps + (to_rps - from_rps) * frac
            }
            RateShape::Steps(steps) => {
                let mut cur = steps.first().map_or(0.0, |s| s.1);
                for &(t0, r) in steps {
                    if t_ms >= t0 {
                        cur = r;
                    } else {
                        break;
                    }
                }
                cur
            }
            RateShape::Diurnal { base_rps, peak_rps, period_ms } => {
                let phase = t_ms / period_ms * std::f64::consts::TAU;
                base_rps + (peak_rps - base_rps) * 0.5 * (1.0 - phase.cos())
            }
        }
    }

    /// Peak rate over the trace (the thinning envelope).
    pub fn max_rate(&self) -> f64 {
        match self {
            RateShape::Constant(r) => *r,
            RateShape::Ramp { from_rps, to_rps } => from_rps.max(*to_rps),
            RateShape::Steps(steps) => steps.iter().map(|s| s.1).fold(0.0, f64::max),
            RateShape::Diurnal { base_rps, peak_rps, .. } => base_rps.max(*peak_rps),
        }
    }
}

/// A materialized, replayable arrival schedule.
#[derive(Clone, Debug, Default)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

impl ArrivalTrace {
    /// Open-loop Poisson arrivals over `[0, duration_ms)` following
    /// `shape`, classes drawn with probability proportional to
    /// `class_weights`. Nonhomogeneous rates use Lewis–Shedler thinning
    /// against the peak rate, so ramps stay exactly Poisson at every
    /// instant. Deterministic in `seed`.
    pub fn poisson(duration_ms: f64, shape: &RateShape, class_weights: &[f64], seed: u64) -> Self {
        assert!(duration_ms > 0.0, "trace needs a positive duration");
        let lambda_max = shape.max_rate() / 1000.0; // per ms
        assert!(lambda_max > 0.0, "peak rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential gap at the envelope rate.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / lambda_max;
            if t >= duration_ms {
                break;
            }
            // Thin: keep with probability rate(t)/rate_max.
            let keep: f64 = rng.gen_range(0.0..1.0);
            if keep * lambda_max <= shape.rate_at(t, duration_ms) / 1000.0 {
                arrivals.push(Arrival { t_ms: t, class: pick_class(class_weights, &mut rng) });
            }
        }
        ArrivalTrace { arrivals }
    }

    /// A flash crowd: baseline Poisson traffic at `base_rps` with one
    /// step-surge window of `surge_ms` at `surge_mult`× the baseline,
    /// whose start is drawn (seeded) uniformly from the middle of the
    /// trace — the "everyone opens the app at once" event whose timing
    /// the server cannot predict but the experiment can replay.
    ///
    /// The surge window placement and the arrival process both derive
    /// from `seed`, so the whole trace is deterministic in it.
    pub fn flash_crowd(
        duration_ms: f64,
        base_rps: f64,
        surge_mult: f64,
        surge_ms: f64,
        class_weights: &[f64],
        seed: u64,
    ) -> Self {
        assert!(duration_ms > 0.0 && base_rps > 0.0, "need positive duration and base rate");
        assert!(surge_mult >= 1.0, "a flash crowd must not shrink traffic");
        assert!(
            surge_ms > 0.0 && surge_ms < 0.8 * duration_ms,
            "surge window must fit inside the trace"
        );
        // Keep the window strictly inside (0, duration): the Steps shape
        // requires a strictly increasing boundary list starting at 0.
        let lo = 0.1 * duration_ms;
        let hi = (duration_ms - surge_ms).max(lo + 1.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf1a5_4c20_3d00_0001);
        let start = rng.gen_range(lo..hi);
        let shape = RateShape::Steps(vec![
            (0.0, base_rps),
            (start, base_rps * surge_mult),
            (start + surge_ms, base_rps),
        ]);
        ArrivalTrace::poisson(duration_ms, &shape, class_weights, seed)
    }

    /// Deterministic periodic arrivals at a constant rate — the zero-jitter
    /// baseline for batching experiments (perfectly coalescable bursts
    /// when `burst > 1`).
    pub fn periodic(
        duration_ms: f64,
        rps: f64,
        burst: usize,
        class_weights: &[f64],
        seed: u64,
    ) -> Self {
        assert!(duration_ms > 0.0 && rps > 0.0 && burst >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let gap_ms = 1000.0 / rps * burst as f64;
        let mut arrivals = Vec::new();
        let mut t = 0.0;
        while t < duration_ms {
            for _ in 0..burst {
                arrivals.push(Arrival { t_ms: t, class: pick_class(class_weights, &mut rng) });
            }
            t += gap_ms;
        }
        ArrivalTrace { arrivals }
    }

    /// The arrivals, time-sorted.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Average offered rate over the trace (req/s).
    pub fn offered_rps(&self) -> f64 {
        match (self.arrivals.first(), self.arrivals.last()) {
            (Some(first), Some(last)) if last.t_ms > first.t_ms => {
                (self.arrivals.len() - 1) as f64 / (last.t_ms - first.t_ms) * 1000.0
            }
            _ => 0.0,
        }
    }

    /// Merges two traces into one time-sorted schedule (e.g. a steady
    /// background stream plus a bursty foreground).
    pub fn merge(mut self, other: ArrivalTrace) -> Self {
        self.arrivals.extend(other.arrivals);
        self.arrivals.sort_by(|a, b| a.t_ms.total_cmp(&b.t_ms));
        ArrivalTrace { arrivals: self.arrivals }
    }
}

fn pick_class(weights: &[f64], rng: &mut StdRng) -> usize {
    assert!(!weights.is_empty(), "need at least one class weight");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "class weights must sum to a positive value");
    let mut draw: f64 = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if draw < *w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_close_to_requested() {
        let t = ArrivalTrace::poisson(60_000.0, &RateShape::Constant(50.0), &[1.0], 7);
        // 60 s at 50 rps → ~3000 arrivals; Poisson σ ≈ 55.
        assert!((t.len() as f64 - 3000.0).abs() < 250.0, "got {}", t.len());
        assert!((t.offered_rps() - 50.0).abs() < 5.0, "{}", t.offered_rps());
        // Sorted and in-range.
        assert!(t.arrivals().windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
        assert!(t.arrivals().iter().all(|a| (0.0..60_000.0).contains(&a.t_ms)));
    }

    #[test]
    fn poisson_is_deterministic_in_seed() {
        let shape = RateShape::Ramp { from_rps: 10.0, to_rps: 40.0 };
        let a = ArrivalTrace::poisson(10_000.0, &shape, &[2.0, 1.0], 3);
        let b = ArrivalTrace::poisson(10_000.0, &shape, &[2.0, 1.0], 3);
        assert_eq!(a.arrivals(), b.arrivals());
        let c = ArrivalTrace::poisson(10_000.0, &shape, &[2.0, 1.0], 4);
        assert_ne!(a.arrivals(), c.arrivals(), "different seeds differ");
    }

    #[test]
    fn ramp_back_half_is_denser_than_front_half() {
        let shape = RateShape::Ramp { from_rps: 5.0, to_rps: 50.0 };
        let t = ArrivalTrace::poisson(40_000.0, &shape, &[1.0], 11);
        let front = t.arrivals().iter().filter(|a| a.t_ms < 20_000.0).count();
        let back = t.len() - front;
        assert!(back > front * 2, "ramp must load the back half: {front} vs {back}");
    }

    #[test]
    fn class_weights_shape_the_mix() {
        let t = ArrivalTrace::poisson(30_000.0, &RateShape::Constant(100.0), &[3.0, 1.0], 5);
        let c0 = t.arrivals().iter().filter(|a| a.class == 0).count();
        let c1 = t.len() - c0;
        let ratio = c0 as f64 / c1.max(1) as f64;
        assert!((2.0..4.5).contains(&ratio), "3:1 weighting, observed {ratio:.2}");
    }

    #[test]
    fn steps_shape_changes_rate_at_boundaries() {
        let shape = RateShape::Steps(vec![(0.0, 10.0), (5_000.0, 100.0)]);
        assert_eq!(shape.rate_at(0.0, 10_000.0), 10.0);
        assert_eq!(shape.rate_at(4_999.0, 10_000.0), 10.0);
        assert_eq!(shape.rate_at(5_000.0, 10_000.0), 100.0);
        let t = ArrivalTrace::poisson(10_000.0, &shape, &[1.0], 2);
        let front = t.arrivals().iter().filter(|a| a.t_ms < 5_000.0).count();
        let back = t.len() - front;
        assert!(back > front * 3, "step-up must dominate: {front} vs {back}");
    }

    #[test]
    fn diurnal_peaks_mid_period_and_troughs_at_edges() {
        let shape = RateShape::Diurnal { base_rps: 10.0, peak_rps: 50.0, period_ms: 10_000.0 };
        assert!((shape.rate_at(0.0, 10_000.0) - 10.0).abs() < 1e-9);
        assert!((shape.rate_at(5_000.0, 10_000.0) - 50.0).abs() < 1e-9);
        assert!((shape.rate_at(10_000.0, 10_000.0) - 10.0).abs() < 1e-9);
        assert_eq!(shape.max_rate(), 50.0);
        let t = ArrivalTrace::poisson(10_000.0, &shape, &[1.0], 9);
        let mid = t.arrivals().iter().filter(|a| (2_500.0..7_500.0).contains(&a.t_ms)).count();
        let edges = t.len() - mid;
        assert!(mid > edges, "the crest half must carry more load: {mid} vs {edges}");
    }

    #[test]
    fn flash_crowd_count_respects_the_thinning_bound() {
        // 10 s at base 20 rps with a 2 s window at 5× → expected count
        // E = 20·8 + 100·2 = 360; the thinning envelope caps the count at
        // the homogeneous peak-rate process (100 rps × 10 s = 1000).
        let t = ArrivalTrace::flash_crowd(10_000.0, 20.0, 5.0, 2_000.0, &[1.0], 17);
        let envelope = 100.0 * 10.0; // peak_rps × duration_s
        assert!((t.len() as f64) < envelope, "thinning can never exceed the envelope");
        assert!(
            (t.len() as f64 - 360.0).abs() < 100.0,
            "count should track the integrated rate, got {}",
            t.len()
        );
    }

    #[test]
    fn flash_crowd_surge_window_is_denser_than_baseline() {
        let t = ArrivalTrace::flash_crowd(10_000.0, 20.0, 6.0, 2_000.0, &[1.0], 4);
        // Find the densest 2 s window by sliding over arrivals; its rate
        // must be several times the trace-wide baseline.
        let arr = t.arrivals();
        let mut densest = 0usize;
        for (i, a) in arr.iter().enumerate() {
            let count = arr[i..].iter().take_while(|b| b.t_ms < a.t_ms + 2_000.0).count();
            densest = densest.max(count);
        }
        let surge_rps = densest as f64 / 2.0;
        assert!(surge_rps > 60.0, "surge window must run hot, got {surge_rps:.1} rps");
    }

    #[test]
    fn flash_crowd_is_deterministic_in_seed() {
        let a = ArrivalTrace::flash_crowd(8_000.0, 15.0, 4.0, 1_500.0, &[1.0, 1.0], 3);
        let b = ArrivalTrace::flash_crowd(8_000.0, 15.0, 4.0, 1_500.0, &[1.0, 1.0], 3);
        assert_eq!(a.arrivals(), b.arrivals());
        let c = ArrivalTrace::flash_crowd(8_000.0, 15.0, 4.0, 1_500.0, &[1.0, 1.0], 5);
        assert_ne!(a.arrivals(), c.arrivals(), "different seeds move the surge");
    }

    #[test]
    fn periodic_bursts_coalesce() {
        let t = ArrivalTrace::periodic(1_000.0, 40.0, 4, &[1.0], 0);
        // 40 rps in bursts of 4 → a burst every 100 ms → 10 bursts.
        assert_eq!(t.len(), 40);
        assert_eq!(t.arrivals()[0].t_ms, t.arrivals()[3].t_ms, "burst shares a timestamp");
        assert_ne!(t.arrivals()[3].t_ms, t.arrivals()[4].t_ms);
    }

    #[test]
    fn merge_keeps_time_order() {
        let a = ArrivalTrace::periodic(1_000.0, 10.0, 1, &[1.0], 0);
        let b = ArrivalTrace::poisson(1_000.0, &RateShape::Constant(20.0), &[1.0], 1);
        let m = a.merge(b);
        assert!(m.arrivals().windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
    }
}
