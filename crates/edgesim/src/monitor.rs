//! Noisy network observation — what Murmuration's monitoring module sees.
//!
//! Real monitoring (active probes + passive measurement) never reports the
//! shaped ground truth exactly; observations carry multiplicative noise.

use crate::net::{LinkState, NetworkState};
use crate::DeviceId;
use rand::Rng;

/// One monitoring sample of a link.
#[derive(Clone, Copy, Debug)]
pub struct Observation {
    pub device: DeviceId,
    pub bandwidth_mbps: f64,
    pub delay_ms: f64,
    /// Virtual timestamp of the sample (ms).
    pub t_ms: f64,
}

/// Samples every remote link with relative noise `rel_noise` (e.g. 0.05 for
/// ±5%).
pub fn observe_all<R: Rng>(
    net: &NetworkState,
    t_ms: f64,
    rel_noise: f64,
    rng: &mut R,
) -> Vec<Observation> {
    (1..=net.n_remote())
        .map(|dev| observe_link(net.link_for(dev), dev, t_ms, rel_noise, rng))
        .collect()
}

/// Samples one link with multiplicative noise.
pub fn observe_link<R: Rng>(
    link: LinkState,
    device: DeviceId,
    t_ms: f64,
    rel_noise: f64,
    rng: &mut R,
) -> Observation {
    assert!((0.0..1.0).contains(&rel_noise), "rel_noise in [0,1)");
    let jitter = |v: f64, rng: &mut R| {
        if rel_noise == 0.0 {
            v
        } else {
            v * (1.0 + rng.gen_range(-rel_noise..rel_noise))
        }
    };
    Observation {
        device,
        bandwidth_mbps: jitter(link.bandwidth_mbps, rng).max(0.1),
        delay_ms: jitter(link.delay_ms, rng).max(0.0),
        t_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zero_noise_reports_ground_truth() {
        let mut rng = StdRng::seed_from_u64(0);
        let link = LinkState { bandwidth_mbps: 123.0, delay_ms: 4.5 };
        let o = observe_link(link, 1, 10.0, 0.0, &mut rng);
        assert_eq!(o.bandwidth_mbps, 123.0);
        assert_eq!(o.delay_ms, 4.5);
        assert_eq!(o.t_ms, 10.0);
    }

    #[test]
    fn noise_stays_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let link = LinkState { bandwidth_mbps: 100.0, delay_ms: 20.0 };
        for _ in 0..200 {
            let o = observe_link(link, 2, 0.0, 0.1, &mut rng);
            assert!((90.0..110.0).contains(&o.bandwidth_mbps), "{}", o.bandwidth_mbps);
            assert!((18.0..22.0).contains(&o.delay_ms), "{}", o.delay_ms);
        }
    }

    #[test]
    fn observe_all_covers_every_remote() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkState::uniform(4, LinkState::lan());
        let obs = observe_all(&net, 5.0, 0.05, &mut rng);
        assert_eq!(obs.len(), 4);
        let devices: Vec<_> = obs.iter().map(|o| o.device).collect();
        assert_eq!(devices, vec![1, 2, 3, 4]);
    }
}
