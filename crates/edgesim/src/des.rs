//! A small deterministic discrete-event engine.
//!
//! The partition crate simulates distributed plan execution on top of this:
//! compute events occupy a device's timeline, transfer events occupy links,
//! and dependencies are expressed by scheduling follow-up events at
//! completion times. Determinism comes from a stable (time, sequence)
//! ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual time, carrying a user payload.
struct Scheduled<E> {
    time_ms: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time_ms == other.time_ms && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap: earliest time first, then insertion order.
        other
            .time_ms
            .partial_cmp(&self.time_ms)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Deterministic min-time event queue with a virtual clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now_ms: f64,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), now_ms: 0.0, seq: 0 }
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Schedules `payload` at `now + delay_ms` and returns its fire time.
    pub fn schedule_in(&mut self, delay_ms: f64, payload: E) -> f64 {
        assert!(delay_ms >= 0.0, "cannot schedule into the past");
        let t = self.now_ms + delay_ms;
        self.schedule_at(t, payload);
        t
    }

    /// Schedules `payload` at absolute time `time_ms` (≥ now).
    pub fn schedule_at(&mut self, time_ms: f64, payload: E) {
        assert!(time_ms >= self.now_ms, "cannot schedule into the past");
        self.heap.push(Scheduled { time_ms, seq: self.seq, payload });
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| {
            debug_assert!(s.time_ms >= self.now_ms);
            self.now_ms = s.time_ms;
            (s.time_ms, s.payload)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Tracks when a serially-used resource (device core, link) next becomes
/// free, for simple busy-timeline simulation.
#[derive(Clone, Debug, Default)]
pub struct ResourceTimeline {
    free_at_ms: f64,
}

impl ResourceTimeline {
    /// A resource free from t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `duration_ms` starting no earlier than
    /// `earliest_ms`; returns the completion time.
    pub fn reserve(&mut self, earliest_ms: f64, duration_ms: f64) -> f64 {
        assert!(duration_ms >= 0.0);
        let start = self.free_at_ms.max(earliest_ms);
        self.free_at_ms = start + duration_ms;
        self.free_at_ms
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> f64 {
        self.free_at_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(3.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now_ms(), 5.0);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, 1);
        q.schedule_at(2.0, 2);
        q.schedule_at(2.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, "x");
        q.pop();
        let t = q.schedule_in(5.0, "y");
        assert_eq!(t, 15.0);
    }

    #[test]
    #[should_panic]
    fn cannot_schedule_into_past() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, ());
        q.pop();
        q.schedule_at(5.0, ());
    }

    #[test]
    fn resource_timeline_serializes_work() {
        let mut r = ResourceTimeline::new();
        assert_eq!(r.reserve(0.0, 10.0), 10.0);
        // Requested at t=5 but busy until 10 → completes at 15.
        assert_eq!(r.reserve(5.0, 5.0), 15.0);
        // Requested at t=100 (idle gap) → completes at 103.
        assert_eq!(r.reserve(100.0, 3.0), 103.0);
    }
}
