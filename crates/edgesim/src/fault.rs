//! Device fault traces for the fault-tolerance experiments.
//!
//! Mirrors [`crate::trace::NetworkTrace`]: a [`DeviceTrace`] is a
//! deterministic function of virtual time, so a "device 2 dies at t=4s and
//! comes back at t=9s" scenario replays identically run-to-run. A
//! [`FleetTrace`] bundles one trace per device and answers the two
//! questions the runtime asks: who is alive at `t`, and how slow is each
//! survivor.

/// Availability of a single device at one instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeviceStatus {
    /// Healthy: accepts work at nominal speed.
    Up,
    /// Crashed or unreachable: accepts no work.
    Down,
    /// Alive but a straggler: compute takes `factor`× the nominal time.
    Slow(f64),
}

impl DeviceStatus {
    /// Whether the device can accept work at all.
    pub fn is_up(&self) -> bool {
        !matches!(self, DeviceStatus::Down)
    }

    /// Compute-time multiplier (1.0 for `Up`, 0.0 slots are impossible:
    /// `Down` devices report ∞).
    pub fn slow_factor(&self) -> f64 {
        match self {
            DeviceStatus::Up => 1.0,
            DeviceStatus::Down => f64::INFINITY,
            DeviceStatus::Slow(f) => *f,
        }
    }
}

/// A deterministic up/down/slow trajectory for one device.
#[derive(Clone, Debug)]
pub enum DeviceTrace {
    /// Never fails.
    AlwaysUp,
    /// Piecewise-constant phases: `(start_ms, status)` sorted by time.
    Phases(Vec<(f64, DeviceStatus)>),
    /// A brownout: healthy until `start_ms`, then compute slows toward
    /// `factor`× over `ramp_ms` and stays there — the gray failure that
    /// crash detectors never see. `ramp_ms = 0` is a step brownout.
    Brownout { start_ms: f64, factor: f64, ramp_ms: f64 },
}

impl DeviceTrace {
    /// A phase trace; panics unless phases are time-sorted starting at 0.
    pub fn phases(phases: Vec<(f64, DeviceStatus)>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert_eq!(phases[0].0, 0.0, "first phase must start at t=0");
        assert!(phases.windows(2).all(|w| w[0].0 < w[1].0), "phases must be strictly time-ordered");
        DeviceTrace::Phases(phases)
    }

    /// Up, then down for `[t_down_ms, t_up_ms)`, then up again — the
    /// canonical crash-and-recover scenario.
    pub fn down_between(t_down_ms: f64, t_up_ms: f64) -> Self {
        assert!(0.0 < t_down_ms && t_down_ms < t_up_ms, "need 0 < t_down < t_up");
        DeviceTrace::phases(vec![
            (0.0, DeviceStatus::Up),
            (t_down_ms, DeviceStatus::Down),
            (t_up_ms, DeviceStatus::Up),
        ])
    }

    /// Up, then permanently down from `t_down_ms`.
    pub fn down_after(t_down_ms: f64) -> Self {
        assert!(t_down_ms > 0.0, "need t_down > 0");
        DeviceTrace::phases(vec![(0.0, DeviceStatus::Up), (t_down_ms, DeviceStatus::Down)])
    }

    /// A brownout from `start_ms`: compute degrades linearly to `factor`×
    /// nominal over `ramp_ms`, then holds. Panics unless `factor > 1`.
    pub fn brownout(start_ms: f64, factor: f64, ramp_ms: f64) -> Self {
        assert!(start_ms >= 0.0, "need start >= 0");
        assert!(factor > 1.0, "a brownout must slow the device (factor > 1)");
        assert!(ramp_ms >= 0.0, "need ramp >= 0");
        DeviceTrace::Brownout { start_ms, factor, ramp_ms }
    }

    /// Status at virtual time `t_ms`; each phase holds until the next.
    pub fn sample(&self, t_ms: f64) -> DeviceStatus {
        match self {
            DeviceTrace::AlwaysUp => DeviceStatus::Up,
            DeviceTrace::Brownout { start_ms, factor, ramp_ms } => {
                if t_ms < *start_ms {
                    return DeviceStatus::Up;
                }
                let frac = if *ramp_ms > 0.0 {
                    ((t_ms - start_ms) / ramp_ms).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                DeviceStatus::Slow(1.0 + (factor - 1.0) * frac)
            }
            DeviceTrace::Phases(phases) => {
                let mut cur = phases[0].1;
                for &(t0, s) in phases {
                    if t_ms >= t0 {
                        cur = s;
                    } else {
                        break;
                    }
                }
                cur
            }
        }
    }
}

/// Per-device traces for a whole fleet. Device 0 is the coordinator that
/// receives requests; callers typically keep it `AlwaysUp` (a dead
/// coordinator means there is no system left to degrade gracefully).
#[derive(Clone, Debug)]
pub struct FleetTrace {
    traces: Vec<DeviceTrace>,
}

impl FleetTrace {
    /// A fleet of `n` devices that never fail.
    pub fn always_up(n: usize) -> Self {
        assert!(n > 0, "need at least one device");
        FleetTrace { traces: vec![DeviceTrace::AlwaysUp; n] }
    }

    /// A fleet from explicit per-device traces.
    pub fn new(traces: Vec<DeviceTrace>) -> Self {
        assert!(!traces.is_empty(), "need at least one device");
        FleetTrace { traces }
    }

    /// Replaces device `dev`'s trace.
    pub fn set(&mut self, dev: usize, trace: DeviceTrace) {
        self.traces[dev] = trace;
    }

    pub fn n_devices(&self) -> usize {
        self.traces.len()
    }

    /// Status of device `dev` at time `t_ms`.
    pub fn status(&self, dev: usize, t_ms: f64) -> DeviceStatus {
        self.traces[dev].sample(t_ms)
    }

    /// `mask[d]` is true when device `d` accepts work at `t_ms`.
    pub fn alive_mask(&self, t_ms: f64) -> Vec<bool> {
        self.traces.iter().map(|t| t.sample(t_ms).is_up()).collect()
    }

    /// Compute-time multiplier for device `dev` at `t_ms` (∞ when down).
    pub fn slow_factor(&self, dev: usize, t_ms: f64) -> f64 {
        self.traces[dev].sample(t_ms).slow_factor()
    }

    /// The coordinator-death scenario for failover experiments: device 0
    /// (the primary coordinator) dies permanently at `kill_at_ms` while
    /// every worker stays up. Meaningful only for runs with a standby
    /// coordinator — without failover, this trace ends the system.
    pub fn coordinator_death(n: usize, kill_at_ms: f64) -> Self {
        assert!(n > 0, "need at least one device");
        assert!(kill_at_ms > 0.0, "need kill_at > 0");
        let mut fleet = FleetTrace::always_up(n);
        fleet.set(0, DeviceTrace::down_after(kill_at_ms));
        fleet
    }
}

/// A deterministic network-partition schedule for gossip experiments:
/// piecewise-constant groupings of node indices over virtual time. Two
/// nodes can exchange gossip at `t` iff they sit in the same group. An
/// empty schedule (or any time before the first entry) means no partition
/// — everyone reaches everyone.
///
/// This complements [`FleetTrace`]: a fleet trace says who is *alive*,
/// a partition schedule says who can *talk*. Rumors about a node on the
/// far side of a cut stop advancing, so its record goes Suspect and then
/// Failed on the near side — and refutes itself (incarnation bump) once
/// the cut heals.
#[derive(Clone, Debug, Default)]
pub struct PartitionSchedule {
    /// `(start_ms, groups)` sorted by time; each group is a set of node
    /// indices. A node absent from every group at `t` is isolated.
    phases: Vec<(f64, Vec<Vec<usize>>)>,
}

impl PartitionSchedule {
    /// No partitions, ever.
    pub fn none() -> Self {
        PartitionSchedule { phases: Vec::new() }
    }

    /// A schedule from explicit `(start_ms, groups)` phases; panics unless
    /// strictly time-ordered. Use an empty groups vec for "fully healed".
    pub fn phases(phases: Vec<(f64, Vec<Vec<usize>>)>) -> Self {
        assert!(
            phases.windows(2).all(|w| w[0].0 < w[1].0),
            "partition phases must be strictly time-ordered"
        );
        PartitionSchedule { phases }
    }

    /// The canonical split-then-heal: nodes are cut into two groups for
    /// `[start_ms, heal_ms)`, fully connected outside that window.
    pub fn split(start_ms: f64, heal_ms: f64, left: Vec<usize>, right: Vec<usize>) -> Self {
        assert!(0.0 <= start_ms && start_ms < heal_ms, "need 0 <= start < heal");
        PartitionSchedule::phases(vec![(start_ms, vec![left, right]), (heal_ms, Vec::new())])
    }

    /// Whether nodes `a` and `b` can exchange gossip at `t_ms`.
    pub fn can_reach(&self, a: usize, b: usize, t_ms: f64) -> bool {
        if a == b {
            return true;
        }
        // Find the phase in force at t (the last one whose start <= t).
        let mut groups: Option<&[Vec<usize>]> = None;
        for (t0, g) in &self.phases {
            if t_ms >= *t0 {
                groups = Some(g);
            } else {
                break;
            }
        }
        match groups {
            // Before the first phase, or in a healed phase: fully connected.
            None | Some([]) => true,
            Some(g) => g.iter().any(|grp| grp.contains(&a) && grp.contains(&b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_up_never_fails() {
        let t = DeviceTrace::AlwaysUp;
        assert_eq!(t.sample(0.0), DeviceStatus::Up);
        assert_eq!(t.sample(1e12), DeviceStatus::Up);
    }

    #[test]
    fn down_between_crashes_and_recovers() {
        let t = DeviceTrace::down_between(1000.0, 3000.0);
        assert!(t.sample(999.9).is_up());
        assert!(!t.sample(1000.0).is_up());
        assert!(!t.sample(2999.9).is_up());
        assert!(t.sample(3000.0).is_up());
    }

    #[test]
    fn phases_hold_until_next_boundary() {
        let t = DeviceTrace::phases(vec![
            (0.0, DeviceStatus::Up),
            (500.0, DeviceStatus::Slow(3.0)),
            (800.0, DeviceStatus::Down),
        ]);
        assert_eq!(t.sample(499.0), DeviceStatus::Up);
        assert_eq!(t.sample(500.0), DeviceStatus::Slow(3.0));
        assert_eq!(t.sample(500.0).slow_factor(), 3.0);
        assert_eq!(t.sample(900.0), DeviceStatus::Down);
        assert_eq!(t.sample(900.0).slow_factor(), f64::INFINITY);
    }

    #[test]
    fn fleet_masks_reflect_per_device_traces() {
        let mut fleet = FleetTrace::always_up(3);
        fleet.set(2, DeviceTrace::down_between(100.0, 200.0));
        assert_eq!(fleet.alive_mask(0.0), vec![true, true, true]);
        assert_eq!(fleet.alive_mask(150.0), vec![true, true, false]);
        assert_eq!(fleet.alive_mask(250.0), vec![true, true, true]);
        assert_eq!(fleet.slow_factor(1, 150.0), 1.0);
        assert!(fleet.slow_factor(2, 150.0).is_infinite());
    }

    #[test]
    fn brownout_ramps_to_factor_and_holds() {
        let t = DeviceTrace::brownout(1000.0, 10.0, 500.0);
        assert_eq!(t.sample(999.9), DeviceStatus::Up);
        assert_eq!(t.sample(1000.0), DeviceStatus::Slow(1.0));
        assert_eq!(t.sample(1250.0), DeviceStatus::Slow(5.5));
        assert_eq!(t.sample(1500.0), DeviceStatus::Slow(10.0));
        assert_eq!(t.sample(1e9), DeviceStatus::Slow(10.0));
        assert!(t.sample(1250.0).is_up(), "browned-out devices still accept work");
    }

    #[test]
    fn step_brownout_has_no_ramp() {
        let t = DeviceTrace::brownout(100.0, 4.0, 0.0);
        assert_eq!(t.sample(99.0), DeviceStatus::Up);
        assert_eq!(t.sample(100.0), DeviceStatus::Slow(4.0));
    }

    #[test]
    #[should_panic]
    fn rejects_speedup_brownout() {
        let _ = DeviceTrace::brownout(0.0, 0.5, 100.0);
    }

    #[test]
    #[should_panic]
    fn rejects_unsorted_phases() {
        DeviceTrace::phases(vec![
            (0.0, DeviceStatus::Up),
            (5.0, DeviceStatus::Down),
            (3.0, DeviceStatus::Up),
        ]);
    }

    #[test]
    fn coordinator_death_kills_only_device_zero() {
        let fleet = FleetTrace::coordinator_death(4, 2_000.0);
        assert_eq!(fleet.alive_mask(1_999.0), vec![true, true, true, true]);
        assert_eq!(fleet.alive_mask(2_000.0), vec![false, true, true, true]);
        assert_eq!(fleet.alive_mask(1e9), vec![false, true, true, true]);
    }

    #[test]
    fn partition_split_cuts_and_heals() {
        let p = PartitionSchedule::split(1_000.0, 3_000.0, vec![0, 1], vec![2, 3]);
        // Before the cut: fully connected.
        assert!(p.can_reach(0, 3, 0.0));
        // During: same side yes, across no, self always.
        assert!(p.can_reach(0, 1, 1_500.0));
        assert!(p.can_reach(2, 3, 1_500.0));
        assert!(!p.can_reach(0, 2, 1_500.0));
        assert!(!p.can_reach(1, 3, 1_500.0));
        assert!(p.can_reach(2, 2, 1_500.0));
        // After the heal: fully connected again.
        assert!(p.can_reach(1, 3, 3_000.0));
    }

    #[test]
    fn isolated_node_reaches_nobody_during_partition() {
        let p = PartitionSchedule::phases(vec![(500.0, vec![vec![0, 1]])]);
        assert!(!p.can_reach(2, 0, 600.0), "node outside every group is isolated");
        assert!(!p.can_reach(2, 1, 600.0));
        assert!(p.can_reach(2, 2, 600.0));
        assert!(p.can_reach(2, 0, 499.0));
        assert!(PartitionSchedule::none().can_reach(0, 7, 1e9));
    }
}
