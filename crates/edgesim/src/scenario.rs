//! Declarative chaos scenarios: one seeded spec that composes every
//! dynamic-edge axis the repo can inject.
//!
//! Every chaos test used to hand-wire its own `FleetTrace` +
//! `ArrivalTrace` + `NetworkTrace` combination; a [`ScenarioSpec`] names
//! that combination declaratively instead. Each axis lowers onto the
//! existing deterministic machinery:
//!
//! | spec axis | lowers onto |
//! |---|---|
//! | fleet kind/size | device count handed to the runtime scenario |
//! | arrival shape + mix | [`ArrivalTrace`] (Poisson, thinned) |
//! | device deaths / churn | [`DeviceTrace::Phases`] in a [`FleetTrace`] |
//! | brownouts | [`DeviceTrace::Brownout`] |
//! | slow links / walks | [`NetworkTrace::Steps`] / `random_walk` |
//! | partitions | [`PartitionSchedule::split`] |
//! | gossip drop/dup | probabilities for the transport `ChaosProxy` |
//! | coordinator death | kill time consumed by failover harnesses |
//!
//! One master seed flows through [`ScenarioSpec::lower`]: every stochastic
//! choice (arrival times, churn phase lengths, surge placement, network
//! walks) derives a sub-seed from `(master_seed, scenario name, axis)` via
//! FNV-1a, so a scenario replays bit-for-bit from `(name, seed)` alone.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::arrivals::{ArrivalTrace, RateShape};
use crate::fault::{DeviceStatus, DeviceTrace, FleetTrace, PartitionSchedule};
use crate::net::LinkState;
use crate::trace::NetworkTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which device fleet the scenario runs on. Mirrors the runtime's three
/// evaluation scenarios; the variant fixes the device count and
/// heterogeneity profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetKind {
    /// The paper's augmented-computing pair: one weak local device plus
    /// one strong remote (2 devices).
    Augmented,
    /// A heterogeneous 4-device fleet: Pi local, two Jetson-class, one
    /// desktop GPU.
    Hetero,
    /// A swarm of `n` identical Raspberry Pi 4s.
    Swarm(usize),
}

impl FleetKind {
    /// Number of devices in the fleet (device 0 is the coordinator).
    pub fn n_devices(&self) -> usize {
        match self {
            FleetKind::Augmented => 2,
            FleetKind::Hetero => 4,
            FleetKind::Swarm(n) => *n,
        }
    }
}

/// Offered-load shape, in spec form. Lowered onto [`RateShape`] /
/// [`ArrivalTrace`] constructors by [`ScenarioSpec::lower`].
#[derive(Clone, Debug)]
pub enum ArrivalShape {
    /// Constant `rps`.
    Constant { rps: f64 },
    /// Linear ramp `from_rps → to_rps` over the scenario duration.
    Ramp { from_rps: f64, to_rps: f64 },
    /// Periodic square-wave bursts: `base_rps` with windows of
    /// `burst_rps` lasting `burst_ms` every `period_ms`.
    Burst { base_rps: f64, burst_rps: f64, period_ms: f64, burst_ms: f64 },
    /// Raised-cosine diurnal cycle between `base_rps` and `peak_rps`.
    Diurnal { base_rps: f64, peak_rps: f64, period_ms: f64 },
    /// Baseline plus one seeded step-surge window at `surge_mult`×.
    FlashCrowd { base_rps: f64, surge_mult: f64, surge_ms: f64 },
}

/// Alternating up/down churn for a set of devices: exponential up-times
/// with mean `mean_up_ms`, exponential down-times with mean
/// `mean_down_ms`, phase boundaries drawn from the scenario seed.
#[derive(Clone, Debug)]
pub struct ChurnSpec {
    pub devices: Vec<usize>,
    pub mean_up_ms: f64,
    pub mean_down_ms: f64,
}

/// One device browning out: compute slows toward `factor`× over
/// `ramp_ms` starting at `start_ms` (the gray failure crash detectors
/// never see).
#[derive(Clone, Copy, Debug)]
pub struct BrownoutSpec {
    pub device: usize,
    pub start_ms: f64,
    pub factor: f64,
    pub ramp_ms: f64,
}

/// A degraded-link window: from `start_ms` the shared link runs at
/// `bw_factor`× bandwidth and `delay_factor`× delay, healing at
/// `heal_ms` (or never, when `None`).
#[derive(Clone, Copy, Debug)]
pub struct SlowLinkSpec {
    pub start_ms: f64,
    pub heal_ms: Option<f64>,
    pub bw_factor: f64,
    pub delay_factor: f64,
}

/// Network conditions: a base link, optionally perturbed by a seeded
/// bounded random walk or a scheduled slow-link window (mutually
/// exclusive — a walk's sample grid cannot also honor step boundaries).
#[derive(Clone, Debug)]
pub struct NetSpec {
    pub base: LinkState,
    /// Seeded bounded random walk around `base` (clamped to [½, 2]×,
    /// 500 ms period).
    pub walk: bool,
    pub slow_link: Option<SlowLinkSpec>,
}

impl NetSpec {
    /// A clean constant link.
    pub fn constant(base: LinkState) -> Self {
        NetSpec { base, walk: false, slow_link: None }
    }
}

/// A two-sided network partition over `[start_ms, heal_ms)`; node
/// indices refer to fleet devices (0 = coordinator).
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    pub start_ms: f64,
    pub heal_ms: f64,
    pub left: Vec<usize>,
    pub right: Vec<usize>,
}

/// Gossip-plane message chaos, consumed by the transport `ChaosProxy`
/// and by failover detection-delay models.
#[derive(Clone, Copy, Debug, Default)]
pub struct GossipChaos {
    /// Probability a gossip frame is dropped.
    pub drop_prob: f64,
    /// Probability a gossip frame is duplicated.
    pub dup_prob: f64,
}

/// One declarative chaos scenario: every dynamic-edge axis the repo can
/// inject, composed, named, and replayable bit-for-bit from
/// `(name, master_seed)`.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Unique name — the replay key and the campaign-report key.
    pub name: String,
    pub fleet: FleetKind,
    /// Virtual duration of the load window (ms).
    pub duration_ms: f64,
    pub arrivals: ArrivalShape,
    /// SLO-class mix weights (indexes the server's class table).
    pub class_mix: Vec<f64>,
    pub net: NetSpec,
    /// Permanent device deaths: `(device, at_ms)`.
    pub deaths: Vec<(usize, f64)>,
    pub churn: Option<ChurnSpec>,
    pub brownouts: Vec<BrownoutSpec>,
    pub partition: Option<PartitionSpec>,
    pub gossip: GossipChaos,
    /// When set, device 0 (the primary coordinator) dies at this time —
    /// meaningful under a failover harness.
    pub coordinator_death_ms: Option<f64>,
}

/// A [`ScenarioSpec`] lowered onto the concrete replay machinery: hand
/// these to a harness and the scenario plays out deterministically.
#[derive(Clone, Debug)]
pub struct LoweredScenario {
    pub fleet: FleetTrace,
    pub arrivals: ArrivalTrace,
    pub net: NetworkTrace,
    pub partitions: PartitionSchedule,
    pub gossip: GossipChaos,
    pub coordinator_death_ms: Option<f64>,
    pub duration_ms: f64,
    /// The master seed the lowering derived everything from.
    pub master_seed: u64,
}

/// Sub-seed salts: one per stochastic axis, so axes never share streams.
const SALT_ARRIVALS: u64 = 1;
const SALT_CHURN: u64 = 2;
const SALT_WALK: u64 = 3;

impl ScenarioSpec {
    /// A quiet steady-state scenario to build variations from.
    pub fn steady(name: &str, fleet: FleetKind, duration_ms: f64, rps: f64) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            fleet,
            duration_ms,
            arrivals: ArrivalShape::Constant { rps },
            class_mix: vec![0.4, 0.3, 0.3],
            net: NetSpec::constant(LinkState { bandwidth_mbps: 300.0, delay_ms: 8.0 }),
            deaths: Vec::new(),
            churn: None,
            brownouts: Vec::new(),
            partition: None,
            gossip: GossipChaos::default(),
            coordinator_death_ms: None,
        }
    }

    /// Deterministic per-axis sub-seed: FNV-1a over the scenario name,
    /// folded with the master seed and the axis salt. Two scenarios with
    /// different names never share an RNG stream even under one master
    /// seed; the same `(name, seed, axis)` always does.
    pub fn sub_seed(&self, master_seed: u64, salt: u64) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        for chunk in [master_seed, salt] {
            for b in chunk.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// Lowers the spec onto concrete traces. Deterministic in
    /// `master_seed`: calling twice yields identical traces.
    pub fn lower(&self, master_seed: u64) -> LoweredScenario {
        assert!(self.duration_ms > 0.0, "scenario needs a positive duration");
        let n = self.fleet.n_devices();
        assert!(n >= 1, "scenario needs at least one device");
        LoweredScenario {
            fleet: self.lower_fleet(master_seed, n),
            arrivals: self.lower_arrivals(master_seed),
            net: self.lower_net(master_seed),
            partitions: self.lower_partitions(n),
            gossip: self.gossip,
            coordinator_death_ms: self.coordinator_death_ms,
            duration_ms: self.duration_ms,
            master_seed,
        }
    }

    fn lower_arrivals(&self, master_seed: u64) -> ArrivalTrace {
        let seed = self.sub_seed(master_seed, SALT_ARRIVALS);
        let d = self.duration_ms;
        match &self.arrivals {
            ArrivalShape::Constant { rps } => {
                ArrivalTrace::poisson(d, &RateShape::Constant(*rps), &self.class_mix, seed)
            }
            ArrivalShape::Ramp { from_rps, to_rps } => ArrivalTrace::poisson(
                d,
                &RateShape::Ramp { from_rps: *from_rps, to_rps: *to_rps },
                &self.class_mix,
                seed,
            ),
            ArrivalShape::Burst { base_rps, burst_rps, period_ms, burst_ms } => {
                assert!(burst_ms < period_ms, "burst must fit inside its period");
                let mut steps = vec![(0.0, *base_rps)];
                let mut t = *period_ms;
                while t < d {
                    steps.push((t, *burst_rps));
                    steps.push((t + burst_ms, *base_rps));
                    t += period_ms;
                }
                ArrivalTrace::poisson(d, &RateShape::Steps(steps), &self.class_mix, seed)
            }
            ArrivalShape::Diurnal { base_rps, peak_rps, period_ms } => ArrivalTrace::poisson(
                d,
                &RateShape::Diurnal {
                    base_rps: *base_rps,
                    peak_rps: *peak_rps,
                    period_ms: *period_ms,
                },
                &self.class_mix,
                seed,
            ),
            ArrivalShape::FlashCrowd { base_rps, surge_mult, surge_ms } => {
                ArrivalTrace::flash_crowd(
                    d,
                    *base_rps,
                    *surge_mult,
                    *surge_ms,
                    &self.class_mix,
                    seed,
                )
            }
        }
    }

    fn lower_fleet(&self, master_seed: u64, n: usize) -> FleetTrace {
        let mut fleet = FleetTrace::always_up(n);
        if let Some(churn) = &self.churn {
            for &dev in &churn.devices {
                assert!(dev > 0 && dev < n, "churned device {dev} out of range (workers only)");
                let seed = self.sub_seed(master_seed, SALT_CHURN).wrapping_add(dev as u64);
                fleet.set(dev, churn_trace(churn, self.duration_ms, seed));
            }
        }
        for &(dev, at_ms) in &self.deaths {
            assert!(dev > 0 && dev < n, "dying device {dev} out of range (workers only)");
            fleet.set(dev, DeviceTrace::down_after(at_ms));
        }
        for b in &self.brownouts {
            assert!(b.device > 0 && b.device < n, "brownout device out of range");
            fleet.set(b.device, DeviceTrace::brownout(b.start_ms, b.factor, b.ramp_ms));
        }
        if let Some(kill_at) = self.coordinator_death_ms {
            fleet.set(0, DeviceTrace::down_after(kill_at));
        }
        fleet
    }

    fn lower_net(&self, master_seed: u64) -> NetworkTrace {
        assert!(
            !(self.net.walk && self.net.slow_link.is_some()),
            "walk and slow_link are mutually exclusive network axes"
        );
        if self.net.walk {
            let period = 500.0;
            let steps = (self.duration_ms / period).ceil() as usize + 2;
            return NetworkTrace::random_walk(
                self.net.base,
                period,
                steps,
                2.0,
                self.sub_seed(master_seed, SALT_WALK),
            );
        }
        if let Some(slow) = self.net.slow_link {
            assert!(slow.start_ms > 0.0, "slow link must start after t=0");
            assert!(
                slow.bw_factor > 0.0 && slow.delay_factor >= 1.0,
                "slow link must degrade, not disconnect or speed up"
            );
            let degraded = LinkState {
                bandwidth_mbps: self.net.base.bandwidth_mbps * slow.bw_factor,
                delay_ms: self.net.base.delay_ms * slow.delay_factor,
            };
            let mut steps = vec![(0.0, self.net.base), (slow.start_ms, degraded)];
            if let Some(heal) = slow.heal_ms {
                assert!(heal > slow.start_ms, "slow link must heal after it starts");
                steps.push((heal, self.net.base));
            }
            return NetworkTrace::steps(steps);
        }
        NetworkTrace::Constant(self.net.base)
    }

    fn lower_partitions(&self, n: usize) -> PartitionSchedule {
        match &self.partition {
            None => PartitionSchedule::none(),
            Some(p) => {
                assert!(
                    p.left.iter().chain(&p.right).all(|&d| d < n),
                    "partition names a device outside the fleet"
                );
                PartitionSchedule::split(p.start_ms, p.heal_ms, p.left.clone(), p.right.clone())
            }
        }
    }
}

/// Seeded alternating up/down phases with exponential dwell times.
/// Phase boundaries are clamped to ≥1 ms so the strictly-increasing
/// invariant of [`DeviceTrace::phases`] always holds.
fn churn_trace(churn: &ChurnSpec, duration_ms: f64, seed: u64) -> DeviceTrace {
    assert!(churn.mean_up_ms > 0.0 && churn.mean_down_ms > 0.0, "churn means must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut exp = |mean: f64| -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (-u.ln() * mean).max(1.0)
    };
    let mut phases = vec![(0.0, DeviceStatus::Up)];
    let mut t = exp(churn.mean_up_ms);
    let mut up = false; // next phase to push is Down
    while t < duration_ms {
        phases.push((t, if up { DeviceStatus::Up } else { DeviceStatus::Down }));
        t += if up { exp(churn.mean_up_ms) } else { exp(churn.mean_down_ms) };
        up = !up;
    }
    DeviceTrace::phases(phases)
}

/// The built-in campaign matrix: ≥20 named scenarios spanning every axis
/// the DSL composes — the standing regression surface `scripts/check.sh`
/// replays on every commit. Names are unique (asserted in tests) and each
/// scenario is replayable from `(name, master_seed)` alone.
pub fn builtin_matrix() -> Vec<ScenarioSpec> {
    let mut m: Vec<ScenarioSpec> = Vec::new();

    // -- steady baselines per fleet kind ------------------------------
    m.push(ScenarioSpec::steady("steady-augmented", FleetKind::Augmented, 3_000.0, 25.0));
    m.push(ScenarioSpec::steady("steady-hetero", FleetKind::Hetero, 3_000.0, 25.0));
    m.push(ScenarioSpec::steady("steady-swarm", FleetKind::Swarm(6), 3_000.0, 30.0));

    // -- traffic shapes ----------------------------------------------
    let mut s = ScenarioSpec::steady("ramp-overload", FleetKind::Augmented, 4_000.0, 0.0);
    s.arrivals = ArrivalShape::Ramp { from_rps: 10.0, to_rps: 60.0 };
    m.push(s);

    let mut s = ScenarioSpec::steady("burst-trains", FleetKind::Augmented, 4_000.0, 0.0);
    s.arrivals = ArrivalShape::Burst {
        base_rps: 10.0,
        burst_rps: 60.0,
        period_ms: 1_000.0,
        burst_ms: 250.0,
    };
    m.push(s);

    let mut s = ScenarioSpec::steady("diurnal-cycle", FleetKind::Hetero, 4_000.0, 0.0);
    s.arrivals = ArrivalShape::Diurnal { base_rps: 8.0, peak_rps: 40.0, period_ms: 2_000.0 };
    m.push(s);

    let mut s = ScenarioSpec::steady("flash-crowd", FleetKind::Augmented, 4_000.0, 0.0);
    s.arrivals = ArrivalShape::FlashCrowd { base_rps: 15.0, surge_mult: 6.0, surge_ms: 800.0 };
    m.push(s);

    // -- device failures ---------------------------------------------
    let mut s = ScenarioSpec::steady("device-death", FleetKind::Augmented, 3_000.0, 25.0);
    s.deaths = vec![(1, 1_000.0)];
    m.push(s);

    let mut s = ScenarioSpec::steady("device-flap", FleetKind::Augmented, 3_000.0, 20.0);
    s.churn = Some(ChurnSpec { devices: vec![1], mean_up_ms: 800.0, mean_down_ms: 400.0 });
    m.push(s);

    let mut s = ScenarioSpec::steady("churn-swarm", FleetKind::Swarm(8), 4_000.0, 30.0);
    s.churn = Some(ChurnSpec { devices: vec![2, 4, 6], mean_up_ms: 900.0, mean_down_ms: 500.0 });
    m.push(s);

    let mut s = ScenarioSpec::steady("death-under-ramp", FleetKind::Hetero, 4_000.0, 0.0);
    s.arrivals = ArrivalShape::Ramp { from_rps: 10.0, to_rps: 50.0 };
    s.deaths = vec![(3, 1_500.0)];
    m.push(s);

    // -- gray failures (brownouts) -----------------------------------
    let mut s = ScenarioSpec::steady("brownout-remote", FleetKind::Augmented, 3_000.0, 20.0);
    s.brownouts = vec![BrownoutSpec { device: 1, start_ms: 800.0, factor: 8.0, ramp_ms: 400.0 }];
    m.push(s);

    let mut s = ScenarioSpec::steady("brownout-pair-swarm", FleetKind::Swarm(6), 4_000.0, 25.0);
    s.brownouts = vec![
        BrownoutSpec { device: 2, start_ms: 700.0, factor: 6.0, ramp_ms: 300.0 },
        BrownoutSpec { device: 5, start_ms: 1_800.0, factor: 10.0, ramp_ms: 0.0 },
    ];
    m.push(s);

    let mut s = ScenarioSpec::steady("flash-brownout", FleetKind::Hetero, 4_000.0, 0.0);
    s.arrivals = ArrivalShape::FlashCrowd { base_rps: 12.0, surge_mult: 5.0, surge_ms: 1_000.0 };
    s.brownouts = vec![BrownoutSpec { device: 3, start_ms: 1_200.0, factor: 7.0, ramp_ms: 500.0 }];
    m.push(s);

    // -- network degradation -----------------------------------------
    let mut s = ScenarioSpec::steady("slow-link", FleetKind::Augmented, 3_000.0, 20.0);
    s.net.slow_link =
        Some(SlowLinkSpec { start_ms: 1_000.0, heal_ms: None, bw_factor: 0.2, delay_factor: 4.0 });
    m.push(s);

    let mut s = ScenarioSpec::steady("slow-link-heals", FleetKind::Augmented, 3_000.0, 20.0);
    s.net.slow_link = Some(SlowLinkSpec {
        start_ms: 800.0,
        heal_ms: Some(2_000.0),
        bw_factor: 0.25,
        delay_factor: 3.0,
    });
    m.push(s);

    let mut s = ScenarioSpec::steady("wandering-network", FleetKind::Hetero, 3_000.0, 20.0);
    s.net.walk = true;
    m.push(s);

    // -- partitions ---------------------------------------------------
    let mut s = ScenarioSpec::steady("partition-split-heal", FleetKind::Swarm(6), 4_000.0, 25.0);
    s.partition = Some(PartitionSpec {
        start_ms: 1_000.0,
        heal_ms: 2_500.0,
        left: vec![0, 1, 2],
        right: vec![3, 4, 5],
    });
    m.push(s);

    let mut s =
        ScenarioSpec::steady("partition-isolates-workers", FleetKind::Hetero, 3_000.0, 20.0);
    s.partition = Some(PartitionSpec {
        start_ms: 800.0,
        heal_ms: 2_200.0,
        left: vec![0, 1],
        right: vec![2, 3],
    });
    m.push(s);

    // -- gossip-plane chaos ------------------------------------------
    let mut s = ScenarioSpec::steady("gossip-drop", FleetKind::Swarm(6), 3_000.0, 25.0);
    s.gossip = GossipChaos { drop_prob: 0.3, dup_prob: 0.0 };
    m.push(s);

    let mut s = ScenarioSpec::steady("gossip-dup", FleetKind::Swarm(6), 3_000.0, 25.0);
    s.gossip = GossipChaos { drop_prob: 0.0, dup_prob: 0.3 };
    m.push(s);

    // -- coordinator failover ----------------------------------------
    let mut s = ScenarioSpec::steady("coordinator-death", FleetKind::Swarm(6), 4_000.0, 25.0);
    s.coordinator_death_ms = Some(1_500.0);
    m.push(s);

    let mut s = ScenarioSpec::steady("coordinator-death-lossy", FleetKind::Swarm(6), 4_000.0, 25.0);
    s.coordinator_death_ms = Some(1_500.0);
    s.gossip = GossipChaos { drop_prob: 0.25, dup_prob: 0.1 };
    m.push(s);

    // -- fleet-scale transport stress --------------------------------
    // These mirror the swarm-transport robustness axes (bench_swarm):
    // many simultaneous disconnects, a mass-reconnect stampede after a
    // partition heals, and a larger fleet under steady load. Fleet sizes
    // and durations stay small enough for the --smoke campaign budget.
    let mut s = ScenarioSpec::steady("connection-storm", FleetKind::Swarm(12), 4_000.0, 30.0);
    s.arrivals = ArrivalShape::Burst {
        base_rps: 15.0,
        burst_rps: 60.0,
        period_ms: 1_200.0,
        burst_ms: 300.0,
    };
    // A third of the fleet flaps on short cycles: simultaneous disconnect
    // waves rather than the single-device blips of `device-flap`.
    s.churn = Some(ChurnSpec { devices: vec![3, 5, 7, 9], mean_up_ms: 700.0, mean_down_ms: 300.0 });
    m.push(s);

    let mut s =
        ScenarioSpec::steady("mass-reconnect-stampede", FleetKind::Swarm(12), 4_000.0, 25.0);
    // Sever most of the fleet from the coordinator side, then heal: every
    // severed worker comes back in the same instant — the reconnect
    // stampede the accept-side storm control smears out.
    s.partition = Some(PartitionSpec {
        start_ms: 1_200.0,
        heal_ms: 2_400.0,
        left: vec![0, 1],
        right: vec![2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
    });
    s.gossip = GossipChaos { drop_prob: 0.15, dup_prob: 0.05 };
    m.push(s);

    let mut s = ScenarioSpec::steady("fleet-scale-steady", FleetKind::Swarm(16), 4_000.0, 40.0);
    // The biggest built-in fleet: placement and supervision must keep the
    // per-device bookkeeping flat as the worker count grows.
    s.churn = Some(ChurnSpec { devices: vec![6, 11], mean_up_ms: 1_100.0, mean_down_ms: 400.0 });
    m.push(s);

    // -- compound worst cases ----------------------------------------
    let mut s = ScenarioSpec::steady("diurnal-churn-hetero", FleetKind::Hetero, 4_000.0, 0.0);
    s.arrivals = ArrivalShape::Diurnal { base_rps: 10.0, peak_rps: 35.0, period_ms: 2_000.0 };
    s.churn = Some(ChurnSpec { devices: vec![2], mean_up_ms: 1_000.0, mean_down_ms: 400.0 });
    m.push(s);

    let mut s = ScenarioSpec::steady("kitchen-sink", FleetKind::Swarm(8), 5_000.0, 0.0);
    s.arrivals = ArrivalShape::Diurnal { base_rps: 10.0, peak_rps: 40.0, period_ms: 2_500.0 };
    s.churn = Some(ChurnSpec { devices: vec![3], mean_up_ms: 1_200.0, mean_down_ms: 500.0 });
    s.brownouts = vec![BrownoutSpec { device: 5, start_ms: 1_000.0, factor: 6.0, ramp_ms: 400.0 }];
    s.net.slow_link = Some(SlowLinkSpec {
        start_ms: 2_000.0,
        heal_ms: Some(3_500.0),
        bw_factor: 0.3,
        delay_factor: 2.0,
    });
    s.gossip = GossipChaos { drop_prob: 0.2, dup_prob: 0.05 };
    m.push(s);

    m
}

/// Looks a built-in scenario up by name (the CLI's `--scenario` flag).
pub fn builtin_by_name(name: &str) -> Option<ScenarioSpec> {
    builtin_matrix().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn builtin_matrix_has_at_least_twenty_distinct_scenarios() {
        let m = builtin_matrix();
        assert!(m.len() >= 20, "matrix has only {} scenarios", m.len());
        let mut names: Vec<&str> = m.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), m.len(), "scenario names must be unique");
    }

    #[test]
    fn lowering_is_deterministic_in_the_master_seed() {
        for spec in builtin_matrix() {
            let a = spec.lower(42);
            let b = spec.lower(42);
            assert_eq!(a.arrivals.arrivals(), b.arrivals.arrivals(), "{}", spec.name);
            for t in [0.0, 500.0, 1_234.5, 2_999.0] {
                assert_eq!(a.fleet.alive_mask(t), b.fleet.alive_mask(t), "{}", spec.name);
                let na = a.net.sample(t);
                let nb = b.net.sample(t);
                assert_eq!(na.bandwidth_mbps, nb.bandwidth_mbps, "{}", spec.name);
                assert_eq!(na.delay_ms, nb.delay_ms, "{}", spec.name);
            }
        }
    }

    #[test]
    fn different_master_seeds_move_the_stochastic_axes() {
        let spec = builtin_by_name("flash-crowd").unwrap();
        let a = spec.lower(1);
        let b = spec.lower(2);
        assert_ne!(a.arrivals.arrivals(), b.arrivals.arrivals());
    }

    #[test]
    fn different_names_never_share_rng_streams() {
        let mut a = ScenarioSpec::steady("alpha", FleetKind::Augmented, 2_000.0, 20.0);
        let mut b = ScenarioSpec::steady("beta", FleetKind::Augmented, 2_000.0, 20.0);
        a.churn = Some(ChurnSpec { devices: vec![1], mean_up_ms: 300.0, mean_down_ms: 300.0 });
        b.churn = Some(ChurnSpec { devices: vec![1], mean_up_ms: 300.0, mean_down_ms: 300.0 });
        assert_ne!(a.lower(7).arrivals.arrivals(), b.lower(7).arrivals.arrivals());
    }

    #[test]
    fn churn_lowers_onto_alternating_phases() {
        let mut spec = ScenarioSpec::steady("churny", FleetKind::Augmented, 10_000.0, 10.0);
        spec.churn = Some(ChurnSpec { devices: vec![1], mean_up_ms: 500.0, mean_down_ms: 500.0 });
        let lowered = spec.lower(3);
        // The device must actually go down and come back at least once
        // over 20 mean dwell times.
        let mut saw_down = false;
        let mut saw_recovery = false;
        let mut was_down = false;
        for i in 0..1_000 {
            let up = lowered.fleet.alive_mask(i as f64 * 10.0)[1];
            if !up {
                saw_down = true;
                was_down = true;
            } else if was_down {
                saw_recovery = true;
            }
        }
        assert!(saw_down, "churned device never failed");
        assert!(saw_recovery, "churned device never recovered");
    }

    #[test]
    fn deaths_and_brownouts_land_on_the_right_devices() {
        let mut spec = ScenarioSpec::steady("mixed", FleetKind::Hetero, 3_000.0, 10.0);
        spec.deaths = vec![(1, 1_000.0)];
        spec.brownouts =
            vec![BrownoutSpec { device: 2, start_ms: 500.0, factor: 4.0, ramp_ms: 0.0 }];
        let lowered = spec.lower(0);
        assert_eq!(lowered.fleet.alive_mask(999.0), vec![true, true, true, true]);
        assert_eq!(lowered.fleet.alive_mask(1_000.0), vec![true, false, true, true]);
        assert_eq!(lowered.fleet.slow_factor(2, 600.0), 4.0);
        assert_eq!(lowered.fleet.slow_factor(3, 600.0), 1.0);
    }

    #[test]
    fn slow_link_window_degrades_and_heals() {
        let spec = builtin_by_name("slow-link-heals").unwrap();
        let lowered = spec.lower(11);
        let before = lowered.net.sample(0.0);
        let during = lowered.net.sample(1_500.0);
        let after = lowered.net.sample(2_500.0);
        assert!(during.bandwidth_mbps < before.bandwidth_mbps);
        assert!(during.delay_ms > before.delay_ms);
        assert_eq!(after.bandwidth_mbps, before.bandwidth_mbps);
    }

    #[test]
    fn partition_spec_lowers_onto_split_schedule() {
        let spec = builtin_by_name("partition-split-heal").unwrap();
        let lowered = spec.lower(5);
        assert!(lowered.partitions.can_reach(0, 4, 500.0));
        assert!(!lowered.partitions.can_reach(0, 4, 1_500.0));
        assert!(lowered.partitions.can_reach(0, 2, 1_500.0));
        assert!(lowered.partitions.can_reach(0, 4, 2_600.0));
    }

    #[test]
    fn coordinator_death_kills_device_zero_only() {
        let spec = builtin_by_name("coordinator-death").unwrap();
        let lowered = spec.lower(9);
        assert_eq!(lowered.coordinator_death_ms, Some(1_500.0));
        let mask = lowered.fleet.alive_mask(2_000.0);
        assert!(!mask[0]);
        assert!(mask[1..].iter().all(|&u| u));
    }

    #[test]
    fn builtin_by_name_finds_and_misses() {
        assert!(builtin_by_name("kitchen-sink").is_some());
        assert!(builtin_by_name("no-such-scenario").is_none());
    }
}
