//! Traffic control — the simulator's `tc` equivalent.
//!
//! Experiments sweep bandwidth and delay by shaping each remote device's
//! link, exactly as the paper drives `tc` on its switch.

use crate::net::{LinkState, NetworkState};
use crate::trace::NetworkTrace;
use crate::DeviceId;

/// Mutable handle over a [`NetworkState`] that applies shaping commands.
pub struct TrafficControl {
    state: NetworkState,
}

impl TrafficControl {
    /// Wraps an initial network state.
    pub fn new(state: NetworkState) -> Self {
        TrafficControl { state }
    }

    /// Current (shaped) network state.
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// Sets the bandwidth of device `dev`'s link (Mbps).
    pub fn set_bandwidth(&mut self, dev: DeviceId, mbps: f64) {
        assert!(mbps > 0.0, "bandwidth must be positive");
        self.state.link_for_mut(dev).bandwidth_mbps = mbps;
    }

    /// Sets the one-way delay of device `dev`'s link (ms).
    pub fn set_delay(&mut self, dev: DeviceId, ms: f64) {
        assert!(ms >= 0.0, "delay must be non-negative");
        self.state.link_for_mut(dev).delay_ms = ms;
    }

    /// Shapes every link identically.
    pub fn set_all(&mut self, link: LinkState) {
        for dev in 1..=self.state.n_remote() {
            *self.state.link_for_mut(dev) = link;
        }
    }

    /// Applies a dynamic trace at virtual time `t_ms` to device `dev`'s
    /// link.
    pub fn apply_trace(&mut self, dev: DeviceId, trace: &NetworkTrace, t_ms: f64) {
        *self.state.link_for_mut(dev) = trace.sample(t_ms);
    }

    /// Injects background traffic on device `dev`'s link: `load` ∈ [0, 1)
    /// of the bandwidth is consumed by a competing flow and queueing adds
    /// `extra_delay_ms`. Models a bursty co-tenant — the failure mode the
    /// monitoring/prediction loop must survive.
    pub fn inject_background(&mut self, dev: DeviceId, load: f64, extra_delay_ms: f64) {
        assert!((0.0..1.0).contains(&load), "load in [0,1)");
        assert!(extra_delay_ms >= 0.0);
        let link = self.state.link_for_mut(dev);
        link.bandwidth_mbps *= 1.0 - load;
        link.delay_ms += extra_delay_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaping_updates_state() {
        let mut tc = TrafficControl::new(NetworkState::uniform(2, LinkState::lan()));
        tc.set_bandwidth(1, 50.0);
        tc.set_delay(2, 25.0);
        assert_eq!(tc.state().link_for(1).bandwidth_mbps, 50.0);
        assert_eq!(tc.state().link_for(1).delay_ms, 2.0);
        assert_eq!(tc.state().link_for(2).delay_ms, 25.0);
        assert_eq!(tc.state().link_for(2).bandwidth_mbps, 1000.0);
    }

    #[test]
    fn set_all_applies_uniformly() {
        let mut tc = TrafficControl::new(NetworkState::uniform(3, LinkState::lan()));
        tc.set_all(LinkState { bandwidth_mbps: 5.0, delay_ms: 20.0 });
        for d in 1..=3 {
            assert_eq!(tc.state().link_for(d).bandwidth_mbps, 5.0);
            assert_eq!(tc.state().link_for(d).delay_ms, 20.0);
        }
    }

    #[test]
    fn background_traffic_degrades_the_link() {
        let mut tc = TrafficControl::new(NetworkState::uniform(2, LinkState::lan()));
        tc.inject_background(1, 0.75, 30.0);
        let l = tc.state().link_for(1);
        assert!((l.bandwidth_mbps - 250.0).abs() < 1e-9);
        assert!((l.delay_ms - 32.0).abs() < 1e-9);
        // Other links untouched.
        assert_eq!(tc.state().link_for(2), LinkState::lan());
        // Injection composes.
        tc.inject_background(1, 0.5, 0.0);
        assert!((tc.state().link_for(1).bandwidth_mbps - 125.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_full_background_load() {
        let mut tc = TrafficControl::new(NetworkState::uniform(1, LinkState::lan()));
        tc.inject_background(1, 1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_bandwidth() {
        let mut tc = TrafficControl::new(NetworkState::uniform(1, LinkState::lan()));
        tc.set_bandwidth(1, 0.0);
    }
}
