//! Dynamic network traces for the "dynamic edge environment" experiments.
//!
//! A trace is a deterministic function of virtual time so experiments are
//! reproducible; randomness is frozen at construction.

use crate::net::LinkState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic bandwidth/delay trajectory.
#[derive(Clone, Debug)]
pub enum NetworkTrace {
    /// Constant conditions.
    Constant(LinkState),
    /// Piecewise-constant steps: `(start_ms, state)` sorted by time.
    Steps(Vec<(f64, LinkState)>),
    /// Precomputed bounded random walk sampled on a fixed grid.
    Walk { period_ms: f64, states: Vec<LinkState> },
}

impl NetworkTrace {
    /// A step trace; panics unless steps are time-sorted starting at 0.
    pub fn steps(steps: Vec<(f64, LinkState)>) -> Self {
        assert!(!steps.is_empty(), "need at least one step");
        assert_eq!(steps[0].0, 0.0, "first step must start at t=0");
        assert!(steps.windows(2).all(|w| w[0].0 < w[1].0), "steps must be strictly time-ordered");
        NetworkTrace::Steps(steps)
    }

    /// Bounded multiplicative random walk around `base`, re-sampled every
    /// `period_ms`, clamped to `[1/span, span] × base`.
    pub fn random_walk(
        base: LinkState,
        period_ms: f64,
        steps: usize,
        span: f64,
        seed: u64,
    ) -> Self {
        assert!(period_ms > 0.0 && steps > 0 && span > 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bw = base.bandwidth_mbps;
        let mut dl = base.delay_ms;
        let mut states = Vec::with_capacity(steps);
        for _ in 0..steps {
            bw = (bw * rng.gen_range(0.8..1.25))
                .clamp(base.bandwidth_mbps / span, base.bandwidth_mbps * span);
            dl = (dl * rng.gen_range(0.8..1.25)).clamp(base.delay_ms / span, base.delay_ms * span);
            states.push(LinkState { bandwidth_mbps: bw, delay_ms: dl });
        }
        NetworkTrace::Walk { period_ms, states }
    }

    /// Link state at virtual time `t_ms`. Walk traces clamp to their last
    /// sample; step traces hold each value until the next step.
    pub fn sample(&self, t_ms: f64) -> LinkState {
        match self {
            NetworkTrace::Constant(s) => *s,
            NetworkTrace::Steps(steps) => {
                let mut cur = steps[0].1;
                for &(t0, s) in steps {
                    if t_ms >= t0 {
                        cur = s;
                    } else {
                        break;
                    }
                }
                cur
            }
            NetworkTrace::Walk { period_ms, states } => {
                let idx = ((t_ms / period_ms) as usize).min(states.len() - 1);
                states[idx]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_is_constant() {
        let t = NetworkTrace::Constant(LinkState::lan());
        assert_eq!(t.sample(0.0), LinkState::lan());
        assert_eq!(t.sample(1e9), LinkState::lan());
    }

    #[test]
    fn step_trace_switches_at_boundaries() {
        let a = LinkState { bandwidth_mbps: 100.0, delay_ms: 5.0 };
        let b = LinkState { bandwidth_mbps: 10.0, delay_ms: 50.0 };
        let t = NetworkTrace::steps(vec![(0.0, a), (1000.0, b)]);
        assert_eq!(t.sample(999.9), a);
        assert_eq!(t.sample(1000.0), b);
        assert_eq!(t.sample(5000.0), b);
    }

    #[test]
    fn walk_is_deterministic_and_bounded() {
        let base = LinkState { bandwidth_mbps: 100.0, delay_ms: 10.0 };
        let t1 = NetworkTrace::random_walk(base, 100.0, 50, 4.0, 7);
        let t2 = NetworkTrace::random_walk(base, 100.0, 50, 4.0, 7);
        for i in 0..50 {
            let s1 = t1.sample(i as f64 * 100.0);
            let s2 = t2.sample(i as f64 * 100.0);
            assert_eq!(s1, s2);
            assert!(s1.bandwidth_mbps >= 25.0 - 1e-9 && s1.bandwidth_mbps <= 400.0 + 1e-9);
            assert!(s1.delay_ms >= 2.5 - 1e-9 && s1.delay_ms <= 40.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_unsorted_steps() {
        let a = LinkState::lan();
        NetworkTrace::steps(vec![(0.0, a), (5.0, a), (3.0, a)]);
    }
}
