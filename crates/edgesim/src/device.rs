//! Device compute profiles.
//!
//! A profile maps an operator class and MAC count to execution time. The
//! effective rates are calibrated (DESIGN.md §6) so baseline models land in
//! the paper's observed latency ranges: MobileNetV3-Large ≈ 360 ms on a
//! Raspberry Pi 4 (PyTorch CPU) and ResNet-50 ≈ 6–8 ms on the GTX 1080.

use murmuration_models::OpKind;

/// Stable device identifier within one deployment (0 = local device).
pub type DeviceId = usize;

/// Device classes used in the paper's two scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Raspberry Pi 4 (quad A72, PyTorch CPU-class efficiency).
    RaspberryPi4,
    /// Ryzen 5500 + GTX 1080 desktop.
    DesktopGpu,
    /// A mid-tier edge accelerator (used in extension experiments).
    JetsonClass,
}

/// Effective execution-rate model for one device.
#[derive(Clone, Copy, Debug)]
pub struct ComputeProfile {
    /// Dense-conv throughput in MACs per millisecond.
    pub conv_macs_per_ms: f64,
    /// Depthwise convs run at this fraction of the dense rate (low
    /// arithmetic intensity).
    pub dw_efficiency: f64,
    /// FC/elementwise layers are memory-bound: effective MACs per ms.
    pub membound_macs_per_ms: f64,
    /// Fixed per-layer dispatch overhead (kernel launch / op scheduling).
    pub layer_overhead_ms: f64,
    /// Sustained memory bandwidth (bytes/ms) — in-memory weight copies.
    pub mem_bw_bytes_per_ms: f64,
    /// Storage bandwidth (bytes/ms) — weight reload from disk/SD.
    pub disk_bw_bytes_per_ms: f64,
    /// Speedup of the int8 compute path over f32 for conv/depthwise/FC ops
    /// (FC is memory-bound here, but int8 also quarters its byte traffic).
    /// Dispatch overhead and pool/elementwise ops are unaffected. Calibrated
    /// per class: narrow-SIMD CPUs roughly double their per-cycle MAC rate
    /// (`vpmaddubsw` does 2 MACs/lane-pair), dp4a-class accelerators a bit
    /// more, while the eager-GPU profile gains less because per-op dispatch
    /// dominates its layer times.
    pub int8_speedup: f64,
}

impl ComputeProfile {
    /// Time to execute `macs` MACs of operator class `op`, including the
    /// dispatch overhead.
    pub fn layer_time_ms(&self, op: OpKind, macs: u64) -> f64 {
        self.layer_time_ms_q(op, macs, false)
    }

    /// [`Self::layer_time_ms`], selecting the int8 compute path when `int8`
    /// is set. Only the MAC-rate term scales — `layer_overhead_ms` and the
    /// memory-bound rate are precision-independent.
    pub fn layer_time_ms_q(&self, op: OpKind, macs: u64, int8: bool) -> f64 {
        let rate = match op {
            OpKind::Conv => self.conv_macs_per_ms,
            OpKind::DwConv => self.conv_macs_per_ms * self.dw_efficiency,
            OpKind::Pool | OpKind::Elementwise | OpKind::Fc => self.membound_macs_per_ms,
        };
        let rate = if int8 && matches!(op, OpKind::Conv | OpKind::DwConv | OpKind::Fc) {
            rate * self.int8_speedup
        } else {
            rate
        };
        macs as f64 / rate + self.layer_overhead_ms
    }

    /// Time to load `bytes` of weights from storage (cold model switch).
    pub fn weight_load_ms(&self, bytes: u64) -> f64 {
        bytes as f64 / self.disk_bw_bytes_per_ms
    }

    /// Time to copy `bytes` of weights in memory (warm model switch).
    pub fn weight_copy_ms(&self, bytes: u64) -> f64 {
        bytes as f64 / self.mem_bw_bytes_per_ms
    }
}

impl DeviceKind {
    /// Calibrated profile (see DESIGN.md §6).
    pub fn profile(self) -> ComputeProfile {
        match self {
            // ~0.6 GMAC/s dense conv → MobileNetV3-L ≈ 365 ms; SD-card
            // class storage ≈ 40 MB/s.
            DeviceKind::RaspberryPi4 => ComputeProfile {
                conv_macs_per_ms: 0.6e6,
                dw_efficiency: 0.35,
                membound_macs_per_ms: 0.2e6,
                layer_overhead_ms: 0.15,
                mem_bw_bytes_per_ms: 3.0e6,
                disk_bw_bytes_per_ms: 40.0e3,
                int8_speedup: 2.2,
            },
            // ~1 TMAC/s effective arithmetic, but eager-framework per-op
            // dispatch (~0.8 ms/layer) dominates layer-heavy nets — this is
            // why DenseNet161/ResNeXt101 never meet the paper's 140 ms SLO
            // even on a fast link. NVMe ≈ 1.5 GB/s.
            DeviceKind::DesktopGpu => ComputeProfile {
                conv_macs_per_ms: 1.0e9,
                dw_efficiency: 0.25,
                membound_macs_per_ms: 50.0e6,
                layer_overhead_ms: 0.8,
                mem_bw_bytes_per_ms: 200.0e6,
                disk_bw_bytes_per_ms: 1.5e6 * 1.0e3,
                int8_speedup: 1.5,
            },
            // ~20 GMAC/s effective edge accelerator.
            DeviceKind::JetsonClass => ComputeProfile {
                conv_macs_per_ms: 20.0e6,
                dw_efficiency: 0.30,
                membound_macs_per_ms: 2.0e6,
                layer_overhead_ms: 0.10,
                mem_bw_bytes_per_ms: 20.0e6,
                disk_bw_bytes_per_ms: 200.0e3,
                int8_speedup: 2.5,
            },
        }
    }

    /// Normalized device-type feature for the RL state (0..1 scale by
    /// log-throughput).
    pub fn type_feature(self) -> f32 {
        match self {
            DeviceKind::RaspberryPi4 => 0.2,
            DeviceKind::JetsonClass => 0.55,
            DeviceKind::DesktopGpu => 1.0,
        }
    }
}

/// One device in a deployment.
#[derive(Clone, Copy, Debug)]
pub struct Device {
    pub id: DeviceId,
    pub kind: DeviceKind,
}

impl Device {
    /// Convenience constructor.
    pub fn new(id: DeviceId, kind: DeviceKind) -> Self {
        Device { id, kind }
    }

    /// This device's compute profile.
    pub fn profile(&self) -> ComputeProfile {
        self.kind.profile()
    }
}

/// The paper's Augmented Computing scenario: one Pi 4 (local) + desktop GPU.
pub fn augmented_computing_devices() -> Vec<Device> {
    vec![Device::new(0, DeviceKind::RaspberryPi4), Device::new(1, DeviceKind::DesktopGpu)]
}

/// The paper's Device Swarm scenario: `n` Raspberry Pi 4s (device 0 local).
pub fn device_swarm_devices(n: usize) -> Vec<Device> {
    (0..n).map(|i| Device::new(i, DeviceKind::RaspberryPi4)).collect()
}

/// An extension scenario: a heterogeneous edge fleet — a Pi 4 local device,
/// two Jetson-class accelerators, and one desktop GPU (§3's "diverse
/// devices with varying computational power").
pub fn heterogeneous_edge_devices() -> Vec<Device> {
    vec![
        Device::new(0, DeviceKind::RaspberryPi4),
        Device::new(1, DeviceKind::JetsonClass),
        Device::new(2, DeviceKind::JetsonClass),
        Device::new(3, DeviceKind::DesktopGpu),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_models::{mobilenet_v3_large, resnet50};

    fn model_time_ms(profile: &ComputeProfile, model: &murmuration_models::ModelSpec) -> f64 {
        model.layers.iter().map(|l| profile.layer_time_ms(l.op, l.macs)).sum()
    }

    #[test]
    fn pi_runs_mobilenet_in_paper_range() {
        let p = DeviceKind::RaspberryPi4.profile();
        let t = model_time_ms(&p, &mobilenet_v3_large(224));
        // The paper's single-Pi latencies (Fig 17) sit in the 300–700 ms
        // band for ~75%-accuracy models.
        assert!((250.0..700.0).contains(&t), "Pi MobileNetV3 time {t} ms");
    }

    #[test]
    fn gpu_runs_resnet50_in_framework_range() {
        let p = DeviceKind::DesktopGpu.profile();
        let t = model_time_ms(&p, &resnet50(224));
        // Eager-framework batch-1 GPU inference: tens of ms, dominated by
        // per-op dispatch rather than arithmetic.
        assert!((30.0..120.0).contains(&t), "GPU ResNet50 time {t} ms");
    }

    #[test]
    fn gpu_densenet_misses_tight_slo_even_before_network() {
        // The calibration point behind Fig. 13: DenseNet161's op count
        // makes its GPU time alone exceed the 140 ms SLO budget minus the
        // best-case transfer (~22 ms).
        let p = DeviceKind::DesktopGpu.profile();
        let t = model_time_ms(&p, &murmuration_models::densenet161(224));
        assert!(t > 118.0, "DenseNet161 GPU time {t} ms");
    }

    #[test]
    fn gpu_dominates_pi_on_every_op() {
        let pi = DeviceKind::RaspberryPi4.profile();
        let gpu = DeviceKind::DesktopGpu.profile();
        for op in [OpKind::Conv, OpKind::DwConv, OpKind::Fc, OpKind::Pool] {
            assert!(gpu.layer_time_ms(op, 10_000_000) < pi.layer_time_ms(op, 10_000_000));
        }
    }

    #[test]
    fn int8_speeds_up_mac_bound_ops_only() {
        for kind in [DeviceKind::RaspberryPi4, DeviceKind::DesktopGpu, DeviceKind::JetsonClass] {
            let p = kind.profile();
            for op in [OpKind::Conv, OpKind::DwConv, OpKind::Fc] {
                let f = p.layer_time_ms_q(op, 50_000_000, false);
                let q = p.layer_time_ms_q(op, 50_000_000, true);
                assert!(q < f, "{kind:?}/{op:?}: int8 {q} ms !< f32 {f} ms");
                // The MAC term (not the fixed overhead) scales by the ratio.
                let want = (f - p.layer_overhead_ms) / p.int8_speedup + p.layer_overhead_ms;
                assert!((q - want).abs() < 1e-9);
            }
            for op in [OpKind::Pool, OpKind::Elementwise] {
                assert_eq!(
                    p.layer_time_ms_q(op, 1_000_000, true),
                    p.layer_time_ms_q(op, 1_000_000, false),
                    "{kind:?}/{op:?} must be precision-independent"
                );
            }
        }
    }

    #[test]
    fn depthwise_slower_per_mac_than_dense() {
        let p = DeviceKind::RaspberryPi4.profile();
        assert!(
            p.layer_time_ms(OpKind::DwConv, 1_000_000) > p.layer_time_ms(OpKind::Conv, 1_000_000)
        );
    }

    #[test]
    fn weight_reload_on_pi_is_seconds_scale() {
        let p = DeviceKind::RaspberryPi4.profile();
        let resnet_bytes = resnet50(224).weight_bytes();
        let t = p.weight_load_ms(resnet_bytes);
        assert!((1_000.0..5_000.0).contains(&t), "reload {t} ms");
    }

    #[test]
    fn scenario_constructors() {
        let aug = augmented_computing_devices();
        assert_eq!(aug.len(), 2);
        assert_eq!(aug[0].kind, DeviceKind::RaspberryPi4);
        let swarm = device_swarm_devices(5);
        assert_eq!(swarm.len(), 5);
        assert!(swarm.iter().all(|d| d.kind == DeviceKind::RaspberryPi4));
        assert_eq!(swarm[4].id, 4);
    }
}
