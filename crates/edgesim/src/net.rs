//! Star-topology network state and transfer-time math.
//!
//! The paper's testbed is a switched LAN where `tc` shapes the link of each
//! remote device; the local device (id 0) reaches remote `i` over link
//! `i-1`. Remote↔remote transfers traverse two links (via the switch).

use crate::device::DeviceId;

/// State of one shaped link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkState {
    /// Bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way propagation delay in milliseconds.
    pub delay_ms: f64,
}

impl LinkState {
    /// Unshaped 1 Gbps / 2 ms LAN default (the paper's Fig 17 setting).
    pub fn lan() -> Self {
        LinkState { bandwidth_mbps: 1000.0, delay_ms: 2.0 }
    }

    /// Time to push `bytes` through this link, one way.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        assert!(self.bandwidth_mbps > 0.0, "zero-bandwidth link");
        self.delay_ms + (bytes as f64 * 8.0) / (self.bandwidth_mbps * 1e6) * 1e3
    }
}

/// Link state for every remote device (star around the local device).
#[derive(Clone, Debug)]
pub struct NetworkState {
    links: Vec<LinkState>,
}

impl NetworkState {
    /// `n_remote` identical links.
    pub fn uniform(n_remote: usize, link: LinkState) -> Self {
        NetworkState { links: vec![link; n_remote] }
    }

    /// Per-remote link states (index 0 = device 1's link).
    pub fn from_links(links: Vec<LinkState>) -> Self {
        NetworkState { links }
    }

    /// Number of remote devices.
    pub fn n_remote(&self) -> usize {
        self.links.len()
    }

    /// Link serving remote device `dev` (panics for the local device).
    pub fn link_for(&self, dev: DeviceId) -> LinkState {
        assert!(dev >= 1, "device 0 is local; it has no link");
        self.links[dev - 1]
    }

    /// Mutable link access for traffic control.
    pub(crate) fn link_for_mut(&mut self, dev: DeviceId) -> &mut LinkState {
        assert!(dev >= 1, "device 0 is local; it has no link");
        &mut self.links[dev - 1]
    }

    /// Transfer time for `bytes` from device `src` to device `dst`.
    ///
    /// Local↔remote uses that remote's link; remote↔remote hops through the
    /// switch and pays both links' delay plus the slower link's
    /// serialization.
    pub fn transfer_ms(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> f64 {
        if src == dst {
            return 0.0;
        }
        match (src, dst) {
            (0, d) | (d, 0) => self.link_for(d).transfer_ms(bytes),
            (a, b) => {
                let la = self.link_for(a);
                let lb = self.link_for(b);
                let bw = la.bandwidth_mbps.min(lb.bandwidth_mbps);
                la.delay_ms + lb.delay_ms + (bytes as f64 * 8.0) / (bw * 1e6) * 1e3
            }
        }
    }

    /// Bandwidths of all links, local-first ordering (for RL state).
    pub fn bandwidths(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.bandwidth_mbps).collect()
    }

    /// Delays of all links.
    pub fn delays(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.delay_ms).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transfer_math_known_values() {
        let l = LinkState { bandwidth_mbps: 100.0, delay_ms: 10.0 };
        // 1 MB at 100 Mbps = 80 ms serialization + 10 ms delay.
        let t = l.transfer_ms(1_000_000);
        assert!((t - 90.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn local_transfer_is_free() {
        let n = NetworkState::uniform(2, LinkState::lan());
        assert_eq!(n.transfer_ms(0, 0, 1_000_000), 0.0);
        assert_eq!(n.transfer_ms(1, 1, 1_000_000), 0.0);
    }

    #[test]
    fn remote_to_remote_pays_both_delays() {
        let n = NetworkState::from_links(vec![
            LinkState { bandwidth_mbps: 100.0, delay_ms: 5.0 },
            LinkState { bandwidth_mbps: 50.0, delay_ms: 7.0 },
        ]);
        let t = n.transfer_ms(1, 2, 0);
        assert!((t - 12.0).abs() < 1e-9);
        // Serialization uses the slower (50 Mbps) link.
        let t2 = n.transfer_ms(1, 2, 1_000_000);
        assert!((t2 - (12.0 + 160.0)).abs() < 1e-6, "{t2}");
    }

    #[test]
    fn symmetric_transfers() {
        let n = NetworkState::uniform(3, LinkState { bandwidth_mbps: 200.0, delay_ms: 3.0 });
        assert_eq!(n.transfer_ms(0, 2, 12345), n.transfer_ms(2, 0, 12345));
        assert_eq!(n.transfer_ms(1, 3, 999), n.transfer_ms(3, 1, 999));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_transfer_monotone_in_bytes(
            bw in 1.0f64..1000.0, delay in 0.0f64..100.0,
            b1 in 0u64..10_000_000, b2 in 0u64..10_000_000,
        ) {
            let l = LinkState { bandwidth_mbps: bw, delay_ms: delay };
            let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
            prop_assert!(l.transfer_ms(lo) <= l.transfer_ms(hi));
        }

        #[test]
        fn prop_more_bandwidth_never_slower(
            bw1 in 1.0f64..500.0, extra in 0.0f64..500.0,
            delay in 0.0f64..50.0, bytes in 0u64..5_000_000,
        ) {
            let a = LinkState { bandwidth_mbps: bw1, delay_ms: delay };
            let b = LinkState { bandwidth_mbps: bw1 + extra, delay_ms: delay };
            prop_assert!(b.transfer_ms(bytes) <= a.transfer_ms(bytes) + 1e-9);
        }
    }
}
