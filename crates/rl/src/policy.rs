//! The LSTM policy network (paper Fig. 5), from scratch with BPTT.
//!
//! A single LSTM layer propagates context across the sequential decisions;
//! each action *type* (resolution, kernel, depth, expand, quant, partition,
//! device) has its own fully-connected output head. A scalar value head
//! supports the PPO baseline.

use murmuration_nn::module::Module;
use murmuration_nn::param::Param;
use murmuration_tensor::activation::{log_softmax_at, sigmoid, softmax};
use murmuration_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Action-type heads, in decision-schedule order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActionHead {
    Resolution = 0,
    Kernel = 1,
    Depth = 2,
    Expand = 3,
    Quant = 4,
    Partition = 5,
    Device = 6,
}

/// Number of distinct heads.
pub const NUM_HEADS: usize = 7;

/// The policy network.
#[derive(Clone)]
pub struct LstmPolicy {
    pub input_dim: usize,
    pub hidden: usize,
    /// Input-to-gates weights `[4H, I]` (gate order: i, f, g, o).
    wx: Param,
    /// Hidden-to-gates weights `[4H, H]`.
    wh: Param,
    /// Gate biases `[4H]`.
    b: Param,
    /// Per-head output weights `[arity, H]` and biases `[arity]`.
    heads: Vec<(Param, Param)>,
    /// Value head `[1, H]` + bias.
    value: (Param, Param),
    arities: Vec<usize>,
}

/// Recurrent state carried across decisions.
#[derive(Clone, Debug)]
pub struct PolicyState {
    pub h: Vec<f32>,
    pub c: Vec<f32>,
}

/// Everything one step's backward pass needs.
#[derive(Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
    h: Vec<f32>,
    head: usize,
    logits: Vec<f32>,
    value: f32,
}

/// A recorded forward pass over a whole decision sequence.
pub struct SeqForward {
    steps: Vec<StepCache>,
}

impl SeqForward {
    /// Logits of step `t`.
    pub fn logits(&self, t: usize) -> &[f32] {
        &self.steps[t].logits
    }

    /// Value estimate of step `t`.
    pub fn value(&self, t: usize) -> f32 {
        self.steps[t].value
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the pass recorded no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl LstmPolicy {
    /// Fresh policy. `arities[head]` is the option count of each head
    /// (indexed by [`ActionHead`] discriminants).
    pub fn new(input_dim: usize, hidden: usize, arities: Vec<usize>, seed: u64) -> Self {
        assert_eq!(arities.len(), NUM_HEADS, "one arity per head");
        let mut rng = StdRng::seed_from_u64(seed);
        let wx = Param::new(Tensor::kaiming(Shape::d2(4 * hidden, input_dim), input_dim, &mut rng));
        let wh = Param::new(Tensor::kaiming(Shape::d2(4 * hidden, hidden), hidden, &mut rng));
        // Forget-gate bias starts at 1 (standard LSTM practice).
        let mut bt = Tensor::zeros(Shape::d1(4 * hidden));
        for j in hidden..2 * hidden {
            bt.data_mut()[j] = 1.0;
        }
        let b = Param::new(bt);
        let heads = arities
            .iter()
            .map(|&a| {
                (
                    Param::new(Tensor::kaiming(Shape::d2(a, hidden), hidden, &mut rng)),
                    Param::new(Tensor::zeros(Shape::d1(a))),
                )
            })
            .collect();
        let value = (
            Param::new(Tensor::kaiming(Shape::d2(1, hidden), hidden, &mut rng)),
            Param::new(Tensor::zeros(Shape::d1(1))),
        );
        LstmPolicy { input_dim, hidden, wx, wh, b, heads, value, arities: arities.clone() }
    }

    /// Option count of a head.
    pub fn arity(&self, head: ActionHead) -> usize {
        self.arities[head as usize]
    }

    /// Option count by raw head index (serialization helper).
    pub fn arity_by_index(&self, head: usize) -> usize {
        self.arities[head]
    }

    /// Zeroed recurrent state.
    pub fn initial_state(&self) -> PolicyState {
        PolicyState { h: vec![0.0; self.hidden], c: vec![0.0; self.hidden] }
    }

    /// One LSTM cell step. Returns the full cache (also used for
    /// inference, where the cache is simply dropped).
    fn cell(&self, x: &[f32], st: &PolicyState, head: usize) -> StepCache {
        assert_eq!(x.len(), self.input_dim, "input dim");
        let hd = self.hidden;
        let mut pre = vec![0.0f32; 4 * hd];
        let wx = self.wx.value.data();
        let wh = self.wh.value.data();
        let bb = self.b.value.data();
        for j in 0..4 * hd {
            let mut acc = bb[j];
            let wxr = &wx[j * self.input_dim..(j + 1) * self.input_dim];
            for (wv, xv) in wxr.iter().zip(x.iter()) {
                acc += wv * xv;
            }
            let whr = &wh[j * hd..(j + 1) * hd];
            for (wv, hv) in whr.iter().zip(st.h.iter()) {
                acc += wv * hv;
            }
            pre[j] = acc;
        }
        let mut i = vec![0.0; hd];
        let mut f = vec![0.0; hd];
        let mut g = vec![0.0; hd];
        let mut o = vec![0.0; hd];
        let mut c = vec![0.0; hd];
        let mut h = vec![0.0; hd];
        for j in 0..hd {
            i[j] = sigmoid(pre[j]);
            f[j] = sigmoid(pre[hd + j]);
            g[j] = pre[2 * hd + j].tanh();
            o[j] = sigmoid(pre[3 * hd + j]);
            c[j] = f[j] * st.c[j] + i[j] * g[j];
            h[j] = o[j] * c[j].tanh();
        }
        // Head logits.
        let (hw, hb) = &self.heads[head];
        let arity = self.arities[head];
        let mut logits = vec![0.0f32; arity];
        for (a, l) in logits.iter_mut().enumerate() {
            let row = &hw.value.data()[a * hd..(a + 1) * hd];
            *l = hb.value.data()[a] + row.iter().zip(h.iter()).map(|(w, v)| w * v).sum::<f32>();
        }
        // Value.
        let vrow = self.value.0.value.data();
        let value = self.value.1.value.data()[0]
            + vrow.iter().zip(h.iter()).map(|(w, v)| w * v).sum::<f32>();
        StepCache {
            x: x.to_vec(),
            h_prev: st.h.clone(),
            c_prev: st.c.clone(),
            i,
            f,
            g,
            o,
            c,
            h,
            head,
            logits,
            value,
        }
    }

    /// Inference step: advances the state, returns logits (and value).
    pub fn step(&self, x: &[f32], st: &mut PolicyState, head: ActionHead) -> (Vec<f32>, f32) {
        let cache = self.cell(x, st, head as usize);
        st.h = cache.h;
        st.c = cache.c;
        (cache.logits, cache.value)
    }

    /// Full-sequence forward pass with caching for BPTT.
    pub fn forward_seq(&self, steps: &[(Vec<f32>, ActionHead)]) -> SeqForward {
        let mut st = self.initial_state();
        let mut out = Vec::with_capacity(steps.len());
        for (x, head) in steps {
            let cache = self.cell(x, &st, *head as usize);
            st.h = cache.h.clone();
            st.c = cache.c.clone();
            out.push(cache);
        }
        SeqForward { steps: out }
    }

    /// BPTT. `dlogits[t]` is the gradient w.r.t. step `t`'s logits (may be
    /// all-zero); `dvalues[t]` the gradient w.r.t. the value output.
    /// Gradients accumulate into the parameters.
    pub fn backward_seq(&mut self, fw: &SeqForward, dlogits: &[Vec<f32>], dvalues: &[f32]) {
        assert_eq!(fw.steps.len(), dlogits.len());
        assert_eq!(fw.steps.len(), dvalues.len());
        let hd = self.hidden;
        let mut dh_next = vec![0.0f32; hd];
        let mut dc_next = vec![0.0f32; hd];
        for t in (0..fw.steps.len()).rev() {
            let s = &fw.steps[t];
            // dh from the head, the value head, and the next step.
            let mut dh = dh_next.clone();
            {
                let (hw, hb) = &mut self.heads[s.head];
                let dl = &dlogits[t];
                assert_eq!(dl.len(), s.logits.len(), "step {t} logits grad");
                for (a, &d) in dl.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    hb.grad.data_mut()[a] += d;
                    let wrow = &hw.value.data()[a * hd..(a + 1) * hd].to_vec();
                    let grow = &mut hw.grad.data_mut()[a * hd..(a + 1) * hd];
                    for j in 0..hd {
                        grow[j] += d * s.h[j];
                        dh[j] += d * wrow[j];
                    }
                }
            }
            let dv = dvalues[t];
            if dv != 0.0 {
                self.value.1.grad.data_mut()[0] += dv;
                let vrow = self.value.0.value.data().to_vec();
                let grow = self.value.0.grad.data_mut();
                for j in 0..hd {
                    grow[j] += dv * s.h[j];
                    dh[j] += dv * vrow[j];
                }
            }
            // Through the cell.
            let mut dpre = vec![0.0f32; 4 * hd];
            let mut dc_prev = vec![0.0f32; hd];
            for j in 0..hd {
                let tanh_c = s.c[j].tanh();
                let do_ = dh[j] * tanh_c;
                let dc = dh[j] * s.o[j] * (1.0 - tanh_c * tanh_c) + dc_next[j];
                let di = dc * s.g[j];
                let df = dc * s.c_prev[j];
                let dg = dc * s.i[j];
                dpre[j] = di * s.i[j] * (1.0 - s.i[j]);
                dpre[hd + j] = df * s.f[j] * (1.0 - s.f[j]);
                dpre[2 * hd + j] = dg * (1.0 - s.g[j] * s.g[j]);
                dpre[3 * hd + j] = do_ * s.o[j] * (1.0 - s.o[j]);
                dc_prev[j] = dc * s.f[j];
            }
            // Parameter grads and upstream dh_prev.
            let mut dh_prev = vec![0.0f32; hd];
            {
                let wxg = self.wx.grad.data_mut();
                for (j, &dp) in dpre.iter().enumerate() {
                    if dp == 0.0 {
                        continue;
                    }
                    let row = &mut wxg[j * self.input_dim..(j + 1) * self.input_dim];
                    for (rv, xv) in row.iter_mut().zip(s.x.iter()) {
                        *rv += dp * xv;
                    }
                }
            }
            {
                let wh_vals = self.wh.value.data().to_vec();
                let whg = self.wh.grad.data_mut();
                for (j, &dp) in dpre.iter().enumerate() {
                    if dp == 0.0 {
                        continue;
                    }
                    let row = &mut whg[j * hd..(j + 1) * hd];
                    let vrow = &wh_vals[j * hd..(j + 1) * hd];
                    for k in 0..hd {
                        row[k] += dp * s.h_prev[k];
                        dh_prev[k] += dp * vrow[k];
                    }
                }
            }
            {
                let bg = self.b.grad.data_mut();
                for (j, &dp) in dpre.iter().enumerate() {
                    bg[j] += dp;
                }
            }
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
    }

    /// Samples an action from logits; `epsilon` forces uniform exploration.
    pub fn sample_action<R: Rng>(logits: &[f32], valid: usize, epsilon: f32, rng: &mut R) -> usize {
        assert!(valid >= 1 && valid <= logits.len());
        if epsilon > 0.0 && rng.gen::<f32>() < epsilon {
            return rng.gen_range(0..valid);
        }
        let probs = softmax(&logits[..valid]);
        let mut u: f32 = rng.gen();
        for (a, &p) in probs.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return a;
            }
        }
        valid - 1
    }

    /// Greedy action from logits (masked to the first `valid` options).
    pub fn greedy_action(logits: &[f32], valid: usize) -> usize {
        logits[..valid]
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc })
            .0
    }

    /// Log-probability of `action` under `logits` masked to `valid`.
    pub fn logp(logits: &[f32], valid: usize, action: usize) -> f32 {
        log_softmax_at(&logits[..valid], action)
    }
}

impl Module for LstmPolicy {
    fn forward(&mut self, _x: &Tensor, _train: bool) -> Tensor {
        unreachable!("LstmPolicy uses forward_seq / step, not the Module forward")
    }

    fn backward(&mut self, _dy: &Tensor) -> Tensor {
        unreachable!("LstmPolicy uses backward_seq, not the Module backward")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wx);
        f(&mut self.wh);
        f(&mut self.b);
        for (w, b) in &mut self.heads {
            f(w);
            f(b);
        }
        f(&mut self.value.0);
        f(&mut self.value.1);
    }

    fn name(&self) -> &'static str {
        "LstmPolicy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_nn::optim::Adam;

    fn tiny_policy(seed: u64) -> LstmPolicy {
        LstmPolicy::new(4, 8, vec![3, 3, 3, 3, 3, 4, 5], seed)
    }

    #[test]
    fn step_and_seq_agree() {
        let p = tiny_policy(0);
        let xs: Vec<(Vec<f32>, ActionHead)> =
            (0..5).map(|t| (vec![t as f32 * 0.1, 0.5, -0.2, 1.0], ActionHead::Kernel)).collect();
        let fw = p.forward_seq(&xs);
        let mut st = p.initial_state();
        for (t, (x, head)) in xs.iter().enumerate() {
            let (logits, value) = p.step(x, &mut st, *head);
            assert_eq!(logits, fw.logits(t));
            assert!((value - fw.value(t)).abs() < 1e-6);
        }
    }

    #[test]
    fn bptt_matches_finite_difference() {
        // Loss = -log p(a_t) summed over a 3-step sequence; check dWx, dWh
        // against central differences at probed coordinates.
        let mut p = tiny_policy(1);
        let steps: Vec<(Vec<f32>, ActionHead)> = vec![
            (vec![0.2, -0.1, 0.4, 0.0], ActionHead::Resolution),
            (vec![-0.3, 0.2, 0.1, 0.5], ActionHead::Partition),
            (vec![0.0, 0.7, -0.2, 0.3], ActionHead::Device),
        ];
        let actions = [1usize, 2, 3];
        let loss_fn = |p: &LstmPolicy| -> f32 {
            let fw = p.forward_seq(&steps);
            (0..3).map(|t| -LstmPolicy::logp(fw.logits(t), fw.logits(t).len(), actions[t])).sum()
        };
        // Analytic.
        p.zero_grad();
        let fw = p.forward_seq(&steps);
        let dlogits: Vec<Vec<f32>> = (0..3)
            .map(|t| {
                let probs = softmax(fw.logits(t));
                let mut d = probs;
                d[actions[t]] -= 1.0;
                d
            })
            .collect();
        let dvalues = vec![0.0; 3];
        p.backward_seq(&fw, &dlogits, &dvalues);

        let eps = 1e-2f32;
        // Probe a few coordinates of wx and wh.
        for probe in [(0usize, 0usize), (3, 2), (17, 1)] {
            let idx = probe.0 * p.input_dim + probe.1;
            let analytic = p.wx.grad.data()[idx];
            p.wx.value.data_mut()[idx] += eps;
            let lp = loss_fn(&p);
            p.wx.value.data_mut()[idx] -= 2.0 * eps;
            let lm = loss_fn(&p);
            p.wx.value.data_mut()[idx] += eps;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic).abs() < 0.02 * fd.abs().max(analytic.abs()).max(0.05),
                "wx[{idx}]: fd {fd} vs analytic {analytic}"
            );
        }
        for probe in [(2usize, 3usize), (20, 5)] {
            let idx = probe.0 * p.hidden + probe.1;
            let analytic = p.wh.grad.data()[idx];
            p.wh.value.data_mut()[idx] += eps;
            let lp = loss_fn(&p);
            p.wh.value.data_mut()[idx] -= 2.0 * eps;
            let lm = loss_fn(&p);
            p.wh.value.data_mut()[idx] += eps;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic).abs() < 0.02 * fd.abs().max(analytic.abs()).max(0.05),
                "wh[{idx}]: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn supervised_training_imitates_target_sequence() {
        // Teach the policy to always produce a fixed action sequence.
        let mut p = tiny_policy(2);
        let steps: Vec<(Vec<f32>, ActionHead)> = vec![
            (vec![1.0, 0.0, 0.0, 0.0], ActionHead::Kernel),
            (vec![0.0, 1.0, 0.0, 0.0], ActionHead::Quant),
            (vec![0.0, 0.0, 1.0, 0.0], ActionHead::Device),
        ];
        let targets = [2usize, 0, 4];
        let mut opt = Adam::new(0.01);
        for _ in 0..300 {
            p.zero_grad();
            let fw = p.forward_seq(&steps);
            let dlogits: Vec<Vec<f32>> = (0..3)
                .map(|t| {
                    let mut d = softmax(fw.logits(t));
                    d[targets[t]] -= 1.0;
                    d
                })
                .collect();
            let dvalues = vec![0.0; 3];
            p.backward_seq(&fw, &dlogits, &dvalues);
            opt.step(&mut p);
        }
        let fw = p.forward_seq(&steps);
        for (t, &target) in targets.iter().enumerate() {
            assert_eq!(
                LstmPolicy::greedy_action(fw.logits(t), fw.logits(t).len()),
                target,
                "step {t}"
            );
        }
    }

    #[test]
    fn epsilon_one_is_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let logits = [100.0f32, 0.0, 0.0];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[LstmPolicy::sample_action(&logits, 3, 1.0, &mut rng)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{counts:?} not uniform");
        }
    }

    #[test]
    fn greedy_respects_valid_mask() {
        let logits = [0.0f32, 1.0, 50.0, 100.0];
        assert_eq!(LstmPolicy::greedy_action(&logits, 2), 1);
        assert_eq!(LstmPolicy::greedy_action(&logits, 4), 3);
    }

    #[test]
    fn value_head_gradients_flow() {
        let mut p = tiny_policy(4);
        let steps = vec![(vec![0.5, 0.5, 0.5, 0.5], ActionHead::Resolution)];
        p.zero_grad();
        let fw = p.forward_seq(&steps);
        let dlogits = vec![vec![0.0; p.arity(ActionHead::Resolution)]];
        p.backward_seq(&fw, &dlogits, &[1.0]);
        assert!(p.value.0.grad.norm() > 0.0);
        assert!(p.wx.grad.norm() > 0.0, "value grad must reach the LSTM");
    }
}
