//! Goal-Conditioned Supervised Learning (Ghosh et al., 2019) — the paper's
//! stronger baseline and the policy-update rule SUPREME reuses.
//!
//! GCSL collects trajectories, relabels each with the goal it actually
//! achieved (hindsight), and trains the policy by supervised imitation of
//! its own relabeled behaviour. Exploration is plain softmax sampling —
//! the weakness SUPREME's buffer machinery addresses.

use crate::env::{rollout, Condition, RolloutMode, Scenario};
use crate::metrics::{evaluate_policy, validation_conditions, TrainHistory};
use crate::policy::LstmPolicy;
use murmuration_nn::module::Module;
use murmuration_nn::optim::Adam;
use murmuration_tensor::activation::softmax;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GCSL hyper-parameters.
#[derive(Clone, Debug)]
pub struct GcslConfig {
    /// Episodes to collect (the x-axis of Fig. 11).
    pub steps: usize,
    /// Trajectories per supervised update.
    pub batch: usize,
    pub lr: f32,
    /// Softmax-sampling temperature is fixed; this is ε-uniform mixing.
    pub epsilon: f32,
    /// Replay capacity (FIFO).
    pub capacity: usize,
    /// Evaluate every this many episodes.
    pub eval_every: usize,
    /// Validation conditions per evaluation.
    pub eval_conditions: usize,
    pub hidden: usize,
    pub seed: u64,
}

impl Default for GcslConfig {
    fn default() -> Self {
        GcslConfig {
            steps: 2000,
            batch: 8,
            lr: 1e-3,
            epsilon: 0.05,
            capacity: 4096,
            eval_every: 250,
            eval_conditions: 40,
            hidden: 64,
            seed: 0,
        }
    }
}

/// One supervised (imitation) update on a batch of (goal, actions) pairs.
/// Returns the mean cross-entropy loss.
pub fn supervised_update(
    policy: &mut LstmPolicy,
    opt: &mut Adam,
    sc: &Scenario,
    batch: &[(Condition, Vec<usize>)],
) -> f32 {
    let weighted: Vec<(Condition, Vec<usize>, f32)> =
        batch.iter().map(|(c, a)| (c.clone(), a.clone(), 1.0)).collect();
    supervised_update_weighted(policy, opt, sc, &weighted)
}

/// Weighted imitation update: each trajectory's cross-entropy is scaled by
/// its weight (SUPREME weights by stored reward so the policy's capacity
/// concentrates on high-value strategies). Returns the mean unweighted CE.
pub fn supervised_update_weighted(
    policy: &mut LstmPolicy,
    opt: &mut Adam,
    sc: &Scenario,
    batch: &[(Condition, Vec<usize>, f32)],
) -> f32 {
    if batch.is_empty() {
        return 0.0;
    }
    policy.zero_grad();
    let mut loss = 0.0f32;
    let mut count = 0usize;
    let weight_sum: f32 = batch.iter().map(|(_, _, w)| w).sum::<f32>().max(1e-6);
    for (cond, actions, w) in batch {
        let steps = crate::env::regenerate_inputs(sc, cond, actions);
        let fw = policy.forward_seq(&steps);
        let scale = w / weight_sum;
        let dlogits: Vec<Vec<f32>> = (0..fw.len())
            .map(|t| {
                let logits = fw.logits(t);
                let probs = softmax(logits);
                loss -= probs[actions[t]].max(1e-12).ln();
                count += 1;
                let mut d: Vec<f32> = probs.iter().map(|&p| p * scale).collect();
                d[actions[t]] -= scale;
                d
            })
            .collect();
        let dvalues = vec![0.0; fw.len()];
        policy.backward_seq(&fw, &dlogits, &dvalues);
    }
    opt.step(policy);
    loss / count as f32
}

/// Trains a policy with GCSL; returns it plus the training curve.
pub fn train(sc: &Scenario, cfg: &GcslConfig) -> (LstmPolicy, TrainHistory) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut policy = LstmPolicy::new(sc.input_dim(), cfg.hidden, sc.arities(), cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut replay: Vec<(Condition, Vec<usize>)> = Vec::new();
    let val = validation_conditions(sc, cfg.eval_conditions);
    let mut history = TrainHistory::default();

    // Bootstrap (paper §6.1.1): max- and min-size submodels.
    for actions in crate::env::bootstrap_actions(sc) {
        let cond = sc.sample_condition(&mut rng);
        let res = sc.evaluate(&cond, &actions);
        let relabeled = sc.relabel(&cond, &res);
        replay.push((relabeled, actions));
    }

    for step in 0..cfg.steps {
        let cond = sc.sample_condition(&mut rng);
        let (actions, _, _) =
            rollout(&policy, sc, &cond, RolloutMode::Sample { epsilon: cfg.epsilon }, &mut rng);
        let res = sc.evaluate(&cond, &actions);
        let relabeled = sc.relabel(&cond, &res);
        replay.push((relabeled, actions));
        if replay.len() > cfg.capacity {
            let overflow = replay.len() - cfg.capacity;
            replay.drain(..overflow);
        }
        // Supervised update on a random batch.
        let batch: Vec<(Condition, Vec<usize>)> = (0..cfg.batch.min(replay.len()))
            .map(|_| replay[rng.gen_range(0..replay.len())].clone())
            .collect();
        supervised_update(&mut policy, &mut opt, sc, &batch);
        if (step + 1) % cfg.eval_every == 0 || step + 1 == cfg.steps {
            history.points.push((step + 1, evaluate_policy(&policy, sc, &val)));
        }
    }
    (policy, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SloKind;

    #[test]
    fn supervised_update_reduces_loss() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let mut policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
        let mut opt = Adam::new(5e-3);
        let mut rng = StdRng::seed_from_u64(0);
        let cond = sc.sample_condition(&mut rng);
        let actions = crate::env::bootstrap_actions(&sc)[0].clone();
        let batch = vec![(cond, actions)];
        let first = supervised_update(&mut policy, &mut opt, &sc, &batch);
        let mut last = first;
        for _ in 0..30 {
            last = supervised_update(&mut policy, &mut opt, &sc, &batch);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn short_training_run_produces_history() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let cfg = GcslConfig {
            steps: 30,
            eval_every: 15,
            eval_conditions: 6,
            hidden: 16,
            ..Default::default()
        };
        let (_, history) = train(&sc, &cfg);
        assert_eq!(history.points.len(), 2);
        assert!(history.final_reward().is_finite());
    }
}
