//! The goal-conditioned sequential decision environment.
//!
//! One episode makes every decision for one inference deployment: the input
//! resolution, then per stage the kernel / depth / expand / quantization /
//! spatial-partition settings and a device for each potential tile, and
//! finally the head placement. The resulting (config, plan) pair is scored
//! with the latency estimator and accuracy model under the episode's
//! network condition, paying the reward of Eq. (2) (latency SLO) or
//! Eq. (3) (accuracy SLO).

use crate::policy::{ActionHead, LstmPolicy};
use murmuration_edgesim::device::{augmented_computing_devices, device_swarm_devices};
use murmuration_edgesim::{Device, LinkState, NetworkState};
use murmuration_partition::evolutionary::Genome;
use murmuration_partition::LatencyEstimator;
use murmuration_supernet::{AccuracyModel, SearchSpace, SubnetConfig, SubnetSpec};
use rand::Rng;

/// Which quantity the SLO constrains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloKind {
    /// SLO is a latency ceiling (ms); reward pays accuracy.
    Latency,
    /// SLO is an accuracy floor (%); reward pays low latency.
    Accuracy,
}

/// One task+goal: the SLO value and the per-remote-link network state.
#[derive(Clone, Debug, PartialEq)]
pub struct Condition {
    pub slo: f64,
    pub bw_mbps: Vec<f64>,
    pub delay_ms: Vec<f64>,
}

/// Outcome of one episode.
#[derive(Clone, Debug)]
pub struct EpisodeResult {
    pub actions: Vec<usize>,
    pub latency_ms: f64,
    pub accuracy_pct: f32,
    pub reward: f32,
    pub met: bool,
}

/// An evaluation scenario: devices, search space, SLO kind and ranges.
///
/// ```
/// use murmuration_rl::{Scenario, SloKind};
/// use murmuration_rl::env::bootstrap_actions;
///
/// let sc = Scenario::device_swarm(5, SloKind::Latency);
/// let cond = sc.condition_from_indices(9, &[9; 4], &[0; 4]); // loosest point
/// let result = sc.evaluate(&cond, &bootstrap_actions(&sc)[0]);
/// assert!(result.met && result.accuracy_pct > 79.0);
/// ```
#[derive(Clone, Debug)]
pub struct Scenario {
    pub devices: Vec<Device>,
    pub space: SearchSpace,
    pub slo_kind: SloKind,
    /// SLO range (ms for latency, % for accuracy).
    pub slo_range: (f64, f64),
    /// Bandwidth range (Mbps), log-spaced grid.
    pub bw_range: (f64, f64),
    /// Delay range (ms), linear grid.
    pub delay_range: (f64, f64),
    /// Discretization per metric (the paper uses 10).
    pub grid_points: usize,
    /// Latency normalization for the accuracy-SLO reward.
    pub latency_scale_ms: f64,
    pub accuracy_model: AccuracyModel,
}

impl Scenario {
    /// The paper's Augmented Computing scenario (Pi 4 + desktop GPU).
    pub fn augmented_computing(slo_kind: SloKind) -> Self {
        Scenario {
            devices: augmented_computing_devices(),
            space: SearchSpace::default(),
            slo_kind,
            slo_range: match slo_kind {
                SloKind::Latency => (80.0, 400.0),
                SloKind::Accuracy => (72.0, 79.0),
            },
            bw_range: (50.0, 400.0),
            delay_range: (5.0, 100.0),
            grid_points: 10,
            latency_scale_ms: 300.0,
            accuracy_model: AccuracyModel::new(),
        }
    }

    /// Extension scenario: a heterogeneous fleet (Pi 4 local, two
    /// Jetson-class accelerators, one desktop GPU).
    pub fn heterogeneous_edge(slo_kind: SloKind) -> Self {
        Scenario {
            devices: murmuration_edgesim::device::heterogeneous_edge_devices(),
            space: SearchSpace::default(),
            slo_kind,
            slo_range: match slo_kind {
                SloKind::Latency => (60.0, 500.0),
                SloKind::Accuracy => (72.0, 79.0),
            },
            bw_range: (10.0, 500.0),
            delay_range: (2.0, 100.0),
            grid_points: 10,
            latency_scale_ms: 400.0,
            accuracy_model: AccuracyModel::new(),
        }
    }

    /// The paper's Device Swarm scenario (`n` Raspberry Pi 4s).
    pub fn device_swarm(n: usize, slo_kind: SloKind) -> Self {
        Scenario {
            devices: device_swarm_devices(n),
            space: SearchSpace::default(),
            slo_kind,
            slo_range: match slo_kind {
                SloKind::Latency => (300.0, 2000.0),
                SloKind::Accuracy => (72.0, 79.0),
            },
            bw_range: (5.0, 500.0),
            delay_range: (5.0, 100.0),
            grid_points: 10,
            latency_scale_ms: 1500.0,
            accuracy_model: AccuracyModel::new(),
        }
    }

    /// Number of remote devices.
    pub fn n_remote(&self) -> usize {
        self.devices.len() - 1
    }

    /// Grid value of metric index `i` within `[lo, hi]` (linear).
    fn lin_grid(&self, lo: f64, hi: f64, i: usize) -> f64 {
        lo + (hi - lo) * i as f64 / (self.grid_points - 1) as f64
    }

    /// Grid value, log-spaced.
    fn log_grid(&self, lo: f64, hi: f64, i: usize) -> f64 {
        (lo.ln() + (hi.ln() - lo.ln()) * i as f64 / (self.grid_points - 1) as f64).exp()
    }

    /// A condition from grid indices (`slo_i`, per-remote `bw_i`,
    /// per-remote `delay_i`); each index < `grid_points`.
    pub fn condition_from_indices(
        &self,
        slo_i: usize,
        bw_i: &[usize],
        delay_i: &[usize],
    ) -> Condition {
        assert_eq!(bw_i.len(), self.n_remote());
        assert_eq!(delay_i.len(), self.n_remote());
        Condition {
            slo: self.lin_grid(self.slo_range.0, self.slo_range.1, slo_i),
            bw_mbps: bw_i
                .iter()
                .map(|&i| self.log_grid(self.bw_range.0, self.bw_range.1, i))
                .collect(),
            delay_ms: delay_i
                .iter()
                .map(|&i| self.lin_grid(self.delay_range.0, self.delay_range.1, i))
                .collect(),
        }
    }

    /// Uniform random grid condition.
    pub fn sample_condition<R: Rng>(&self, rng: &mut R) -> Condition {
        let g = self.grid_points;
        let slo_i = rng.gen_range(0..g);
        let bw_i: Vec<usize> = (0..self.n_remote()).map(|_| rng.gen_range(0..g)).collect();
        let delay_i: Vec<usize> = (0..self.n_remote()).map(|_| rng.gen_range(0..g)).collect();
        self.condition_from_indices(slo_i, &bw_i, &delay_i)
    }

    /// Network state induced by a condition.
    pub fn network(&self, cond: &Condition) -> NetworkState {
        NetworkState::from_links(
            cond.bw_mbps
                .iter()
                .zip(cond.delay_ms.iter())
                .map(|(&b, &d)| LinkState { bandwidth_mbps: b, delay_ms: d })
                .collect(),
        )
    }

    /// The decision schedule: which head acts at each step.
    pub fn schedule(&self) -> Vec<ActionHead> {
        let mut s = vec![ActionHead::Resolution];
        for _ in 0..self.space.num_stages {
            s.extend([
                ActionHead::Kernel,
                ActionHead::Depth,
                ActionHead::Expand,
                ActionHead::Quant,
                ActionHead::Partition,
                ActionHead::Device,
                ActionHead::Device,
                ActionHead::Device,
                ActionHead::Device,
            ]);
        }
        s.push(ActionHead::Device); // head placement
        s
    }

    /// Head arities for constructing a matching [`LstmPolicy`].
    pub fn arities(&self) -> Vec<usize> {
        vec![
            self.space.resolutions.len(),
            self.space.kernels.len(),
            self.space.depths.len(),
            self.space.expands.len(),
            self.space.quants.len(),
            self.space.partitions.len(),
            self.devices.len(),
        ]
    }

    /// Policy input dimension.
    pub fn input_dim(&self) -> usize {
        1 + 2 * self.n_remote() + self.devices.len() + crate::policy::NUM_HEADS + 2
    }

    /// Builds the policy input for one step.
    pub fn build_input(
        &self,
        cond: &Condition,
        step_idx: usize,
        total_steps: usize,
        head: ActionHead,
        prev_action_frac: f32,
    ) -> Vec<f32> {
        let mut x = Vec::with_capacity(self.input_dim());
        let (slo_lo, slo_hi) = self.slo_range;
        x.push(((cond.slo - slo_lo) / (slo_hi - slo_lo)) as f32);
        let (bw_lo, bw_hi) = self.bw_range;
        for &b in &cond.bw_mbps {
            x.push(((b / bw_lo).ln() / (bw_hi / bw_lo).ln()) as f32);
        }
        let (d_lo, d_hi) = self.delay_range;
        for &d in &cond.delay_ms {
            x.push(((d - d_lo) / (d_hi - d_lo)) as f32);
        }
        for dev in &self.devices {
            x.push(dev.kind.type_feature());
        }
        for h in 0..crate::policy::NUM_HEADS {
            x.push(f32::from(h == head as usize));
        }
        x.push(prev_action_frac);
        x.push(step_idx as f32 / total_steps as f32);
        debug_assert_eq!(x.len(), self.input_dim());
        x
    }

    /// Decodes an action sequence into a genome (config + placements).
    pub fn decode(&self, actions: &[usize]) -> Genome {
        let sched = self.schedule();
        assert_eq!(actions.len(), sched.len(), "action count");
        let mut it = actions.iter().copied();
        let resolution = self.space.resolutions[it.next().unwrap()];
        let mut stages = Vec::with_capacity(self.space.num_stages);
        let mut prefs = vec![[0usize; 4]; 7];
        for si in 0..self.space.num_stages {
            let kernel = self.space.kernels[it.next().unwrap()];
            let depth = self.space.depths[it.next().unwrap()];
            let expand = self.space.expands[it.next().unwrap()];
            let quant = self.space.quants[it.next().unwrap()];
            let partition = self.space.partitions[it.next().unwrap()];
            for slot in prefs[1 + si].iter_mut() {
                *slot = it.next().unwrap();
            }
            stages.push(murmuration_supernet::BlockChoice {
                kernel,
                depth,
                expand,
                partition,
                quant,
            });
        }
        prefs[6][0] = it.next().unwrap();
        Genome { config: SubnetConfig { resolution, stages }, prefs }
    }

    /// The goal-conditioned reward of Eq. (2)/(3).
    pub fn reward(&self, cond: &Condition, latency_ms: f64, accuracy_pct: f32) -> (f32, bool) {
        match self.slo_kind {
            SloKind::Latency => {
                let met = latency_ms <= cond.slo;
                if met {
                    (((accuracy_pct - 71.0) / 6.0).max(0.0), true)
                } else {
                    (0.0, false)
                }
            }
            SloKind::Accuracy => {
                let met = f64::from(accuracy_pct) >= cond.slo;
                if met {
                    ((1.5 - latency_ms / self.latency_scale_ms).max(0.05) as f32, true)
                } else {
                    (0.0, false)
                }
            }
        }
    }

    /// Evaluates a full action sequence under a condition.
    pub fn evaluate(&self, cond: &Condition, actions: &[usize]) -> EpisodeResult {
        let genome = self.decode(actions);
        let spec = SubnetSpec::lower(&genome.config);
        let plan = genome.plan(&spec, self.devices.len());
        let net = self.network(cond);
        let est = LatencyEstimator::new(&self.devices, &net);
        let latency_ms = est.estimate(&spec, &plan).total_ms;
        let accuracy_pct = self.accuracy_model.predict(&genome.config);
        let (reward, met) = self.reward(cond, latency_ms, accuracy_pct);
        EpisodeResult { actions: actions.to_vec(), latency_ms, accuracy_pct, reward, met }
    }

    /// Relabels a finished episode with the goal it *actually* achieved
    /// (GCSL hindsight): the achieved latency (or accuracy) becomes the
    /// SLO, clamped into the scenario range.
    pub fn relabel(&self, cond: &Condition, result: &EpisodeResult) -> Condition {
        let slo = match self.slo_kind {
            SloKind::Latency => result.latency_ms.clamp(self.slo_range.0, self.slo_range.1),
            SloKind::Accuracy => {
                f64::from(result.accuracy_pct).clamp(self.slo_range.0, self.slo_range.1)
            }
        };
        Condition { slo, ..cond.clone() }
    }

    /// Which remote links a decoded strategy actually sends traffic over.
    /// `used[d-1]` is true when device `d` participates in the plan.
    pub fn used_links(&self, actions: &[usize]) -> Vec<bool> {
        let genome = self.decode(actions);
        let spec = SubnetSpec::lower(&genome.config);
        let plan = genome.plan(&spec, self.devices.len());
        let mut used = vec![false; self.n_remote()];
        for p in &plan.placements {
            match p {
                murmuration_partition::UnitPlacement::Single(d) => {
                    if *d > 0 {
                        used[*d - 1] = true;
                    }
                }
                murmuration_partition::UnitPlacement::Tiled(devs) => {
                    for &d in devs {
                        if d > 0 {
                            used[d - 1] = true;
                        }
                    }
                }
            }
        }
        used
    }

    /// Tightens a condition to what a strategy actually *requires*: links
    /// the plan never touches are set to the tightest grid corner (lowest
    /// bandwidth, highest delay), so the stored strategy is shareable with
    /// every condition on those axes — the paper's lower-bound observation
    /// applied per dimension.
    pub fn tighten_unused_links(&self, cond: &Condition, actions: &[usize]) -> Condition {
        let used = self.used_links(actions);
        let mut out = cond.clone();
        for (i, &u) in used.iter().enumerate() {
            if !u {
                out.bw_mbps[i] = self.bw_range.0;
                out.delay_ms[i] = self.delay_range.1;
            }
        }
        out
    }
}

/// What a rollout returns: the chosen actions, the per-step (input, head)
/// pairs for supervised replay, and per-step log-probabilities for PPO.
pub type RolloutOutput = (Vec<usize>, Vec<(Vec<f32>, ActionHead)>, Vec<f32>);

/// How actions are chosen during a rollout.
#[derive(Clone, Copy, Debug)]
pub enum RolloutMode {
    /// Greedy argmax (deployment / evaluation).
    Greedy,
    /// Softmax sampling with ε-uniform exploration.
    Sample { epsilon: f32 },
}

/// Runs the policy through one episode under `cond`.
///
/// Returns the chosen actions, the (input, head) pairs (for supervised
/// replay), and per-step log-probabilities (for PPO).
pub fn rollout<R: Rng>(
    policy: &LstmPolicy,
    scenario: &Scenario,
    cond: &Condition,
    mode: RolloutMode,
    rng: &mut R,
) -> RolloutOutput {
    let sched = scenario.schedule();
    let total = sched.len();
    let mut st = policy.initial_state();
    let mut actions = Vec::with_capacity(total);
    let mut steps = Vec::with_capacity(total);
    let mut logps = Vec::with_capacity(total);
    let mut prev_frac = 0.0f32;
    for (t, &head) in sched.iter().enumerate() {
        let x = scenario.build_input(cond, t, total, head, prev_frac);
        let (logits, _) = policy.step(&x, &mut st, head);
        let valid = policy.arity(head);
        let a = match mode {
            RolloutMode::Greedy => LstmPolicy::greedy_action(&logits, valid),
            RolloutMode::Sample { epsilon } => {
                LstmPolicy::sample_action(&logits, valid, epsilon, rng)
            }
        };
        logps.push(LstmPolicy::logp(&logits, valid, a));
        prev_frac = (a + 1) as f32 / valid as f32;
        actions.push(a);
        steps.push((x, head));
    }
    (actions, steps, logps)
}

/// Replays the schedule to regenerate the policy inputs for a stored
/// (condition, actions) pair — used when training on relabeled
/// trajectories, where the goal feature differs from collection time.
pub fn regenerate_inputs(
    scenario: &Scenario,
    cond: &Condition,
    actions: &[usize],
) -> Vec<(Vec<f32>, ActionHead)> {
    let sched = scenario.schedule();
    assert_eq!(actions.len(), sched.len());
    let total = sched.len();
    let mut out = Vec::with_capacity(total);
    let mut prev_frac = 0.0f32;
    for (t, &head) in sched.iter().enumerate() {
        let x = scenario.build_input(cond, t, total, head, prev_frac);
        out.push((x, head));
        let arity = match head {
            ActionHead::Resolution => scenario.space.resolutions.len(),
            ActionHead::Kernel => scenario.space.kernels.len(),
            ActionHead::Depth => scenario.space.depths.len(),
            ActionHead::Expand => scenario.space.expands.len(),
            ActionHead::Quant => scenario.space.quants.len(),
            ActionHead::Partition => scenario.space.partitions.len(),
            ActionHead::Device => scenario.devices.len(),
        };
        prev_frac = (actions[t] + 1) as f32 / arity as f32;
    }
    out
}

/// Bootstrap trajectories the paper seeds GCSL/SUPREME training with: the
/// maximal and minimal subnets, run entirely on the local device.
pub fn bootstrap_actions(scenario: &Scenario) -> Vec<Vec<usize>> {
    let space = &scenario.space;
    let mk = |res_i: usize, k_i: usize, d_i: usize, e_i: usize| {
        let mut a = vec![res_i];
        for _ in 0..space.num_stages {
            a.extend([k_i, d_i, e_i, 0 /* quant B32 */, 0 /* 1x1 */, 0, 0, 0, 0]);
        }
        a.push(0);
        a
    };
    vec![
        mk(
            space.resolutions.len() - 1,
            space.kernels.len() - 1,
            space.depths.len() - 1,
            space.expands.len() - 1,
        ),
        mk(0, 0, 0, 0),
    ]
}

/// Canonical fallback strategies for the decision guard: a ladder of
/// architecture sizes crossed with the placement archetypes (all-local,
/// all on one remote, stem-local split, and 2×2-tiled spread with 8-bit
/// wire). Encoded directly as action sequences.
pub fn fallback_actions(scenario: &Scenario) -> Vec<Vec<usize>> {
    let space = &scenario.space;
    let n_dev = scenario.devices.len();
    let quant_b8 = space.quants.len() - 1;
    let part_2x2 = space.partitions.len() - 1;
    let mk = |res_i: usize,
              arch_i: usize,
              part_i: usize,
              quant_i: usize,
              stage_devs: &dyn Fn(usize) -> [usize; 4],
              head_dev: usize| {
        let mut a = vec![res_i];
        for s in 0..space.num_stages {
            let k = arch_i.min(space.kernels.len() - 1);
            let d = arch_i.min(space.depths.len() - 1);
            let e = arch_i.min(space.expands.len() - 1);
            let devs = stage_devs(s);
            a.extend([k, d, e, quant_i, part_i]);
            a.extend(devs);
        }
        a.push(head_dev);
        a
    };
    let mut out = Vec::new();
    for res_i in [0usize, space.resolutions.len() / 2, space.resolutions.len() - 1] {
        for arch_i in 0..space.kernels.len().min(3) {
            // All-local.
            out.push(mk(res_i, arch_i, 0, 0, &|_| [0; 4], 0));
            for d in 1..n_dev {
                // Stem local (the genome mapping always pins the stem to
                // device 0), body + head on remote d, 8-bit wire.
                out.push(mk(res_i, arch_i, 0, quant_b8, &move |_| [d; 4], d));
                // Same split at full precision (low-delay, high-bw links).
                out.push(mk(res_i, arch_i, 0, 0, &move |_| [d; 4], d));
            }
            // 2×2 spread over the fleet, 8-bit wire.
            if n_dev > 1 {
                out.push(mk(
                    res_i,
                    arch_i,
                    part_2x2,
                    quant_b8,
                    &|_| [0, 1, 2 % n_dev.max(1), 3 % n_dev.max(1)],
                    0,
                ));
            }
        }
    }
    for a in &mut out {
        for (t, head) in scenario.schedule().iter().enumerate() {
            let arity = match head {
                ActionHead::Resolution => space.resolutions.len(),
                ActionHead::Kernel => space.kernels.len(),
                ActionHead::Depth => space.depths.len(),
                ActionHead::Expand => space.expands.len(),
                ActionHead::Quant => space.quants.len(),
                ActionHead::Partition => space.partitions.len(),
                ActionHead::Device => scenario.devices.len(),
            };
            a[t] = a[t].min(arity - 1);
        }
    }
    out
}

/// Estimator-guarded decision: runs the policy greedily, then checks it
/// (and the canonical fallbacks) against the latency model under the
/// observed conditions, returning the highest-reward strategy. This is the
/// runtime's safety net — the system knows the network state and its own
/// cost model, so it never deploys a predicted SLO violation when a
/// feasible fallback exists.
pub fn decide_guarded(policy: &LstmPolicy, scenario: &Scenario, cond: &Condition) -> EpisodeResult {
    let alive = vec![true; scenario.devices.len()];
    decide_guarded_masked(policy, scenario, cond, &alive)
}

/// Whether a strategy only places work on alive devices. `alive[d]` covers
/// the whole fleet; the stem is pinned to device 0, so a dead coordinator
/// makes everything infeasible.
pub fn actions_feasible(scenario: &Scenario, actions: &[usize], alive: &[bool]) -> bool {
    if !alive.first().copied().unwrap_or(false) {
        return false;
    }
    scenario
        .used_links(actions)
        .iter()
        .enumerate()
        .all(|(i, &used)| !used || alive.get(i + 1).copied().unwrap_or(false))
}

/// [`decide_guarded`] over a degraded fleet: strategies that place work on
/// a dead device are discarded before scoring. The all-local fallback is
/// always in the candidate set, so some feasible strategy always survives
/// (device 0 is the coordinator and must be alive for a request to exist
/// at all).
pub fn decide_guarded_masked(
    policy: &LstmPolicy,
    scenario: &Scenario,
    cond: &Condition,
    alive: &[bool],
) -> EpisodeResult {
    let mut rng = rand::rngs::mock::StepRng::new(0, 0);
    let (actions, _, _) = rollout(policy, scenario, cond, RolloutMode::Greedy, &mut rng);
    let mut best: Option<EpisodeResult> = if actions_feasible(scenario, &actions, alive) {
        Some(scenario.evaluate(cond, &actions))
    } else {
        None
    };
    for fb in fallback_actions(scenario) {
        if !actions_feasible(scenario, &fb, alive) {
            continue;
        }
        let r = scenario.evaluate(cond, &fb);
        let better = match &best {
            None => true,
            Some(b) => (r.met && !b.met) || (r.met == b.met && r.reward > b.reward),
        };
        if better {
            best = Some(r);
        }
    }
    // fallback_actions always contains the all-local ladder, which uses no
    // remote link, so with a live coordinator `best` is always Some.
    best.unwrap_or_else(|| scenario.evaluate(cond, &fallback_actions(scenario)[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn schedule_and_arities_consistent() {
        let sc = Scenario::device_swarm(5, SloKind::Latency);
        let sched = sc.schedule();
        assert_eq!(sched.len(), 1 + 5 * 9 + 1);
        let arities = sc.arities();
        assert_eq!(arities.len(), crate::policy::NUM_HEADS);
        assert_eq!(arities[ActionHead::Device as usize], 5);
    }

    #[test]
    fn decode_round_trips_bootstrap_max() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let boots = bootstrap_actions(&sc);
        let g = sc.decode(&boots[0]);
        assert_eq!(g.config.resolution, 224);
        assert!(g.config.stages.iter().all(|s| s.kernel == 7 && s.depth == 4 && s.expand == 6));
        let g2 = sc.decode(&boots[1]);
        assert_eq!(g2.config.resolution, 160);
    }

    #[test]
    fn evaluate_bootstrap_is_finite_and_consistent() {
        let sc = Scenario::device_swarm(5, SloKind::Latency);
        let cond = sc.condition_from_indices(9, &[9; 4], &[0; 4]); // loosest
        for a in bootstrap_actions(&sc) {
            let r = sc.evaluate(&cond, &a);
            assert!(r.latency_ms.is_finite() && r.latency_ms > 0.0);
            assert!((70.0..81.0).contains(&r.accuracy_pct));
        }
    }

    #[test]
    fn latency_reward_follows_eq2() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let cond = Condition { slo: 140.0, bw_mbps: vec![100.0], delay_ms: vec![10.0] };
        let (r_met, met) = sc.reward(&cond, 120.0, 77.0);
        assert!(met && (r_met - 1.0).abs() < 1e-6);
        let (r_miss, miss) = sc.reward(&cond, 141.0, 79.0);
        assert!(!miss && r_miss == 0.0);
    }

    #[test]
    fn accuracy_reward_prefers_lower_latency() {
        let sc = Scenario::augmented_computing(SloKind::Accuracy);
        let cond = Condition { slo: 75.0, bw_mbps: vec![100.0], delay_ms: vec![10.0] };
        let (fast, _) = sc.reward(&cond, 60.0, 75.5);
        let (slow, _) = sc.reward(&cond, 290.0, 75.5);
        assert!(fast > slow);
        let (fail, met) = sc.reward(&cond, 60.0, 74.9);
        assert!(!met && fail == 0.0);
    }

    #[test]
    fn rollout_is_well_formed() {
        let sc = Scenario::device_swarm(3, SloKind::Latency);
        let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        let cond = sc.sample_condition(&mut rng);
        let (actions, steps, logps) =
            rollout(&policy, &sc, &cond, RolloutMode::Sample { epsilon: 0.1 }, &mut rng);
        assert_eq!(actions.len(), sc.schedule().len());
        assert_eq!(steps.len(), actions.len());
        assert_eq!(logps.len(), actions.len());
        // Every action is decodable and evaluates.
        let r = sc.evaluate(&cond, &actions);
        assert!(r.latency_ms.is_finite());
        // Log-probs are valid.
        assert!(logps.iter().all(|l| *l <= 0.0 && l.is_finite()));
    }

    #[test]
    fn regenerated_inputs_match_rollout_inputs() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let cond = sc.sample_condition(&mut rng);
        let (actions, steps, _) =
            rollout(&policy, &sc, &cond, RolloutMode::Sample { epsilon: 0.0 }, &mut rng);
        let regen = regenerate_inputs(&sc, &cond, &actions);
        for (a, b) in steps.iter().zip(regen.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn relabel_sets_achievable_goal() {
        let sc = Scenario::device_swarm(5, SloKind::Latency);
        let mut rng = StdRng::seed_from_u64(2);
        let cond = sc.condition_from_indices(0, &[5; 4], &[5; 4]); // tightest SLO
        let actions = &bootstrap_actions(&sc)[0]; // max subnet: slow
        let res = sc.evaluate(&cond, actions);
        let relabeled = sc.relabel(&cond, &res);
        let res2 = sc.evaluate(&relabeled, actions);
        assert!(res2.met, "achieved goal must be met after relabeling");
        let _ = rng.gen::<f32>();
    }

    #[test]
    fn grid_extremes_hit_ranges() {
        let sc = Scenario::device_swarm(5, SloKind::Latency);
        let lo = sc.condition_from_indices(0, &[0; 4], &[0; 4]);
        let hi = sc.condition_from_indices(9, &[9; 4], &[9; 4]);
        assert!((lo.slo - 300.0).abs() < 1e-9);
        assert!((hi.slo - 2000.0).abs() < 1e-9);
        assert!((lo.bw_mbps[0] - 5.0).abs() < 1e-6);
        assert!((hi.bw_mbps[0] - 500.0).abs() < 1e-6);
    }

    #[test]
    fn used_links_tracks_plan_devices() {
        let sc = Scenario::device_swarm(5, SloKind::Latency);
        // All-local bootstrap: no remote link used.
        let local = &bootstrap_actions(&sc)[1];
        assert_eq!(sc.used_links(local), vec![false; 4]);
        // Put every stage + head on device 3.
        let mut remote = local.clone();
        let sched = sc.schedule();
        for (t, head) in sched.iter().enumerate() {
            if matches!(head, crate::policy::ActionHead::Device) {
                remote[t] = 3;
            }
        }
        let used = sc.used_links(&remote);
        assert_eq!(used, vec![false, false, true, false]);
    }

    #[test]
    fn tighten_unused_links_pins_to_tightest_corner() {
        let sc = Scenario::device_swarm(5, SloKind::Latency);
        let cond = sc.condition_from_indices(5, &[7; 4], &[3; 4]);
        let local = &bootstrap_actions(&sc)[1];
        let tight = sc.tighten_unused_links(&cond, local);
        // Every link unused: all pinned to (min bw, max delay).
        for i in 0..4 {
            assert_eq!(tight.bw_mbps[i], sc.bw_range.0);
            assert_eq!(tight.delay_ms[i], sc.delay_range.1);
        }
        assert_eq!(tight.slo, cond.slo, "SLO untouched");
    }

    #[test]
    fn fallback_actions_are_valid_and_diverse() {
        for sc in [
            Scenario::augmented_computing(SloKind::Latency),
            Scenario::device_swarm(5, SloKind::Latency),
            Scenario::heterogeneous_edge(SloKind::Accuracy),
        ] {
            let fbs = fallback_actions(&sc);
            assert!(fbs.len() >= 9, "need a real ladder, got {}", fbs.len());
            let mut rng = StdRng::seed_from_u64(0);
            let cond = sc.sample_condition(&mut rng);
            let mut latencies = std::collections::BTreeSet::new();
            for fb in &fbs {
                let r = sc.evaluate(&cond, fb);
                assert!(r.latency_ms.is_finite() && r.latency_ms > 0.0);
                latencies.insert((r.latency_ms * 10.0) as u64);
            }
            assert!(latencies.len() >= 4, "fallbacks must span distinct strategies");
        }
    }

    #[test]
    fn guard_never_returns_worse_than_policy() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let cond = sc.sample_condition(&mut rng);
            let (actions, _, _) = rollout(&policy, &sc, &cond, RolloutMode::Greedy, &mut rng);
            let raw = sc.evaluate(&cond, &actions);
            let guarded = decide_guarded(&policy, &sc, &cond);
            assert!(
                guarded.met >= raw.met && (guarded.met != raw.met || guarded.reward >= raw.reward),
                "guard must not regress: raw met {} r {} vs guarded met {} r {}",
                raw.met,
                raw.reward,
                guarded.met,
                guarded.reward
            );
        }
    }

    #[test]
    fn masked_guard_avoids_dead_devices() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let cond = sc.sample_condition(&mut rng);
            // Kill every remote: the only feasible strategies are all-local.
            let alive = {
                let mut a = vec![false; sc.devices.len()];
                a[0] = true;
                a
            };
            let r = decide_guarded_masked(&policy, &sc, &cond, &alive);
            assert!(actions_feasible(&sc, &r.actions, &alive), "plan touches a dead device");
            assert!(sc.used_links(&r.actions).iter().all(|&u| !u), "must be all-local");
            assert!(r.latency_ms.is_finite() && r.latency_ms > 0.0);
            // Kill one remote: the chosen plan must avoid just that one.
            let mut one_dead = vec![true; sc.devices.len()];
            one_dead[1] = false;
            let r = decide_guarded_masked(&policy, &sc, &cond, &one_dead);
            assert!(actions_feasible(&sc, &r.actions, &one_dead));
        }
    }

    #[test]
    fn heterogeneous_scenario_is_well_formed() {
        let sc = Scenario::heterogeneous_edge(SloKind::Latency);
        assert_eq!(sc.devices.len(), 4);
        assert_eq!(sc.arities()[crate::policy::ActionHead::Device as usize], 4);
        let mut rng = StdRng::seed_from_u64(0);
        let cond = sc.sample_condition(&mut rng);
        let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
        let r = decide_guarded(&policy, &sc, &cond);
        assert!(r.latency_ms.is_finite());
    }
}
