//! Policy serialization: a small, dependency-free binary format so trained
//! policies can be saved once and reused across figure harnesses, examples,
//! and deployments (Stage 2 output → Stage 3 input).
//!
//! Format (little-endian):
//! `MURM` magic · u32 version · u32 input_dim · u32 hidden ·
//! u32 head-count · per-head u32 arity · then every parameter tensor in
//! `visit_params` order as u64 length + f32 data.

use crate::policy::LstmPolicy;
use murmuration_nn::module::Module;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MURM";
const VERSION: u32 = 1;

/// Serialization errors.
#[derive(Debug)]
pub enum PolicyIoError {
    Io(io::Error),
    /// Magic/version mismatch or structural disagreement with the target
    /// policy architecture.
    Format(String),
}

impl From<io::Error> for PolicyIoError {
    fn from(e: io::Error) -> Self {
        PolicyIoError::Io(e)
    }
}

impl std::fmt::Display for PolicyIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyIoError::Io(e) => write!(f, "io error: {e}"),
            PolicyIoError::Format(s) => write!(f, "format error: {s}"),
        }
    }
}

impl std::error::Error for PolicyIoError {}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Saves a policy to `path`.
pub fn save_policy(policy: &mut LstmPolicy, path: impl AsRef<Path>) -> Result<(), PolicyIoError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, policy.input_dim as u32)?;
    write_u32(&mut w, policy.hidden as u32)?;
    let arities: Vec<usize> =
        (0..crate::policy::NUM_HEADS).map(|h| policy.arity_by_index(h)).collect();
    write_u32(&mut w, arities.len() as u32)?;
    for a in &arities {
        write_u32(&mut w, *a as u32)?;
    }
    let mut err: Option<io::Error> = None;
    policy.visit_params(&mut |p| {
        if err.is_some() {
            return;
        }
        let res = (|| -> io::Result<()> {
            write_u64(&mut w, p.value.numel() as u64)?;
            for v in p.value.data() {
                w.write_all(&v.to_le_bytes())?;
            }
            Ok(())
        })();
        if let Err(e) = res {
            err = Some(e);
        }
    });
    if let Some(e) = err {
        return Err(e.into());
    }
    w.flush()?;
    Ok(())
}

/// Loads a policy from `path`. The stored architecture defines the policy.
pub fn load_policy(path: impl AsRef<Path>) -> Result<LstmPolicy, PolicyIoError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PolicyIoError::Format("bad magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(PolicyIoError::Format(format!("unsupported version {version}")));
    }
    let input_dim = read_u32(&mut r)? as usize;
    let hidden = read_u32(&mut r)? as usize;
    let n_heads = read_u32(&mut r)? as usize;
    if n_heads != crate::policy::NUM_HEADS {
        return Err(PolicyIoError::Format(format!(
            "expected {} heads, file has {n_heads}",
            crate::policy::NUM_HEADS
        )));
    }
    let mut arities = Vec::with_capacity(n_heads);
    for _ in 0..n_heads {
        arities.push(read_u32(&mut r)? as usize);
    }
    let mut policy = LstmPolicy::new(input_dim, hidden, arities, 0);
    let mut err: Option<PolicyIoError> = None;
    policy.visit_params(&mut |p| {
        if err.is_some() {
            return;
        }
        let res = (|| -> Result<(), PolicyIoError> {
            let n = read_u64(&mut r)? as usize;
            if n != p.value.numel() {
                return Err(PolicyIoError::Format(format!(
                    "parameter length mismatch: file {n}, policy {}",
                    p.value.numel()
                )));
            }
            for v in p.value.data_mut() {
                let mut b = [0u8; 4];
                r.read_exact(&mut b)?;
                *v = f32::from_le_bytes(b);
            }
            Ok(())
        })();
        if let Err(e) = res {
            err = Some(e);
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{rollout, RolloutMode, Scenario, SloKind};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn round_trip_preserves_behaviour() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let mut policy = LstmPolicy::new(sc.input_dim(), 24, sc.arities(), 42);
        let dir = std::env::temp_dir().join("murmuration_policy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p1.bin");
        save_policy(&mut policy, &path).unwrap();
        let loaded = load_policy(&path).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let cond = sc.sample_condition(&mut rng);
        let (a1, _, l1) = rollout(&policy, &sc, &cond, RolloutMode::Greedy, &mut rng);
        let (a2, _, l2) = rollout(&loaded, &sc, &cond, RolloutMode::Greedy, &mut rng);
        assert_eq!(a1, a2, "loaded policy must act identically");
        for (x, y) in l1.iter().zip(l2.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_files() {
        let dir = std::env::temp_dir().join("murmuration_policy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bin");
        std::fs::write(&path, b"not a policy at all").unwrap();
        assert!(load_policy(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_files() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let mut policy = LstmPolicy::new(sc.input_dim(), 8, sc.arities(), 1);
        let dir = std::env::temp_dir().join("murmuration_policy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.bin");
        save_policy(&mut policy, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_policy(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
