//! SUPREME's reward-filtered bucketed replay buffer (paper Figs. 7–9).
//!
//! The constraint space (SLO × per-link bandwidth × per-link delay) is
//! discretized into buckets. Every bucket keeps only its top-n-reward
//! trajectories. Bucket coordinates are *oriented by relaxedness*: a larger
//! coordinate always means a weaker constraint (higher latency budget,
//! more bandwidth, less delay). Under that orientation the paper's central
//! observation becomes a dominance relation:
//!
//! > a strategy discovered under constraints `b'` remains feasible under
//! > any `b ≥ b'` (component-wise).
//!
//! which drives both **data sharing** (an empty bucket borrows from its
//! nearest dominated bucket) and **pruning** (an entry whose reward is
//! below the best reward of a dominated bucket can never be the best
//! answer and is dropped).

use crate::env::{Condition, Scenario, SloKind};
use rand::Rng;
use std::collections::BTreeMap;

/// One stored trajectory.
#[derive(Clone, Debug)]
pub struct Entry {
    /// The (relabeled) condition this trajectory satisfies.
    pub cond: Condition,
    pub actions: Vec<usize>,
    pub reward: f32,
    pub latency_ms: f64,
    pub accuracy_pct: f32,
}

/// The bucketed replay buffer.
pub struct BucketedBuffer {
    grid_points: usize,
    per_bucket: usize,
    // BTreeMap, not HashMap: sampling iterates the buckets, and a hashed
    // order would make training nondeterministic run-to-run (RandomState
    // is seeded per process).
    buckets: BTreeMap<Vec<u8>, Vec<Entry>>,
}

impl BucketedBuffer {
    /// `per_bucket` = n of the top-n reward filter.
    pub fn new(grid_points: usize, per_bucket: usize) -> Self {
        assert!(grid_points >= 2 && per_bucket >= 1);
        BucketedBuffer { grid_points, per_bucket, buckets: BTreeMap::new() }
    }

    /// Total stored entries.
    pub fn len(&self) -> usize {
        self.buckets.values().map(|v| v.len()).sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Number of non-empty buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    fn nearest_index(&self, lo: f64, hi: f64, v: f64) -> usize {
        let g = self.grid_points as f64 - 1.0;
        (((v - lo) / (hi - lo) * g).round().clamp(0.0, g)) as usize
    }

    fn nearest_log_index(&self, lo: f64, hi: f64, v: f64) -> usize {
        let g = self.grid_points as f64 - 1.0;
        ((((v / lo).ln() / (hi / lo).ln()) * g).round().clamp(0.0, g)) as usize
    }

    /// SLO coordinate chosen so the bucket's SLO is *feasible* for the
    /// entry: latency rounds up to the next grid ceiling, accuracy rounds
    /// down to the next grid floor.
    fn slo_index_feasible(&self, sc: &Scenario, slo: f64) -> usize {
        let (lo, hi) = sc.slo_range;
        let g = self.grid_points as f64 - 1.0;
        let frac = ((slo - lo) / (hi - lo) * g).clamp(0.0, g);
        match sc.slo_kind {
            SloKind::Latency => frac.ceil() as usize,
            SloKind::Accuracy => frac.floor() as usize,
        }
    }

    /// Bucket key of a condition, oriented so larger = more relaxed.
    pub fn key_for(&self, sc: &Scenario, cond: &Condition) -> Vec<u8> {
        let g = self.grid_points - 1;
        let mut key = Vec::with_capacity(1 + 2 * cond.bw_mbps.len());
        let slo_i = self.nearest_index(sc.slo_range.0, sc.slo_range.1, cond.slo);
        key.push(match sc.slo_kind {
            SloKind::Latency => slo_i as u8,        // higher budget = relaxed
            SloKind::Accuracy => (g - slo_i) as u8, // lower floor = relaxed
        });
        for &b in &cond.bw_mbps {
            key.push(self.nearest_log_index(sc.bw_range.0, sc.bw_range.1, b) as u8);
        }
        for &d in &cond.delay_ms {
            let di = self.nearest_index(sc.delay_range.0, sc.delay_range.1, d);
            key.push((g - di) as u8); // lower delay = relaxed
        }
        key
    }

    /// Key used at *insert* time: like [`key_for`] but with feasible SLO
    /// rounding for the relabeled goal.
    fn insert_key(&self, sc: &Scenario, cond: &Condition) -> Vec<u8> {
        let mut key = self.key_for(sc, cond);
        let g = self.grid_points - 1;
        let slo_i = self.slo_index_feasible(sc, cond.slo);
        key[0] = match sc.slo_kind {
            SloKind::Latency => slo_i as u8,
            SloKind::Accuracy => (g - slo_i) as u8,
        };
        key
    }

    /// Inserts an entry, keeping only the bucket's top-n rewards.
    /// Returns true when the entry was retained.
    pub fn insert(&mut self, sc: &Scenario, entry: Entry) -> bool {
        let key = self.insert_key(sc, &entry.cond);
        let bucket = self.buckets.entry(key).or_default();
        // De-duplicate identical strategies.
        if bucket.iter().any(|e| e.actions == entry.actions) {
            return false;
        }
        bucket.push(entry);
        bucket.sort_by(|a, b| b.reward.partial_cmp(&a.reward).unwrap_or(std::cmp::Ordering::Equal));
        if bucket.len() > self.per_bucket {
            bucket.truncate(self.per_bucket);
            // Report whether the new entry survived: it did iff it is
            // still present (cheap check by reward bound).
        }
        true
    }

    /// Samples a trajectory usable for the given condition via the
    /// paper's cross-task data sharing: any entry from a *dominated*
    /// (tighter) bucket is feasible here, and — because its strategy is a
    /// lower bound — the best-reward dominated entry is the best known
    /// answer for this goal. Sampling takes that best entry most of the
    /// time and a random feasible entry otherwise (diversity).
    pub fn sample<R: Rng>(&self, sc: &Scenario, cond: &Condition, rng: &mut R) -> Option<Entry> {
        let key = self.key_for(sc, cond);
        let mut feasible: Vec<&Entry> = Vec::new();
        for (k, v) in &self.buckets {
            if k.len() == key.len() && k.iter().zip(key.iter()).all(|(a, b)| a <= b) {
                feasible.extend(v.iter());
            }
        }
        if feasible.is_empty() {
            return None;
        }
        if rng.gen_bool(0.7) {
            feasible
                .iter()
                .max_by(|a, b| {
                    a.reward
                        .partial_cmp(&b.reward)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        // Deterministic tie-break: lower latency wins.
                        .then(
                            b.latency_ms
                                .partial_cmp(&a.latency_ms)
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                })
                .map(|e| (*e).clone())
        } else {
            Some(feasible[rng.gen_range(0..feasible.len())].clone())
        }
    }

    /// Like [`sample`](Self::sample) but **without** cross-bucket sharing:
    /// only the condition's own bucket is consulted (the no-share ablation
    /// of SUPREME).
    pub fn sample_exact<R: Rng>(
        &self,
        sc: &Scenario,
        cond: &Condition,
        rng: &mut R,
    ) -> Option<Entry> {
        let key = self.key_for(sc, cond);
        let bucket = self.buckets.get(&key)?;
        if bucket.is_empty() {
            return None;
        }
        let idx = if rng.gen_bool(0.7) { 0 } else { rng.gen_range(0..bucket.len()) };
        Some(bucket[idx].clone())
    }

    /// A uniformly random stored entry (mutation source).
    pub fn random_entry<R: Rng>(&self, rng: &mut R) -> Option<Entry> {
        let total = self.len();
        if total == 0 {
            return None;
        }
        let mut i = rng.gen_range(0..total);
        for v in self.buckets.values() {
            if i < v.len() {
                return Some(v[i].clone());
            }
            i -= v.len();
        }
        None
    }

    /// Lower-bound pruning: drops every entry whose reward is strictly
    /// below the best reward of some *other* bucket it dominates it (the
    /// shared strategy would always be preferred). Returns entries removed.
    pub fn prune(&mut self) -> usize {
        let keys: Vec<Vec<u8>> = self.buckets.keys().cloned().collect();
        let best_of: BTreeMap<Vec<u8>, f32> = keys
            .iter()
            .map(|k| {
                let b = self.buckets[k].iter().map(|e| e.reward).fold(f32::MIN, f32::max);
                (k.clone(), b)
            })
            .collect();
        let mut removed = 0;
        for k in &keys {
            // Best lower bound from strictly dominated buckets.
            let mut lb = f32::MIN;
            for (k2, &b2) in &best_of {
                if k2 != k && k2.iter().zip(k.iter()).all(|(a, b)| a <= b) {
                    lb = lb.max(b2);
                }
            }
            if lb == f32::MIN {
                continue;
            }
            let bucket = self.buckets.get_mut(k).unwrap();
            let before = bucket.len();
            bucket.retain(|e| e.reward >= lb);
            removed += before - bucket.len();
            if bucket.is_empty() {
                self.buckets.remove(k);
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn scenario() -> Scenario {
        Scenario::augmented_computing(SloKind::Latency)
    }

    fn entry(sc: &Scenario, slo: f64, bw: f64, delay: f64, reward: f32, tag: usize) -> Entry {
        Entry {
            cond: Condition { slo, bw_mbps: vec![bw], delay_ms: vec![delay] },
            actions: vec![tag; sc.schedule().len()],
            reward,
            latency_ms: slo,
            accuracy_pct: 75.0,
        }
    }

    #[test]
    fn key_orientation_larger_is_relaxed() {
        let sc = scenario();
        let buf = BucketedBuffer::new(10, 4);
        let tight =
            buf.key_for(&sc, &Condition { slo: 80.0, bw_mbps: vec![50.0], delay_ms: vec![100.0] });
        let relaxed =
            buf.key_for(&sc, &Condition { slo: 400.0, bw_mbps: vec![400.0], delay_ms: vec![5.0] });
        assert!(tight.iter().zip(relaxed.iter()).all(|(a, b)| a <= b));
        assert_eq!(tight, vec![0, 0, 0]);
        assert_eq!(relaxed, vec![9, 9, 9]);
    }

    #[test]
    fn top_n_reward_filter() {
        let sc = scenario();
        let mut buf = BucketedBuffer::new(10, 2);
        // 400 ms sits exactly on the SLO grid, so insert (ceil) and query
        // (round) agree on the bucket.
        for (i, r) in [0.5f32, 0.9, 0.1, 0.7].into_iter().enumerate() {
            buf.insert(&sc, entry(&sc, 400.0, 100.0, 50.0, r, i));
        }
        assert_eq!(buf.len(), 2);
        let mut rng = StdRng::seed_from_u64(0);
        let cond = Condition { slo: 400.0, bw_mbps: vec![100.0], delay_ms: vec![50.0] };
        // Only the two best rewards survive.
        for _ in 0..20 {
            let e = buf.sample(&sc, &cond, &mut rng).unwrap();
            assert!(e.reward >= 0.7);
        }
    }

    #[test]
    fn sharing_borrows_from_tighter_bucket() {
        let sc = scenario();
        let mut buf = BucketedBuffer::new(10, 4);
        // Insert only under the tightest conditions.
        buf.insert(&sc, entry(&sc, 80.0, 50.0, 100.0, 0.8, 1));
        let mut rng = StdRng::seed_from_u64(1);
        // Query a fully relaxed condition: shared data must appear.
        let relaxed = Condition { slo: 400.0, bw_mbps: vec![400.0], delay_ms: vec![5.0] };
        let e = buf.sample(&sc, &relaxed, &mut rng).expect("sharing must find data");
        assert_eq!(e.reward, 0.8);
    }

    #[test]
    fn sharing_never_borrows_from_more_relaxed_bucket() {
        let sc = scenario();
        let mut buf = BucketedBuffer::new(10, 4);
        // Data only under fully relaxed conditions.
        buf.insert(&sc, entry(&sc, 400.0, 400.0, 5.0, 0.8, 1));
        let mut rng = StdRng::seed_from_u64(2);
        let tight = Condition { slo: 80.0, bw_mbps: vec![50.0], delay_ms: vec![100.0] };
        assert!(
            buf.sample(&sc, &tight, &mut rng).is_none(),
            "a strategy found under easy conditions is not valid under hard ones"
        );
    }

    #[test]
    fn insert_rounds_latency_slo_up() {
        let sc = scenario();
        let mut buf = BucketedBuffer::new(10, 4);
        // Achieved latency 81 ms: must land in the first bucket whose SLO
        // ceiling covers it (not round down to the 80 ms bucket).
        buf.insert(&sc, entry(&sc, 81.0, 50.0, 100.0, 0.5, 1));
        let mut rng = StdRng::seed_from_u64(3);
        let at_80 = Condition { slo: 80.0, bw_mbps: vec![50.0], delay_ms: vec![100.0] };
        assert!(buf.sample(&sc, &at_80, &mut rng).is_none(), "81 ms does not satisfy 80 ms");
        // ~115.5 ms is the next grid point; that bucket must see it.
        let next = Condition { slo: 116.0, bw_mbps: vec![50.0], delay_ms: vec![100.0] };
        assert!(buf.sample(&sc, &next, &mut rng).is_some());
    }

    #[test]
    fn pruning_removes_dominated_low_reward() {
        let sc = scenario();
        let mut buf = BucketedBuffer::new(10, 4);
        // Tight bucket has a great strategy…
        buf.insert(&sc, entry(&sc, 80.0, 50.0, 100.0, 0.9, 1));
        // …relaxed bucket has a worse one → prunable.
        buf.insert(&sc, entry(&sc, 400.0, 400.0, 5.0, 0.3, 2));
        // …and a better one → kept.
        buf.insert(&sc, entry(&sc, 400.0, 400.0, 5.0, 0.95, 3));
        let removed = buf.prune();
        assert_eq!(removed, 1);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn pruning_never_removes_bucket_best_without_dominator() {
        let sc = scenario();
        let mut buf = BucketedBuffer::new(10, 4);
        buf.insert(&sc, entry(&sc, 200.0, 100.0, 50.0, 0.1, 1));
        assert_eq!(buf.prune(), 0);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn duplicate_strategies_rejected() {
        let sc = scenario();
        let mut buf = BucketedBuffer::new(10, 4);
        assert!(buf.insert(&sc, entry(&sc, 200.0, 100.0, 50.0, 0.5, 1)));
        assert!(!buf.insert(&sc, entry(&sc, 200.0, 100.0, 50.0, 0.6, 1)));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn random_entry_covers_all_buckets() {
        let sc = scenario();
        let mut buf = BucketedBuffer::new(10, 4);
        buf.insert(&sc, entry(&sc, 80.0, 50.0, 100.0, 0.5, 1));
        buf.insert(&sc, entry(&sc, 400.0, 400.0, 5.0, 0.6, 2));
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(buf.random_entry(&mut rng).unwrap().actions[0]);
        }
        assert_eq!(seen.len(), 2);
    }
}
