//! Validation metrics: average reward and (normalized) SLO compliance over
//! a fixed condition grid — the quantities plotted in Figs. 11–12.

use crate::env::{rollout, Condition, RolloutMode, Scenario};
use crate::policy::LstmPolicy;
use murmuration_partition::evolutionary;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One evaluation snapshot.
#[derive(Clone, Copy, Debug)]
pub struct EvalReport {
    pub avg_reward: f64,
    /// Raw compliance (% of validation conditions met).
    pub compliance_pct: f64,
}

/// A training curve: (episodes-collected, report) samples.
#[derive(Clone, Debug, Default)]
pub struct TrainHistory {
    pub points: Vec<(usize, EvalReport)>,
}

impl TrainHistory {
    /// Final average reward (0 when never evaluated).
    pub fn final_reward(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.1.avg_reward)
    }

    /// Final compliance (%).
    pub fn final_compliance(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.1.compliance_pct)
    }
}

/// Evenly-spread validation conditions: a deterministic scrambled sweep of
/// the grid (the paper uses evenly distributed points). Uses a splitmix
/// hash per (sample, dimension) so no dimension cycles with the sample
/// index.
pub fn validation_conditions(sc: &Scenario, count: usize) -> Vec<Condition> {
    let g = sc.grid_points;
    let k = sc.n_remote();
    let mix = |i: u64, dim: u64| -> usize {
        let mut z =
            i.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(dim.wrapping_mul(0xbf58476d1ce4e5b9));
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58476d1ce4e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z % g as u64) as usize
    };
    (0..count)
        .map(|i| {
            // The SLO axis sweeps the grid evenly; network axes scramble.
            let slo_i = (i * 7 + 3) % g;
            let bw_i: Vec<usize> = (0..k).map(|d| mix(i as u64, 1 + d as u64)).collect();
            let delay_i: Vec<usize> = (0..k).map(|d| mix(i as u64, 101 + d as u64)).collect();
            sc.condition_from_indices(slo_i, &bw_i, &delay_i)
        })
        .collect()
}

/// Greedy-policy evaluation over a condition set.
pub fn evaluate_policy(policy: &LstmPolicy, sc: &Scenario, conds: &[Condition]) -> EvalReport {
    let mut rng = StdRng::seed_from_u64(0); // greedy: rng unused
    let mut reward_sum = 0.0f64;
    let mut met = 0usize;
    for cond in conds {
        let (actions, _, _) = rollout(policy, sc, cond, RolloutMode::Greedy, &mut rng);
        let r = sc.evaluate(cond, &actions);
        reward_sum += f64::from(r.reward);
        met += usize::from(r.met);
    }
    EvalReport {
        avg_reward: reward_sum / conds.len() as f64,
        compliance_pct: 100.0 * met as f64 / conds.len() as f64,
    }
}

/// Which validation conditions are achievable at all, determined by a
/// canonical-strategy sweep plus an evolutionary oracle (budgeted). Used
/// to *normalize* compliance as in Fig. 12 ("normalized by the highest
/// achievable compliance rate").
pub fn achievable_mask(sc: &Scenario, conds: &[Condition], budget_generations: usize) -> Vec<bool> {
    use murmuration_partition::{ExecutionPlan, UnitPlacement};
    use murmuration_supernet::SubnetSpec;

    // Canonical candidates: min/mid/max configs × (all-local, all on each
    // remote device, 2×2-partitioned spread). These catch the common
    // feasible cases cheaply and make the oracle robust.
    let mut configs = vec![sc.space.min_config(), sc.space.max_config()];
    let mut mid = sc.space.min_config();
    mid.resolution = sc.space.resolutions[sc.space.resolutions.len() / 2];
    for s in &mut mid.stages {
        s.depth = sc.space.depths[sc.space.depths.len() / 2];
    }
    configs.push(mid);
    let mut partitioned = sc.space.min_config();
    for s in &mut partitioned.stages {
        s.partition = murmuration_tensor::tile::GridSpec::new(2, 2);
        s.quant = murmuration_tensor::quant::BitWidth::B8;
    }
    configs.push(partitioned.clone());
    let mut partitioned_max = sc.space.max_config();
    for s in &mut partitioned_max.stages {
        s.partition = murmuration_tensor::tile::GridSpec::new(2, 2);
        s.quant = murmuration_tensor::quant::BitWidth::B8;
    }
    configs.push(partitioned_max);

    conds
        .iter()
        .enumerate()
        .map(|(i, cond)| {
            let net = sc.network(cond);
            let est = murmuration_partition::LatencyEstimator::new(&sc.devices, &net);
            let acc_model = sc.accuracy_model;
            let meets = |cfg: &murmuration_supernet::SubnetConfig, plan: &ExecutionPlan| -> bool {
                let spec = SubnetSpec::lower(cfg);
                if plan.validate(&spec, sc.devices.len()).is_err() {
                    return false;
                }
                let lat = est.estimate(&spec, plan).total_ms;
                sc.reward(cond, lat, acc_model.predict(cfg)).1
            };
            // Canonical sweep.
            for cfg in &configs {
                let spec = SubnetSpec::lower(cfg);
                let mut plans = vec![ExecutionPlan::all_on(&spec, 0)];
                for d in 1..sc.devices.len() {
                    plans.push(ExecutionPlan::all_on(&spec, d));
                }
                plans.push(ExecutionPlan::spread(&spec, sc.devices.len()));
                // Spread with the head on the strongest remote device.
                let mut spread_remote = ExecutionPlan::spread(&spec, sc.devices.len());
                if sc.devices.len() > 1 {
                    if let Some(p) = spread_remote.placements.last_mut() {
                        *p = UnitPlacement::Single(1);
                    }
                }
                plans.push(spread_remote);
                // Layer-wise splits: first `u` units local, the rest on one
                // remote device (Neurosurgeon-style, with quantized wire).
                for d in 1..sc.devices.len() {
                    for u in 1..spec.units.len() {
                        let placements = (0..spec.units.len())
                            .map(|i| UnitPlacement::Single(if i < u { 0 } else { d }))
                            .collect();
                        plans.push(ExecutionPlan { placements });
                    }
                }
                if plans.iter().any(|p| meets(cfg, p)) {
                    return true;
                }
            }
            // Evolutionary fallback.
            let result = evolutionary::search(
                &sc.space,
                sc.devices.len(),
                16,
                budget_generations,
                1000 + i as u64,
                |cfg, plan| {
                    let spec = SubnetSpec::lower(cfg);
                    let lat = est.estimate(&spec, plan).total_ms;
                    let acc = acc_model.predict(cfg);
                    let (r, met) = sc.reward(cond, lat, acc);
                    if met {
                        1.0 + f64::from(r)
                    } else {
                        // Shaped: closer-to-feasible scores higher.
                        match sc.slo_kind {
                            crate::env::SloKind::Latency => -(lat - cond.slo) / cond.slo,
                            crate::env::SloKind::Accuracy => f64::from(acc) - cond.slo,
                        }
                    }
                },
            );
            result.best_score >= 1.0
        })
        .collect()
}

/// Compliance normalized by the achievable subset.
pub fn normalized_compliance(
    policy: &LstmPolicy,
    sc: &Scenario,
    conds: &[Condition],
    achievable: &[bool],
) -> f64 {
    let achievable_count = achievable.iter().filter(|&&a| a).count();
    if achievable_count == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(0);
    let mut met = 0usize;
    for (cond, &ok) in conds.iter().zip(achievable) {
        if !ok {
            continue;
        }
        let (actions, _, _) = rollout(policy, sc, cond, RolloutMode::Greedy, &mut rng);
        met += usize::from(sc.evaluate(cond, &actions).met);
    }
    // The oracle is budgeted, so a strong policy can in principle exceed
    // it; clamp to keep the normalized rate a rate.
    (100.0 * met as f64 / achievable_count as f64).min(100.0)
}

/// Extracts the accuracy/latency Pareto frontier from a set of outcomes:
/// points no other point dominates (higher accuracy *and* lower latency).
/// Returned sorted by latency ascending — the curve Figs. 13–15 trace.
pub fn pareto_frontier(points: &[(f64, f32)]) -> Vec<(f64, f32)> {
    // (latency_ms, accuracy_pct)
    let mut sorted: Vec<(f64, f32)> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            // Ties in latency: keep the higher accuracy first.
            .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
    });
    let mut front: Vec<(f64, f32)> = Vec::new();
    let mut best_acc = f32::MIN;
    for p in sorted {
        if p.1 > best_acc {
            best_acc = p.1;
            front.push(p);
        }
    }
    front
}

/// The policy's accuracy/latency Pareto frontier over a condition set
/// (each greedy decision contributes one point).
pub fn policy_pareto(policy: &LstmPolicy, sc: &Scenario, conds: &[Condition]) -> Vec<(f64, f32)> {
    let mut rng = StdRng::seed_from_u64(0);
    let points: Vec<(f64, f32)> = conds
        .iter()
        .map(|cond| {
            let (actions, _, _) = rollout(policy, sc, cond, RolloutMode::Greedy, &mut rng);
            let r = sc.evaluate(cond, &actions);
            (r.latency_ms, r.accuracy_pct)
        })
        .collect();
    pareto_frontier(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SloKind;
    use crate::policy::LstmPolicy;

    #[test]
    fn validation_conditions_are_deterministic_and_diverse() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let a = validation_conditions(&sc, 30);
        let b = validation_conditions(&sc, 30);
        assert_eq!(a.len(), 30);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        // SLO values span the range.
        let min = a.iter().map(|c| c.slo).fold(f64::MAX, f64::min);
        let max = a.iter().map(|c| c.slo).fold(f64::MIN, f64::max);
        assert!(min < 120.0 && max > 350.0, "{min}..{max}");
    }

    #[test]
    fn untrained_policy_reports_finite_metrics() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
        let conds = validation_conditions(&sc, 10);
        let r = evaluate_policy(&policy, &sc, &conds);
        assert!(r.avg_reward.is_finite());
        assert!((0.0..=100.0).contains(&r.compliance_pct));
    }

    #[test]
    fn pareto_keeps_only_non_dominated_points() {
        let pts = vec![
            (100.0, 75.0f32),
            (120.0, 74.0), // dominated: slower AND less accurate
            (150.0, 78.0),
            (150.0, 77.0), // dominated by the 78 at same latency
            (80.0, 72.0),
            (200.0, 78.0), // dominated: same accuracy, slower
        ];
        let front = pareto_frontier(&pts);
        assert_eq!(front, vec![(80.0, 72.0), (100.0, 75.0), (150.0, 78.0)]);
        // Frontier is monotone in both coordinates.
        for w in front.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn policy_pareto_is_well_formed() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
        let conds = validation_conditions(&sc, 12);
        let front = policy_pareto(&policy, &sc, &conds);
        assert!(!front.is_empty() && front.len() <= 12);
        for w in front.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn loose_conditions_are_achievable() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        // The loosest condition (400 ms SLO, 400 Mbps, 5 ms) must be
        // achievable even with a tiny oracle budget.
        let cond = sc.condition_from_indices(9, &[9], &[0]);
        let mask = achievable_mask(&sc, &[cond], 4);
        assert!(mask[0]);
    }
}
