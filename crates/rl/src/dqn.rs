//! Deep Q-Network baseline — the other "traditional RL algorithm" §4.3
//! names next to PPO.
//!
//! The policy network doubles as the Q-network: each head's logits are
//! read as Q-values. Episodes pay a single terminal reward, so targets are
//! `max_a' Q_target(s_{t+1}, a')` for interior steps and the episode
//! reward at the final step. A frozen target network refreshes
//! periodically, exploration is ε-greedy, and whole episodes are replayed
//! (the network is recurrent). As in the paper, DQN struggles with the
//! sparse goal-conditioned reward — the comparison point SUPREME is
//! designed to beat.

use crate::env::{Condition, RolloutMode, Scenario};
use crate::metrics::{evaluate_policy, validation_conditions, TrainHistory};
use crate::policy::LstmPolicy;
use murmuration_nn::module::Module;
use murmuration_nn::optim::Adam;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DQN hyper-parameters.
#[derive(Clone, Debug)]
pub struct DqnConfig {
    /// Episodes to collect.
    pub steps: usize,
    /// Episodes replayed per update.
    pub batch: usize,
    pub lr: f32,
    /// ε-greedy schedule (linear decay).
    pub eps_start: f32,
    pub eps_end: f32,
    /// Replay capacity (episodes, FIFO).
    pub capacity: usize,
    /// Target-network refresh cadence (collection steps).
    pub target_every: usize,
    pub eval_every: usize,
    pub eval_conditions: usize,
    pub hidden: usize,
    pub seed: u64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            steps: 2000,
            batch: 4,
            lr: 1e-3,
            eps_start: 0.8,
            eps_end: 0.05,
            capacity: 2048,
            target_every: 100,
            eval_every: 250,
            eval_conditions: 40,
            hidden: 64,
            seed: 0,
        }
    }
}

struct Episode {
    cond: Condition,
    actions: Vec<usize>,
    reward: f32,
}

/// Trains a Q-policy with DQN; returns it plus the training curve.
pub fn train(sc: &Scenario, cfg: &DqnConfig) -> (LstmPolicy, TrainHistory) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut q = LstmPolicy::new(sc.input_dim(), cfg.hidden, sc.arities(), cfg.seed);
    let mut q_target = q.clone();
    let mut opt = Adam::new(cfg.lr);
    let mut replay: Vec<Episode> = Vec::new();
    let val = validation_conditions(sc, cfg.eval_conditions);
    let mut history = TrainHistory::default();

    for step in 0..cfg.steps {
        let progress = step as f32 / cfg.steps.max(1) as f32;
        let epsilon = cfg.eps_start + (cfg.eps_end - cfg.eps_start) * progress;
        // Collect one ε-greedy episode (greedy w.r.t. Q).
        let cond = sc.sample_condition(&mut rng);
        let (actions, _, _) =
            crate::env::rollout(&q, sc, &cond, RolloutMode::Sample { epsilon }, &mut rng);
        let res = sc.evaluate(&cond, &actions);
        replay.push(Episode { cond, actions, reward: res.reward });
        if replay.len() > cfg.capacity {
            let overflow = replay.len() - cfg.capacity;
            replay.drain(..overflow);
        }
        // Q-learning update over a batch of episodes.
        q.zero_grad();
        let scale = 1.0 / cfg.batch.min(replay.len()).max(1) as f32;
        for _ in 0..cfg.batch.min(replay.len()) {
            let ep = &replay[rng.gen_range(0..replay.len())];
            let steps = crate::env::regenerate_inputs(sc, &ep.cond, &ep.actions);
            let fw = q.forward_seq(&steps);
            let fw_target = q_target.forward_seq(&steps);
            let t_count = fw.len();
            let mut dlogits = Vec::with_capacity(t_count);
            for t in 0..t_count {
                let q_sa = fw.logits(t)[ep.actions[t]];
                let y = if t + 1 < t_count {
                    // Bootstrapped target from the frozen network.
                    fw_target.logits(t + 1).iter().cloned().fold(f32::MIN, f32::max)
                } else {
                    ep.reward
                };
                let mut d = vec![0.0f32; fw.logits(t).len()];
                d[ep.actions[t]] = scale * 2.0 * (q_sa - y);
                dlogits.push(d);
            }
            let dvalues = vec![0.0; t_count];
            q.backward_seq(&fw, &dlogits, &dvalues);
        }
        opt.step(&mut q);
        if (step + 1) % cfg.target_every == 0 {
            q_target = q.clone();
        }
        if (step + 1) % cfg.eval_every == 0 || step + 1 == cfg.steps {
            history.points.push((step + 1, evaluate_policy(&q, sc, &val)));
        }
    }
    (q, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SloKind;

    #[test]
    fn short_run_trains_without_nans() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let cfg = DqnConfig {
            steps: 40,
            eval_every: 20,
            eval_conditions: 6,
            hidden: 16,
            target_every: 10,
            ..Default::default()
        };
        let (mut q, history) = train(&sc, &cfg);
        assert_eq!(history.points.len(), 2);
        assert!(history.final_reward().is_finite());
        let mut finite = true;
        q.visit_params(&mut |p| {
            finite &= p.value.data().iter().all(|v| v.is_finite());
        });
        assert!(finite, "DQN produced non-finite parameters");
    }

    #[test]
    fn q_values_move_toward_terminal_reward() {
        // With a single replayed episode, the final step's Q(a_T) must
        // converge to the episode reward.
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let cond = sc.condition_from_indices(9, &[9], &[0]); // loose
        let actions = crate::env::bootstrap_actions(&sc)[1].clone();
        let res = sc.evaluate(&cond, &actions);
        let mut q = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
        let mut opt = Adam::new(5e-3);
        let steps = crate::env::regenerate_inputs(&sc, &cond, &actions);
        for _ in 0..200 {
            q.zero_grad();
            let fw = q.forward_seq(&steps);
            let t_last = fw.len() - 1;
            let q_sa = fw.logits(t_last)[actions[t_last]];
            let mut dlogits = Vec::with_capacity(fw.len());
            for t in 0..fw.len() {
                let mut d = vec![0.0f32; fw.logits(t).len()];
                if t == t_last {
                    d[actions[t]] = 2.0 * (q_sa - res.reward);
                }
                dlogits.push(d);
            }
            let dvalues = vec![0.0; fw.len()];
            q.backward_seq(&fw, &dlogits, &dvalues);
            opt.step(&mut q);
        }
        let fw = q.forward_seq(&steps);
        let q_final = fw.logits(fw.len() - 1)[actions[fw.len() - 1]];
        assert!((q_final - res.reward).abs() < 0.05, "Q {q_final} vs reward {}", res.reward);
    }
}
