//! # murmuration-rl
//!
//! Stage 2 of Murmuration: goal-conditioned multi-task RL that jointly
//! selects a subnet configuration *and* a partitioning/placement strategy
//! to meet a user SLO under given network conditions.
//!
//! * [`policy`] — the paper's policy network (Fig. 5): a single-layer LSTM
//!   backbone with one fully-connected head per action type, implemented
//!   from scratch with full backpropagation-through-time.
//! * [`mod@env`] — the sequential decision environment: one episode walks the
//!   decision schedule (resolution, then per-stage kernel/depth/expand/
//!   quant/partition + per-tile device selection, then head placement),
//!   evaluates the resulting (config, plan) with the latency estimator and
//!   accuracy model, and pays the goal-conditioned reward of Eq. (2)/(3).
//! * [`buffer`] — SUPREME's reward-filtered *bucketed replay buffer* with
//!   tree-structured data sharing across constraint buckets, lower-bound
//!   pruning, and trajectory mutation (Figs. 7–9).
//! * [`gcsl`] — Goal-Conditioned Supervised Learning (Ghosh et al.), the
//!   paper's stronger baseline and the update rule SUPREME builds on.
//! * [`ppo`] — Proximal Policy Optimization baseline.
//! * [`dqn`] — Deep Q-Network baseline (the other traditional-RL
//!   comparison §4.3 names).
//! * [`supreme`] — the SUPREME algorithm: GCSL updates over the bucketed
//!   buffer, ε-greedy + mutation exploration, cross-task sharing, pruning,
//!   and curriculum over constraint dimensions.
//! * [`metrics`] — validation-grid evaluation: average reward,
//!   (normalized) SLO compliance rate (Figs. 11–12), and Pareto-frontier
//!   extraction.
//! * [`serialize`] — save/load trained policies (Stage 2 → Stage 3).

pub mod buffer;
pub mod dqn;
pub mod env;
pub mod gcsl;
pub mod metrics;
pub mod policy;
pub mod ppo;
pub mod serialize;
pub mod supreme;

pub use env::{Condition, EpisodeResult, Scenario, SloKind};
pub use policy::{ActionHead, LstmPolicy};
