//! SUPREME: Share, bUcketed, PRunE, Epsilon-greedy, Mutation Exploration.
//!
//! The paper's training algorithm (§4.4): GCSL-style supervised policy
//! updates drawn from the reward-filtered *bucketed* replay buffer, with
//!
//! * **sharing** — empty buckets borrow from dominated (tighter) buckets,
//! * **pruning** — entries beaten by a dominated bucket's best are dropped,
//! * **ε-greedy exploration** — decaying uniform mixing during rollout,
//! * **mutation** — stored trajectories are perturbed (including a
//!   locality heuristic that consolidates device choices) and re-evaluated,
//! * **curriculum** — constraint dimensions are opened gradually
//!   (SLO + device-1 bandwidth first, then device-1 delay, …).

use crate::buffer::{BucketedBuffer, Entry};
use crate::env::{rollout, Condition, RolloutMode, Scenario};
use crate::gcsl::supervised_update_weighted;
use crate::metrics::{evaluate_policy, validation_conditions, TrainHistory};
use crate::policy::LstmPolicy;
use murmuration_nn::optim::Adam;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SUPREME hyper-parameters.
#[derive(Clone, Debug)]
pub struct SupremeConfig {
    /// Episodes to collect.
    pub steps: usize,
    /// Trajectories per supervised update.
    pub batch: usize,
    pub lr: f32,
    /// ε-greedy schedule: linear decay `eps_start → eps_end`.
    pub eps_start: f32,
    pub eps_end: f32,
    /// Top-n kept per bucket.
    pub per_bucket: usize,
    /// Mutations attempted per collection step.
    pub mutations_per_step: usize,
    /// Pruning cadence (steps); 0 disables pruning (ablation).
    pub prune_every: usize,
    /// Enable the constraint-dimension curriculum.
    pub curriculum: bool,
    /// Enable cross-bucket data sharing (ablation switch; without it the
    /// policy only trains on goals whose own bucket has data).
    pub share: bool,
    pub eval_every: usize,
    pub eval_conditions: usize,
    pub hidden: usize,
    pub seed: u64,
}

impl Default for SupremeConfig {
    fn default() -> Self {
        SupremeConfig {
            steps: 2000,
            batch: 8,
            lr: 1e-3,
            eps_start: 0.4,
            eps_end: 0.02,
            per_bucket: 4,
            mutations_per_step: 2,
            prune_every: 200,
            curriculum: true,
            share: true,
            eval_every: 250,
            eval_conditions: 40,
            hidden: 64,
            seed: 0,
        }
    }
}

/// Curriculum condition sampling: only the first `active` constraint
/// dimensions vary (order: SLO, bw₁, delay₁, bw₂, delay₂, …); the rest are
/// pinned to their most relaxed grid value.
fn sample_condition_curriculum<R: Rng>(sc: &Scenario, active: usize, rng: &mut R) -> Condition {
    let g = sc.grid_points;
    let k = sc.n_remote();
    let mut slo_i = g - 1; // most relaxed latency budget
    if matches!(sc.slo_kind, crate::env::SloKind::Accuracy) {
        slo_i = 0; // lowest accuracy floor is the relaxed end
    }
    let mut bw_i = vec![g - 1; k];
    let mut delay_i = vec![0usize; k];
    let mut dim = 0usize;
    if dim < active {
        slo_i = rng.gen_range(0..g);
    }
    dim += 1;
    for d in 0..k {
        if dim < active {
            bw_i[d] = rng.gen_range(0..g);
        }
        dim += 1;
        if dim < active {
            delay_i[d] = rng.gen_range(0..g);
        }
        dim += 1;
    }
    sc.condition_from_indices(slo_i, &bw_i, &delay_i)
}

/// Mutates a stored trajectory: perturbs a few random decisions, plus the
/// paper's locality heuristic (consolidate device selections onto one
/// device to cut communication).
fn mutate_actions<R: Rng>(sc: &Scenario, actions: &[usize], rng: &mut R) -> Vec<usize> {
    let sched = sc.schedule();
    let mut out = actions.to_vec();
    if rng.gen_bool(0.3) {
        // Locality heuristic: pick one device and assign every Device
        // decision to it.
        let dev = rng.gen_range(0..sc.devices.len());
        for (t, head) in sched.iter().enumerate() {
            if matches!(head, crate::policy::ActionHead::Device) {
                out[t] = dev;
            }
        }
    } else {
        // Random point mutations on 1–3 decisions.
        for _ in 0..rng.gen_range(1..=3) {
            let t = rng.gen_range(0..out.len());
            let arity = match sched[t] {
                crate::policy::ActionHead::Resolution => sc.space.resolutions.len(),
                crate::policy::ActionHead::Kernel => sc.space.kernels.len(),
                crate::policy::ActionHead::Depth => sc.space.depths.len(),
                crate::policy::ActionHead::Expand => sc.space.expands.len(),
                crate::policy::ActionHead::Quant => sc.space.quants.len(),
                crate::policy::ActionHead::Partition => sc.space.partitions.len(),
                crate::policy::ActionHead::Device => sc.devices.len(),
            };
            out[t] = rng.gen_range(0..arity);
        }
    }
    out
}

/// Evaluates `actions` under `cond`, relabels with the achieved goal, and
/// inserts into the buffer at the *tightest constraints the strategy
/// actually needs* (unused links are tightened to the grid corner, so
/// local-heavy strategies are shareable across the whole network space).
fn collect_into_buffer(
    sc: &Scenario,
    buffer: &mut BucketedBuffer,
    cond: &Condition,
    actions: &[usize],
) {
    let res = sc.evaluate(cond, actions);
    let relabeled = sc.tighten_unused_links(&sc.relabel(cond, &res), actions);
    let relabeled_res = sc.evaluate(&relabeled, actions);
    buffer.insert(
        sc,
        Entry {
            cond: relabeled,
            actions: actions.to_vec(),
            reward: relabeled_res.reward,
            latency_ms: relabeled_res.latency_ms,
            accuracy_pct: res.accuracy_pct,
        },
    );
}

/// Trains a policy with SUPREME; returns it plus the training curve.
pub fn train(sc: &Scenario, cfg: &SupremeConfig) -> (LstmPolicy, TrainHistory) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut policy = LstmPolicy::new(sc.input_dim(), cfg.hidden, sc.arities(), cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut buffer = BucketedBuffer::new(sc.grid_points, cfg.per_bucket);
    let val = validation_conditions(sc, cfg.eval_conditions);
    let mut history = TrainHistory::default();
    let total_dims = 1 + 2 * sc.n_remote();

    // Bootstrap with the max/min submodels (paper §6.1.1).
    for actions in crate::env::bootstrap_actions(sc) {
        let cond = sc.sample_condition(&mut rng);
        collect_into_buffer(sc, &mut buffer, &cond, &actions);
    }

    for step in 0..cfg.steps {
        let progress = step as f32 / cfg.steps.max(1) as f32;
        let epsilon = cfg.eps_start + (cfg.eps_end - cfg.eps_start) * progress;
        // Curriculum: open dimensions linearly over the first 60% of
        // training, starting with SLO + first bandwidth.
        let active = if cfg.curriculum {
            let frac = (progress / 0.6).min(1.0);
            2 + ((total_dims - 2) as f32 * frac).round() as usize
        } else {
            total_dims
        };
        let cond = sample_condition_curriculum(sc, active.min(total_dims), &mut rng);

        // ε-greedy exploration rollout.
        let (actions, _, _) =
            rollout(&policy, sc, &cond, RolloutMode::Sample { epsilon }, &mut rng);
        collect_into_buffer(sc, &mut buffer, &cond, &actions);

        // Mutation exploration.
        for _ in 0..cfg.mutations_per_step {
            if let Some(src) = buffer.random_entry(&mut rng) {
                let mutated = mutate_actions(sc, &src.actions, &mut rng);
                collect_into_buffer(sc, &mut buffer, &src.cond, &mutated);
            }
        }

        // Pruning cadence.
        if cfg.prune_every > 0 && (step + 1) % cfg.prune_every == 0 {
            buffer.prune();
        }

        // Supervised update: goals sampled like collection, trajectories
        // drawn through bucket sharing, cross-entropy weighted by each
        // strategy's stored reward so capacity concentrates on winners.
        // The learning rate anneals to stabilize late training.
        opt.lr = cfg.lr * (1.0 - 0.6 * progress);
        let mut batch = Vec::with_capacity(cfg.batch);
        for _ in 0..cfg.batch {
            let goal = sample_condition_curriculum(sc, active.min(total_dims), &mut rng);
            let sampled = if cfg.share {
                buffer.sample(sc, &goal, &mut rng)
            } else {
                buffer.sample_exact(sc, &goal, &mut rng)
            };
            if let Some(e) = sampled {
                batch.push((goal, e.actions, 0.25 + e.reward.max(0.0)));
            }
        }
        supervised_update_weighted(&mut policy, &mut opt, sc, &batch);

        if (step + 1) % cfg.eval_every == 0 || step + 1 == cfg.steps {
            history.points.push((step + 1, evaluate_policy(&policy, sc, &val)));
        }
    }
    (policy, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SloKind;

    #[test]
    fn curriculum_pins_inactive_dimensions() {
        let sc = Scenario::device_swarm(5, SloKind::Latency);
        let mut rng = StdRng::seed_from_u64(0);
        // Only SLO + bw1 active: every other dim at its relaxed extreme.
        for _ in 0..20 {
            let c = sample_condition_curriculum(&sc, 2, &mut rng);
            assert!((c.bw_mbps[1] - 500.0).abs() < 1e-6);
            assert!((c.delay_ms[0] - 5.0).abs() < 1e-6);
            assert!((c.delay_ms[3] - 5.0).abs() < 1e-6);
        }
        // All dims active: bw1 must vary across samples.
        let vals: Vec<f64> =
            (0..20).map(|_| sample_condition_curriculum(&sc, 9, &mut rng).bw_mbps[1]).collect();
        assert!(vals.iter().any(|v| (v - vals[0]).abs() > 1e-6));
    }

    #[test]
    fn mutation_preserves_schedule_validity() {
        let sc = Scenario::device_swarm(5, SloKind::Latency);
        let mut rng = StdRng::seed_from_u64(1);
        let base = crate::env::bootstrap_actions(&sc)[0].clone();
        for _ in 0..50 {
            let m = mutate_actions(&sc, &base, &mut rng);
            // Must evaluate without panicking (all actions in range).
            let cond = sc.sample_condition(&mut rng);
            let r = sc.evaluate(&cond, &m);
            assert!(r.latency_ms.is_finite());
        }
    }

    #[test]
    fn short_training_fills_buffer_and_history() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let cfg = SupremeConfig {
            steps: 40,
            eval_every: 20,
            eval_conditions: 6,
            hidden: 16,
            ..Default::default()
        };
        let (_, history) = train(&sc, &cfg);
        assert_eq!(history.points.len(), 2);
        assert!(history.final_reward().is_finite());
    }

    #[test]
    fn supreme_beats_untrained_policy_quickly() {
        // A modest SUPREME run should outperform its own untrained
        // initialization on reward, thanks to sharing + relabeling. The
        // baseline uses the same init seed so the comparison measures
        // training, not initialization luck; very short runs (~150 steps)
        // transiently underperform while the buffer is still sparse.
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let cfg = SupremeConfig {
            steps: 600,
            eval_every: 300,
            eval_conditions: 16,
            hidden: 32,
            ..Default::default()
        };
        let (policy, history) = train(&sc, &cfg);
        let val = validation_conditions(&sc, 16);
        let untrained = LstmPolicy::new(sc.input_dim(), 32, sc.arities(), cfg.seed);
        let base = evaluate_policy(&untrained, &sc, &val);
        let trained = evaluate_policy(&policy, &sc, &val);
        assert!(
            trained.avg_reward > base.avg_reward,
            "SUPREME {} must beat untrained {}",
            trained.avg_reward,
            base.avg_reward
        );
        assert!(history.final_reward() > 0.0);
    }
}
