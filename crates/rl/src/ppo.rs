//! Proximal Policy Optimization (Schulman et al., 2017) baseline.
//!
//! Episodes pay a single terminal reward, so the return of every step is
//! that reward and advantages are `R − V_t` against the value head.
//! The clipped surrogate, entropy bonus, and value loss are implemented
//! directly as logits/value gradients for the policy's BPTT.

use crate::env::{rollout, RolloutMode, Scenario};
use crate::metrics::{evaluate_policy, validation_conditions, TrainHistory};
use crate::policy::{ActionHead, LstmPolicy};
use murmuration_nn::module::Module;
use murmuration_nn::optim::Adam;
use murmuration_tensor::activation::softmax;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// PPO hyper-parameters.
#[derive(Clone, Debug)]
pub struct PpoConfig {
    /// Total episodes to collect.
    pub steps: usize,
    /// Episodes per policy update.
    pub rollouts_per_update: usize,
    /// Optimization epochs per update.
    pub epochs: usize,
    pub clip: f32,
    pub lr: f32,
    pub vf_coef: f32,
    pub ent_coef: f32,
    pub eval_every: usize,
    pub eval_conditions: usize,
    pub hidden: usize,
    pub seed: u64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            steps: 2000,
            rollouts_per_update: 8,
            epochs: 3,
            clip: 0.2,
            lr: 1e-3,
            vf_coef: 0.5,
            ent_coef: 0.01,
            eval_every: 250,
            eval_conditions: 40,
            hidden: 64,
            seed: 0,
        }
    }
}

struct CollectedEpisode {
    steps: Vec<(Vec<f32>, ActionHead)>,
    actions: Vec<usize>,
    old_logps: Vec<f32>,
    ret: f32,
}

/// Trains a policy with PPO; returns it plus the training curve.
pub fn train(sc: &Scenario, cfg: &PpoConfig) -> (LstmPolicy, TrainHistory) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut policy = LstmPolicy::new(sc.input_dim(), cfg.hidden, sc.arities(), cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let val = validation_conditions(sc, cfg.eval_conditions);
    let mut history = TrainHistory::default();
    let mut collected = 0usize;
    let mut next_eval = cfg.eval_every;

    while collected < cfg.steps {
        // Collect a batch of episodes.
        let mut batch = Vec::with_capacity(cfg.rollouts_per_update);
        for _ in 0..cfg.rollouts_per_update {
            let cond = sc.sample_condition(&mut rng);
            let (actions, steps, old_logps) =
                rollout(&policy, sc, &cond, RolloutMode::Sample { epsilon: 0.0 }, &mut rng);
            let res = sc.evaluate(&cond, &actions);
            batch.push(CollectedEpisode { steps, actions, old_logps, ret: res.reward });
            collected += 1;
        }
        // Optimize.
        for _ in 0..cfg.epochs {
            policy.zero_grad();
            let scale = 1.0 / batch.len() as f32;
            for ep in &batch {
                let fw = policy.forward_seq(&ep.steps);
                let t_count = fw.len();
                let mut dlogits = Vec::with_capacity(t_count);
                let mut dvalues = Vec::with_capacity(t_count);
                for t in 0..t_count {
                    let logits = fw.logits(t);
                    let probs = softmax(logits);
                    let a = ep.actions[t];
                    let adv = ep.ret - fw.value(t);
                    let logp_new = probs[a].max(1e-12).ln();
                    let ratio = (logp_new - ep.old_logps[t]).exp();
                    // Clipped-surrogate gradient coefficient.
                    let unclipped_active =
                        if adv >= 0.0 { ratio <= 1.0 + cfg.clip } else { ratio >= 1.0 - cfg.clip };
                    let coef = if unclipped_active { ratio * adv } else { 0.0 };
                    // Entropy of the step distribution.
                    let ent: f32 =
                        -probs.iter().map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 }).sum::<f32>();
                    let mut d = vec![0.0f32; probs.len()];
                    for (j, &p) in probs.iter().enumerate() {
                        // −coef · d logp/d l_j  +  ent_coef · d(−H)/d l_j
                        let dlogp = f32::from(j == a) - p;
                        let dneg_h = p * (p.max(1e-12).ln() + ent);
                        d[j] = scale * (-coef * dlogp + cfg.ent_coef * dneg_h);
                    }
                    dlogits.push(d);
                    // Value loss: vf_coef (V − R)².
                    dvalues.push(scale * cfg.vf_coef * 2.0 * (fw.value(t) - ep.ret));
                }
                policy.backward_seq(&fw, &dlogits, &dvalues);
            }
            opt.step(&mut policy);
        }
        if collected >= next_eval || collected >= cfg.steps {
            history.points.push((collected, evaluate_policy(&policy, sc, &val)));
            next_eval += cfg.eval_every;
        }
    }
    (policy, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SloKind;

    #[test]
    fn short_run_trains_without_nans() {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let cfg = PpoConfig {
            steps: 32,
            rollouts_per_update: 4,
            epochs: 2,
            eval_every: 16,
            eval_conditions: 6,
            hidden: 16,
            ..Default::default()
        };
        let (policy, history) = train(&sc, &cfg);
        assert!(!history.points.is_empty());
        assert!(history.final_reward().is_finite());
        // Policy parameters stay finite.
        let mut p = policy;
        let mut finite = true;
        p.visit_params(&mut |param| {
            finite &= param.value.data().iter().all(|v| v.is_finite());
        });
        assert!(finite, "PPO produced non-finite parameters");
    }

    #[test]
    fn value_head_learns_the_return_scale() {
        // With a constant reward the value head should converge toward it.
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let cfg = PpoConfig {
            steps: 120,
            rollouts_per_update: 6,
            epochs: 3,
            eval_every: 1000,
            eval_conditions: 4,
            hidden: 16,
            lr: 3e-3,
            ..Default::default()
        };
        let (policy, _) = train(&sc, &cfg);
        // Probe the value on a few conditions: must be inside the reward
        // range [0, 1.5] once trained (untrained heads wander arbitrarily).
        let mut rng = StdRng::seed_from_u64(9);
        let cond = sc.sample_condition(&mut rng);
        let (_, steps, _) = rollout(&policy, &sc, &cond, RolloutMode::Greedy, &mut rng);
        let fw = policy.forward_seq(&steps);
        let v = fw.value(fw.len() - 1);
        assert!((-0.5..2.0).contains(&v), "value {v} out of plausible range");
    }
}
