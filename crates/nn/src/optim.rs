//! Optimizers: SGD with momentum and Adam.
//!
//! Optimizers keep per-parameter state keyed by visit order, so the module
//! tree must be stable between steps (true for every network in this
//! workspace).

use crate::module::Module;
use murmuration_tensor::Tensor;

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD when `momentum == 0`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd { lr, momentum, weight_decay, velocity: Vec::new() }
    }

    /// Applies one update step using gradients accumulated in the module.
    pub fn step(&mut self, m: &mut dyn Module) {
        let mut idx = 0usize;
        let need_init = self.velocity.is_empty();
        let lr = self.lr;
        let mom = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        m.visit_params(&mut |p| {
            if need_init {
                velocity.push(Tensor::zeros(p.value.shape().clone()));
            }
            let v = &mut velocity[idx];
            for ((vv, &g), w) in
                v.data_mut().iter_mut().zip(p.grad.data()).zip(p.value.data_mut().iter_mut())
            {
                let g = g + wd * *w;
                *vv = mom * *vv + g;
                *w -= lr * *vv;
            }
            idx += 1;
        });
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Applies one update step using gradients accumulated in the module.
    pub fn step(&mut self, module: &mut dyn Module) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut idx = 0usize;
        let need_init = self.m.is_empty();
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (ms, vs) = (&mut self.m, &mut self.v);
        module.visit_params(&mut |p| {
            if need_init {
                ms.push(Tensor::zeros(p.value.shape().clone()));
                vs.push(Tensor::zeros(p.value.shape().clone()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for (((mv, vv), &g), w) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(p.grad.data())
                .zip(p.value.data_mut().iter_mut())
            {
                *mv = b1 * *mv + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::loss::softmax_cross_entropy;
    use crate::module::Sequential;
    use murmuration_tensor::{Shape, Tensor};
    use rand::{rngs::StdRng, SeedableRng};

    fn train_toy(optim_is_adam: bool) -> f32 {
        // Learn a separable 2-class problem on 2-D points.
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = Sequential::new().push(Linear::new(2, 2, &mut rng));
        let xs = Tensor::from_vec(Shape::d2(4, 2), vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0, 0.1, 0.9]);
        let ts = [0usize, 0, 1, 1];
        let mut sgd = Sgd::new(0.5, 0.9, 0.0);
        let mut adam = Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..200 {
            net.zero_grad();
            let logits = net.forward(&xs, true);
            let (loss, d) = softmax_cross_entropy(&logits, &ts);
            net.backward(&d);
            if optim_is_adam {
                adam.step(&mut net);
            } else {
                sgd.step(&mut net);
            }
            final_loss = loss;
        }
        final_loss
    }

    #[test]
    fn sgd_converges_on_toy_problem() {
        assert!(train_toy(false) < 0.05, "loss {}", train_toy(false));
    }

    #[test]
    fn adam_converges_on_toy_problem() {
        assert!(train_toy(true) < 0.05, "loss {}", train_toy(true));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new().push(Linear::new(3, 3, &mut rng));
        let before: f32 = {
            let mut norm = 0.0;
            net.visit_params(&mut |p| norm += p.value.norm());
            norm
        };
        // Zero gradient steps with decay should shrink weights.
        let mut sgd = Sgd::new(0.1, 0.0, 0.5);
        net.zero_grad();
        for _ in 0..10 {
            sgd.step(&mut net);
        }
        let after: f32 = {
            let mut norm = 0.0;
            net.visit_params(&mut |p| norm += p.value.norm());
            norm
        };
        assert!(after < before * 0.9, "{after} !< {before}");
    }
}
