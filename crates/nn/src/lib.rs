//! # murmuration-nn
//!
//! A small but *real* neural-network layer library: every layer implements
//! both `forward` and `backward`, so the Murmuration supernet can actually
//! be trained (on the synthetic dataset in [`data`]) rather than stubbed.
//!
//! The API follows a caching-module design: a [`Module`] owns its
//! parameters and remembers whatever activations its backward pass needs.
//! Gradients accumulate into [`Param::grad`] and are consumed by the
//! optimizers in [`optim`].
//!
//! Layers provided: [`layers::Conv2d`], [`layers::DepthwiseConv2d`],
//! [`layers::Linear`], [`layers::BatchNorm2d`], ReLU / h-swish activations,
//! max/global-average pooling, plus [`module::Sequential`] and
//! [`module::Residual`] combinators — everything a MobileNetV3-style
//! supernet needs.

pub mod data;
pub mod layers;
pub mod loss;
pub mod module;
pub mod optim;
pub mod param;

pub use module::{Module, Residual, Sequential};
pub use param::Param;
