//! Trainable layers. Each caches the activations its backward pass needs.

mod act;
mod conv;
mod layernorm;
mod linear;
mod norm;
mod pool;
mod quantized;

pub use act::{HSwish, ReLU};
pub use conv::{Conv2d, DepthwiseConv2d};
pub use layernorm::LayerNorm;
pub use linear::{Flatten, Linear};
pub use norm::BatchNorm2d;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use quantized::{relative_l2_error, QuantConv2d, QuantLinear};

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use crate::loss::softmax_cross_entropy;
    use crate::module::Module;
    use murmuration_tensor::Tensor;

    /// Checks every parameter gradient of `m` against central finite
    /// differences through a softmax-CE loss on `x` with `targets`.
    pub fn check_param_grads(m: &mut dyn Module, x: &Tensor, targets: &[usize], tol: f32) {
        // Analytic gradients.
        m.zero_grad();
        let logits = m.forward(x, true);
        let (_, dlogits) = softmax_cross_entropy(&logits, targets);
        m.backward(&dlogits);

        let mut analytic: Vec<f32> = Vec::new();
        m.visit_params(&mut |p| analytic.extend_from_slice(p.grad.data()));

        // Numeric gradients, parameter by parameter.
        let eps = 1e-2f32;
        let mut flat_idx = 0usize;
        let mut param_sizes = Vec::new();
        m.visit_params(&mut |p| param_sizes.push(p.numel()));
        for (pi, &sz) in param_sizes.iter().enumerate() {
            // Probe a handful of coordinates per parameter to keep runtime low.
            let probes: Vec<usize> = (0..sz).step_by((sz / 4).max(1)).take(4).collect();
            for &ci in &probes {
                let loss_at = |m: &mut dyn Module, delta: f32| -> f32 {
                    let mut k = 0usize;
                    m.visit_params(&mut |p| {
                        if k == pi {
                            p.value.data_mut()[ci] += delta;
                        }
                        k += 1;
                    });
                    let logits = m.forward(x, true);
                    let (l, _) = softmax_cross_entropy(&logits, targets);
                    let mut k2 = 0usize;
                    m.visit_params(&mut |p| {
                        if k2 == pi {
                            p.value.data_mut()[ci] -= delta;
                        }
                        k2 += 1;
                    });
                    l
                };
                let lp = loss_at(m, eps);
                let lm = loss_at(m, -eps);
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic[flat_idx + ci];
                let denom = numeric.abs().max(a.abs()).max(1e-2);
                assert!(
                    (numeric - a).abs() / denom < tol,
                    "param {pi} coord {ci}: numeric {numeric} vs analytic {a}"
                );
            }
            flat_idx += sz;
        }
    }
}
