//! Layer normalization over the last dimension — the normalization
//! transformer blocks use (the §4.1 ViT extension's trainable side).

use crate::module::Module;
use crate::param::Param;
use murmuration_tensor::{Shape, Tensor};

const EPS: f32 = 1e-5;

/// LayerNorm over the trailing `features` dimension of a 2-D `[rows,
/// features]` tensor, with learnable affine (γ, β).
pub struct LayerNorm {
    pub gamma: Param,
    pub beta: Param,
    features: usize,
    // Backward cache.
    cached_xhat: Option<Tensor>,
    cached_invstd: Vec<f32>,
}

impl LayerNorm {
    /// γ=1, β=0.
    pub fn new(features: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Tensor::full(Shape::d1(features), 1.0)),
            beta: Param::new(Tensor::zeros(Shape::d1(features))),
            features,
            cached_xhat: None,
            cached_invstd: Vec::new(),
        }
    }
}

#[allow(clippy::needless_range_loop)] // parallel per-row buffers are indexed together
impl Module for LayerNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "LayerNorm expects [rows, features]");
        let rows = x.shape().dim(0);
        let f = x.shape().dim(1);
        assert_eq!(f, self.features, "LayerNorm features");
        let mut y = Tensor::zeros(x.shape().clone());
        let mut xhat = Tensor::zeros(x.shape().clone());
        let mut invstds = vec![0.0f32; rows];
        for r in 0..rows {
            let row = &x.data()[r * f..(r + 1) * f];
            let mean = row.iter().sum::<f32>() / f as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / f as f32;
            let invstd = 1.0 / (var + EPS).sqrt();
            invstds[r] = invstd;
            for i in 0..f {
                let xh = (row[i] - mean) * invstd;
                xhat.data_mut()[r * f + i] = xh;
                y.data_mut()[r * f + i] =
                    self.gamma.value.data()[i] * xh + self.beta.value.data()[i];
            }
        }
        if train {
            self.cached_xhat = Some(xhat);
            self.cached_invstd = invstds;
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let xhat = self.cached_xhat.as_ref().expect("backward before forward(train)");
        let rows = dy.shape().dim(0);
        let f = self.features;
        let m = f as f32;
        let mut dx = Tensor::zeros(dy.shape().clone());
        for r in 0..rows {
            let dyr = &dy.data()[r * f..(r + 1) * f];
            let xhr = &xhat.data()[r * f..(r + 1) * f];
            let invstd = self.cached_invstd[r];
            let mut sum_dyg = 0.0f32;
            let mut sum_dyg_xhat = 0.0f32;
            for i in 0..f {
                let d = dyr[i] * self.gamma.value.data()[i];
                sum_dyg += d;
                sum_dyg_xhat += d * xhr[i];
                self.gamma.grad.data_mut()[i] += dyr[i] * xhr[i];
                self.beta.grad.data_mut()[i] += dyr[i];
            }
            for i in 0..f {
                let d = dyr[i] * self.gamma.value.data()[i];
                dx.data_mut()[r * f + i] = invstd / m * (m * d - sum_dyg - xhr[i] * sum_dyg_xhat);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "LayerNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_param_grads;
    use crate::module::Sequential;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rows_are_normalized() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(Shape::d2(2, 4), vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0]);
        let y = ln.forward(&x, false);
        for r in 0..2 {
            let row = &y.data()[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn affine_shifts_and_scales() {
        let mut ln = LayerNorm::new(2);
        ln.gamma.value = Tensor::from_vec(Shape::d1(2), vec![2.0, 2.0]);
        ln.beta.value = Tensor::from_vec(Shape::d1(2), vec![1.0, -1.0]);
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![0.0, 2.0]);
        let y = ln.forward(&x, false);
        // Normalized row is (−1, 1) → affine gives (−1, 1).
        assert!((y.data()[0] - (-1.0)).abs() < 1e-2, "{}", y.data()[0]);
        assert!((y.data()[1] - 1.0).abs() < 1e-2, "{}", y.data()[1]);
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new().push(LayerNorm::new(5));
        let x = Tensor::rand_uniform(Shape::d2(3, 5), 2.0, &mut rng);
        check_param_grads(&mut net, &x, &[0, 2, 4], 0.05);
    }

    #[test]
    fn input_gradient_flows() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ln = LayerNorm::new(6);
        let x = Tensor::rand_uniform(Shape::d2(2, 6), 1.0, &mut rng);
        let y = ln.forward(&x, true);
        let mut dy = Tensor::zeros(y.shape().clone());
        dy.data_mut()[3] = 1.0;
        let dx = ln.backward(&dy);
        assert!(dx.norm() > 0.0);
        // Gradient stays within the same row (rows are independent).
        assert!(dx.data()[6..].iter().all(|&v| v == 0.0));
    }
}
