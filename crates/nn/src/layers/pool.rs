//! Pooling layers.

use crate::module::Module;
use crate::param::Param;
use murmuration_tensor::pool::{global_avgpool, global_avgpool_backward, maxpool2d};
use murmuration_tensor::Tensor;

/// Max pooling over square windows.
pub struct MaxPool2d {
    k: usize,
    stride: usize,
    pad: usize,
    cached_arg: Option<(Vec<usize>, murmuration_tensor::Shape)>,
}

impl MaxPool2d {
    /// Window `k`, step `stride`, symmetric `pad`.
    pub fn new(k: usize, stride: usize, pad: usize) -> Self {
        MaxPool2d { k, stride, pad, cached_arg: None }
    }
}

impl Module for MaxPool2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (y, arg) = maxpool2d(x, self.k, self.stride, self.pad);
        if train {
            self.cached_arg = Some((arg, x.shape().clone()));
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (arg, in_shape) = self.cached_arg.as_ref().expect("backward before forward(train)");
        let mut dx = Tensor::zeros(in_shape.clone());
        for (i, &src) in arg.iter().enumerate() {
            dx.data_mut()[src] += dy.data()[i];
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// Global average pooling: NCHW → `[n, c, 1, 1]`.
pub struct GlobalAvgPool {
    cached_hw: Option<(usize, usize)>,
}

impl GlobalAvgPool {
    /// Stateless constructor.
    pub fn new() -> Self {
        GlobalAvgPool { cached_hw: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_hw = Some((x.shape().h(), x.shape().w()));
        }
        global_avgpool(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (h, w) = self.cached_hw.expect("backward before forward(train)");
        global_avgpool_backward(dy, h, w)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_tensor::Shape;

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut l = MaxPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 5.0, 2.0, 3.0]);
        let y = l.forward(&x, true);
        assert_eq!(y.data(), &[5.0]);
        let dx = l.backward(&Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![7.0]));
        assert_eq!(dx.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn gap_forward_backward() {
        let mut l = GlobalAvgPool::new();
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let y = l.forward(&x, true);
        assert_eq!(y.data(), &[2.5]);
        let dx = l.backward(&Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![4.0]));
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }
}
