//! Activation layers.

use crate::module::Module;
use crate::param::Param;
use murmuration_tensor::activation::{
    hswish_backward, hswish_inplace, relu_backward, relu_inplace,
};
use murmuration_tensor::Tensor;

/// Rectified linear unit.
pub struct ReLU {
    cached_in: Option<Tensor>,
}

impl ReLU {
    /// Stateless constructor.
    pub fn new() -> Self {
        ReLU { cached_in: None }
    }
}

impl Default for ReLU {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for ReLU {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_in = Some(x.clone());
        }
        let mut y = x.clone();
        relu_inplace(&mut y);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cached_in.as_ref().expect("backward before forward(train)");
        relu_backward(x, dy)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// Hard-swish (MobileNetV3).
pub struct HSwish {
    cached_in: Option<Tensor>,
}

impl HSwish {
    /// Stateless constructor.
    pub fn new() -> Self {
        HSwish { cached_in: None }
    }
}

impl Default for HSwish {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for HSwish {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_in = Some(x.clone());
        }
        let mut y = x.clone();
        hswish_inplace(&mut y);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cached_in.as_ref().expect("backward before forward(train)");
        hswish_backward(x, dy)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "HSwish"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_tensor::Shape;

    #[test]
    fn relu_forward_backward() {
        let mut l = ReLU::new();
        let x = Tensor::from_vec(Shape::d1(3), vec![-2.0, 0.0, 3.0]);
        let y = l.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 3.0]);
        let dx = l.backward(&Tensor::full(Shape::d1(3), 1.0));
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn hswish_linear_region_passthrough() {
        let mut l = HSwish::new();
        let x = Tensor::from_vec(Shape::d1(2), vec![5.0, 10.0]);
        let y = l.forward(&x, true);
        assert_eq!(y.data(), &[5.0, 10.0]);
        let dx = l.backward(&Tensor::full(Shape::d1(2), 2.0));
        assert_eq!(dx.data(), &[2.0, 2.0]);
    }

    #[test]
    fn activations_have_no_params() {
        let mut r = ReLU::new();
        assert_eq!(r.param_count(), 0);
        let mut h = HSwish::new();
        assert_eq!(h.param_count(), 0);
    }
}
