//! Fully-connected layer and the flatten adaptor.

use crate::module::Module;
use crate::param::Param;
use murmuration_tensor::gemm::{gemm, gemm_at, gemm_bt};
use murmuration_tensor::{Shape, Tensor};
use rand::Rng;

/// Fully-connected layer: `y = x Wᵀ + b`, `W: [out, in]`, `x: [batch, in]`.
pub struct Linear {
    pub weight: Param,
    pub bias: Param,
    in_features: usize,
    out_features: usize,
    cached_in: Option<Tensor>,
}

impl Linear {
    /// Kaiming-initialized linear layer.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Linear {
            weight: Param::new(Tensor::kaiming(
                Shape::d2(out_features, in_features),
                in_features,
                rng,
            )),
            bias: Param::new(Tensor::zeros(Shape::d1(out_features))),
            in_features,
            out_features,
            cached_in: None,
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Module for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "Linear expects [batch, in]");
        let batch = x.shape().dim(0);
        assert_eq!(x.shape().dim(1), self.in_features, "Linear in_features");
        if train {
            self.cached_in = Some(x.clone());
        }
        let mut y = Tensor::zeros(Shape::d2(batch, self.out_features));
        gemm_bt(
            batch,
            self.in_features,
            self.out_features,
            x.data(),
            self.weight.value.data(),
            y.data_mut(),
        );
        for b in 0..batch {
            let row = &mut y.data_mut()[b * self.out_features..(b + 1) * self.out_features];
            for (v, &bb) in row.iter_mut().zip(self.bias.value.data()) {
                *v += bb;
            }
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cached_in.as_ref().expect("backward before forward(train)");
        let batch = x.shape().dim(0);
        assert_eq!(dy.shape(), &Shape::d2(batch, self.out_features), "Linear dy shape");
        // dW += dyᵀ · x
        let mut dw = vec![0.0f32; self.out_features * self.in_features];
        gemm_at(self.out_features, batch, self.in_features, dy.data(), x.data(), &mut dw);
        for (g, t) in self.weight.grad.data_mut().iter_mut().zip(dw.iter()) {
            *g += t;
        }
        // db += column sums of dy
        for b in 0..batch {
            for o in 0..self.out_features {
                self.bias.grad.data_mut()[o] += dy.data()[b * self.out_features + o];
            }
        }
        // dx = dy · W
        let mut dx = Tensor::zeros(Shape::d2(batch, self.in_features));
        gemm(
            batch,
            self.out_features,
            self.in_features,
            dy.data(),
            self.weight.value.data(),
            dx.data_mut(),
        );
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Linear"
    }
}

/// Reshapes `[n, c, h, w]` to `[n, c*h*w]` (and reverses in backward).
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Stateless constructor.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "Flatten expects NCHW");
        if train {
            self.cached_shape = Some(x.shape().clone());
        }
        let n = x.shape().n();
        let rest = x.numel() / n;
        x.clone().reshape(Shape::d2(n, rest))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let s = self.cached_shape.as_ref().expect("backward before forward(train)");
        dy.clone().reshape(s.clone())
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_param_grads;
    use crate::module::Sequential;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn linear_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        l.weight.value = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        l.bias.value = Tensor::from_vec(Shape::d1(2), vec![0.5, -0.5]);
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![1.0, 1.0]);
        let y = l.forward(&x, false);
        // y0 = 1+2+0.5 = 3.5 ; y1 = 3+4-0.5 = 6.5
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn linear_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new().push(Linear::new(4, 3, &mut rng));
        let x = Tensor::rand_uniform(Shape::d2(3, 4), 1.0, &mut rng);
        check_param_grads(&mut net, &x, &[0, 1, 2], 0.05);
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(Shape::nchw(2, 1, 2, 2), (0..8).map(|i| i as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &Shape::d2(2, 4));
        let back = f.backward(&y);
        assert_eq!(back.shape(), x.shape());
        assert_eq!(back.data(), x.data());
    }
}
