//! Trainable standard and depthwise 2-D convolutions.

use crate::module::Module;
use crate::param::Param;
use murmuration_tensor::conv::{col2im, conv2d, depthwise_conv2d, im2col, Conv2dParams};
use murmuration_tensor::gemm::{gemm_at, gemm_bt};
use murmuration_tensor::scratch;
use murmuration_tensor::{Shape, Tensor};
use rand::Rng;

/// Standard convolution layer (`weight: [c_out, c_in, k, k]`).
pub struct Conv2d {
    pub weight: Param,
    pub bias: Option<Param>,
    pub params: Conv2dParams,
    c_in: usize,
    c_out: usize,
    cached_in: Option<Tensor>,
}

impl Conv2d {
    /// Kaiming-initialized convolution.
    pub fn new<R: Rng>(
        c_in: usize,
        c_out: usize,
        p: Conv2dParams,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let fan_in = c_in * p.kernel * p.kernel;
        let weight =
            Param::new(Tensor::kaiming(Shape::nchw(c_out, c_in, p.kernel, p.kernel), fan_in, rng));
        let bias = bias.then(|| Param::new(Tensor::zeros(Shape::d1(c_out))));
        Conv2d { weight, bias, params: p, c_in, c_out, cached_in: None }
    }
}

impl Module for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().c(), self.c_in, "Conv2d input channels");
        if train {
            self.cached_in = Some(x.clone());
        }
        conv2d(x, &self.weight.value, self.bias.as_ref().map(|b| &b.value), self.params)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cached_in.as_ref().expect("backward before forward(train)");
        let (n, c_in, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
        let (oh, ow) = self.params.out_hw(h, w);
        let spatial = oh * ow;
        let rows = c_in * self.params.kernel * self.params.kernel;
        let c_out = self.c_out;
        assert_eq!(dy.shape(), &Shape::nchw(n, c_out, oh, ow), "Conv2d dy shape");

        let mut dx = Tensor::zeros(x.shape().clone());
        let img_in = c_in * h * w;
        let img_out = c_out * spatial;
        // All three workspaces come from the thread-local scratch pool, so
        // steady-state training steps allocate nothing here.
        scratch::with(|cols| {
            scratch::with(|dcols| {
                scratch::with(|dw_tmp| {
                    dw_tmp.clear();
                    dw_tmp.resize(c_out * rows, 0.0);
                    dcols.clear();
                    dcols.resize(rows * spatial, 0.0);
                    for b in 0..n {
                        let x_img = &x.data()[b * img_in..(b + 1) * img_in];
                        let dy_img = &dy.data()[b * img_out..(b + 1) * img_out];
                        im2col(x_img, c_in, h, w, self.params, cols);
                        // dW += dY · colsᵀ
                        gemm_bt(c_out, spatial, rows, dy_img, cols, dw_tmp);
                        for (g, t) in self.weight.grad.data_mut().iter_mut().zip(dw_tmp.iter()) {
                            *g += t;
                        }
                        // dcols = Wᵀ · dY  (W stored c_out×rows = k×m for gemm_at)
                        gemm_at(rows, c_out, spatial, self.weight.value.data(), dy_img, dcols);
                        col2im(
                            dcols,
                            c_in,
                            h,
                            w,
                            self.params,
                            &mut dx.data_mut()[b * img_in..(b + 1) * img_in],
                        );
                        // dB += per-channel sums
                        if let Some(bias) = &mut self.bias {
                            for co in 0..c_out {
                                let s: f32 = dy_img[co * spatial..(co + 1) * spatial].iter().sum();
                                bias.grad.data_mut()[co] += s;
                            }
                        }
                    }
                });
            });
        });
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

/// Depthwise convolution layer (`weight: [c, 1, k, k]`).
pub struct DepthwiseConv2d {
    pub weight: Param,
    pub bias: Option<Param>,
    pub params: Conv2dParams,
    channels: usize,
    cached_in: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Kaiming-initialized depthwise convolution.
    pub fn new<R: Rng>(channels: usize, p: Conv2dParams, bias: bool, rng: &mut R) -> Self {
        let fan_in = p.kernel * p.kernel;
        let weight =
            Param::new(Tensor::kaiming(Shape::nchw(channels, 1, p.kernel, p.kernel), fan_in, rng));
        let bias = bias.then(|| Param::new(Tensor::zeros(Shape::d1(channels))));
        DepthwiseConv2d { weight, bias, params: p, channels, cached_in: None }
    }
}

impl Module for DepthwiseConv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().c(), self.channels, "DepthwiseConv2d channels");
        if train {
            self.cached_in = Some(x.clone());
        }
        depthwise_conv2d(x, &self.weight.value, self.bias.as_ref().map(|b| &b.value), self.params)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cached_in.as_ref().expect("backward before forward(train)");
        let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
        let (oh, ow) = self.params.out_hw(h, w);
        let k = self.params.kernel;
        let (stride, pad) = (self.params.stride, self.params.pad);
        let mut dx = Tensor::zeros(x.shape().clone());
        // dB is a plain per-channel reduction over dy — do it in one pass up
        // front instead of accumulating inside the per-pixel tap loops.
        if let Some(bias) = &mut self.bias {
            let bg = bias.grad.data_mut();
            for (plane, dy_plane) in dy.data().chunks_exact(oh * ow).enumerate() {
                bg[plane % c] += dy_plane.iter().sum::<f32>();
            }
        }
        for b in 0..n {
            for ch in 0..c {
                let in_base = (b * c + ch) * h * w;
                let out_base = (b * c + ch) * oh * ow;
                let w_base = ch * k * k;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = dy.data()[out_base + oy * ow + ox];
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = in_base + iy as usize * w + ix as usize;
                                self.weight.grad.data_mut()[w_base + ky * k + kx] +=
                                    x.data()[xi] * g;
                                dx.data_mut()[xi] +=
                                    self.weight.value.data()[w_base + ky * k + kx] * g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn name(&self) -> &'static str {
        "DepthwiseConv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_param_grads;
    use crate::layers::{Flatten, GlobalAvgPool};
    use crate::module::Sequential;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn conv_forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l =
            Conv2d::new(3, 8, Conv2dParams { kernel: 3, stride: 2, pad: 1 }, true, &mut rng);
        let x = Tensor::rand_uniform(Shape::nchw(2, 3, 8, 8), 1.0, &mut rng);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), &Shape::nchw(2, 8, 4, 4));
        assert_eq!(l.param_count(), 8 * 3 * 9 + 8);
    }

    #[test]
    fn conv_gradcheck() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Sequential::new()
            .push(Conv2d::new(2, 3, Conv2dParams::same(3), true, &mut rng))
            .push(GlobalAvgPool::new())
            .push(Flatten::new());
        let x = Tensor::rand_uniform(Shape::nchw(2, 2, 5, 5), 1.0, &mut rng);
        check_param_grads(&mut net, &x, &[0, 2], 0.05);
    }

    #[test]
    fn depthwise_gradcheck() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new()
            .push(DepthwiseConv2d::new(3, Conv2dParams::same(3), true, &mut rng))
            .push(GlobalAvgPool::new())
            .push(Flatten::new());
        let x = Tensor::rand_uniform(Shape::nchw(2, 3, 5, 5), 1.0, &mut rng);
        check_param_grads(&mut net, &x, &[1, 0], 0.05);
    }

    #[test]
    fn conv_input_gradient_flows() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut l = Conv2d::new(2, 2, Conv2dParams::same(3), false, &mut rng);
        let x = Tensor::rand_uniform(Shape::nchw(1, 2, 4, 4), 1.0, &mut rng);
        let y = l.forward(&x, true);
        let dx = l.backward(&Tensor::full(y.shape().clone(), 1.0));
        assert_eq!(dx.shape(), x.shape());
        assert!(dx.norm() > 0.0, "input gradient must be nonzero");
    }
}
