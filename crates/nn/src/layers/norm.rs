//! Batch normalization over NCHW (per-channel statistics).

use crate::module::Module;
use crate::param::Param;
use murmuration_tensor::{Shape, Tensor};

const EPS: f32 = 1e-5;
const MOMENTUM: f32 = 0.1;

/// 2-D batch norm: per-channel mean/variance over (N, H, W) in training,
/// running statistics at inference.
pub struct BatchNorm2d {
    pub gamma: Param,
    pub beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    // Backward cache.
    cached_xhat: Option<Tensor>,
    cached_invstd: Vec<f32>,
}

impl BatchNorm2d {
    /// γ=1, β=0, running stats at (0, 1).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::full(Shape::d1(channels), 1.0)),
            beta: Param::new(Tensor::zeros(Shape::d1(channels))),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            cached_xhat: None,
            cached_invstd: Vec::new(),
        }
    }

    /// Read-only running mean (for tests / serialization).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Read-only running variance.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Module for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
        assert_eq!(c, self.channels, "BatchNorm2d channels");
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut y = Tensor::zeros(x.shape().clone());
        if train {
            let mut xhat = Tensor::zeros(x.shape().clone());
            self.cached_invstd = vec![0.0; c];
            for ch in 0..c {
                let mut mean = 0.0;
                for b in 0..n {
                    let base = (b * c + ch) * plane;
                    mean += x.data()[base..base + plane].iter().sum::<f32>();
                }
                mean /= m;
                let mut var = 0.0;
                for b in 0..n {
                    let base = (b * c + ch) * plane;
                    var += x.data()[base..base + plane]
                        .iter()
                        .map(|&v| (v - mean) * (v - mean))
                        .sum::<f32>();
                }
                var /= m;
                let invstd = 1.0 / (var + EPS).sqrt();
                self.cached_invstd[ch] = invstd;
                self.running_mean[ch] = (1.0 - MOMENTUM) * self.running_mean[ch] + MOMENTUM * mean;
                self.running_var[ch] = (1.0 - MOMENTUM) * self.running_var[ch] + MOMENTUM * var;
                let g = self.gamma.value.data()[ch];
                let bta = self.beta.value.data()[ch];
                for b in 0..n {
                    let base = (b * c + ch) * plane;
                    for i in 0..plane {
                        let xh = (x.data()[base + i] - mean) * invstd;
                        xhat.data_mut()[base + i] = xh;
                        y.data_mut()[base + i] = g * xh + bta;
                    }
                }
            }
            self.cached_xhat = Some(xhat);
        } else {
            for ch in 0..c {
                let invstd = 1.0 / (self.running_var[ch] + EPS).sqrt();
                let mean = self.running_mean[ch];
                let g = self.gamma.value.data()[ch];
                let bta = self.beta.value.data()[ch];
                for b in 0..n {
                    let base = (b * c + ch) * plane;
                    for i in 0..plane {
                        y.data_mut()[base + i] = g * (x.data()[base + i] - mean) * invstd + bta;
                    }
                }
            }
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let xhat = self.cached_xhat.as_ref().expect("backward before forward(train)");
        let (n, c, h, w) = (dy.shape().n(), dy.shape().c(), dy.shape().h(), dy.shape().w());
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut dx = Tensor::zeros(dy.shape().clone());
        for ch in 0..c {
            let g = self.gamma.value.data()[ch];
            let invstd = self.cached_invstd[ch];
            // Channel-wise reductions.
            let mut sum_dy = 0.0;
            let mut sum_dy_xhat = 0.0;
            for b in 0..n {
                let base = (b * c + ch) * plane;
                for i in 0..plane {
                    let d = dy.data()[base + i];
                    sum_dy += d;
                    sum_dy_xhat += d * xhat.data()[base + i];
                }
            }
            self.beta.grad.data_mut()[ch] += sum_dy;
            self.gamma.grad.data_mut()[ch] += sum_dy_xhat;
            // dx = γ·invstd/M · (M·dy − Σdy − x̂·Σ(dy·x̂))
            let k = g * invstd / m;
            for b in 0..n {
                let base = (b * c + ch) * plane;
                for i in 0..plane {
                    let d = dy.data()[base + i];
                    let xh = xhat.data()[base + i];
                    dx.data_mut()[base + i] = k * (m * d - sum_dy - xh * sum_dy_xhat);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_param_grads;
    use crate::layers::{Flatten, GlobalAvgPool};
    use crate::module::Sequential;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn training_output_is_normalized() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::rand_uniform(Shape::nchw(4, 2, 6, 6), 3.0, &mut rng);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, var ~1.
        let plane = 36;
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                let base = (b * 2 + ch) * plane;
                vals.extend_from_slice(&y.data()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        // Never trained: running stats are (0, 1), so inference is identity
        // modulo eps.
        let x = Tensor::from_vec(Shape::nchw(1, 1, 1, 2), vec![1.0, -1.0]);
        let y = bn.forward(&x, false);
        assert!((y.data()[0] - 1.0).abs() < 1e-3);
        assert!((y.data()[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(1);
        let x = {
            let mut t = Tensor::rand_uniform(Shape::nchw(8, 1, 4, 4), 1.0, &mut rng);
            for v in t.data_mut() {
                *v += 5.0; // batch mean ≈ 5
            }
            t
        };
        for _ in 0..50 {
            bn.forward(&x, true);
        }
        assert!((bn.running_mean()[0] - 5.0).abs() < 0.1, "{}", bn.running_mean()[0]);
    }

    #[test]
    fn batchnorm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Sequential::new()
            .push(BatchNorm2d::new(2))
            .push(GlobalAvgPool::new())
            .push(Flatten::new());
        let x = Tensor::rand_uniform(Shape::nchw(3, 2, 3, 3), 1.0, &mut rng);
        check_param_grads(&mut net, &x, &[0, 1, 0], 0.05);
    }
}
