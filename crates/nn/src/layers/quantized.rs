//! Inference-only int8 layers.
//!
//! [`QuantConv2d`] and [`QuantLinear`] are built *from* trained f32 layers
//! ([`Conv2d`], [`Linear`]) by per-output-channel weight quantization; their
//! forward pass runs the end-to-end int8 compute path in
//! [`murmuration_tensor::int8`] — per-tensor activation quantization, i32
//! accumulation, f32 epilogue. They carry no gradients: the runtime swaps
//! them in when a plan's low-bit config selects int8 compute for a unit,
//! trading a bounded accuracy loss for the kernel speedup measured in
//! `bench_kernels`.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::layers::{Conv2d, Linear};
use crate::module::Module;
use crate::param::Param;
use murmuration_tensor::conv::Conv2dParams;
use murmuration_tensor::int8::{qconv2d, qlinear, QConv2dWeights, QGemmWeights};
use murmuration_tensor::Tensor;

/// Int8 convolution: weights quantized per output channel at build time,
/// activations per tensor at each forward pass.
pub struct QuantConv2d {
    weights: QConv2dWeights,
    bias: Option<Tensor>,
    /// Convolution geometry, identical to the source layer's.
    pub params: Conv2dParams,
    c_in: usize,
}

impl QuantConv2d {
    /// Quantizes a trained [`Conv2d`]'s weights into an int8 forward layer.
    pub fn from_conv(src: &Conv2d) -> Self {
        let shape = src.weight.value.shape();
        let c_in = shape.c();
        QuantConv2d {
            weights: QConv2dWeights::quantize(&src.weight.value),
            bias: src.bias.as_ref().map(|b| b.value.clone()),
            params: src.params,
            c_in,
        }
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.weights.c_out()
    }
}

impl Module for QuantConv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert!(!train, "QuantConv2d is inference-only");
        assert_eq!(x.shape().c(), self.c_in, "QuantConv2d input channels");
        qconv2d(x, &self.weights, self.bias.as_ref(), self.params)
    }

    fn backward(&mut self, _dy: &Tensor) -> Tensor {
        panic!("QuantConv2d has no backward pass; quantize after training")
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "QuantConv2d"
    }
}

/// Int8 fully-connected layer: `y = x Wᵀ + b` with int8 weights/activations
/// and i32 accumulation.
pub struct QuantLinear {
    weights: QGemmWeights,
    bias: Vec<f32>,
    in_features: usize,
}

impl QuantLinear {
    /// Quantizes a trained [`Linear`]'s weights into an int8 forward layer.
    pub fn from_linear(src: &Linear) -> Self {
        let shape = src.weight.value.shape();
        let (out_features, in_features) = (shape.dim(0), shape.dim(1));
        QuantLinear {
            weights: QGemmWeights::quantize(out_features, in_features, src.weight.value.data()),
            bias: src.bias.value.data().to_vec(),
            in_features,
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weights.m()
    }
}

impl Module for QuantLinear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert!(!train, "QuantLinear is inference-only");
        assert_eq!(x.shape().rank(), 2, "QuantLinear expects [batch, in]");
        assert_eq!(x.shape().dim(1), self.in_features, "QuantLinear in_features");
        qlinear(x, &self.weights, Some(&self.bias))
    }

    fn backward(&mut self, _dy: &Tensor) -> Tensor {
        panic!("QuantLinear has no backward pass; quantize after training")
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "QuantLinear"
    }
}

/// Relative L2 error of the int8 layer against its f32 source — the accuracy
/// cost the planner trades against the int8 speedup.
pub fn relative_l2_error(f32_out: &Tensor, q_out: &Tensor) -> f32 {
    assert_eq!(f32_out.shape(), q_out.shape(), "shape mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&a, &b) in f32_out.data().iter().zip(q_out.data().iter()) {
        num += f64::from(a - b) * f64::from(a - b);
        den += f64::from(a) * f64::from(a);
    }
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f32::MAX };
    }
    ((num / den).sqrt()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_tensor::Shape;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn quant_conv_tracks_f32_within_quantization_noise() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut f = Conv2d::new(8, 16, Conv2dParams::same(3), true, &mut rng);
        let mut q = QuantConv2d::from_conv(&f);
        let x = Tensor::rand_uniform(Shape::nchw(2, 8, 14, 14), 1.0, &mut rng);
        let yf = f.forward(&x, false);
        let yq = q.forward(&x, false);
        assert_eq!(yf.shape(), yq.shape());
        let err = relative_l2_error(&yf, &yq);
        assert!(err < 0.05, "int8 conv relative L2 error {err} too large");
        assert!(err > 0.0, "int8 conv should not be bit-exact vs f32");
    }

    #[test]
    fn quant_linear_tracks_f32_within_quantization_noise() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut f = Linear::new(64, 10, &mut rng);
        let mut q = QuantLinear::from_linear(&f);
        assert_eq!(q.out_features(), 10);
        let x = Tensor::rand_uniform(Shape::d2(4, 64), 1.0, &mut rng);
        let yf = f.forward(&x, false);
        let yq = q.forward(&x, false);
        let err = relative_l2_error(&yf, &yq);
        assert!(err < 0.05, "int8 linear relative L2 error {err} too large");
    }

    #[test]
    fn quant_layers_have_no_params() {
        let mut rng = StdRng::seed_from_u64(13);
        let f = Conv2d::new(2, 3, Conv2dParams::same(3), false, &mut rng);
        let mut q = QuantConv2d::from_conv(&f);
        assert_eq!(q.param_count(), 0);
        assert_eq!(q.c_out(), 3);
    }

    #[test]
    fn quant_conv_strided_no_bias() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut f =
            Conv2d::new(4, 6, Conv2dParams { kernel: 3, stride: 2, pad: 1 }, false, &mut rng);
        let mut q = QuantConv2d::from_conv(&f);
        let x = Tensor::rand_uniform(Shape::nchw(1, 4, 9, 9), 1.0, &mut rng);
        let yf = f.forward(&x, false);
        let yq = q.forward(&x, false);
        assert_eq!(yf.shape(), yq.shape());
        assert!(relative_l2_error(&yf, &yq) < 0.05);
    }
}
