//! Trainable parameter: value + accumulated gradient.

use murmuration_tensor::Tensor;

/// A trainable tensor and its gradient accumulator.
#[derive(Clone, Debug)]
pub struct Param {
    pub value: Tensor,
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_tensor::Shape;

    #[test]
    fn grad_matches_value_shape() {
        let p = Param::new(Tensor::full(Shape::d2(2, 3), 1.0));
        assert_eq!(p.grad.shape(), p.value.shape());
        assert_eq!(p.numel(), 6);
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::zeros(Shape::d1(4)));
        p.grad.data_mut().fill(3.0);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }
}
