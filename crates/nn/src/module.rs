//! The module trait and the sequential / residual combinators.

use crate::param::Param;
use murmuration_tensor::Tensor;

/// A trainable network component.
///
/// `forward` caches whatever the matching `backward` call needs; callers must
/// pair them one-to-one (backward consumes the most recent forward's cache).
/// `backward` receives the loss gradient w.r.t. the module output, adds each
/// parameter's contribution into [`Param::grad`], and returns the gradient
/// w.r.t. the module input.
pub trait Module {
    /// Runs the layer on `x`, caching activations for backward when
    /// `train` is true.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `dy` (gradient w.r.t. this module's output), returning
    /// the gradient w.r.t. its input.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visits all trainable parameters.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Human-readable layer name for debugging / summaries.
    fn name(&self) -> &'static str;

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Zeroes every parameter gradient.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// Runs children in order.
pub struct Sequential {
    children: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Empty container.
    pub fn new() -> Self {
        Sequential { children: Vec::new() }
    }

    /// Builder-style push.
    pub fn push(mut self, m: impl Module + 'static) -> Self {
        self.children.push(Box::new(m));
        self
    }

    /// Push a boxed module (for dynamically assembled nets).
    pub fn push_boxed(&mut self, m: Box<dyn Module>) {
        self.children.push(m);
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True when the container has no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for c in &mut self.children {
            cur = c.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut cur = dy.clone();
        for c in self.children.iter_mut().rev() {
            cur = c.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for c in &mut self.children {
            c.visit_params(f);
        }
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

/// Residual wrapper: `y = x + body(x)`. The body must preserve shape.
pub struct Residual {
    body: Box<dyn Module>,
}

impl Residual {
    /// Wraps `body` in a skip connection.
    pub fn new(body: impl Module + 'static) -> Self {
        Residual { body: Box::new(body) }
    }
}

impl Module for Residual {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = self.body.forward(x, train);
        assert_eq!(
            y.shape(),
            x.shape(),
            "Residual body must preserve shape ({} vs {})",
            y.shape(),
            x.shape()
        );
        y.add_assign(x);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        // d/dx [x + f(x)] = dy + f'(x) dy
        let mut dx = self.body.backward(dy);
        dx.add_assign(dy);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params(f);
    }

    fn name(&self) -> &'static str {
        "Residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{HSwish, ReLU};
    use murmuration_tensor::Shape;

    #[test]
    fn sequential_composes_forward() {
        let mut s = Sequential::new().push(ReLU::new()).push(HSwish::new());
        let x = Tensor::from_vec(Shape::d1(3), vec![-1.0, 0.0, 4.0]);
        let y = s.forward(&x, false);
        // relu(-1)=0 -> hswish(0)=0 ; hswish(4)=4
        assert_eq!(y.data(), &[0.0, 0.0, 4.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn residual_identity_body_doubles_gradient() {
        // body = ReLU on positive input acts as identity, so y = 2x and
        // dy/dx = 2.
        let mut r = Residual::new(ReLU::new());
        let x = Tensor::from_vec(Shape::d1(2), vec![1.0, 2.0]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[2.0, 4.0]);
        let dy = Tensor::from_vec(Shape::d1(2), vec![1.0, 1.0]);
        let dx = r.backward(&dy);
        assert_eq!(dx.data(), &[2.0, 2.0]);
    }
}
