//! Synthetic image-classification dataset.
//!
//! Stand-in for ImageNet in the supernet-training demonstration: each class
//! is an oriented sinusoidal grating with class-specific frequency and
//! phase, corrupted with additive noise. The task is easy enough to learn
//! in seconds yet requires real convolutional features (orientation /
//! frequency selectivity), so it exercises the same training machinery a
//! real dataset would.

use murmuration_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled synthetic dataset held fully in memory.
pub struct SyntheticDataset {
    pub images: Vec<Tensor>,
    pub labels: Vec<usize>,
    pub classes: usize,
}

/// Parameters for dataset generation.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSpec {
    pub classes: usize,
    pub samples: usize,
    pub channels: usize,
    pub height: usize,
    pub width: usize,
    pub noise: f32,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec { classes: 4, samples: 128, channels: 3, height: 16, width: 16, noise: 0.25 }
    }
}

impl SyntheticDataset {
    /// Deterministic generation from a seed.
    pub fn generate(spec: SyntheticSpec, seed: u64) -> Self {
        assert!(spec.classes >= 2, "need at least two classes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(spec.samples);
        let mut labels = Vec::with_capacity(spec.samples);
        for i in 0..spec.samples {
            let class = i % spec.classes;
            // Class-specific orientation and frequency.
            let theta = std::f32::consts::PI * class as f32 / spec.classes as f32;
            let freq = 0.4 + 0.25 * class as f32;
            let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let mut img = Tensor::zeros(Shape::nchw(1, spec.channels, spec.height, spec.width));
            for c in 0..spec.channels {
                // Slight per-channel phase offset so channels carry
                // correlated but non-identical signal.
                let ph = phase + 0.3 * c as f32;
                for y in 0..spec.height {
                    for x in 0..spec.width {
                        let u = x as f32 * theta.cos() + y as f32 * theta.sin();
                        let noise = if spec.noise > 0.0 {
                            rng.gen_range(-spec.noise..spec.noise)
                        } else {
                            0.0
                        };
                        let v = (freq * u + ph).sin() + noise;
                        *img.at_mut(0, c, y, x) = v;
                    }
                }
            }
            images.push(img);
            labels.push(class);
        }
        SyntheticDataset { images, labels, classes: spec.classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Stacks samples `[i0, i0+count)` into one NCHW batch tensor plus
    /// labels. Wraps around the dataset end.
    pub fn batch(&self, i0: usize, count: usize) -> (Tensor, Vec<usize>) {
        assert!(!self.is_empty());
        let s = self.images[0].shape();
        let (c, h, w) = (s.c(), s.h(), s.w());
        let mut out = Tensor::zeros(Shape::nchw(count, c, h, w));
        let mut labels = Vec::with_capacity(count);
        let img_len = c * h * w;
        for j in 0..count {
            let idx = (i0 + j) % self.len();
            out.data_mut()[j * img_len..(j + 1) * img_len].copy_from_slice(self.images[idx].data());
            labels.push(self.labels[idx]);
        }
        (out, labels)
    }

    /// Deterministic split into (train, eval) by stride. Pick `eval_every`
    /// coprime with the class count so both halves keep a balanced class mix
    /// (labels cycle through classes by index).
    pub fn split(self, eval_every: usize) -> (SyntheticDataset, SyntheticDataset) {
        assert!(eval_every >= 2);
        let mut tr_i = Vec::new();
        let mut tr_l = Vec::new();
        let mut ev_i = Vec::new();
        let mut ev_l = Vec::new();
        for (i, (img, lab)) in self.images.into_iter().zip(self.labels).enumerate() {
            if i % eval_every == 0 {
                ev_i.push(img);
                ev_l.push(lab);
            } else {
                tr_i.push(img);
                tr_l.push(lab);
            }
        }
        (
            SyntheticDataset { images: tr_i, labels: tr_l, classes: self.classes },
            SyntheticDataset { images: ev_i, labels: ev_l, classes: self.classes },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDataset::generate(SyntheticSpec::default(), 7);
        let b = SyntheticDataset::generate(SyntheticSpec::default(), 7);
        assert_eq!(a.images[0].data(), b.images[0].data());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = SyntheticDataset::generate(
            SyntheticSpec { classes: 3, samples: 9, ..Default::default() },
            0,
        );
        assert_eq!(d.labels, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn batch_wraps_around() {
        let d = SyntheticDataset::generate(
            SyntheticSpec { classes: 2, samples: 4, ..Default::default() },
            0,
        );
        let (x, labels) = d.batch(3, 3);
        assert_eq!(x.shape().n(), 3);
        assert_eq!(labels, vec![d.labels[3], d.labels[0], d.labels[1]]);
    }

    #[test]
    fn split_is_balanced_and_disjoint() {
        let d = SyntheticDataset::generate(
            SyntheticSpec { classes: 2, samples: 21, ..Default::default() },
            0,
        );
        let (tr, ev) = d.split(3);
        assert_eq!(tr.len() + ev.len(), 21);
        assert_eq!(ev.len(), 7);
        assert!(ev.labels.contains(&0) && ev.labels.contains(&1));
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean absolute difference between class-0 and class-1 prototypes
        // should dominate the noise level.
        let d = SyntheticDataset::generate(SyntheticSpec { noise: 0.0, ..Default::default() }, 3);
        let a = &d.images[0]; // class 0
        let b = &d.images[1]; // class 1
        let diff: f32 =
            a.data().iter().zip(b.data().iter()).map(|(x, y)| (x - y).abs()).sum::<f32>()
                / a.numel() as f32;
        assert!(diff > 0.2, "classes too similar: {diff}");
    }
}
