//! Losses. Softmax cross-entropy is the only loss the system needs.

use murmuration_tensor::activation::softmax_into;
use murmuration_tensor::{Shape, Tensor};

/// Softmax cross-entropy over a `[batch, classes]` logits tensor.
///
/// Returns `(mean_loss, dlogits)` where `dlogits` is already averaged over
/// the batch, so callers feed it straight into `Module::backward`.
#[allow(clippy::needless_range_loop)] // indexing two parallel arrays
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [batch, classes]");
    let batch = logits.shape().dim(0);
    let classes = logits.shape().dim(1);
    assert_eq!(targets.len(), batch, "one target per row");
    let mut dlogits = Tensor::zeros(Shape::d2(batch, classes));
    let mut loss = 0.0;
    let mut probs = vec![0.0f32; classes];
    let inv_batch = 1.0 / batch as f32;
    for b in 0..batch {
        let row = &logits.data()[b * classes..(b + 1) * classes];
        softmax_into(row, &mut probs);
        let t = targets[b];
        assert!(t < classes, "target {t} out of range for {classes} classes");
        loss -= probs[t].max(1e-12).ln();
        let drow = &mut dlogits.data_mut()[b * classes..(b + 1) * classes];
        for (i, d) in drow.iter_mut().enumerate() {
            *d = (probs[i] - f32::from(i == t)) * inv_batch;
        }
    }
    (loss * inv_batch, dlogits)
}

/// Top-1 accuracy of `[batch, classes]` logits against targets, in `[0, 1]`.
#[allow(clippy::needless_range_loop)] // indexing two parallel arrays
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    let batch = logits.shape().dim(0);
    let classes = logits.shape().dim(1);
    let mut correct = 0usize;
    for b in 0..batch {
        let row = &logits.data()[b * classes..(b + 1) * classes];
        let pred = row
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc })
            .0;
        correct += usize::from(pred == targets[b]);
    }
    correct as f32 / batch as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_classes() {
        let logits = Tensor::zeros(Shape::d2(2, 4));
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(Shape::d2(1, 3), vec![2.0, -1.0, 0.5]);
        let (_, d) = softmax_cross_entropy(&logits, &[1]);
        let s: f32 = d.data().iter().sum();
        assert!(s.abs() < 1e-6);
        // Target coordinate gradient is negative.
        assert!(d.data()[1] < 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(Shape::d2(1, 3), vec![0.3, -0.7, 1.1]);
        let (_, d) = softmax_cross_entropy(&logits, &[2]);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &[2]);
            let (fm, _) = softmax_cross_entropy(&lm, &[2]);
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - d.data()[i]).abs() < 1e-3, "coord {i}");
        }
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }
}
