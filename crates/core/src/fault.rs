//! Fault injection for the distributed executor.
//!
//! [`FaultyCompute`] wraps any [`UnitCompute`] and turns specific devices
//! bad on demand: killed outright, killed at a scripted call index,
//! panicking, stalling past a deadline, or returning an error reply. It is
//! the executor-side counterpart of `murmuration_edgesim::FleetTrace` —
//! traces describe *when* a device misbehaves in virtual time, this
//! wrapper makes the worker threads actually do it.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::executor::{UnitCompute, UnitOutcome};
use murmuration_edgesim::{DeviceStatus, FleetTrace};
use murmuration_tensor::Tensor;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scripted misbehavior, consumed when a device reaches a call index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Worker exits without replying (process crash). The device also
    /// stays dead for later calls until [`FaultyCompute::revive`].
    Vanish,
    /// Worker panics mid-unit (caught by the executor, turned into an
    /// error reply). The device survives.
    Panic,
    /// Worker sleeps this long before computing — a straggler.
    Stall(Duration),
    /// Worker sends an error reply and survives.
    Error,
}

/// A [`UnitCompute`] wrapper with per-device kill switches, slowdown
/// factors, call counters, and one-shot scripted faults.
pub struct FaultyCompute {
    inner: Arc<dyn UnitCompute>,
    dead: Vec<AtomicBool>,
    /// Compute slowdown ×1000 (1000 = nominal speed).
    slow_milli: Vec<AtomicUsize>,
    calls: Vec<AtomicUsize>,
    /// `(device, call index, fault)` — consumed on trigger.
    scripted: Mutex<Vec<(usize, usize, FaultKind)>>,
}

impl FaultyCompute {
    /// Wraps `inner` for a fleet of `n_devices` healthy devices.
    pub fn new(inner: Arc<dyn UnitCompute>, n_devices: usize) -> Self {
        FaultyCompute {
            inner,
            dead: (0..n_devices).map(|_| AtomicBool::new(false)).collect(),
            slow_milli: (0..n_devices).map(|_| AtomicUsize::new(1000)).collect(),
            calls: (0..n_devices).map(|_| AtomicUsize::new(0)).collect(),
            scripted: Mutex::new(Vec::new()),
        }
    }

    /// Kills `dev`: its worker vanishes on the next job it accepts.
    pub fn kill(&self, dev: usize) {
        self.dead[dev].store(true, Ordering::SeqCst);
    }

    /// Revives `dev` at the compute level. The executor must still
    /// `restart_device` if the worker thread already exited.
    pub fn revive(&self, dev: usize) {
        self.dead[dev].store(false, Ordering::SeqCst);
    }

    /// Whether `dev` is currently marked dead.
    pub fn is_dead(&self, dev: usize) -> bool {
        self.dead[dev].load(Ordering::SeqCst)
    }

    /// Multiplies `dev`'s compute time by `factor` (≥ 1.0).
    pub fn set_slowdown(&self, dev: usize, factor: f64) {
        assert!(factor >= 1.0 && factor.is_finite());
        self.slow_milli[dev].store((factor * 1e3) as usize, Ordering::SeqCst);
    }

    /// Schedules `kind` to fire when `dev` serves its `at_call`-th job
    /// (0-based, counted across all units). One-shot.
    pub fn script(&self, dev: usize, at_call: usize, kind: FaultKind) {
        self.scripted.lock().push((dev, at_call, kind));
    }

    /// Jobs device `dev` has accepted so far.
    pub fn calls(&self, dev: usize) -> usize {
        self.calls[dev].load(Ordering::SeqCst)
    }

    /// Applies a [`FleetTrace`] sample at virtual time `t_ms`: `Down`
    /// devices are killed, `Up` devices revived, `Slow` devices get the
    /// trace's slowdown factor. Returns the alive mask.
    pub fn apply_trace(&self, fleet: &FleetTrace, t_ms: f64) -> Vec<bool> {
        let n = self.dead.len().min(fleet.n_devices());
        for dev in 0..n {
            match fleet.status(dev, t_ms) {
                DeviceStatus::Down => self.kill(dev),
                DeviceStatus::Up => {
                    self.revive(dev);
                    self.set_slowdown(dev, 1.0);
                }
                DeviceStatus::Slow(f) => {
                    self.revive(dev);
                    self.set_slowdown(dev, f.max(1.0));
                }
            }
        }
        (0..self.dead.len()).map(|d| !self.is_dead(d)).collect()
    }

    fn take_scripted(&self, dev: usize, call: usize) -> Option<FaultKind> {
        let mut scripted = self.scripted.lock();
        let pos = scripted.iter().position(|(d, c, _)| *d == dev && *c == call)?;
        Some(scripted.remove(pos).2)
    }
}

impl UnitCompute for FaultyCompute {
    fn n_units(&self) -> usize {
        self.inner.n_units()
    }

    fn run_unit(&self, unit: usize, input: &Tensor) -> Tensor {
        self.inner.run_unit(unit, input)
    }

    fn run_unit_on(&self, dev: usize, unit: usize, input: &Tensor) -> UnitOutcome {
        let call = self.calls[dev].fetch_add(1, Ordering::SeqCst);
        match self.take_scripted(dev, call) {
            Some(FaultKind::Vanish) => {
                self.kill(dev);
                return UnitOutcome::Vanish;
            }
            Some(FaultKind::Panic) => panic!("injected panic on device {dev} unit {unit}"),
            Some(FaultKind::Stall(d)) => std::thread::sleep(d),
            Some(FaultKind::Error) => {
                return UnitOutcome::Error(format!("injected error on device {dev} unit {unit}"));
            }
            None => {}
        }
        if self.dead[dev].load(Ordering::SeqCst) {
            return UnitOutcome::Vanish;
        }
        let t0 = std::time::Instant::now();
        let out = self.inner.run_unit(unit, input);
        let slow = self.slow_milli[dev].load(Ordering::SeqCst);
        if slow > 1000 {
            let extra = t0.elapsed().mul_f64((slow as f64 - 1000.0) / 1000.0);
            std::thread::sleep(extra);
        }
        UnitOutcome::Output(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ConvStackCompute;
    use murmuration_edgesim::DeviceTrace;
    use murmuration_tensor::Shape;

    fn wrapped() -> FaultyCompute {
        FaultyCompute::new(Arc::new(ConvStackCompute::random(2, 1, 2, 3)), 3)
    }

    #[test]
    fn healthy_wrapper_is_transparent() {
        let f = wrapped();
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::rand_uniform(Shape::nchw(1, 2, 6, 6), 1.0, &mut rng);
        match f.run_unit_on(1, 0, &x) {
            UnitOutcome::Output(t) => assert_eq!(t.data(), f.run_unit(0, &x).data()),
            _ => panic!("healthy device must produce output"),
        }
        assert_eq!(f.calls(1), 1);
        assert_eq!(f.calls(0), 0);
    }

    #[test]
    fn killed_device_vanishes_until_revived() {
        let f = wrapped();
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::rand_uniform(Shape::nchw(1, 2, 6, 6), 1.0, &mut rng);
        f.kill(2);
        assert!(matches!(f.run_unit_on(2, 0, &x), UnitOutcome::Vanish));
        f.revive(2);
        assert!(matches!(f.run_unit_on(2, 0, &x), UnitOutcome::Output(_)));
    }

    #[test]
    fn scripted_faults_fire_once_at_their_call_index() {
        let f = wrapped();
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::rand_uniform(Shape::nchw(1, 2, 6, 6), 1.0, &mut rng);
        f.script(0, 1, FaultKind::Error);
        assert!(matches!(f.run_unit_on(0, 0, &x), UnitOutcome::Output(_)));
        assert!(matches!(f.run_unit_on(0, 0, &x), UnitOutcome::Error(_)));
        assert!(matches!(f.run_unit_on(0, 0, &x), UnitOutcome::Output(_)), "one-shot");
    }

    #[test]
    fn fleet_trace_drives_kill_and_revive() {
        let f = wrapped();
        let mut fleet = FleetTrace::always_up(3);
        fleet.set(1, DeviceTrace::down_between(50.0, 100.0));
        let mask = f.apply_trace(&fleet, 0.0);
        assert_eq!(mask, vec![true, true, true]);
        let mask = f.apply_trace(&fleet, 60.0);
        assert_eq!(mask, vec![true, false, true]);
        assert!(f.is_dead(1));
        let mask = f.apply_trace(&fleet, 120.0);
        assert_eq!(mask, vec![true, true, true]);
    }
}
