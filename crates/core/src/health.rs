//! Graded device-health tracking for gray failures.
//!
//! Crash-stop faults are handled by the binary dead-mask in
//! [`crate::runtime`]; this module covers the *gray* failures that mask
//! misses: a device that is slow-but-alive (thermal throttling, a
//! contended CPU, an asymmetric congested link) never crashes, yet drags
//! every partitioned request's tail latency. Each device gets a robust
//! latency tracker (EWMA plus windowed median/MAD outlier scoring, fed
//! from executor per-attempt timings and transport heartbeat RTTs) that
//! drives a graded state machine:
//!
//! ```text
//!            outliers ≥ suspect_after          outliers keep coming
//!  Healthy ───────────────────────► Suspect ─────────────────────► Quarantined
//!     ▲  ◄──────────────────────────┘  ▲                              │
//!     │     inliers ≥ clear_after       │ canary outlier/failure      │ backoff
//!     │                                 │ (backoff doubles)           ▼ elapsed
//!     └──────────────── passing canaries ≤────────────────────── Probation
//!            (probation_canaries inlier successes)
//! ```
//!
//! The scheduler consumes this as a *penalty*, not a binary mask:
//! `Suspect`/`Probation` devices keep serving but their links are
//! reported degraded (so decisions route around them), while
//! `Quarantined` devices are removed from the placeable mask entirely
//! until a canary probe re-admits them. `Healthy` is unreachable from
//! quarantine without passing canaries — a property the proptests pin.
//!
//! Everything here is driven by explicit timestamps (`now_ms`), never the
//! wall clock, so state-machine behaviour is exactly reproducible under
//! test and in virtual-time simulations.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::VecDeque;

/// Tuning knobs for gray-failure detection.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// EWMA smoothing factor for the latency mean.
    pub alpha: f64,
    /// Sliding window length for median/MAD scoring.
    pub window: usize,
    /// Minimum samples before outlier scoring activates (cold trackers
    /// never flag).
    pub min_samples: usize,
    /// Robust z-score above which a sample is an outlier.
    pub outlier_z: f64,
    /// Consecutive outliers before `Healthy → Suspect`.
    pub suspect_after: u32,
    /// Consecutive inliers before `Suspect → Healthy`.
    pub clear_after: u32,
    /// Further consecutive outliers while `Suspect` before quarantine
    /// (total streak `suspect_after + quarantine_after`).
    pub quarantine_after: u32,
    /// Quarantine dwell before the first canary probe is due.
    pub canary_backoff_ms: f64,
    /// Backoff cap (doubles on every failed canary).
    pub canary_backoff_max_ms: f64,
    /// Consecutive passing canaries before `Probation → Healthy`.
    pub probation_canaries: u32,
    /// Latency penalty multiplier applied to a `Suspect` device's links.
    pub suspect_penalty: f64,
    /// Latency penalty multiplier applied to a `Probation` device's links.
    pub probation_penalty: f64,
    /// Cap on the penalty that *peer-reported* (gossiped) health may apply
    /// to a device. Peer reports can steer routing away from a device but
    /// can never quarantine it — that requires local evidence plus a local
    /// canary pass — so the cap stays finite.
    pub peer_penalty_cap: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            alpha: 0.2,
            window: 32,
            min_samples: 8,
            outlier_z: 4.0,
            suspect_after: 3,
            clear_after: 4,
            quarantine_after: 3,
            canary_backoff_ms: 500.0,
            canary_backoff_max_ms: 8_000.0,
            probation_canaries: 2,
            suspect_penalty: 4.0,
            probation_penalty: 2.0,
            peer_penalty_cap: 4.0,
        }
    }
}

/// Robust per-device (or per-link) latency statistics: an EWMA mean for
/// the smooth trend plus a sliding window for median/MAD outlier scoring
/// and tail quantiles (the hedge trigger).
#[derive(Clone, Debug)]
pub struct LatencyTracker {
    alpha: f64,
    ewma: Option<f64>,
    window: VecDeque<f64>,
    cap: usize,
}

impl LatencyTracker {
    /// An empty tracker with the given EWMA factor and window capacity.
    pub fn new(alpha: f64, cap: usize) -> Self {
        LatencyTracker { alpha, ewma: None, window: VecDeque::new(), cap: cap.max(4) }
    }

    /// Records one latency sample (milliseconds).
    pub fn observe(&mut self, ms: f64) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        self.ewma = Some(match self.ewma {
            None => ms,
            Some(e) => self.alpha * ms + (1.0 - self.alpha) * e,
        });
        if self.window.len() == self.cap {
            self.window.pop_front();
        }
        self.window.push_back(ms);
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no samples have been observed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Smoothed mean latency, if any sample has been observed.
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    fn sorted(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.window.iter().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// Median of the window (`None` when empty).
    pub fn median(&self) -> Option<f64> {
        let v = self.sorted();
        if v.is_empty() {
            return None;
        }
        Some(v[v.len() / 2])
    }

    /// Median absolute deviation of the window.
    pub fn mad(&self) -> Option<f64> {
        let med = self.median()?;
        let mut dev: Vec<f64> = self.window.iter().map(|x| (x - med).abs()).collect();
        dev.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(dev[dev.len() / 2])
    }

    /// Latency quantile `q ∈ [0, 1]` over the window (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let v = self.sorted();
        if v.is_empty() {
            return None;
        }
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx.min(v.len() - 1)])
    }

    /// Robust z-score of `ms` against the window: |ms − median| over a
    /// floored MAD scale (the floor keeps a zero-variance window from
    /// flagging microsecond jitter). 0.0 until the window has samples.
    pub fn outlier_score(&self, ms: f64) -> f64 {
        let (Some(med), Some(mad)) = (self.median(), self.mad()) else { return 0.0 };
        let denom = (1.4826 * mad).max(0.1 * med).max(0.1);
        (ms - med).abs() / denom
    }

    /// Whether `ms` would be flagged as a *slow* outlier under `cfg`:
    /// enough history, robust z above threshold, and slower than both the
    /// median and the EWMA trend (fast samples are never unhealthy).
    pub fn is_slow_outlier(&self, ms: f64, cfg: &HealthConfig) -> bool {
        if self.window.len() < cfg.min_samples {
            return false;
        }
        let above_trend = match (self.median(), self.ewma) {
            (Some(med), Some(e)) => ms > med && ms > e,
            _ => false,
        };
        above_trend && self.outlier_score(ms) > cfg.outlier_z
    }
}

/// The graded health state of one device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Nominal: full capacity, no penalty.
    Healthy,
    /// Recent latency outliers: still placeable, links penalized.
    Suspect,
    /// Recently re-probed out of quarantine: placeable under a mild
    /// penalty while canaries confirm recovery.
    Probation,
    /// Persistent straggler: removed from the placeable mask until a
    /// canary probe is due.
    Quarantined,
}

impl HealthState {
    /// Stable single-byte wire code (gossip health digests).
    pub fn code(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Suspect => 1,
            HealthState::Probation => 2,
            HealthState::Quarantined => 3,
        }
    }

    /// Decodes a wire code; unknown codes degrade to `Healthy` (an
    /// unrecognised claim from a peer must not penalize anyone).
    pub fn from_code(code: u8) -> HealthState {
        match code {
            1 => HealthState::Suspect,
            2 => HealthState::Probation,
            3 => HealthState::Quarantined,
            _ => HealthState::Healthy,
        }
    }
}

/// Monotone counters of graded-state transitions, for robustness metrics:
/// how often the fleet flapped, quarantined, and recovered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthTransitions {
    /// Entries into `Suspect` (from `Healthy`).
    pub suspects: u64,
    /// Entries into `Quarantined`.
    pub quarantines: u64,
    /// Re-admissions to `Healthy` via passing canaries.
    pub readmissions: u64,
}

/// What a health update caused, so callers can react (purge caches on
/// quarantine, log re-admissions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthEvent {
    /// No state transition of interest.
    None,
    /// The device just entered `Quarantined`.
    Quarantined,
    /// The device just returned to `Healthy` after passing its canaries.
    Readmitted,
}

/// One device's gray-health machine.
#[derive(Clone, Debug)]
struct DeviceGrayHealth {
    tracker: LatencyTracker,
    link: LatencyTracker,
    state: HealthState,
    bad_streak: u32,
    good_streak: u32,
    canary_passes: u32,
    quarantined_at_ms: f64,
    backoff_ms: f64,
    /// Trace-driven slowdown factor (virtual simulations); folded into
    /// the penalty but never into the measured state machine.
    virtual_slow: Option<f64>,
    /// Peer-reported (gossip-aggregated) penalty; folded into the penalty
    /// capped at `peer_penalty_cap`, never into the state machine.
    peer_penalty: Option<f64>,
}

impl DeviceGrayHealth {
    fn new(cfg: &HealthConfig) -> Self {
        DeviceGrayHealth {
            tracker: LatencyTracker::new(cfg.alpha, cfg.window),
            link: LatencyTracker::new(cfg.alpha, cfg.window),
            state: HealthState::Healthy,
            bad_streak: 0,
            good_streak: 0,
            canary_passes: 0,
            quarantined_at_ms: 0.0,
            backoff_ms: cfg.canary_backoff_ms,
            virtual_slow: None,
            peer_penalty: None,
        }
    }

    fn quarantine(&mut self, cfg: &HealthConfig, now_ms: f64, double_backoff: bool) -> HealthEvent {
        if double_backoff {
            self.backoff_ms = (self.backoff_ms * 2.0).min(cfg.canary_backoff_max_ms);
        }
        self.state = HealthState::Quarantined;
        self.quarantined_at_ms = now_ms;
        self.bad_streak = 0;
        self.good_streak = 0;
        self.canary_passes = 0;
        HealthEvent::Quarantined
    }

    fn readmit(&mut self, cfg: &HealthConfig) -> HealthEvent {
        self.state = HealthState::Healthy;
        self.bad_streak = 0;
        self.good_streak = 0;
        self.canary_passes = 0;
        self.backoff_ms = cfg.canary_backoff_ms;
        HealthEvent::Readmitted
    }

    /// An outlier-grade bad signal (slow sample, RTT spike, or failure).
    fn on_bad(&mut self, cfg: &HealthConfig, now_ms: f64) -> HealthEvent {
        match self.state {
            HealthState::Healthy => {
                self.good_streak = 0;
                self.bad_streak += 1;
                if self.bad_streak >= cfg.suspect_after {
                    self.state = HealthState::Suspect;
                }
                HealthEvent::None
            }
            HealthState::Suspect => {
                self.good_streak = 0;
                self.bad_streak += 1;
                if self.bad_streak >= cfg.suspect_after + cfg.quarantine_after {
                    self.quarantine(cfg, now_ms, false)
                } else {
                    HealthEvent::None
                }
            }
            // A failed canary: back to quarantine with a longer dwell.
            HealthState::Probation => self.quarantine(cfg, now_ms, true),
            HealthState::Quarantined => HealthEvent::None,
        }
    }

    /// An inlier-grade good signal (a timely success).
    fn on_good(&mut self, cfg: &HealthConfig) -> HealthEvent {
        match self.state {
            HealthState::Healthy => {
                self.bad_streak = 0;
                HealthEvent::None
            }
            HealthState::Suspect => {
                self.bad_streak = 0;
                self.good_streak += 1;
                if self.good_streak >= cfg.clear_after {
                    self.state = HealthState::Healthy;
                    self.good_streak = 0;
                }
                HealthEvent::None
            }
            HealthState::Probation => {
                self.canary_passes += 1;
                if self.canary_passes >= cfg.probation_canaries {
                    self.readmit(cfg)
                } else {
                    HealthEvent::None
                }
            }
            // A late straggler reply finishing after quarantine: informs
            // the tracker, never the state machine (re-admission only
            // flows through the canary path).
            HealthState::Quarantined => HealthEvent::None,
        }
    }

    fn on_success(&mut self, cfg: &HealthConfig, latency_ms: f64, now_ms: f64) -> HealthEvent {
        let outlier = self.tracker.is_slow_outlier(latency_ms, cfg);
        self.tracker.observe(latency_ms);
        if outlier {
            self.on_bad(cfg, now_ms)
        } else {
            self.on_good(cfg)
        }
    }

    fn on_failure(&mut self, cfg: &HealthConfig, now_ms: f64) -> HealthEvent {
        // A hard failure is a strong gray signal: jump straight past the
        // single-outlier grace toward Suspect.
        if self.state == HealthState::Healthy {
            self.bad_streak = self.bad_streak.max(cfg.suspect_after.saturating_sub(1));
        }
        self.on_bad(cfg, now_ms)
    }

    fn canary_due(&self, now_ms: f64) -> bool {
        self.state == HealthState::Quarantined && now_ms - self.quarantined_at_ms >= self.backoff_ms
    }

    /// Advances quarantine to probation once the backoff has elapsed.
    fn poll(&mut self, now_ms: f64) -> HealthEvent {
        if self.canary_due(now_ms) {
            self.state = HealthState::Probation;
            self.canary_passes = 0;
        }
        HealthEvent::None
    }

    /// Penalty from direct local evidence only (state machine + trace
    /// slowdown) — the reference that peer claims are scored against, so
    /// a gossiped lie can never poison its own refutation.
    fn measured_penalty(&self, cfg: &HealthConfig) -> f64 {
        let measured = match self.state {
            HealthState::Healthy => 1.0,
            HealthState::Suspect => cfg.suspect_penalty,
            HealthState::Probation => cfg.probation_penalty,
            HealthState::Quarantined => f64::INFINITY,
        };
        measured.max(self.virtual_slow.unwrap_or(1.0))
    }

    fn penalty(&self, cfg: &HealthConfig) -> f64 {
        let peer = self
            .peer_penalty
            .filter(|p| p.is_finite() && *p > 1.0)
            .map_or(1.0, |p| p.min(cfg.peer_penalty_cap));
        self.measured_penalty(cfg).max(peer)
    }
}

/// Gray-health tracking for a whole fleet. Device 0 (the coordinator /
/// local device) is pinned `Healthy`: there is no backup to route its
/// work to, so penalizing it only hurts.
pub struct FleetHealth {
    cfg: HealthConfig,
    devs: Vec<DeviceGrayHealth>,
    transitions: HealthTransitions,
}

impl FleetHealth {
    /// A fleet of `n` devices, all initially healthy.
    pub fn new(n_devices: usize, cfg: HealthConfig) -> Self {
        FleetHealth {
            cfg,
            devs: (0..n_devices).map(|_| DeviceGrayHealth::new(&cfg)).collect(),
            transitions: HealthTransitions::default(),
        }
    }

    /// Folds one health event (and the surrounding state change) into the
    /// monotone transition counters.
    fn count(&mut self, before: HealthState, dev: usize, ev: HealthEvent) -> HealthEvent {
        let after = self.state(dev);
        if before == HealthState::Healthy && after == HealthState::Suspect {
            self.transitions.suspects += 1;
        }
        match ev {
            HealthEvent::Quarantined => self.transitions.quarantines += 1,
            HealthEvent::Readmitted => self.transitions.readmissions += 1,
            HealthEvent::None => {}
        }
        ev
    }

    /// Number of tracked devices.
    pub fn n_devices(&self) -> usize {
        self.devs.len()
    }

    /// The configuration in force.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Feeds one successful execution's latency. Device 0 only updates
    /// its tracker.
    pub fn on_success(&mut self, dev: usize, latency_ms: f64, now_ms: f64) -> HealthEvent {
        let cfg = self.cfg;
        let Some(d) = self.devs.get_mut(dev) else { return HealthEvent::None };
        if dev == 0 {
            d.tracker.observe(latency_ms);
            return HealthEvent::None;
        }
        let before = d.state;
        let ev = d.on_success(&cfg, latency_ms, now_ms);
        self.count(before, dev, ev)
    }

    /// Feeds one hard execution failure.
    pub fn on_failure(&mut self, dev: usize, now_ms: f64) -> HealthEvent {
        let cfg = self.cfg;
        let Some(d) = self.devs.get_mut(dev) else { return HealthEvent::None };
        if dev == 0 {
            return HealthEvent::None;
        }
        let before = d.state;
        let ev = d.on_failure(&cfg, now_ms);
        self.count(before, dev, ev)
    }

    /// Feeds one transport heartbeat RTT for the link to `dev`. An RTT
    /// spike counts like a latency outlier (the link is part of the gray
    /// surface); timely RTTs only update the link tracker — they must not
    /// mask compute slowness.
    pub fn on_link_rtt(&mut self, dev: usize, rtt_ms: f64, now_ms: f64) -> HealthEvent {
        let cfg = self.cfg;
        let Some(d) = self.devs.get_mut(dev) else { return HealthEvent::None };
        let outlier = d.link.is_slow_outlier(rtt_ms, &cfg);
        d.link.observe(rtt_ms);
        if dev == 0 || !outlier {
            return HealthEvent::None;
        }
        let before = d.state;
        let ev = d.on_bad(&cfg, now_ms);
        self.count(before, dev, ev)
    }

    /// Advances quarantined devices whose canary backoff has elapsed into
    /// `Probation`. Call before routing decisions.
    pub fn poll(&mut self, now_ms: f64) {
        for d in &mut self.devs {
            let _ = d.poll(now_ms);
        }
    }

    /// Whether `dev`'s canary probe is due (still quarantined, backoff
    /// elapsed, not yet polled into probation).
    pub fn canary_due(&self, dev: usize, now_ms: f64) -> bool {
        self.devs.get(dev).is_some_and(|d| d.canary_due(now_ms))
    }

    /// Current state of one device.
    pub fn state(&self, dev: usize) -> HealthState {
        self.devs.get(dev).map_or(HealthState::Healthy, |d| d.state)
    }

    /// Current state of every device.
    pub fn states(&self) -> Vec<HealthState> {
        self.devs.iter().map(|d| d.state).collect()
    }

    /// Latency penalty multiplier for one device (1.0 healthy, ∞
    /// quarantined).
    pub fn penalty(&self, dev: usize) -> f64 {
        self.devs.get(dev).map_or(1.0, |d| d.penalty(&self.cfg))
    }

    /// Penalties for every device.
    pub fn penalties(&self) -> Vec<f64> {
        self.devs.iter().map(|d| d.penalty(&self.cfg)).collect()
    }

    /// `mask[d]` is true when `d` may receive planned work (everything
    /// except `Quarantined`).
    pub fn placeable_mask(&self) -> Vec<bool> {
        self.devs.iter().map(|d| d.state != HealthState::Quarantined).collect()
    }

    /// Trace-driven slowdown (virtual simulations): a factor > 1 folds
    /// into the penalty without touching the measured state machine;
    /// `None` clears it.
    pub fn set_virtual_slowdown(&mut self, dev: usize, factor: Option<f64>) {
        if dev == 0 {
            return;
        }
        if let Some(d) = self.devs.get_mut(dev) {
            d.virtual_slow = factor.filter(|f| f.is_finite() && *f > 1.0);
        }
    }

    /// Observed latency quantile for `dev`, if enough history exists.
    pub fn latency_quantile(&self, dev: usize, q: f64) -> Option<f64> {
        self.devs.get(dev).and_then(|d| d.tracker.quantile(q))
    }

    /// Peer-reported (gossip-aggregated) penalty for `dev`. Folds into
    /// [`FleetHealth::penalty`] capped at
    /// [`HealthConfig::peer_penalty_cap`]; never touches the local state
    /// machine or the placeable mask — gossip alone cannot quarantine,
    /// only local evidence plus a canary pass can. `None` clears it.
    /// Device 0 ignores peer claims (pinned healthy).
    pub fn set_peer_penalty(&mut self, dev: usize, penalty: Option<f64>) {
        if dev == 0 {
            return;
        }
        if let Some(d) = self.devs.get_mut(dev) {
            d.peer_penalty = penalty.filter(|p| p.is_finite() && *p > 1.0);
        }
    }

    /// Penalty from direct local evidence only — excludes any gossiped
    /// peer claims, so reputation scoring compares a claim against what
    /// *this* node actually measured.
    pub fn local_penalty(&self, dev: usize) -> f64 {
        self.devs.get(dev).map_or(1.0, |d| d.measured_penalty(&self.cfg))
    }

    /// Number of latency samples directly observed for `dev` (gates
    /// whether local evidence is strong enough to judge peer claims).
    pub fn local_samples(&self, dev: usize) -> usize {
        self.devs.get(dev).map_or(0, |d| d.tracker.len())
    }

    /// The peer-reported penalty currently folded in for `dev` (after the
    /// cap), or 1.0.
    pub fn peer_penalty(&self, dev: usize) -> f64 {
        self.devs
            .get(dev)
            .and_then(|d| d.peer_penalty)
            .map_or(1.0, |p| p.min(self.cfg.peer_penalty_cap))
    }

    /// Monotone counters of graded-state transitions since construction.
    pub fn transitions(&self) -> HealthTransitions {
        self.transitions
    }

    /// Compact latency digest for gossip: (p50, p95) over the window, if
    /// the tracker has history.
    pub fn latency_digest(&self, dev: usize) -> Option<(f64, f64)> {
        let d = self.devs.get(dev)?;
        Some((d.tracker.quantile(0.5)?, d.tracker.quantile(0.95)?))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    fn warm(fleet: &mut FleetHealth, dev: usize, n: usize) {
        for i in 0..n {
            let _ = fleet.on_success(dev, 10.0 + (i % 3) as f64 * 0.2, i as f64);
        }
    }

    #[test]
    fn tracker_median_mad_quantile() {
        let mut t = LatencyTracker::new(0.2, 16);
        for ms in [10.0, 11.0, 9.0, 10.5, 10.0, 9.5, 10.2, 10.8] {
            t.observe(ms);
        }
        let med = t.median().unwrap();
        assert!((9.0..=11.0).contains(&med));
        assert!(t.mad().unwrap() < 2.0);
        assert!(t.quantile(1.0).unwrap() >= t.quantile(0.0).unwrap());
        assert!(t.outlier_score(100.0) > 4.0, "10x latency must score as an outlier");
        assert!(t.outlier_score(med) < 1.0);
    }

    #[test]
    fn tracker_ignores_nonfinite() {
        let mut t = LatencyTracker::new(0.2, 8);
        t.observe(f64::NAN);
        t.observe(-1.0);
        assert!(t.is_empty());
    }

    #[test]
    fn cold_tracker_never_flags() {
        let t = LatencyTracker::new(0.2, 32);
        assert!(!t.is_slow_outlier(1e9, &cfg()));
    }

    #[test]
    fn persistent_straggler_walks_to_quarantine() {
        let mut fleet = FleetHealth::new(3, cfg());
        warm(&mut fleet, 1, 16);
        assert_eq!(fleet.state(1), HealthState::Healthy);
        let mut quarantined = false;
        for i in 0..12 {
            if fleet.on_success(1, 120.0, 100.0 + i as f64) == HealthEvent::Quarantined {
                quarantined = true;
                break;
            }
        }
        assert!(quarantined, "10x slowdown must quarantine: {:?}", fleet.state(1));
        assert!(!fleet.placeable_mask()[1]);
        assert!(fleet.penalty(1).is_infinite());
    }

    #[test]
    fn suspect_clears_with_inliers() {
        let mut fleet = FleetHealth::new(2, cfg());
        warm(&mut fleet, 1, 16);
        for _ in 0..cfg().suspect_after {
            let _ = fleet.on_success(1, 120.0, 50.0);
        }
        assert_eq!(fleet.state(1), HealthState::Suspect);
        assert!(fleet.penalty(1) > 1.0);
        for _ in 0..cfg().clear_after {
            let _ = fleet.on_success(1, 10.0, 60.0);
        }
        assert_eq!(fleet.state(1), HealthState::Healthy);
        assert_eq!(fleet.penalty(1), 1.0);
    }

    #[test]
    fn canary_readmission_round_trip() {
        let c = cfg();
        let mut fleet = FleetHealth::new(2, c);
        warm(&mut fleet, 1, 16);
        for i in 0..12 {
            let _ = fleet.on_success(1, 150.0, 100.0 + i as f64);
        }
        assert_eq!(fleet.state(1), HealthState::Quarantined);
        // Not due yet: polling before the backoff changes nothing.
        fleet.poll(150.0);
        assert_eq!(fleet.state(1), HealthState::Quarantined);
        // Backoff elapses: probation, then canaries re-admit.
        let due = 150.0 + c.canary_backoff_ms;
        assert!(fleet.canary_due(1, due));
        fleet.poll(due);
        assert_eq!(fleet.state(1), HealthState::Probation);
        assert!(fleet.placeable_mask()[1], "probation devices are placeable");
        let mut ev = HealthEvent::None;
        for _ in 0..c.probation_canaries {
            ev = fleet.on_success(1, 10.0, due + 1.0);
        }
        assert_eq!(ev, HealthEvent::Readmitted);
        assert_eq!(fleet.state(1), HealthState::Healthy);
    }

    #[test]
    fn failed_canary_doubles_backoff() {
        let c = cfg();
        let mut fleet = FleetHealth::new(2, c);
        warm(&mut fleet, 1, 16);
        for i in 0..12 {
            let _ = fleet.on_success(1, 150.0, i as f64);
        }
        fleet.poll(12.0 + c.canary_backoff_ms);
        assert_eq!(fleet.state(1), HealthState::Probation);
        // Canary fails (still slow): re-quarantined with a doubled dwell.
        let t1 = 12.0 + c.canary_backoff_ms + 1.0;
        assert_eq!(fleet.on_success(1, 150.0, t1), HealthEvent::Quarantined);
        assert!(!fleet.canary_due(1, t1 + c.canary_backoff_ms + 1.0));
        assert!(fleet.canary_due(1, t1 + 2.0 * c.canary_backoff_ms + 1.0));
    }

    #[test]
    fn hard_failures_are_gray_signals_too() {
        let mut fleet = FleetHealth::new(2, cfg());
        warm(&mut fleet, 1, 16);
        let _ = fleet.on_failure(1, 0.0);
        assert_eq!(fleet.state(1), HealthState::Suspect);
    }

    #[test]
    fn link_rtt_spikes_count_inliers_do_not_clear() {
        let c = cfg();
        let mut fleet = FleetHealth::new(2, c);
        for i in 0..16 {
            let _ = fleet.on_link_rtt(1, 5.0, i as f64);
        }
        assert_eq!(fleet.state(1), HealthState::Healthy);
        for i in 0..c.suspect_after {
            let _ = fleet.on_link_rtt(1, 80.0, 20.0 + i as f64);
        }
        assert_eq!(fleet.state(1), HealthState::Suspect);
        // Timely RTTs alone never clear compute suspicion.
        for i in 0..8 {
            let _ = fleet.on_link_rtt(1, 5.0, 30.0 + i as f64);
        }
        assert_eq!(fleet.state(1), HealthState::Suspect);
    }

    #[test]
    fn device_zero_is_pinned_healthy() {
        let mut fleet = FleetHealth::new(2, cfg());
        warm(&mut fleet, 0, 16);
        for _ in 0..20 {
            let _ = fleet.on_success(0, 500.0, 0.0);
            let _ = fleet.on_failure(0, 0.0);
        }
        assert_eq!(fleet.state(0), HealthState::Healthy);
        fleet.set_virtual_slowdown(0, Some(10.0));
        assert_eq!(fleet.penalty(0), 1.0);
    }

    #[test]
    fn peer_penalty_caps_and_never_quarantines() {
        let c = cfg();
        let mut fleet = FleetHealth::new(3, c);
        // A peer claiming a device is catastrophically slow moves routing
        // penalty only up to the cap, and the device stays placeable.
        fleet.set_peer_penalty(1, Some(1e9));
        assert_eq!(fleet.state(1), HealthState::Healthy);
        assert_eq!(fleet.penalty(1), c.peer_penalty_cap);
        assert!(fleet.placeable_mask()[1]);
        // Clearing restores the nominal penalty; device 0 ignores claims.
        fleet.set_peer_penalty(1, None);
        assert_eq!(fleet.penalty(1), 1.0);
        fleet.set_peer_penalty(0, Some(3.0));
        assert_eq!(fleet.penalty(0), 1.0);
        // Sub-unity or non-finite claims are discarded.
        fleet.set_peer_penalty(2, Some(0.5));
        assert_eq!(fleet.penalty(2), 1.0);
        fleet.set_peer_penalty(2, Some(f64::INFINITY));
        assert_eq!(fleet.penalty(2), 1.0);
    }

    #[test]
    fn transitions_count_suspects_quarantines_readmissions() {
        let c = cfg();
        let mut fleet = FleetHealth::new(2, c);
        warm(&mut fleet, 1, 16);
        assert_eq!(fleet.transitions(), HealthTransitions::default());
        for i in 0..12 {
            let _ = fleet.on_success(1, 150.0, 100.0 + i as f64);
        }
        let t = fleet.transitions();
        assert_eq!(t.suspects, 1);
        assert_eq!(t.quarantines, 1);
        assert_eq!(t.readmissions, 0);
        let due = 200.0 + c.canary_backoff_ms;
        fleet.poll(due);
        for _ in 0..c.probation_canaries {
            let _ = fleet.on_success(1, 10.0, due + 1.0);
        }
        assert_eq!(fleet.transitions().readmissions, 1);
    }

    #[test]
    fn health_state_codes_round_trip() {
        for s in [
            HealthState::Healthy,
            HealthState::Suspect,
            HealthState::Probation,
            HealthState::Quarantined,
        ] {
            assert_eq!(HealthState::from_code(s.code()), s);
        }
        assert_eq!(HealthState::from_code(200), HealthState::Healthy);
    }

    #[test]
    fn virtual_slowdown_folds_into_penalty_only() {
        let mut fleet = FleetHealth::new(2, cfg());
        fleet.set_virtual_slowdown(1, Some(3.0));
        assert_eq!(fleet.state(1), HealthState::Healthy);
        assert_eq!(fleet.penalty(1), 3.0);
        assert!(fleet.placeable_mask()[1]);
        fleet.set_virtual_slowdown(1, None);
        assert_eq!(fleet.penalty(1), 1.0);
    }
}
