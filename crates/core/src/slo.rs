//! The SLO API: applications specify their objective as a scalar.

use murmuration_partition::compliance::Slo;
use parking_lot::RwLock;

/// Thread-safe SLO handle shared between the application and the runtime.
pub struct SloApi {
    current: RwLock<Slo>,
}

impl SloApi {
    /// Starts with the given objective.
    pub fn new(initial: Slo) -> Self {
        SloApi { current: RwLock::new(initial) }
    }

    /// Sets a latency ceiling (ms).
    pub fn set_latency_ms(&self, ms: f64) {
        assert!(ms > 0.0, "latency SLO must be positive");
        *self.current.write() = Slo::LatencyMs(ms);
    }

    /// Sets an accuracy floor (%).
    pub fn set_accuracy_pct(&self, pct: f32) {
        assert!((0.0..=100.0).contains(&pct), "accuracy SLO must be a percentage");
        *self.current.write() = Slo::AccuracyPct(pct);
    }

    /// Current objective.
    pub fn get(&self) -> Slo {
        *self.current.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_and_get() {
        let api = SloApi::new(Slo::LatencyMs(140.0));
        assert_eq!(api.get(), Slo::LatencyMs(140.0));
        api.set_accuracy_pct(75.0);
        assert_eq!(api.get(), Slo::AccuracyPct(75.0));
        api.set_latency_ms(200.0);
        assert_eq!(api.get(), Slo::LatencyMs(200.0));
    }

    #[test]
    fn concurrent_updates_do_not_tear() {
        let api = Arc::new(SloApi::new(Slo::LatencyMs(100.0)));
        let writers: Vec<_> = (0..4)
            .map(|i| {
                let api = api.clone();
                std::thread::spawn(move || {
                    for k in 0..200 {
                        api.set_latency_ms((100 + i * 10 + k % 7) as f64);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            match api.get() {
                Slo::LatencyMs(v) => assert!(v >= 100.0),
                Slo::AccuracyPct(_) => panic!("never set"),
            }
        }
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_latency() {
        SloApi::new(Slo::LatencyMs(1.0)).set_latency_ms(0.0);
    }
}
