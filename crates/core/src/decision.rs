//! The Model Selection and Partition Decision module: greedy RL policy
//! inference behind the strategy cache.

use crate::cache::{CachedStrategy, StrategyCache};
use crate::monitor::LinkEstimate;
use murmuration_partition::evolutionary::Genome;
use murmuration_rl::{Condition, LstmPolicy, Scenario};

/// A concrete deployment decision.
#[derive(Clone, Debug)]
pub struct Decision {
    pub actions: Vec<usize>,
    pub genome: Genome,
    /// Whether it came from the cache.
    pub cached: bool,
}

/// Decision module bound to a trained policy.
pub struct DecisionModule {
    scenario: Scenario,
    policy: LstmPolicy,
    cache: StrategyCache,
}

impl DecisionModule {
    /// Wraps a trained policy with a strategy cache.
    pub fn new(scenario: Scenario, policy: LstmPolicy, cache_capacity: usize) -> Self {
        let grid = scenario.grid_points;
        DecisionModule { scenario, policy, cache: StrategyCache::new(grid, cache_capacity) }
    }

    /// The scenario this module decides for.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Builds a condition from the SLO scalar and link estimates.
    pub fn condition(&self, slo: f64, links: &[LinkEstimate]) -> Condition {
        assert_eq!(links.len(), self.scenario.n_remote(), "one estimate per remote link");
        Condition {
            slo,
            bw_mbps: links.iter().map(|l| l.bandwidth_mbps).collect(),
            delay_ms: links.iter().map(|l| l.delay_ms).collect(),
        }
    }

    /// Decides a strategy for a condition, consulting the cache first.
    /// On a miss, the greedy policy decision is validated against the
    /// latency model and canonical fallbacks (the estimator guard) before
    /// being cached and deployed.
    pub fn decide(&self, cond: &Condition) -> Decision {
        let alive = vec![true; self.scenario.devices.len()];
        self.decide_masked(cond, &alive)
    }

    /// [`decide`](Self::decide) restricted to live devices. A cache hit
    /// that places work on a dead device is treated as stale: the entry is
    /// purged and the policy re-decides under the mask. Decisions made
    /// while degraded are *not* cached — the bucket key does not encode
    /// fleet health, and a degraded plan must not be served after the
    /// device recovers.
    pub fn decide_masked(&self, cond: &Condition, alive: &[bool]) -> Decision {
        self.decide_masked_cached(cond, alive, true)
    }

    /// [`decide_masked`](Self::decide_masked) with an explicit cache-write
    /// gate: `allow_cache = false` decides without polluting the cache
    /// (used while soft penalties distort the condition — the penalized
    /// condition is transient fleet state, not a network observation).
    /// Reads still consult the cache; a feasible hit is a hit.
    pub fn decide_masked_cached(
        &self,
        cond: &Condition,
        alive: &[bool],
        allow_cache: bool,
    ) -> Decision {
        let healthy = alive.iter().all(|&a| a);
        if let Some(hit) = self.cache.get(&self.scenario, cond) {
            if healthy || murmuration_rl::env::actions_feasible(&self.scenario, &hit.actions, alive)
            {
                let genome = self.scenario.decode(&hit.actions);
                return Decision { actions: hit.actions, genome, cached: true };
            }
            self.cache.remove(&self.scenario, cond);
        }
        let result =
            murmuration_rl::env::decide_guarded_masked(&self.policy, &self.scenario, cond, alive);
        if healthy && allow_cache {
            self.cache.put(
                &self.scenario,
                cond,
                CachedStrategy { actions: result.actions.clone() },
            );
        }
        let genome = self.scenario.decode(&result.actions);
        Decision { actions: result.actions, genome, cached: false }
    }

    /// Purges every cached strategy that places work on a dead device.
    /// Returns the number of evicted entries.
    pub fn purge_infeasible(&self, alive: &[bool]) -> usize {
        let sc = &self.scenario;
        self.cache.retain(|s| murmuration_rl::env::actions_feasible(sc, &s.actions, alive))
    }

    /// Precomputes (and caches) a strategy for a *predicted* condition so
    /// the next request under those conditions is a cache hit.
    pub fn precompute(&self, cond: &Condition) {
        if self.cache.get(&self.scenario, cond).is_none() {
            let result = murmuration_rl::env::decide_guarded(&self.policy, &self.scenario, cond);
            self.cache.put(&self.scenario, cond, CachedStrategy { actions: result.actions });
        }
    }

    /// Cache statistics (for the runtime-efficiency experiments).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_rl::SloKind;

    fn module() -> DecisionModule {
        let sc = Scenario::augmented_computing(SloKind::Latency);
        let policy = LstmPolicy::new(sc.input_dim(), 16, sc.arities(), 0);
        DecisionModule::new(sc, policy, 64)
    }

    #[test]
    fn decide_is_deterministic_and_cached() {
        let m = module();
        let cond = Condition { slo: 140.0, bw_mbps: vec![100.0], delay_ms: vec![20.0] };
        let d1 = m.decide(&cond);
        assert!(!d1.cached);
        let d2 = m.decide(&cond);
        assert!(d2.cached);
        assert_eq!(d1.actions, d2.actions);
    }

    #[test]
    fn precompute_warms_cache() {
        let m = module();
        let cond = Condition { slo: 200.0, bw_mbps: vec![300.0], delay_ms: vec![10.0] };
        m.precompute(&cond);
        let d = m.decide(&cond);
        assert!(d.cached, "decision after precompute must be a hit");
    }

    #[test]
    fn masked_decisions_are_feasible_and_never_cached() {
        let m = module();
        let n = m.scenario().devices.len();
        let cond = Condition { slo: 140.0, bw_mbps: vec![100.0], delay_ms: vec![20.0] };
        let mut alive = vec![false; n];
        alive[0] = true; // every remote is dead
        let d = m.decide_masked(&cond, &alive);
        assert!(!d.cached);
        let spec = murmuration_supernet::SubnetSpec::lower(&d.genome.config);
        let plan = d.genome.plan(&spec, n);
        assert!(plan.is_feasible(&alive), "masked decision must avoid dead devices");
        // The degraded decision must not be cached under the healthy key:
        // the next healthy decide is a miss, not a poisoned hit.
        let d2 = m.decide(&cond);
        assert!(!d2.cached, "degraded decision leaked into the cache");
        let d3 = m.decide(&cond);
        assert!(d3.cached, "healthy decision caches normally");
    }

    #[test]
    fn purge_infeasible_only_drops_remote_plans() {
        let m = module();
        let n = m.scenario().devices.len();
        let cond = Condition { slo: 100.0, bw_mbps: vec![60.0], delay_ms: vec![80.0] };
        let d = m.decide(&cond);
        let used = m.scenario().used_links(&d.actions);
        let uses_remote = used.iter().any(|&u| u);
        let mut alive = vec![false; n];
        alive[0] = true;
        let evicted = m.purge_infeasible(&alive);
        assert_eq!(evicted, usize::from(uses_remote));
        let all_up = vec![true; n];
        assert_eq!(m.purge_infeasible(&all_up), 0, "healthy fleet purges nothing");
    }

    #[test]
    fn decisions_yield_valid_plans() {
        let m = module();
        let cond = Condition { slo: 100.0, bw_mbps: vec![60.0], delay_ms: vec![80.0] };
        let d = m.decide(&cond);
        let spec = murmuration_supernet::SubnetSpec::lower(&d.genome.config);
        let plan = d.genome.plan(&spec, m.scenario().devices.len());
        plan.validate(&spec, m.scenario().devices.len()).unwrap();
    }
}
