//! Wire protocol for inter-device tensor transfer — the byte-level format
//! the paper's gRPC messages would carry.
//!
//! A frame is: magic `MWIR` · u8 version · u8 bit-width (8/16/32) · u8
//! rank · per-dim u32 sizes · f32 scale (quantized payloads) · u64 payload
//! length · u32 folded-FNV-1a checksum (see [`frame_checksum`]) · payload.
//! 8/16-bit payloads are *packed* integer codes, so the frame length
//! matches the latency model's
//! [`BitWidth::wire_bytes`](murmuration_tensor::quant::BitWidth::wire_bytes)
//! accounting (± the fixed header).
//!
//! The checksum covers every frame byte except the checksum field itself,
//! so corruption anywhere — header or payload — is detected rather than
//! silently dequantized into garbage activations.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use murmuration_tensor::quant::BitWidth;
use murmuration_tensor::{Shape, Tensor};

const MAGIC: &[u8; 4] = b"MWIR";
const VERSION: u8 = 2;

/// Frame decode errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Not a frame, wrong version, or inconsistent lengths.
    Malformed(&'static str),
    /// Structurally valid frame whose bytes were corrupted in transit.
    Checksum { expect: u32, got: u32 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Checksum { expect, got } => {
                write!(f, "frame checksum mismatch: expect {expect:#010x}, got {got:#010x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Byte offset of the u32 checksum field for a tensor of rank `r`
/// (just after the payload-length field).
fn checksum_offset(rank: usize) -> usize {
    4 + 1 + 1 + 1 + 4 * rank + 4 + 8
}

/// Serialized frame header size for a tensor of rank `r`.
pub fn header_bytes(rank: usize) -> usize {
    checksum_offset(rank) + 4
}

/// Checksum over every frame byte except the checksum field itself:
/// FNV-1a stepped byte-wise over the short header, then folded four bytes
/// per step over the payload (4x fewer serially-dependent multiplies,
/// which dominate FNV's cost on megabyte activations). Every step — word
/// or byte — is an xor followed by an odd multiply, both invertible mod
/// 2^32, so any single-byte change anywhere always changes the sum, the
/// same guarantee as classic byte-wise FNV-1a.
fn frame_checksum(frame: &[u8], crc_off: usize) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in &frame[..crc_off] {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    let payload = &frame[crc_off + 4..];
    let mut words = payload.chunks_exact(4);
    for w in &mut words {
        h ^= u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        h = h.wrapping_mul(0x0100_0193);
    }
    for &b in words.remainder() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encodes a tensor at the given wire precision.
pub fn encode(t: &Tensor, bits: BitWidth) -> Vec<u8> {
    let dims = &t.shape().0;
    let mut out = Vec::with_capacity(header_bytes(dims.len()) + t.numel() * 4);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(bits.bits() as u8);
    out.push(dims.len() as u8);
    for &d in dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    match bits {
        BitWidth::B32 => {
            out.extend_from_slice(&0f32.to_le_bytes()); // scale unused
            let payload_len = t.numel() * 4;
            out.extend_from_slice(&(payload_len as u64).to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // checksum placeholder

            // Bulk conversion: resize once, then fill fixed-width chunks —
            // this lowers to a straight memcpy on little-endian targets.
            let start = out.len();
            out.resize(start + payload_len, 0);
            for (dst, v) in out[start..].chunks_exact_mut(4).zip(t.data()) {
                dst.copy_from_slice(&v.to_le_bytes());
            }
        }
        BitWidth::B16 | BitWidth::B8 => {
            let qmax = if bits == BitWidth::B8 { 127.0f32 } else { 32767.0 };
            let absmax = t.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if absmax == 0.0 { 1.0 } else { absmax / qmax };
            out.extend_from_slice(&scale.to_le_bytes());
            let inv = 1.0 / scale;
            if bits == BitWidth::B8 {
                let payload_len = t.numel();
                out.extend_from_slice(&(payload_len as u64).to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes()); // checksum placeholder
                for &v in t.data() {
                    let c = (v * inv).round().clamp(-qmax, qmax) as i8;
                    out.push(c as u8);
                }
            } else {
                let payload_len = t.numel() * 2;
                out.extend_from_slice(&(payload_len as u64).to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes()); // checksum placeholder
                for &v in t.data() {
                    let c = (v * inv).round().clamp(-qmax, qmax) as i16;
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
    }
    let crc_off = checksum_offset(dims.len());
    let crc = frame_checksum(&out, crc_off);
    out[crc_off..crc_off + 4].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes a frame back into a tensor (dequantizing packed payloads).
pub fn decode(frame: &[u8]) -> Result<Tensor, WireError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], WireError> {
        if *pos + n > frame.len() {
            return Err(WireError::Malformed("truncated"));
        }
        let s = &frame[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(WireError::Malformed("bad magic"));
    }
    if take(&mut pos, 1)?[0] != VERSION {
        return Err(WireError::Malformed("bad version"));
    }
    let bits = match take(&mut pos, 1)?[0] {
        8 => BitWidth::B8,
        16 => BitWidth::B16,
        32 => BitWidth::B32,
        _ => return Err(WireError::Malformed("bad bit width")),
    };
    let rank = take(&mut pos, 1)?[0] as usize;
    if rank == 0 || rank > 4 {
        return Err(WireError::Malformed("bad rank"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let b = take(&mut pos, 4)?;
        dims.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize);
    }
    let numel: usize = dims.iter().product();
    if numel > 1 << 28 {
        return Err(WireError::Malformed("absurd tensor size"));
    }
    let sb = take(&mut pos, 4)?;
    let scale = f32::from_le_bytes([sb[0], sb[1], sb[2], sb[3]]);
    let lb = take(&mut pos, 8)?;
    let payload_len =
        u64::from_le_bytes([lb[0], lb[1], lb[2], lb[3], lb[4], lb[5], lb[6], lb[7]]) as usize;
    let expect = match bits {
        BitWidth::B32 => numel * 4,
        BitWidth::B16 => numel * 2,
        BitWidth::B8 => numel,
    };
    if payload_len != expect {
        return Err(WireError::Malformed("payload length mismatch"));
    }
    let crc_off = pos;
    let cb = take(&mut pos, 4)?;
    let got_crc = u32::from_le_bytes([cb[0], cb[1], cb[2], cb[3]]);
    let payload = take(&mut pos, payload_len)?;
    if pos != frame.len() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    let want_crc = frame_checksum(frame, crc_off);
    if got_crc != want_crc {
        return Err(WireError::Checksum { expect: want_crc, got: got_crc });
    }
    let data: Vec<f32> = match bits {
        BitWidth::B32 => {
            payload.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
        }
        BitWidth::B16 => payload
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]) as f32 * scale)
            .collect(),
        BitWidth::B8 => payload.iter().map(|&b| b as i8 as f32 * scale).collect(),
    };
    Ok(Tensor::from_vec(Shape(dims), data))
}

/// Exact frame length for a tensor of `numel` elements / rank `rank` at
/// `bits` — the quantity the latency model charges (header excluded there;
/// it is a constant few dozen bytes).
pub fn frame_bytes(numel: usize, rank: usize, bits: BitWidth) -> usize {
    let payload = match bits {
        BitWidth::B32 => numel * 4,
        BitWidth::B16 => numel * 2,
        BitWidth::B8 => numel,
    };
    header_bytes(rank) + payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn sample() -> Tensor {
        let mut rng = StdRng::seed_from_u64(5);
        Tensor::rand_uniform(Shape::nchw(1, 3, 6, 7), 4.0, &mut rng)
    }

    #[test]
    fn b32_round_trip_is_exact() {
        let t = sample();
        let frame = encode(&t, BitWidth::B32);
        let back = decode(&frame).unwrap();
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.data(), t.data());
        assert_eq!(frame.len(), frame_bytes(t.numel(), 4, BitWidth::B32));
    }

    #[test]
    fn quantized_round_trips_within_bound() {
        let t = sample();
        for bits in [BitWidth::B8, BitWidth::B16] {
            let frame = encode(&t, bits);
            assert_eq!(frame.len(), frame_bytes(t.numel(), 4, bits));
            let back = decode(&frame).unwrap();
            let qmax = if bits == BitWidth::B8 { 127.0 } else { 32767.0 };
            let absmax = t.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let bound = absmax / qmax * 0.5 + 1e-6;
            for (a, b) in t.data().iter().zip(back.data()) {
                assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
            }
        }
    }

    #[test]
    fn packed_payload_matches_latency_model_accounting() {
        // The B8 frame must be ~4x smaller than the B32 frame — the ratio
        // the estimator's wire_bytes math assumes.
        let t = sample();
        let b32 = encode(&t, BitWidth::B32).len();
        let b8 = encode(&t, BitWidth::B8).len();
        let ratio = b32 as f64 / b8 as f64;
        assert!(ratio > 3.0, "packing ratio {ratio}");
    }

    #[test]
    fn rejects_malformed_frames() {
        let t = sample();
        let good = encode(&t, BitWidth::B8);
        assert!(decode(b"nope").is_err());
        assert!(decode(&good[..good.len() - 1]).is_err(), "truncated");
        let mut extra = good.clone();
        extra.push(0);
        assert!(decode(&extra).is_err(), "trailing bytes");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode(&bad_magic).is_err());
        let mut bad_bits = good.clone();
        bad_bits[5] = 7;
        assert!(decode(&bad_bits).is_err());
        let mut bad_len = good;
        // Corrupt the payload-length field (little-endian u64 after
        // magic+ver+bits+rank+dims+scale).
        let len_off = 4 + 1 + 1 + 1 + 4 * 4 + 4;
        bad_len[len_off] ^= 0xff;
        assert!(decode(&bad_len).is_err());
    }

    #[test]
    fn detects_corrupted_payload_bytes() {
        let t = sample();
        for bits in [BitWidth::B8, BitWidth::B16, BitWidth::B32] {
            let good = encode(&t, bits);
            assert!(decode(&good).is_ok());
            // Garble one payload byte: structure is intact, so only the
            // checksum can catch it.
            let mut bad = good.clone();
            let last = bad.len() - 1;
            bad[last] ^= 0x55;
            match decode(&bad) {
                Err(WireError::Checksum { .. }) => {}
                other => panic!("expected checksum error, got {other:?}"),
            }
            // Garbling the stored checksum itself is also detected.
            let mut bad_crc = good;
            let crc_off = header_bytes(4) - 4;
            bad_crc[crc_off] ^= 0xff;
            assert!(matches!(decode(&bad_crc), Err(WireError::Checksum { .. })));
        }
    }

    #[test]
    fn decode_never_panics_on_fuzzed_bytes() {
        // Random buffers and bit-flipped valid frames must produce errors,
        // not panics or absurd allocations.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(0xF00D);
        for _ in 0..200 {
            let n = rng.gen_range(0..200);
            let buf: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            let _ = decode(&buf);
        }
        let good = encode(&sample(), BitWidth::B16);
        for _ in 0..200 {
            let mut b = good.clone();
            let i = rng.gen_range(0..b.len());
            b[i] ^= 1 << rng.gen_range(0..8);
            let _ = decode(&b); // must not panic; may error or round-trip
        }
    }

    #[test]
    fn zero_tensor_and_scalar_shapes() {
        let z = Tensor::zeros(Shape::d1(5));
        let back = decode(&encode(&z, BitWidth::B8)).unwrap();
        assert_eq!(back.data(), z.data());
        let m = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, -2.0, 3.0, -4.0]);
        let back = decode(&encode(&m, BitWidth::B16)).unwrap();
        assert_eq!(back.shape(), m.shape());
    }
}
