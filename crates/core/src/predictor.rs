//! Monitoring-data predictor: lightweight per-link linear regression over
//! the monitor's history window, exactly as §5 describes. The forecast
//! lets the runtime precompute and cache strategies before conditions
//! change.

use crate::monitor::{LinkEstimate, NetworkMonitor};

/// Ordinary least squares fit of `y = a + b t`; returns `(a, b)`.
/// Degenerate inputs (constant t, short series) fall back to a flat fit.
pub fn linreg(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        return (points.first().map_or(0.0, |p| p.1), 0.0);
    }
    let mean_t = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_t) * (p.0 - mean_t)).sum();
    if sxx <= 1e-12 {
        return (mean_y, 0.0);
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_t) * (p.1 - mean_y)).sum();
    let b = sxy / sxx;
    (mean_y - b * mean_t, b)
}

/// The monitoring-data predictor.
pub struct MonitorPredictor;

impl MonitorPredictor {
    /// Forecasts every link's conditions at `t_future_ms` from the
    /// monitor's history. Forecasts are clamped to stay physical.
    pub fn predict(
        monitor: &NetworkMonitor,
        n_remote: usize,
        t_future_ms: f64,
    ) -> Vec<LinkEstimate> {
        (0..n_remote)
            .map(|link| {
                let h = monitor.history(link);
                let bw_pts: Vec<(f64, f64)> = h.iter().map(|&(t, b, _)| (t, b)).collect();
                let dl_pts: Vec<(f64, f64)> = h.iter().map(|&(t, _, d)| (t, d)).collect();
                let (a_b, b_b) = linreg(&bw_pts);
                let (a_d, b_d) = linreg(&dl_pts);
                LinkEstimate {
                    bandwidth_mbps: (a_b + b_b * t_future_ms).max(0.1),
                    delay_ms: (a_d + b_d * t_future_ms).max(0.0),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_edgesim::trace::NetworkTrace;
    use murmuration_edgesim::{LinkState, NetworkState};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn linreg_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b) = linreg(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linreg_degenerate_inputs() {
        assert_eq!(linreg(&[]), (0.0, 0.0));
        assert_eq!(linreg(&[(5.0, 7.0)]), (7.0, 0.0));
        let (a, b) = linreg(&[(2.0, 4.0), (2.0, 8.0)]);
        assert_eq!(b, 0.0);
        assert!((a - 6.0).abs() < 1e-9);
    }

    #[test]
    fn predictor_extrapolates_a_declining_link() {
        // Bandwidth decays linearly 200 → 110 Mbps over 10 samples; the
        // predictor should forecast the continued decline.
        let mut mon = crate::monitor::NetworkMonitor::new(1, 0.5, 16, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..10 {
            let bw = 200.0 - 10.0 * i as f64;
            let net = NetworkState::uniform(1, LinkState { bandwidth_mbps: bw, delay_ms: 10.0 });
            mon.sample(&net, i as f64 * 100.0, &mut rng);
        }
        let pred = MonitorPredictor::predict(&mon, 1, 1100.0);
        assert!((pred[0].bandwidth_mbps - 90.0).abs() < 1.0, "forecast {}", pred[0].bandwidth_mbps);
        assert!((pred[0].delay_ms - 10.0).abs() < 1e-6);
    }

    #[test]
    fn predictor_tracks_step_trace_after_transition() {
        let a = LinkState { bandwidth_mbps: 300.0, delay_ms: 5.0 };
        let b = LinkState { bandwidth_mbps: 30.0, delay_ms: 50.0 };
        let trace = NetworkTrace::steps(vec![(0.0, a), (500.0, b)]);
        let mut mon = crate::monitor::NetworkMonitor::new(1, 0.5, 6, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..12 {
            let t = i as f64 * 100.0;
            let net = NetworkState::uniform(1, trace.sample(t));
            mon.sample(&net, t, &mut rng);
        }
        // By t=1100 the window only holds post-step samples.
        let pred = MonitorPredictor::predict(&mon, 1, 1200.0);
        assert!((pred[0].bandwidth_mbps - 30.0).abs() < 2.0, "{}", pred[0].bandwidth_mbps);
        assert!((pred[0].delay_ms - 50.0).abs() < 2.0);
    }

    #[test]
    fn forecast_is_clamped_physical() {
        // A steep decline must not forecast negative bandwidth.
        let mut mon = crate::monitor::NetworkMonitor::new(1, 0.5, 8, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..5 {
            let bw = 50.0 - 12.0 * i as f64;
            let net =
                NetworkState::uniform(1, LinkState { bandwidth_mbps: bw.max(1.0), delay_ms: 5.0 });
            mon.sample(&net, i as f64 * 100.0, &mut rng);
        }
        let pred = MonitorPredictor::predict(&mon, 1, 5000.0);
        assert!(pred[0].bandwidth_mbps >= 0.1);
        assert!(pred[0].delay_ms >= 0.0);
    }
}
