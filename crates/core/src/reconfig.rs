//! Model Reconfig: the in-memory supernet and submodel switching.
//!
//! Murmuration keeps the *full supernet weights* resident in memory, so
//! switching submodels is a configuration update — no weight copies, no
//! disk access (paper §5.1, evaluated in Fig. 19). Competing systems that
//! switch between distinct model types must reload weights from storage;
//! that path is modelled from the device profile.

use murmuration_edgesim::ComputeProfile;
use murmuration_supernet::{SearchSpace, SubnetConfig, SubnetSpec};
use murmuration_tensor::{Shape, Tensor};
use std::time::{Duration, Instant};

/// The supernet held fully in memory.
pub struct InMemorySupernet {
    /// The resident maximal weight block (one contiguous allocation, as a
    /// real deployment would mmap).
    weights: Tensor,
    space: SearchSpace,
    active: SubnetConfig,
    switches: u64,
}

/// Outcome of a submodel switch.
#[derive(Clone, Copy, Debug)]
pub struct SwitchReport {
    /// Measured wall time of the in-memory reconfiguration.
    pub elapsed: Duration,
    /// Number of switches performed so far.
    pub total_switches: u64,
}

impl InMemorySupernet {
    /// Allocates the resident supernet (max-config parameter count).
    pub fn new(space: SearchSpace) -> Self {
        let max_spec = SubnetSpec::lower(&space.max_config());
        let n_params = max_spec.total_params() as usize;
        let active = space.max_config();
        InMemorySupernet { weights: Tensor::zeros(Shape::d1(n_params)), space, active, switches: 0 }
    }

    /// Resident weight bytes (what stays in memory).
    pub fn resident_bytes(&self) -> usize {
        self.weights.numel() * 4
    }

    /// The currently active submodel.
    pub fn active(&self) -> &SubnetConfig {
        &self.active
    }

    /// Switches the active submodel. This is the Murmuration fast path:
    /// validate + lower the config, update the active selection — no
    /// weight movement. Returns the measured wall time.
    pub fn switch_submodel(&mut self, config: SubnetConfig) -> SwitchReport {
        let start = Instant::now();
        assert_eq!(config.stages.len(), self.space.num_stages, "config does not fit this supernet");
        // Lowering validates the configuration and produces the execution
        // metadata the scheduler needs; the weights never move.
        let _spec = SubnetSpec::lower(&config);
        self.active = config;
        self.switches += 1;
        SwitchReport { elapsed: start.elapsed(), total_switches: self.switches }
    }

    /// The baseline path: time to switch to a *different model type* by
    /// reloading `weight_bytes` from storage on a device with `profile`
    /// (Fig. 19's comparison bars).
    pub fn simulate_reload_ms(profile: &ComputeProfile, weight_bytes: u64) -> f64 {
        profile.weight_load_ms(weight_bytes)
    }

    /// A warm-switch baseline: copying weights between host buffers
    /// (models already cached in RAM but not laid out for execution).
    pub fn simulate_memcopy_ms(profile: &ComputeProfile, weight_bytes: u64) -> f64 {
        profile.weight_copy_ms(weight_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_edgesim::DeviceKind;
    use murmuration_models::resnet50;

    #[test]
    fn switch_is_submillisecond_scale() {
        let mut net = InMemorySupernet::new(SearchSpace::default());
        let target = SearchSpace::default().min_config();
        // Warm up once (first lowering allocates).
        net.switch_submodel(target.clone());
        let report = net.switch_submodel(SearchSpace::default().max_config());
        // In-memory reconfig must be far below any weight reload; allow a
        // generous 50 ms bound for debug builds.
        assert!(report.elapsed < Duration::from_millis(50), "switch took {:?}", report.elapsed);
        assert_eq!(report.total_switches, 2);
    }

    #[test]
    fn reload_baseline_is_orders_slower() {
        let pi = DeviceKind::RaspberryPi4.profile();
        let reload = InMemorySupernet::simulate_reload_ms(&pi, resnet50(224).weight_bytes());
        assert!(reload > 1000.0, "ResNet50 reload on Pi must be seconds: {reload} ms");
        let memcopy = InMemorySupernet::simulate_memcopy_ms(&pi, resnet50(224).weight_bytes());
        assert!(memcopy > 10.0 && memcopy < reload, "memcopy {memcopy} ms");
    }

    #[test]
    fn resident_size_matches_max_config() {
        let net = InMemorySupernet::new(SearchSpace::default());
        let max_params = SubnetSpec::lower(&SearchSpace::default().max_config()).total_params();
        assert_eq!(net.resident_bytes(), max_params as usize * 4);
        // A few MB, as expected of a MobileNet-class supernet.
        assert!(net.resident_bytes() > 4_000_000);
    }

    #[test]
    fn active_tracks_switches() {
        let mut net = InMemorySupernet::new(SearchSpace::default());
        let min = SearchSpace::default().min_config();
        net.switch_submodel(min.clone());
        assert_eq!(net.active(), &min);
    }
}
