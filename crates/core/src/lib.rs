//! # murmuration-core
//!
//! Stage 3 of Murmuration: the online runtime (paper §5, Fig. 10).
//!
//! * [`slo`] — the SLO API: applications set a latency or accuracy target
//!   as a scalar, thread-safe.
//! * [`monitor`] — the Network Monitoring module: samples per-link
//!   bandwidth/delay with observation noise and EWMA smoothing, keeping a
//!   sliding history window.
//! * [`predictor`] — the Monitoring-data Predictor: per-link linear
//!   regression over the history window, forecasting short-term network
//!   conditions so strategies can be precomputed.
//! * [`cache`] — the Strategy Cache: memoizes (SLO, network-condition
//!   bucket) → (model selection + partition strategy), with hit statistics.
//! * [`decision`] — the Model Selection and Partition Decision module:
//!   runs the trained RL policy greedily (through the cache) on real or
//!   predicted conditions.
//! * [`reconfig`] — Model Reconfig: the in-memory supernet whose submodel
//!   switch is a pointer-level reconfiguration (no weight copies), versus
//!   the weight-reload path other systems pay (Fig. 19).
//! * [`executor`] — the distributed Executor/Scheduler: the coordinator
//!   that drives device workers through a [`transport::Transport`],
//!   executing real tensor computation with FDSP tile scatter/gather and
//!   byte-level wire frames.
//! * [`transport`] — the transport abstraction behind the executor: the
//!   [`transport::Transport`] trait plus the in-process channel
//!   implementation; the TCP remote-worker implementation lives in the
//!   `murmuration-transport` crate.
//! * [`wire`] — the framing protocol those channels carry: packed 8/16-bit
//!   quantized payloads whose sizes match the latency model's accounting.
//! * [`scheduler`] — translates a decided (spec, plan) into the executor's
//!   per-unit dispatch table (grids + wire precisions).
//! * [`fault`] — fault injection ([`fault::FaultyCompute`]): kill, stall,
//!   panic, or slow any device's worker to exercise the recovery paths.
//! * [`gossip`] — the decentralized control plane: SWIM-style gossip
//!   membership, reputation-weighted trimmed aggregation of peer health
//!   reports, and the deterministic primary-coordinator ranking that
//!   failover leans on.
//! * [`runtime`] — the per-request adaptation loop tying it all together.

pub mod cache;
pub mod decision;
pub mod executor;
pub mod fault;
pub mod gossip;
pub mod health;
pub mod monitor;
pub mod predictor;
pub mod reconfig;
pub mod runtime;
pub mod scheduler;
pub mod slo;
pub mod transport;
pub mod wire;

pub use runtime::{
    Degradation, DeployReport, PipelineDeploy, RequestReport, Runtime, RuntimeConfig,
    ServeDecision, SharedRuntime,
};
