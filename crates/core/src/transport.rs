//! The transport abstraction behind the distributed executor.
//!
//! The coordinator ([`crate::executor::Executor`]) talks to device workers
//! through a [`Transport`]: it submits jobs and waits on a reply channel,
//! never caring whether the worker is a thread in this process or a
//! process across a real socket. Two implementations exist:
//!
//! * [`InProcTransport`] (here) — one worker thread per device connected
//!   by crossbeam channels, the original executor internals. Shipping a
//!   tensor across a "device boundary" still pays the full wire
//!   encode/decode round trip so the byte format stays honest.
//! * `murmuration_transport::TcpTransport` — blocking `std::net` sockets
//!   carrying the same checksummed wire-v2 frames as length-delimited
//!   messages, with per-connection heartbeats, reconnect, and at-most-once
//!   resend dedup (see the `murmuration-transport` crate).
//!
//! The contract every implementation must honour:
//!
//! * `submit` either queues the job (the reply — success or a typed
//!   failure — eventually arrives on the caller's channel, or the channel
//!   disconnects) or fails fast with [`SubmitError`]. It may block briefly
//!   for backpressure but never indefinitely: a dead peer always resolves
//!   the wait.
//! * Replies carry the `(tag, attempt)` the job was submitted with, so
//!   the coordinator can discard stale replies from abandoned attempts.
//! * Liveness (`is_alive`) is a belief, updated on hard evidence; the
//!   coordinator layers its own deadlines on top and never trusts it for
//!   progress.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::executor::{UnitCompute, UnitOutcome};
use crate::wire::WireError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use murmuration_tensor::quant::BitWidth;
use murmuration_tensor::Tensor;
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One job handed to a transport: run `unit` on `input` at device `dev`
/// (given to [`Transport::submit`] separately).
pub struct TransportJob {
    /// Execution unit to run.
    pub unit: usize,
    /// Input tensor (shared with the coordinator for cheap retries).
    pub input: Arc<Tensor>,
    /// Wire precision when the input crosses a device boundary.
    pub quant: BitWidth,
    /// Whether the input crosses a device boundary (quantization applies).
    /// Remote transports always pay the socket; this only controls the
    /// lossy-quantization step, mirroring the in-process semantics.
    pub cross_boundary: bool,
    /// Caller's correlation tag (tile index / request index).
    pub tag: usize,
    /// Caller's attempt number; replies echo it so stale replies from
    /// abandoned attempts can be discarded.
    pub attempt: u32,
    /// Remaining request budget for this job. Remote transports bound the
    /// request's in-flight time by it (a stalled socket fails the request
    /// after `deadline` instead of consuming the whole budget); in-process
    /// transports ignore it (the coordinator's own `recv_timeout` covers
    /// local workers).
    pub deadline: Option<Duration>,
}

/// Why a submitted job failed at the reply level.
#[derive(Clone, Debug)]
pub enum ReplyError {
    /// The worker ran and failed (panic, injected error, bad frame).
    Worker(String),
    /// The link or peer died; the job may or may not have run.
    Link(String),
}

/// A worker's answer, correlated by `(tag, attempt)`.
pub struct TransportReply {
    /// Echo of [`TransportJob::tag`].
    pub tag: usize,
    /// Echo of [`TransportJob::attempt`].
    pub attempt: u32,
    /// The unit output, or a typed failure.
    pub result: Result<Tensor, ReplyError>,
}

/// Submission failed before the job was accepted.
#[derive(Clone, Debug)]
pub enum SubmitError {
    /// The device is (believed) down; nothing was sent.
    DeviceDown,
    /// Frame corruption was detected while shipping to the device.
    Wire(WireError),
    /// The transport's bounded buffers are full (global in-flight cap or
    /// a peer's outbound byte cap): typed backpressure. Nothing was sent;
    /// the caller should retry later or route elsewhere.
    Backpressure,
}

/// Cumulative connection-supervision counters (all zero for in-process
/// transports, which have no connections to supervise).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections re-established after a loss.
    pub reconnects: u64,
    /// Heartbeat intervals that elapsed without hearing from a peer.
    pub heartbeats_missed: u64,
    /// Requests the peer recognised as duplicates of an earlier delivery
    /// (at-most-once resend dedup after a reconnect).
    pub resends_deduped: u64,
    /// Cancels that verifiably saved work: the peer dropped a still-queued
    /// job instead of computing it (hedge losers, mostly).
    pub cancels_delivered: u64,
    /// Submissions refused with [`SubmitError::Backpressure`] because a
    /// bounded buffer (global in-flight cap, per-peer outbound byte cap)
    /// was full.
    pub backpressure_rejections: u64,
    /// Inbound connections refused by accept-side storm control (rate
    /// limit or connection cap) instead of being attached.
    pub accepts_shed: u64,
    /// Connections (or connect attempts) shed by the fd-budget guard when
    /// the process neared its open-file limit.
    pub conns_shed: u64,
}

impl TransportStats {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &TransportStats) -> TransportStats {
        TransportStats {
            reconnects: self.reconnects.saturating_sub(earlier.reconnects),
            heartbeats_missed: self.heartbeats_missed.saturating_sub(earlier.heartbeats_missed),
            resends_deduped: self.resends_deduped.saturating_sub(earlier.resends_deduped),
            cancels_delivered: self.cancels_delivered.saturating_sub(earlier.cancels_delivered),
            backpressure_rejections: self
                .backpressure_rejections
                .saturating_sub(earlier.backpressure_rejections),
            accepts_shed: self.accepts_shed.saturating_sub(earlier.accepts_shed),
            conns_shed: self.conns_shed.saturating_sub(earlier.conns_shed),
        }
    }
}

/// The executor's view of a fleet of device workers.
pub trait Transport: Send + Sync {
    /// Number of devices this transport reaches.
    fn n_devices(&self) -> usize;

    /// Current liveness belief for `dev` (optimistic; a dead peer may only
    /// be discovered on the next interaction).
    fn is_alive(&self, dev: usize) -> bool;

    /// Records hard evidence that `dev` is down.
    fn mark_dead(&self, dev: usize);

    /// Submits a job to `dev`. On success a [`TransportReply`] for
    /// `(tag, attempt)` will eventually arrive on `reply` — or `reply`
    /// disconnects, which the coordinator treats as the peer dying. The
    /// returned ticket identifies this submission to [`Transport::cancel`].
    fn submit(
        &self,
        dev: usize,
        job: TransportJob,
        reply: Sender<TransportReply>,
    ) -> Result<u64, SubmitError>;

    /// Best-effort cancellation of a previously submitted job (hedge
    /// loser). No reply for the ticket is needed after this; the transport
    /// may drop still-queued work (counted in
    /// [`TransportStats::cancels_delivered`]) or ignore the cancel if the
    /// job already ran. Never blocks on the peer.
    fn cancel(&self, dev: usize, ticket: u64) {
        let _ = (dev, ticket);
    }

    /// Administratively takes `dev` out of service (in-proc: stops the
    /// worker thread; TCP: drops the link and stops reconnecting).
    fn kill_device(&self, dev: usize);

    /// Brings `dev` back into service after a kill or crash.
    fn restart_device(&mut self, dev: usize);

    /// Turns frame-corruption injection on/off for frames shipped to
    /// `dev` (exercises the checksum path).
    fn set_wire_corruption(&self, dev: usize, on: bool);

    /// Connection-supervision counters (zeros when not applicable).
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }

    /// Smoothed heartbeat round-trip time to `dev` in milliseconds, when
    /// the transport measures one (remote links; `None` in-process). Feeds
    /// per-link gray-failure tracking in [`crate::health`].
    fn link_rtt_ms(&self, dev: usize) -> Option<f64> {
        let _ = dev;
        None
    }

    /// Pushes one gossip control payload (an encoded
    /// `murmuration_core::gossip::GossipMsg`) toward `dev`'s node.
    /// Best-effort: returns `false` when the link is down or the
    /// transport carries no control plane (the in-process default). A
    /// peer that receives a push replies with its own digest, which
    /// arrives via [`Transport::drain_gossip`] — the SWIM push-pull.
    fn send_gossip(&self, dev: usize, payload: &[u8]) -> bool {
        let _ = (dev, payload);
        false
    }

    /// Drains gossip payloads received from peers since the last call
    /// (pull replies and unsolicited pushes alike). Payload order follows
    /// arrival; merging is idempotent so duplicates are harmless.
    fn drain_gossip(&self) -> Vec<Vec<u8>> {
        Vec::new()
    }

    /// Gracefully drains: stop accepting new work, let in-flight work
    /// finish (bounded), release resources. Idempotent.
    fn shutdown(&mut self) {}
}

struct InProcJob {
    unit: usize,
    input: Arc<Tensor>,
    reply: Sender<TransportReply>,
    tag: usize,
    attempt: u32,
    ticket: u64,
}

enum Msg {
    Run(InProcJob),
    Stop,
}

/// Tickets cancelled before their job was dequeued. Bounded FIFO so a
/// cancel for work that already ran (and will never match) cannot grow the
/// set forever.
struct CancelSet {
    set: HashSet<u64>,
    order: VecDeque<u64>,
    cap: usize,
}

impl CancelSet {
    fn new(cap: usize) -> Self {
        CancelSet { set: HashSet::new(), order: VecDeque::new(), cap }
    }

    fn insert(&mut self, ticket: u64) {
        if self.set.insert(ticket) {
            self.order.push_back(ticket);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.set.remove(&old);
                }
            }
        }
    }

    fn remove(&mut self, ticket: u64) -> bool {
        // The FIFO keeps a stale entry until it ages out; harmless, since
        // tickets are never reused.
        self.set.remove(&ticket)
    }
}

/// The original executor internals as a [`Transport`]: one worker thread
/// per device, crossbeam channels standing in for sockets.
pub struct InProcTransport {
    senders: Vec<Sender<Msg>>,
    handles: Vec<Option<JoinHandle<()>>>,
    /// Handles of workers replaced by [`restart_device`](Transport::restart_device);
    /// joined on drop.
    graveyard: Vec<JoinHandle<()>>,
    alive: Vec<AtomicBool>,
    /// Wire-corruption injection: frames shipped *to* a flagged device are
    /// garbled before decode, so tests can exercise the checksum path.
    garble: Vec<AtomicBool>,
    compute: Arc<dyn UnitCompute>,
    next_ticket: AtomicU64,
    cancels: Arc<Mutex<CancelSet>>,
    cancels_delivered: Arc<AtomicU64>,
}

fn spawn_worker(
    dev: usize,
    compute: Arc<dyn UnitCompute>,
    cancels: Arc<Mutex<CancelSet>>,
    cancels_delivered: Arc<AtomicU64>,
) -> (Sender<Msg>, JoinHandle<()>) {
    let (tx, rx): (Sender<Msg>, Receiver<Msg>) = unbounded();
    let builder = std::thread::Builder::new().name(format!("murmuration-dev{dev}"));
    let handle = builder.spawn(move || {
        while let Ok(msg) = rx.recv() {
            match msg {
                Msg::Run(job) => {
                    // A cancel that lands before the job is dequeued saves
                    // the compute entirely; the coordinator has already
                    // moved on, so no reply is owed.
                    if cancels.lock().remove(job.ticket) {
                        cancels_delivered.fetch_add(1, Ordering::SeqCst);
                        continue;
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        compute.run_unit_on(dev, job.unit, &job.input)
                    }));
                    let result = match outcome {
                        Ok(UnitOutcome::Output(t)) => Ok(t),
                        Ok(UnitOutcome::Error(msg)) => Err(ReplyError::Worker(msg)),
                        // Simulated crash: die silently, dropping any
                        // queued jobs — exactly what a killed peer does.
                        Ok(UnitOutcome::Vanish) => break,
                        Err(panic) => {
                            let msg = panic
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_owned())
                                .or_else(|| panic.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "worker panicked".to_owned());
                            Err(ReplyError::Worker(msg))
                        }
                    };
                    // The coordinator may have moved on (timeout path);
                    // ignore send failures.
                    let _ = job.reply.send(TransportReply {
                        tag: job.tag,
                        attempt: job.attempt,
                        result,
                    });
                }
                Msg::Stop => break,
            }
        }
    });
    match handle {
        Ok(h) => (tx, h),
        Err(e) => panic!("spawn worker {dev}: {e}"),
    }
}

impl InProcTransport {
    /// Spawns one worker thread per device.
    pub fn new(n_devices: usize, compute: Arc<dyn UnitCompute>) -> Self {
        assert!(n_devices >= 1);
        let cancels = Arc::new(Mutex::new(CancelSet::new(1024)));
        let cancels_delivered = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(n_devices);
        let mut handles = Vec::with_capacity(n_devices);
        for dev in 0..n_devices {
            let (tx, handle) =
                spawn_worker(dev, compute.clone(), cancels.clone(), cancels_delivered.clone());
            senders.push(tx);
            handles.push(Some(handle));
        }
        InProcTransport {
            senders,
            handles,
            graveyard: Vec::new(),
            alive: (0..n_devices).map(|_| AtomicBool::new(true)).collect(),
            garble: (0..n_devices).map(|_| AtomicBool::new(false)).collect(),
            compute,
            next_ticket: AtomicU64::new(1),
            cancels,
            cancels_delivered,
        }
    }

    /// Serializes a tensor to a wire frame and decodes it back — exactly
    /// what crossing a device boundary does to the data (including packed
    /// quantization). The byte round-trip keeps the transport honest about
    /// the wire format; corruption injected on the link surfaces here as a
    /// checksum error.
    fn ship(&self, to_dev: usize, t: &Tensor, quant: BitWidth) -> Result<Tensor, WireError> {
        let mut frame = crate::wire::encode(t, quant);
        if self.garble[to_dev].load(Ordering::SeqCst) {
            let mid = frame.len() / 2;
            frame[mid] ^= 0x5A;
        }
        crate::wire::decode(&frame)
    }
}

impl Transport for InProcTransport {
    fn n_devices(&self) -> usize {
        self.senders.len()
    }

    fn is_alive(&self, dev: usize) -> bool {
        self.alive[dev].load(Ordering::SeqCst)
    }

    fn mark_dead(&self, dev: usize) {
        self.alive[dev].store(false, Ordering::SeqCst);
    }

    fn submit(
        &self,
        dev: usize,
        job: TransportJob,
        reply: Sender<TransportReply>,
    ) -> Result<u64, SubmitError> {
        let input = if job.cross_boundary {
            match self.ship(dev, &job.input, job.quant) {
                Ok(t) => Arc::new(t),
                Err(e) => return Err(SubmitError::Wire(e)),
            }
        } else {
            job.input
        };
        let ticket = self.next_ticket.fetch_add(1, Ordering::SeqCst);
        let msg = Msg::Run(InProcJob {
            unit: job.unit,
            input,
            reply,
            tag: job.tag,
            attempt: job.attempt,
            ticket,
        });
        if self.senders[dev].send(msg).is_err() {
            self.mark_dead(dev);
            return Err(SubmitError::DeviceDown);
        }
        Ok(ticket)
    }

    fn cancel(&self, dev: usize, ticket: u64) {
        let _ = dev;
        self.cancels.lock().insert(ticket);
    }

    fn kill_device(&self, dev: usize) {
        self.alive[dev].store(false, Ordering::SeqCst);
        let _ = self.senders[dev].send(Msg::Stop);
    }

    fn restart_device(&mut self, dev: usize) {
        let (tx, handle) = spawn_worker(
            dev,
            self.compute.clone(),
            self.cancels.clone(),
            self.cancels_delivered.clone(),
        );
        let _ = self.senders[dev].send(Msg::Stop); // in case the old worker still runs
        self.senders[dev] = tx;
        if let Some(old) = self.handles[dev].replace(handle) {
            self.graveyard.push(old);
        }
        self.alive[dev].store(true, Ordering::SeqCst);
    }

    fn set_wire_corruption(&self, dev: usize, on: bool) {
        self.garble[dev].store(on, Ordering::SeqCst);
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            cancels_delivered: self.cancels_delivered.load(Ordering::SeqCst),
            ..TransportStats::default()
        }
    }

    fn shutdown(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Stop);
        }
        for h in self.handles.iter_mut().filter_map(Option::take) {
            let _ = h.join();
        }
        for h in self.graveyard.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for InProcTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::executor::ConvStackCompute;
    use murmuration_tensor::Shape;
    use std::time::Duration;

    fn setup() -> (InProcTransport, Arc<ConvStackCompute>, Tensor) {
        use rand::{rngs::StdRng, SeedableRng};
        let compute = Arc::new(ConvStackCompute::random(2, 1, 2, 9));
        let t = InProcTransport::new(2, compute.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let input = Tensor::rand_uniform(Shape::nchw(1, 2, 6, 6), 1.0, &mut rng);
        (t, compute, input)
    }

    fn job(input: &Tensor, cross: bool) -> TransportJob {
        TransportJob {
            unit: 0,
            input: Arc::new(input.clone()),
            quant: BitWidth::B32,
            cross_boundary: cross,
            tag: 7,
            attempt: 1,
            deadline: None,
        }
    }

    #[test]
    fn submit_round_trips_through_a_worker() {
        let (t, compute, input) = setup();
        let (tx, rx) = unbounded();
        t.submit(1, job(&input, true), tx).unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply.tag, 7);
        assert_eq!(reply.attempt, 1);
        let out = reply.result.unwrap();
        assert_eq!(out.data(), compute.run_unit(0, &input).data(), "B32 ship is exact");
    }

    #[test]
    fn garbled_ship_is_a_wire_submit_error() {
        let (t, _, input) = setup();
        t.set_wire_corruption(1, true);
        let (tx, _rx) = unbounded();
        match t.submit(1, job(&input, true), tx) {
            Err(SubmitError::Wire(_)) => {}
            other => panic!("expected wire error, got {:?}", other.err()),
        }
    }

    #[test]
    fn killed_device_fails_submit_and_restart_revives() {
        let (mut t, _, input) = setup();
        t.kill_device(1);
        assert!(!t.is_alive(1));
        // The stop message races the submit through the same channel; the
        // worker is gone after draining, so a (possibly second) submit
        // eventually fails or its reply channel disconnects.
        std::thread::sleep(Duration::from_millis(20));
        let (tx, rx) = unbounded();
        match t.submit(1, job(&input, false), tx) {
            Err(SubmitError::DeviceDown) => {}
            Ok(_) => {
                // Accepted into the drained queue: the reply never comes
                // and the channel disconnects instead.
                assert!(rx.recv_timeout(Duration::from_secs(5)).is_err());
            }
            Err(e) => panic!("unexpected submit error {e:?}"),
        }
        t.restart_device(1);
        assert!(t.is_alive(1));
        let (tx, rx) = unbounded();
        t.submit(1, job(&input, false), tx).unwrap();
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap().result.is_ok());
    }

    #[test]
    fn stats_default_to_zero() {
        let (t, _, _) = setup();
        assert_eq!(t.stats(), TransportStats::default());
        assert_eq!(t.stats().since(&t.stats()), TransportStats::default());
    }

    #[test]
    fn cancel_before_dequeue_saves_the_compute() {
        use crate::fault::{FaultKind, FaultyCompute};
        let (_, compute, input) = setup();
        // Stall the worker on its first job so the second stays queued
        // long enough for the cancel to land first.
        let faulty = Arc::new(FaultyCompute::new(compute, 2));
        faulty.script(1, 0, FaultKind::Stall(Duration::from_millis(150)));
        let t = InProcTransport::new(2, faulty);
        let (tx, rx) = unbounded();
        t.submit(1, job(&input, false), tx.clone()).unwrap();
        let ticket = t.submit(1, job(&input, false), tx).unwrap();
        t.cancel(1, ticket);
        // First reply arrives; the cancelled job never replies.
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap().result.is_ok());
        // Eventually the worker dequeues (and drops) the cancelled job.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.stats().cancels_delivered == 0 {
            assert!(std::time::Instant::now() < deadline, "cancel never delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err(), "no reply for a cancel");
    }
}
