//! Decentralized control plane: SWIM-style gossip membership and
//! reputation-weighted health dissemination.
//!
//! The coordinator was the last single point of failure and the sole
//! consumer of [`crate::health`] signals. This module removes both
//! assumptions:
//!
//! * **Membership** — every node keeps a versioned view of the fleet
//!   ([`MemberRecord`]: incarnation + heartbeat counter + graded member
//!   state) and periodically push-pulls digests with a few random peers.
//!   Records merge by `(incarnation, heartbeat)` freshness, with the
//!   SWIM refutation rule: a node seeing itself suspected bumps its own
//!   incarnation, so a stale rumor cannot permanently kill a live node.
//! * **Health dissemination** — each node attaches its local
//!   [`FleetHealth`] observations ([`HealthReport`]: graded state,
//!   routing penalty, p50/p95 latency digest) to every gossip exchange,
//!   versioned per reporter so replayed or duplicated frames are
//!   idempotent.
//! * **Byzantine-resistant aggregation** — [`ReputationAggregator`]
//!   folds peer reports into a per-device penalty with a coordinate-wise
//!   *trimmed mean* weighted by per-reporter reputation. With trim width
//!   `k`, up to `k` lying reporters can never move the aggregate outside
//!   the honest reporters' range (the values outside that range are
//!   exactly the ones trimmed), and reporters whose claims repeatedly
//!   disagree with direct observation lose weight until they are ignored
//!   entirely. Aggregated peer penalties are *capped* when folded into
//!   [`FleetHealth`] (see `peer_penalty_cap`): gossip steers routing, but
//!   quarantine always requires local evidence plus a local canary pass.
//!
//! Everything is driven by explicit ticks and caller-provided seeds —
//! no wall clock, no OS entropy — so gossip chaos tests replay
//! bit-for-bit.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::health::FleetHealth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Wire format version of [`GossipMsg::encode`].
pub const GOSSIP_WIRE_VERSION: u8 = 1;

/// Hard cap on records per message: a corrupted length field must not
/// allocate unbounded memory.
const MAX_RECORDS: usize = 4096;

/// A deterministic node identity, derived from the run seed — never from
/// OS entropy — so distributed runs replay bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Derives the id of node `index` for a run seeded with `seed`
    /// (splitmix64 over the pair; stable across platforms).
    pub fn derive(seed: u64, index: u64) -> NodeId {
        let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        NodeId(z ^ (z >> 31))
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// What a node does in the fleet; coordinators are failover candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// Runs (or can run) the serving/control loop.
    Coordinator,
    /// Hosts device compute.
    Worker,
}

impl NodeRole {
    fn code(self) -> u8 {
        match self {
            NodeRole::Coordinator => 0,
            NodeRole::Worker => 1,
        }
    }

    fn from_code(c: u8) -> NodeRole {
        if c == 0 {
            NodeRole::Coordinator
        } else {
            NodeRole::Worker
        }
    }
}

/// Graded membership state, ordered by badness for merge tie-breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemberState {
    /// Heartbeats advancing.
    Alive,
    /// Heartbeat stale for `suspect_after` ticks — still a failover
    /// candidate, but rumored unhealthy.
    Suspect,
    /// Heartbeat stale for `fail_after` ticks — treated as gone.
    Failed,
}

impl MemberState {
    fn code(self) -> u8 {
        match self {
            MemberState::Alive => 0,
            MemberState::Suspect => 1,
            MemberState::Failed => 2,
        }
    }

    fn from_code(c: u8) -> MemberState {
        match c {
            1 => MemberState::Suspect,
            2 => MemberState::Failed,
            _ => MemberState::Alive,
        }
    }
}

/// One node's versioned membership record as seen by some observer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemberRecord {
    /// Whose record this is.
    pub id: NodeId,
    /// Role in the fleet.
    pub role: NodeRole,
    /// Failover rank (coordinators): lower ranks take over first; ties
    /// break by id, so the ordering is total and every node computes the
    /// same primary from the same view.
    pub rank: u32,
    /// Bumped by the owner to refute rumors about itself; the highest
    /// incarnation always wins a merge.
    pub incarnation: u64,
    /// Monotone liveness counter bumped by the owner every tick.
    pub heartbeat: u64,
    /// Observer-graded liveness.
    pub state: MemberState,
}

impl MemberRecord {
    /// Merge precedence: does `self` carry strictly newer information
    /// than `cur`? Same-version records merge to the *worse* state, so a
    /// suspicion and its evidence commute.
    fn supersedes(&self, cur: &MemberRecord) -> bool {
        (self.incarnation, self.heartbeat) > (cur.incarnation, cur.heartbeat)
            || ((self.incarnation, self.heartbeat) == (cur.incarnation, cur.heartbeat)
                && self.state > cur.state)
    }

    const WIRE_BYTES: usize = 8 + 1 + 4 + 8 + 8 + 1;

    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.0.to_le_bytes());
        out.push(self.role.code());
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.incarnation.to_le_bytes());
        out.extend_from_slice(&self.heartbeat.to_le_bytes());
        out.push(self.state.code());
    }

    fn read(c: &mut Cursor<'_>) -> Result<MemberRecord, GossipError> {
        Ok(MemberRecord {
            id: NodeId(c.u64()?),
            role: NodeRole::from_code(c.u8()?),
            rank: c.u32()?,
            incarnation: c.u64()?,
            heartbeat: c.u64()?,
            state: MemberState::from_code(c.u8()?),
        })
    }
}

/// One reporter's graded-health observation of one device, as gossiped.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthReport {
    /// Who observed it.
    pub reporter: NodeId,
    /// Which device the observation is about.
    pub device: u32,
    /// Claimed [`HealthState`] wire code.
    pub state: u8,
    /// Claimed routing-penalty multiplier (∞ = quarantined claim).
    pub penalty: f64,
    /// Claimed median latency (ms; NaN when unknown).
    pub p50_ms: f64,
    /// Claimed p95 latency (ms; NaN when unknown).
    pub p95_ms: f64,
    /// Reporter-local version: higher wins, equal is idempotent.
    pub version: u64,
}

impl HealthReport {
    const WIRE_BYTES: usize = 8 + 4 + 1 + 8 + 8 + 8 + 8;

    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.reporter.0.to_le_bytes());
        out.extend_from_slice(&self.device.to_le_bytes());
        out.push(self.state);
        out.extend_from_slice(&self.penalty.to_bits().to_le_bytes());
        out.extend_from_slice(&self.p50_ms.to_bits().to_le_bytes());
        out.extend_from_slice(&self.p95_ms.to_bits().to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
    }

    fn read(c: &mut Cursor<'_>) -> Result<HealthReport, GossipError> {
        Ok(HealthReport {
            reporter: NodeId(c.u64()?),
            device: c.u32()?,
            state: c.u8()?,
            penalty: f64::from_bits(c.u64()?),
            p50_ms: f64::from_bits(c.u64()?),
            p95_ms: f64::from_bits(c.u64()?),
            version: c.u64()?,
        })
    }
}

/// Why a gossip payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipError {
    /// Payload ended mid-record.
    Truncated,
    /// Unknown wire version byte.
    Version(u8),
    /// A length field exceeded [`MAX_RECORDS`].
    TooLarge(usize),
}

impl std::fmt::Display for GossipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GossipError::Truncated => write!(f, "gossip payload truncated"),
            GossipError::Version(v) => write!(f, "unknown gossip wire version {v}"),
            GossipError::TooLarge(n) => write!(f, "gossip record count {n} exceeds cap"),
        }
    }
}

impl std::error::Error for GossipError {}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], GossipError> {
        let end = self.pos.checked_add(n).ok_or(GossipError::Truncated)?;
        if end > self.buf.len() {
            return Err(GossipError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, GossipError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, GossipError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, GossipError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }
}

/// One push (or pull reply) of gossip: the sender's full membership view
/// plus every health report it carries. Merging is idempotent, so
/// duplicated or reordered frames are harmless.
#[derive(Clone, Debug, PartialEq)]
pub struct GossipMsg {
    /// The sending node.
    pub from: NodeId,
    /// Membership records in the sender's view.
    pub members: Vec<MemberRecord>,
    /// Health reports in the sender's view (all reporters, not just the
    /// sender — rumors travel).
    pub reports: Vec<HealthReport>,
}

impl GossipMsg {
    /// Serializes to the versioned little-endian wire format carried by
    /// the transport's gossip control frame.
    pub fn encode(&self) -> Vec<u8> {
        let cap = 1
            + 8
            + 4
            + self.members.len() * MemberRecord::WIRE_BYTES
            + 4
            + self.reports.len() * HealthReport::WIRE_BYTES;
        let mut out = Vec::with_capacity(cap);
        out.push(GOSSIP_WIRE_VERSION);
        out.extend_from_slice(&self.from.0.to_le_bytes());
        out.extend_from_slice(&(self.members.len().min(MAX_RECORDS) as u32).to_le_bytes());
        for m in self.members.iter().take(MAX_RECORDS) {
            m.write(&mut out);
        }
        out.extend_from_slice(&(self.reports.len().min(MAX_RECORDS) as u32).to_le_bytes());
        for r in self.reports.iter().take(MAX_RECORDS) {
            r.write(&mut out);
        }
        out
    }

    /// Parses a payload produced by [`GossipMsg::encode`]; every length
    /// is bounds-checked, so corrupted payloads error instead of
    /// panicking or over-allocating.
    pub fn decode(buf: &[u8]) -> Result<GossipMsg, GossipError> {
        let mut c = Cursor { buf, pos: 0 };
        let v = c.u8()?;
        if v != GOSSIP_WIRE_VERSION {
            return Err(GossipError::Version(v));
        }
        let from = NodeId(c.u64()?);
        let n_members = c.u32()? as usize;
        if n_members > MAX_RECORDS {
            return Err(GossipError::TooLarge(n_members));
        }
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(MemberRecord::read(&mut c)?);
        }
        let n_reports = c.u32()? as usize;
        if n_reports > MAX_RECORDS {
            return Err(GossipError::TooLarge(n_reports));
        }
        let mut reports = Vec::with_capacity(n_reports);
        for _ in 0..n_reports {
            reports.push(HealthReport::read(&mut c)?);
        }
        Ok(GossipMsg { from, members, reports })
    }
}

/// Tuning for the gossip node.
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// Random peers contacted per round.
    pub fanout: usize,
    /// Local ticks without heartbeat progress before a peer is Suspect.
    pub suspect_after: u64,
    /// Local ticks without heartbeat progress before a peer is Failed.
    pub fail_after: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig { fanout: 2, suspect_after: 3, fail_after: 6 }
    }
}

/// What a merge changed, so callers can react (and tests can assert
/// idempotency).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeDelta {
    /// Member records inserted or superseded.
    pub members_updated: usize,
    /// Health reports inserted or superseded.
    pub reports_updated: usize,
    /// Whether we refuted a rumor about ourselves (incarnation bumped).
    pub refuted: bool,
}

impl MergeDelta {
    /// True when the merge changed nothing — the idempotency fast-path.
    pub fn is_noop(&self) -> bool {
        self.members_updated == 0 && self.reports_updated == 0 && !self.refuted
    }
}

/// One node's gossip state machine: its membership view, the health
/// rumors it carries, and the seeded RNG that picks gossip partners.
pub struct GossipNode {
    cfg: GossipConfig,
    me: NodeId,
    view: BTreeMap<NodeId, MemberRecord>,
    reports: BTreeMap<(NodeId, u32), HealthReport>,
    /// Local tick at which each peer's heartbeat last advanced.
    last_advance: BTreeMap<NodeId, u64>,
    tick: u64,
    report_version: u64,
    rng: StdRng,
}

impl GossipNode {
    /// A node whose identity is [`NodeId::derive`]`(seed, index)`.
    pub fn new(seed: u64, index: u64, role: NodeRole, rank: u32, cfg: GossipConfig) -> Self {
        let me = NodeId::derive(seed, index);
        let mut view = BTreeMap::new();
        view.insert(
            me,
            MemberRecord {
                id: me,
                role,
                rank,
                incarnation: 0,
                heartbeat: 0,
                state: MemberState::Alive,
            },
        );
        GossipNode {
            cfg,
            me,
            view,
            reports: BTreeMap::new(),
            last_advance: BTreeMap::new(),
            tick: 0,
            report_version: 0,
            rng: StdRng::seed_from_u64(seed ^ me.0),
        }
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// This node's own record in its view.
    pub fn self_record(&self) -> MemberRecord {
        self.view.get(&self.me).copied().unwrap_or(MemberRecord {
            id: self.me,
            role: NodeRole::Coordinator,
            rank: u32::MAX,
            incarnation: 0,
            heartbeat: 0,
            state: MemberState::Alive,
        })
    }

    /// Every record in the view.
    pub fn members(&self) -> Vec<MemberRecord> {
        self.view.values().copied().collect()
    }

    /// The record for `id`, if known.
    pub fn member(&self, id: NodeId) -> Option<MemberRecord> {
        self.view.get(&id).copied()
    }

    /// Advances one gossip round: bumps our heartbeat and sweeps peers
    /// whose heartbeat has not advanced for `suspect_after` /
    /// `fail_after` local ticks. Returns the peers whose state this tick
    /// degraded, worst first.
    pub fn tick(&mut self) -> Vec<(NodeId, MemberState)> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(m) = self.view.get_mut(&self.me) {
            m.heartbeat = m.heartbeat.max(tick);
            m.state = MemberState::Alive;
        }
        let mut degraded = Vec::new();
        for (id, rec) in self.view.iter_mut() {
            if *id == self.me || rec.state == MemberState::Failed {
                continue;
            }
            let last = *self.last_advance.entry(*id).or_insert(tick.saturating_sub(1));
            let stale = tick.saturating_sub(last);
            let want = if stale >= self.cfg.fail_after {
                MemberState::Failed
            } else if stale >= self.cfg.suspect_after {
                MemberState::Suspect
            } else {
                MemberState::Alive
            };
            if want > rec.state {
                rec.state = want;
                degraded.push((*id, want));
            }
        }
        degraded
    }

    /// The digest this node pushes (and replies with when pulled).
    pub fn digest(&self) -> GossipMsg {
        GossipMsg {
            from: self.me,
            members: self.members(),
            reports: self.reports.values().copied().collect(),
        }
    }

    /// Merges a received digest. Versioned records make this idempotent:
    /// merging the same message twice is a no-op, so duplicated frames
    /// (chaos `duplicate` mode) and re-deliveries are harmless.
    pub fn merge(&mut self, msg: &GossipMsg) -> MergeDelta {
        let mut delta = MergeDelta::default();
        for rec in &msg.members {
            if rec.id == self.me {
                // SWIM refutation: a rumor that we are not Alive, at our
                // incarnation or newer, is refuted by outliving it.
                let mine = self.self_record();
                if rec.state != MemberState::Alive && rec.incarnation >= mine.incarnation {
                    if let Some(m) = self.view.get_mut(&self.me) {
                        m.incarnation = rec.incarnation + 1;
                        m.state = MemberState::Alive;
                        m.heartbeat = m.heartbeat.max(rec.heartbeat + 1);
                    }
                    delta.refuted = true;
                }
                continue;
            }
            match self.view.get_mut(&rec.id) {
                None => {
                    self.view.insert(rec.id, *rec);
                    self.last_advance.insert(rec.id, self.tick);
                    delta.members_updated += 1;
                }
                Some(cur) => {
                    if rec.supersedes(cur) {
                        if rec.heartbeat > cur.heartbeat || rec.incarnation > cur.incarnation {
                            self.last_advance.insert(rec.id, self.tick);
                        }
                        *cur = *rec;
                        delta.members_updated += 1;
                    }
                }
            }
        }
        for rep in &msg.reports {
            let key = (rep.reporter, rep.device);
            match self.reports.get(&key) {
                Some(cur) if cur.version >= rep.version => {}
                _ => {
                    self.reports.insert(key, *rep);
                    delta.reports_updated += 1;
                }
            }
        }
        delta
    }

    /// Replaces this node's own health reports with fresh observations
    /// from its local [`FleetHealth`], bumping the report version.
    pub fn publish_local_health(&mut self, fleet: &FleetHealth) {
        self.report_version += 1;
        let version = self.report_version;
        for dev in 0..fleet.n_devices() {
            let (p50, p95) = fleet.latency_digest(dev).unwrap_or((f64::NAN, f64::NAN));
            self.reports.insert(
                (self.me, dev as u32),
                HealthReport {
                    reporter: self.me,
                    device: dev as u32,
                    state: fleet.state(dev).code(),
                    penalty: fleet.penalty(dev),
                    p50_ms: p50,
                    p95_ms: p95,
                    version,
                },
            );
        }
    }

    /// All carried reports about `device` from reporters other than
    /// `exclude` (pass the local node to keep self-reports out of peer
    /// aggregation).
    pub fn peer_reports_for(&self, device: u32, exclude: NodeId) -> Vec<HealthReport> {
        self.reports
            .values()
            .filter(|r| r.device == device && r.reporter != exclude)
            .copied()
            .collect()
    }

    /// Every report currently carried.
    pub fn reports(&self) -> Vec<HealthReport> {
        self.reports.values().copied().collect()
    }

    /// Up to `fanout` random live peers to push-pull with this round.
    pub fn gossip_peers(&mut self) -> Vec<NodeId> {
        let candidates: Vec<NodeId> = self
            .view
            .values()
            .filter(|m| m.id != self.me && m.state != MemberState::Failed)
            .map(|m| m.id)
            .collect();
        let mut picked = Vec::new();
        let mut pool = candidates;
        for _ in 0..self.cfg.fanout.min(pool.len()) {
            let i = self.rng.gen_range(0..pool.len());
            picked.push(pool.swap_remove(i));
        }
        picked
    }

    /// The current primary coordinator: the not-Failed coordinator with
    /// the lowest `(rank, id)`. Every node with the same view computes
    /// the same answer, so failover needs no election protocol.
    pub fn primary_coordinator(&self) -> Option<MemberRecord> {
        self.view
            .values()
            .filter(|m| m.role == NodeRole::Coordinator && m.state != MemberState::Failed)
            .min_by_key(|m| (m.rank, m.id))
            .copied()
    }

    /// Whether this node should currently be the acting coordinator.
    pub fn is_primary(&self) -> bool {
        self.primary_coordinator().is_some_and(|m| m.id == self.me)
    }
}

/// Tuning for reputation-weighted aggregation.
#[derive(Clone, Copy, Debug)]
pub struct ReputationConfig {
    /// Reports trimmed from *each* end before averaging; up to `trim`
    /// Byzantine reporters cannot move the aggregate outside the honest
    /// range. Needs `2*trim + 1` usable reports to aggregate at all.
    pub trim: usize,
    /// Absolute penalty disagreement tolerated before a reporter's claim
    /// counts against its reputation.
    pub agree_tol: f64,
    /// Multiplicative weight decay on a disagreeing claim.
    pub disagree_decay: f64,
    /// Additive weight recovery on an agreeing claim (capped at 1.0).
    pub agree_recover: f64,
    /// Reporters below this weight are excluded from aggregation.
    pub min_weight: f64,
    /// Claims are clamped into `[1.0, claim_cap]` before comparison and
    /// aggregation (an ∞ "quarantined" claim becomes the cap).
    pub claim_cap: f64,
}

impl Default for ReputationConfig {
    fn default() -> Self {
        ReputationConfig {
            trim: 1,
            agree_tol: 1.0,
            disagree_decay: 0.5,
            agree_recover: 0.1,
            min_weight: 0.2,
            claim_cap: 16.0,
        }
    }
}

/// Per-reporter reputation plus the coordinate-wise trimmed-mean fold.
///
/// Reputation is earned back slowly (`agree_recover`) and lost fast
/// (`disagree_decay`), so a flaky or lying reporter is discounted after a
/// few contradicted claims and rehabilitated only by a run of honest
/// ones. The trimmed mean makes even *full-weight* liars bounded: with
/// `k ≤ trim` liars among `≥ 2·trim+1` reports, every claim outside the
/// honest range is trimmed, so the aggregate stays within
/// `[min honest, max honest]` — the bound the proptests pin.
pub struct ReputationAggregator {
    cfg: ReputationConfig,
    weights: BTreeMap<NodeId, f64>,
}

impl ReputationAggregator {
    /// An aggregator where every reporter starts fully trusted.
    pub fn new(cfg: ReputationConfig) -> Self {
        ReputationAggregator { cfg, weights: BTreeMap::new() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ReputationConfig {
        &self.cfg
    }

    /// Current weight of `reporter` (1.0 until observed misbehaving).
    pub fn weight(&self, reporter: NodeId) -> f64 {
        self.weights.get(&reporter).copied().unwrap_or(1.0)
    }

    fn clamp_claim(&self, p: f64) -> f64 {
        if p.is_nan() {
            1.0
        } else {
            p.clamp(1.0, self.cfg.claim_cap)
        }
    }

    /// Scores one claim against a direct local observation of the same
    /// device: agreement earns weight back, disagreement decays it.
    pub fn observe(&mut self, reporter: NodeId, claimed_penalty: f64, observed_penalty: f64) {
        let claimed = self.clamp_claim(claimed_penalty);
        let observed = self.clamp_claim(observed_penalty);
        let w = self.weight(reporter);
        let w = if (claimed - observed).abs() > self.cfg.agree_tol {
            w * self.cfg.disagree_decay
        } else {
            (w + self.cfg.agree_recover).min(1.0)
        };
        self.weights.insert(reporter, w);
    }

    /// Coordinate-wise trimmed mean of one device's peer-claimed
    /// penalties, weighted by reporter reputation. Returns `None` when
    /// fewer than `2·trim + 1` sufficiently-trusted reports exist — the
    /// caller then falls back to purely local evidence.
    pub fn aggregate(&self, claims: &[(NodeId, f64)]) -> Option<f64> {
        let mut usable: Vec<(f64, f64)> = claims
            .iter()
            .map(|(who, p)| (self.weight(*who), self.clamp_claim(*p)))
            .filter(|(w, _)| *w >= self.cfg.min_weight)
            .collect();
        if usable.len() < 2 * self.cfg.trim + 1 {
            return None;
        }
        usable.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let mid = &usable[self.cfg.trim..usable.len() - self.cfg.trim];
        let wsum: f64 = mid.iter().map(|(w, _)| w).sum();
        if wsum <= 0.0 {
            return None;
        }
        Some(mid.iter().map(|(w, p)| w * p).sum::<f64>() / wsum)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::health::{HealthConfig, HealthState};

    fn node(seed: u64, index: u64, role: NodeRole, rank: u32) -> GossipNode {
        GossipNode::new(seed, index, role, rank, GossipConfig::default())
    }

    #[test]
    fn node_ids_are_seed_deterministic_and_distinct() {
        assert_eq!(NodeId::derive(7, 0), NodeId::derive(7, 0));
        assert_ne!(NodeId::derive(7, 0), NodeId::derive(7, 1));
        assert_ne!(NodeId::derive(7, 0), NodeId::derive(8, 0));
    }

    #[test]
    fn digest_round_trips_through_wire() {
        let mut a = node(1, 0, NodeRole::Coordinator, 0);
        let mut fleet = FleetHealth::new(3, HealthConfig::default());
        for i in 0..16 {
            let _ = fleet.on_success(1, 10.0 + (i % 3) as f64, i as f64);
        }
        a.publish_local_health(&fleet);
        let _ = a.tick();
        let msg = a.digest();
        let decoded = GossipMsg::decode(&msg.encode()).unwrap();
        // NaN digests forbid direct struct equality; bit-exact re-encoding
        // is the stronger check anyway.
        assert_eq!(decoded.encode(), msg.encode());
        assert_eq!(decoded.members, msg.members);
        assert_eq!(decoded.from, msg.from);
    }

    #[test]
    fn infinite_penalty_claims_survive_encoding() {
        let msg = GossipMsg {
            from: NodeId(9),
            members: vec![],
            reports: vec![HealthReport {
                reporter: NodeId(9),
                device: 2,
                state: HealthState::Quarantined.code(),
                penalty: f64::INFINITY,
                p50_ms: f64::NAN,
                p95_ms: f64::NAN,
                version: 3,
            }],
        };
        let d = GossipMsg::decode(&msg.encode()).unwrap();
        assert!(d.reports[0].penalty.is_infinite());
        assert!(d.reports[0].p50_ms.is_nan());
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        assert_eq!(GossipMsg::decode(&[]), Err(GossipError::Truncated));
        assert!(matches!(GossipMsg::decode(&[99, 0, 0]), Err(GossipError::Version(99))));
        // A huge member count must error, not allocate.
        let mut buf = vec![GOSSIP_WIRE_VERSION];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(GossipMsg::decode(&buf), Err(GossipError::TooLarge(_))));
        // Truncated mid-record.
        let mut buf = vec![GOSSIP_WIRE_VERSION];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        assert_eq!(GossipMsg::decode(&buf), Err(GossipError::Truncated));
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = node(3, 0, NodeRole::Coordinator, 0);
        let mut b = node(3, 1, NodeRole::Worker, 0);
        let _ = b.tick();
        let msg = b.digest();
        let first = a.merge(&msg);
        assert!(first.members_updated > 0);
        let second = a.merge(&msg);
        assert!(second.is_noop(), "re-merging the same digest must change nothing: {second:?}");
    }

    #[test]
    fn rumors_travel_transitively() {
        let a = node(5, 0, NodeRole::Coordinator, 0);
        let mut b = node(5, 1, NodeRole::Worker, 0);
        let mut c = node(5, 2, NodeRole::Worker, 0);
        // a <-> b, then b <-> c: c learns about a without ever meeting it.
        let _ = b.merge(&a.digest());
        let _ = c.merge(&b.digest());
        assert!(c.member(a.id()).is_some());
    }

    #[test]
    fn stale_heartbeats_suspect_then_fail() {
        let cfg = GossipConfig::default();
        let mut a = node(11, 0, NodeRole::Coordinator, 0);
        let mut b = node(11, 1, NodeRole::Coordinator, 1);
        let _ = b.tick();
        let _ = a.merge(&b.digest());
        assert_eq!(a.member(b.id()).unwrap().state, MemberState::Alive);
        // b goes silent: a's local ticks mark it Suspect, then Failed.
        for _ in 0..cfg.suspect_after {
            let _ = a.tick();
        }
        assert_eq!(a.member(b.id()).unwrap().state, MemberState::Suspect);
        for _ in 0..cfg.fail_after {
            let _ = a.tick();
        }
        assert_eq!(a.member(b.id()).unwrap().state, MemberState::Failed);
        // A fresh heartbeat resurrects the record.
        let _ = b.tick();
        let _ = b.tick();
        let delta = a.merge(&b.digest());
        assert!(delta.members_updated > 0);
        assert_eq!(a.member(b.id()).unwrap().state, MemberState::Alive);
    }

    #[test]
    fn refutation_outlives_rumors() {
        let mut a = node(13, 0, NodeRole::Coordinator, 0);
        let mut b = node(13, 1, NodeRole::Coordinator, 1);
        let _ = a.merge(&b.digest());
        // a wrongly believes b failed; b refutes by bumping incarnation.
        for _ in 0..10 {
            let _ = a.tick();
        }
        assert_eq!(a.member(b.id()).unwrap().state, MemberState::Failed);
        let delta = b.merge(&a.digest());
        assert!(delta.refuted);
        let rec = b.self_record();
        assert_eq!(rec.state, MemberState::Alive);
        assert!(rec.incarnation > 0);
        // The refuted record now supersedes the rumor everywhere.
        let delta = a.merge(&b.digest());
        assert!(delta.members_updated > 0);
        assert_eq!(a.member(b.id()).unwrap().state, MemberState::Alive);
    }

    #[test]
    fn primary_is_deterministic_and_fails_over_by_rank() {
        let mut w = node(17, 5, NodeRole::Worker, 0);
        let mut c0 = node(17, 0, NodeRole::Coordinator, 0);
        let mut c1 = node(17, 1, NodeRole::Coordinator, 1);
        let _ = c0.tick();
        let _ = c1.tick();
        let _ = w.merge(&c0.digest());
        let _ = w.merge(&c1.digest());
        let _ = c1.merge(&w.digest());
        assert_eq!(w.primary_coordinator().unwrap().id, c0.id());
        assert_eq!(c1.primary_coordinator().unwrap().id, c0.id());
        assert!(!c1.is_primary());
        // c0 goes silent; once Failed in c1's view, c1 becomes primary.
        for _ in 0..10 {
            let _ = c1.tick();
        }
        assert_eq!(c1.member(c0.id()).unwrap().state, MemberState::Failed);
        assert!(c1.is_primary());
    }

    #[test]
    fn gossip_peer_selection_is_seeded() {
        let build = || {
            let mut n = node(23, 0, NodeRole::Coordinator, 0);
            for i in 1..6 {
                let _ = n.merge(&node(23, i, NodeRole::Worker, 0).digest());
            }
            let mut picks = Vec::new();
            for _ in 0..4 {
                picks.push(n.gossip_peers());
            }
            picks
        };
        assert_eq!(build(), build(), "peer selection must replay bit-for-bit");
    }

    #[test]
    fn liars_lose_weight_and_recover_with_honesty() {
        let mut rep = ReputationAggregator::new(ReputationConfig::default());
        let liar = NodeId(1);
        assert_eq!(rep.weight(liar), 1.0);
        for _ in 0..3 {
            rep.observe(liar, 16.0, 1.0);
        }
        assert!(rep.weight(liar) < ReputationConfig::default().min_weight);
        // Honest reporting rehabilitates, slowly.
        let mut rounds = 0;
        while rep.weight(liar) < 1.0 && rounds < 100 {
            rep.observe(liar, 1.0, 1.0);
            rounds += 1;
        }
        assert!(rep.weight(liar) >= 1.0);
        assert!(rounds > 5, "recovery must be slower than the decay");
    }

    #[test]
    fn trimmed_aggregate_ignores_one_liar() {
        let rep = ReputationAggregator::new(ReputationConfig::default());
        let claims = vec![(NodeId(1), 1.0), (NodeId(2), 1.2), (NodeId(3), 1.1), (NodeId(4), 16.0)];
        let agg = rep.aggregate(&claims).unwrap();
        assert!((1.0..=1.2).contains(&agg), "aggregate {agg} must stay in the honest range");
        // Too few reports: no aggregate, local evidence rules.
        assert!(rep.aggregate(&claims[..2]).is_none());
    }
}
