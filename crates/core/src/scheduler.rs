//! The Scheduler (paper Fig. 10): translates a decided (spec, plan) pair
//! into the executor's dispatch description — per-unit FDSP grids and wire
//! precisions — after validating the plan against the fleet.

use crate::executor::UnitWire;
use murmuration_partition::ExecutionPlan;
use murmuration_supernet::SubnetSpec;
use murmuration_tensor::quant::BitWidth;
use murmuration_tensor::tile::GridSpec;

/// Scheduling errors.
#[derive(Debug, PartialEq, Eq)]
pub struct ScheduleError(pub String);

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schedule error: {}", self.0)
    }
}

impl std::error::Error for ScheduleError {}

/// Builds the executor dispatch table for a validated plan.
///
/// Unit `u`'s *input* precision is the previous unit's output quantization
/// (the wire it arrives on); the first unit receives the raw f32 input.
/// Tiled units carry their grid; single units a 1×1 grid.
pub fn dispatch_table(
    spec: &SubnetSpec,
    plan: &ExecutionPlan,
    n_devices: usize,
) -> Result<Vec<UnitWire>, ScheduleError> {
    plan.validate(spec, n_devices).map_err(ScheduleError)?;
    let mut table = Vec::with_capacity(spec.units.len());
    let mut in_quant = BitWidth::B32; // the camera input is raw
    for (unit, placement) in spec.units.iter().zip(&plan.placements) {
        let grid = match placement {
            murmuration_partition::UnitPlacement::Single(_) => GridSpec::new(1, 1),
            murmuration_partition::UnitPlacement::Tiled(_) => unit.partition,
        };
        table.push(UnitWire { grid, in_quant });
        in_quant = unit.quant;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_partition::UnitPlacement;
    use murmuration_supernet::SearchSpace;

    fn partitioned_spec() -> SubnetSpec {
        let s = SearchSpace::default();
        let mut cfg = s.min_config();
        cfg.stages[1].partition = GridSpec::new(2, 2);
        cfg.stages[0].quant = BitWidth::B8;
        SubnetSpec::lower(&cfg)
    }

    #[test]
    fn wire_precisions_follow_the_chain() {
        let spec = partitioned_spec();
        let mut plan = ExecutionPlan::all_on(&spec, 0);
        plan.placements[2] = UnitPlacement::Tiled(vec![0, 1, 0, 1]);
        let table = dispatch_table(&spec, &plan, 2).unwrap();
        assert_eq!(table.len(), spec.units.len());
        // The first unit receives raw input.
        assert_eq!(table[0].in_quant, BitWidth::B32);
        // Stage1 (unit 2) receives stage0's output at stage0's quant (B8).
        assert_eq!(table[2].in_quant, BitWidth::B8);
        assert_eq!(table[2].grid, GridSpec::new(2, 2));
        // Single placements always dispatch 1x1.
        assert_eq!(table[1].grid, GridSpec::new(1, 1));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let spec = partitioned_spec();
        let mut plan = ExecutionPlan::all_on(&spec, 0);
        plan.placements[0] = UnitPlacement::Single(9);
        assert!(dispatch_table(&spec, &plan, 2).is_err());
        let short = ExecutionPlan { placements: vec![UnitPlacement::Single(0)] };
        assert!(dispatch_table(&spec, &short, 2).is_err());
    }

    #[test]
    fn tiled_placement_on_identity_grid_is_rejected() {
        // Unit 1 lowers with a 1x1 grid; tiling it is a plan bug the
        // scheduler must catch before dispatch.
        let spec = partitioned_spec();
        assert!(spec.units[1].partition.is_identity(), "test premise");
        let mut plan = ExecutionPlan::all_on(&spec, 0);
        plan.placements[1] = UnitPlacement::Tiled(vec![0]);
        let err = dispatch_table(&spec, &plan, 2).unwrap_err();
        assert!(err.0.contains("1x1 grid must be Single"), "got: {err}");
    }

    #[test]
    fn tile_count_mismatch_is_rejected() {
        // Unit 2 carries a 2x2 grid: exactly 4 tile devices or bust.
        let spec = partitioned_spec();
        let mut plan = ExecutionPlan::all_on(&spec, 0);
        plan.placements[2] = UnitPlacement::Tiled(vec![0, 1]);
        let err = dispatch_table(&spec, &plan, 2).unwrap_err();
        assert!(err.0.contains("tile devices"), "got: {err}");
    }

    #[test]
    fn tiled_device_out_of_range_is_rejected() {
        let spec = partitioned_spec();
        let mut plan = ExecutionPlan::all_on(&spec, 0);
        plan.placements[2] = UnitPlacement::Tiled(vec![0, 1, 0, 7]);
        let err = dispatch_table(&spec, &plan, 2).unwrap_err();
        assert!(err.0.contains("out of range"), "got: {err}");
    }

    #[test]
    fn schedule_error_displays_its_cause() {
        // The serve layer logs these verbatim; Display must carry the
        // underlying validation message.
        let spec = partitioned_spec();
        let short = ExecutionPlan { placements: vec![UnitPlacement::Single(0)] };
        let err = dispatch_table(&spec, &short, 2).unwrap_err();
        let shown = format!("{err}");
        assert!(shown.starts_with("schedule error:"), "got: {shown}");
        assert!(shown.contains("placements"), "got: {shown}");
        let dyn_err: &dyn std::error::Error = &err;
        assert!(dyn_err.source().is_none());
    }

    #[test]
    fn dispatch_matches_executor_contract() {
        // The table slots one-to-one with executor units and carries grids
        // matching the plan's tile counts.
        let spec = partitioned_spec();
        let mut plan = ExecutionPlan::all_on(&spec, 1);
        plan.placements[2] = UnitPlacement::Tiled(vec![0, 1, 1, 0]);
        let table = dispatch_table(&spec, &plan, 2).unwrap();
        for (w, p) in table.iter().zip(&plan.placements) {
            match p {
                UnitPlacement::Single(_) => assert_eq!(w.grid.tiles(), 1),
                UnitPlacement::Tiled(devs) => assert_eq!(w.grid.tiles(), devs.len()),
            }
        }
    }
}
