//! Network monitoring: noisy link observation with EWMA smoothing and a
//! sliding history window per link.

use murmuration_edgesim::monitor::observe_all;
use murmuration_edgesim::NetworkState;
use rand::Rng;
use std::collections::VecDeque;

/// One smoothed link estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkEstimate {
    pub bandwidth_mbps: f64,
    pub delay_ms: f64,
}

/// Per-link monitoring state.
#[derive(Clone, Debug)]
struct LinkMonitor {
    ewma_bw: f64,
    ewma_delay: f64,
    /// (t_ms, bw, delay) raw samples, oldest first.
    history: VecDeque<(f64, f64, f64)>,
}

/// The Network Monitoring module.
pub struct NetworkMonitor {
    links: Vec<LinkMonitor>,
    alpha: f64,
    window: usize,
    rel_noise: f64,
    initialized: bool,
}

impl NetworkMonitor {
    /// `alpha` — EWMA smoothing factor (0..1]; `window` — history samples
    /// kept per link; `rel_noise` — observation noise magnitude.
    pub fn new(n_remote: usize, alpha: f64, window: usize, rel_noise: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && alpha > 0.0);
        assert!(window >= 2);
        NetworkMonitor {
            links: vec![
                LinkMonitor {
                    ewma_bw: 0.0,
                    ewma_delay: 0.0,
                    history: VecDeque::with_capacity(window),
                };
                n_remote
            ],
            alpha,
            window,
            rel_noise,
            initialized: false,
        }
    }

    /// Takes one round of measurements of every link at virtual time
    /// `t_ms` from the (ground-truth) network state.
    pub fn sample<R: Rng>(&mut self, net: &NetworkState, t_ms: f64, rng: &mut R) {
        let obs = observe_all(net, t_ms, self.rel_noise, rng);
        for (o, l) in obs.iter().zip(self.links.iter_mut()) {
            if self.initialized {
                l.ewma_bw = self.alpha * o.bandwidth_mbps + (1.0 - self.alpha) * l.ewma_bw;
                l.ewma_delay = self.alpha * o.delay_ms + (1.0 - self.alpha) * l.ewma_delay;
            } else {
                l.ewma_bw = o.bandwidth_mbps;
                l.ewma_delay = o.delay_ms;
            }
            l.history.push_back((t_ms, o.bandwidth_mbps, o.delay_ms));
            if l.history.len() > self.window {
                l.history.pop_front();
            }
        }
        self.initialized = true;
    }

    /// Current smoothed estimates (panics before the first sample).
    pub fn estimates(&self) -> Vec<LinkEstimate> {
        assert!(self.initialized, "no samples yet");
        self.links
            .iter()
            .map(|l| LinkEstimate { bandwidth_mbps: l.ewma_bw, delay_ms: l.ewma_delay })
            .collect()
    }

    /// Raw history of link `i`: `(t_ms, bw, delay)` oldest-first.
    pub fn history(&self, link: usize) -> Vec<(f64, f64, f64)> {
        self.links[link].history.iter().copied().collect()
    }

    /// Whether at least one sample round was taken.
    pub fn is_ready(&self) -> bool {
        self.initialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_edgesim::LinkState;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn noiseless_samples_track_ground_truth() {
        let net = NetworkState::uniform(2, LinkState { bandwidth_mbps: 123.0, delay_ms: 7.0 });
        let mut mon = NetworkMonitor::new(2, 0.5, 8, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        for t in 0..5 {
            mon.sample(&net, t as f64 * 100.0, &mut rng);
        }
        for e in mon.estimates() {
            assert!((e.bandwidth_mbps - 123.0).abs() < 1e-9);
            assert!((e.delay_ms - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ewma_smooths_noise() {
        let net = NetworkState::uniform(1, LinkState { bandwidth_mbps: 100.0, delay_ms: 20.0 });
        let mut mon = NetworkMonitor::new(1, 0.2, 32, 0.10);
        let mut rng = StdRng::seed_from_u64(1);
        for t in 0..60 {
            mon.sample(&net, t as f64 * 50.0, &mut rng);
        }
        let e = mon.estimates()[0];
        // EWMA of ±10% noise should sit well within ±5% of truth.
        assert!((e.bandwidth_mbps - 100.0).abs() < 5.0, "{}", e.bandwidth_mbps);
        assert!((e.delay_ms - 20.0).abs() < 1.0, "{}", e.delay_ms);
    }

    #[test]
    fn history_window_is_bounded() {
        let net = NetworkState::uniform(1, LinkState::lan());
        let mut mon = NetworkMonitor::new(1, 0.5, 4, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        for t in 0..10 {
            mon.sample(&net, t as f64, &mut rng);
        }
        let h = mon.history(0);
        assert_eq!(h.len(), 4);
        assert_eq!(h[0].0, 6.0); // oldest retained sample
        assert_eq!(h[3].0, 9.0);
    }

    #[test]
    #[should_panic]
    fn estimates_require_a_sample() {
        let mon = NetworkMonitor::new(1, 0.5, 4, 0.0);
        let _ = mon.estimates();
    }
}
