//! The distributed Executor: one worker thread per device, crossbeam
//! channels standing in for the paper's gRPC transport.
//!
//! The executor runs *real tensor computation*: unit inputs are FDSP-tiled
//! with [`murmuration_tensor::tile`], shipped through the channel after a
//! wire-quantization round-trip, computed on the worker thread, and merged
//! back. Running a plan with 1×1 placements on any device therefore
//! produces bit-identical results to local execution (at 32-bit wire
//! precision), and tiled plans differ from the monolithic result only at
//! FDSP seams — both properties are asserted in tests.

use crossbeam::channel::{unbounded, Receiver, Sender};
use murmuration_partition::{ExecutionPlan, UnitPlacement};
use murmuration_tensor::quant::BitWidth;
use murmuration_tensor::tile::{merge_fdsp, split_fdsp, GridSpec};
use murmuration_tensor::Tensor;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-unit computation hosted by every worker (weights are shared
/// read-only, as each device holds the full supernet in memory).
pub trait UnitCompute: Send + Sync + 'static {
    /// Number of execution units.
    fn n_units(&self) -> usize;
    /// Runs one unit on an input (a whole feature map or one FDSP tile).
    fn run_unit(&self, unit: usize, input: &Tensor) -> Tensor;
}

/// Per-unit wire/partition metadata the scheduler needs.
#[derive(Clone, Debug)]
pub struct UnitWire {
    /// FDSP grid when the unit is tiled (must match the plan).
    pub grid: GridSpec,
    /// Wire precision of this unit's *input* when it crosses devices.
    pub in_quant: BitWidth,
}

struct Job {
    unit: usize,
    input: Tensor,
    reply: Sender<(usize, Tensor)>,
    tag: usize,
}

enum Msg {
    Run(Job),
    Stop,
}

/// The executor: owns the worker threads.
pub struct Executor {
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<()>>,
}

/// Execution report.
#[derive(Clone, Copy, Debug)]
pub struct ExecReport {
    /// Measured wall time of the distributed execution (host time).
    pub wall_ms: f64,
}

impl Executor {
    /// Spawns one worker per device.
    pub fn new(n_devices: usize, compute: Arc<dyn UnitCompute>) -> Self {
        assert!(n_devices >= 1);
        let mut senders = Vec::with_capacity(n_devices);
        let mut handles = Vec::with_capacity(n_devices);
        for dev in 0..n_devices {
            let (tx, rx): (Sender<Msg>, Receiver<Msg>) = unbounded();
            let compute = compute.clone();
            let handle = std::thread::Builder::new()
                .name(format!("murmuration-dev{dev}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Run(job) => {
                                let out = compute.run_unit(job.unit, &job.input);
                                // The coordinator may have gone away on
                                // error paths; ignore send failures.
                                let _ = job.reply.send((job.tag, out));
                            }
                            Msg::Stop => break,
                        }
                    }
                })
                .expect("spawn worker");
            senders.push(tx);
            handles.push(handle);
        }
        Executor { senders, handles }
    }

    /// Number of device workers.
    pub fn n_devices(&self) -> usize {
        self.senders.len()
    }

    /// Executes `input` through all units under `plan`. `wire[u]`
    /// describes unit `u`'s grid and input precision. The data starts on
    /// device 0 and the result is gathered back there.
    pub fn execute(
        &self,
        plan: &ExecutionPlan,
        wire: &[UnitWire],
        input: Tensor,
    ) -> (Tensor, ExecReport) {
        assert_eq!(plan.placements.len(), wire.len(), "one wire entry per unit");
        let start = Instant::now();
        let mut data = input;
        let mut loc: usize = 0; // device currently holding `data`
        for (unit, (placement, w)) in plan.placements.iter().zip(wire.iter()).enumerate() {
            match placement {
                UnitPlacement::Single(d) => {
                    if *d != loc {
                        data = ship(&data, w.in_quant);
                    }
                    data = self.run_on(*d, unit, data);
                    loc = *d;
                }
                UnitPlacement::Tiled(devs) => {
                    assert_eq!(devs.len(), w.grid.tiles(), "tile/device count");
                    let tiles = split_fdsp(&data, w.grid);
                    let (reply_tx, reply_rx) = unbounded();
                    for (tag, (tile, dev)) in tiles.into_iter().zip(devs.iter()).enumerate() {
                        let shipped = if *dev != loc { ship(&tile, w.in_quant) } else { tile };
                        self.senders[*dev]
                            .send(Msg::Run(Job {
                                unit,
                                input: shipped,
                                reply: reply_tx.clone(),
                                tag,
                            }))
                            .expect("worker alive");
                    }
                    drop(reply_tx);
                    let mut outs: Vec<Option<Tensor>> = vec![None; devs.len()];
                    for _ in 0..devs.len() {
                        let (tag, out) = reply_rx.recv().expect("tile result");
                        outs[tag] = Some(out);
                    }
                    let outs: Vec<Tensor> = outs.into_iter().map(|o| o.unwrap()).collect();
                    data = merge_fdsp(&outs, w.grid);
                    loc = devs[0]; // gathered at the first tile's device
                }
            }
        }
        // Result returns to device 0 (tiny logits; precision kept).
        let report = ExecReport { wall_ms: start.elapsed().as_secs_f64() * 1e3 };
        (data, report)
    }

    /// Streams several inputs through a chain of units pinned to devices
    /// (`device_of_unit[u]` runs unit `u`), overlapping different inputs'
    /// units across workers — real pipelining, the execution mode behind
    /// the paper's 20-inference-average measurements. Outputs are returned
    /// in input order.
    pub fn execute_stream(
        &self,
        device_of_unit: &[usize],
        inputs: Vec<Tensor>,
        quant: BitWidth,
    ) -> (Vec<Tensor>, ExecReport) {
        assert!(!device_of_unit.is_empty());
        let n_units = device_of_unit.len();
        let n_inputs = inputs.len();
        let start = Instant::now();
        let (reply_tx, reply_rx) = unbounded();
        // Launch every input's first unit; workers queue and pipeline.
        for (idx, input) in inputs.into_iter().enumerate() {
            let shipped = if device_of_unit[0] != 0 { ship(&input, quant) } else { input };
            self.senders[device_of_unit[0]]
                .send(Msg::Run(Job { unit: 0, input: shipped, reply: reply_tx.clone(), tag: idx }))
                .expect("worker alive");
        }
        let mut outputs: Vec<Option<Tensor>> = (0..n_inputs).map(|_| None).collect();
        let mut stage_of: Vec<usize> = vec![0; n_inputs];
        let mut done = 0usize;
        while done < n_inputs {
            let (idx, out) = reply_rx.recv().expect("stream result");
            let next = stage_of[idx] + 1;
            if next < n_units {
                stage_of[idx] = next;
                let crossing = device_of_unit[next] != device_of_unit[next - 1];
                let shipped = if crossing { ship(&out, quant) } else { out };
                self.senders[device_of_unit[next]]
                    .send(Msg::Run(Job {
                        unit: next,
                        input: shipped,
                        reply: reply_tx.clone(),
                        tag: idx,
                    }))
                    .expect("worker alive");
            } else {
                outputs[idx] = Some(out);
                done += 1;
            }
        }
        let report = ExecReport { wall_ms: start.elapsed().as_secs_f64() * 1e3 };
        (outputs.into_iter().map(|o| o.unwrap()).collect(), report)
    }

    fn run_on(&self, dev: usize, unit: usize, input: Tensor) -> Tensor {
        let (reply_tx, reply_rx) = unbounded();
        self.senders[dev]
            .send(Msg::Run(Job { unit, input, reply: reply_tx, tag: 0 }))
            .expect("worker alive");
        reply_rx.recv().expect("unit result").1
    }
}

/// Serializes a tensor to a wire frame and decodes it back — exactly what
/// crossing a device boundary does to the data (including packed
/// quantization). The byte round-trip keeps the executor honest about the
/// transport format.
fn ship(t: &Tensor, quant: BitWidth) -> Tensor {
    let frame = crate::wire::encode(t, quant);
    crate::wire::decode(&frame).expect("self-encoded frame must decode")
}

impl Drop for Executor {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A concrete [`UnitCompute`]: stacks of same-padded convolutions with
/// ReLU — the structure of the supernet's convolutional stages, sized for
/// tests and examples.
pub struct ConvStackCompute {
    /// Per unit: a list of (weight, bias, params) conv layers.
    units: Vec<Vec<(Tensor, Tensor, murmuration_tensor::conv::Conv2dParams)>>,
}

impl ConvStackCompute {
    /// Random conv stacks: `n_units` units of `layers_per_unit` k3
    /// same-padded convs over `channels` channels.
    pub fn random(n_units: usize, layers_per_unit: usize, channels: usize, seed: u64) -> Self {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let p = murmuration_tensor::conv::Conv2dParams::same(3);
        let units = (0..n_units)
            .map(|_| {
                (0..layers_per_unit)
                    .map(|_| {
                        (
                            Tensor::kaiming(
                                murmuration_tensor::Shape::nchw(channels, channels, 3, 3),
                                channels * 9,
                                &mut rng,
                            ),
                            Tensor::zeros(murmuration_tensor::Shape::d1(channels)),
                            p,
                        )
                    })
                    .collect()
            })
            .collect();
        ConvStackCompute { units }
    }
}

impl UnitCompute for ConvStackCompute {
    fn n_units(&self) -> usize {
        self.units.len()
    }

    fn run_unit(&self, unit: usize, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        for (w, b, p) in &self.units[unit] {
            cur = murmuration_tensor::conv::conv2d(&cur, w, Some(b), *p);
            murmuration_tensor::activation::relu_inplace(&mut cur);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_tensor::Shape;

    fn setup(n_devices: usize) -> (Executor, Arc<ConvStackCompute>, Tensor) {
        use rand::{rngs::StdRng, SeedableRng};
        let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
        let exec = Executor::new(n_devices, compute.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let input = Tensor::rand_uniform(Shape::nchw(1, 4, 12, 12), 1.0, &mut rng);
        (exec, compute, input)
    }

    fn local_reference(compute: &ConvStackCompute, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        for u in 0..compute.n_units() {
            cur = compute.run_unit(u, &cur);
        }
        cur
    }

    fn wire_all(quant: BitWidth, grid: GridSpec, n: usize) -> Vec<UnitWire> {
        vec![UnitWire { grid, in_quant: quant }; n]
    }

    #[test]
    fn single_device_matches_local_exactly() {
        let (exec, compute, input) = setup(1);
        let plan = ExecutionPlan { placements: vec![UnitPlacement::Single(0); 3] };
        let (out, report) =
            exec.execute(&plan, &wire_all(BitWidth::B32, GridSpec::new(1, 1), 3), input.clone());
        let expect = local_reference(&compute, &input);
        assert_eq!(out.data(), expect.data());
        assert!(report.wall_ms >= 0.0);
    }

    #[test]
    fn cross_device_b32_is_exact() {
        let (exec, compute, input) = setup(3);
        let plan = ExecutionPlan {
            placements: vec![
                UnitPlacement::Single(0),
                UnitPlacement::Single(2),
                UnitPlacement::Single(1),
            ],
        };
        let (out, _) =
            exec.execute(&plan, &wire_all(BitWidth::B32, GridSpec::new(1, 1), 3), input.clone());
        let expect = local_reference(&compute, &input);
        assert_eq!(out.data(), expect.data());
    }

    #[test]
    fn tiled_execution_matches_fdsp_semantics() {
        // Distributed 2x2-tiled execution must equal *local FDSP* execution
        // (tile → conv → merge) exactly, and differ from the monolithic
        // result only near seams.
        let (exec, compute, input) = setup(4);
        let grid = GridSpec::new(2, 2);
        let plan = ExecutionPlan {
            placements: vec![
                UnitPlacement::Tiled(vec![0, 1, 2, 3]),
                UnitPlacement::Single(0),
                UnitPlacement::Single(0),
            ],
        };
        let mut wire = wire_all(BitWidth::B32, GridSpec::new(1, 1), 3);
        wire[0].grid = grid;
        let (out, _) = exec.execute(&plan, &wire, input.clone());

        // Local FDSP reference for unit 0, then units 1–2 monolithic.
        let tiles = split_fdsp(&input, grid);
        let outs: Vec<Tensor> = tiles.iter().map(|t| compute.run_unit(0, t)).collect();
        let mut cur = merge_fdsp(&outs, grid);
        cur = compute.run_unit(1, &cur);
        cur = compute.run_unit(2, &cur);
        assert_eq!(out.data(), cur.data(), "distributed FDSP must equal local FDSP");

        // And it is *close* to the monolithic result overall.
        let mono = local_reference(&compute, &input);
        let err: f32 =
            out.data().iter().zip(mono.data().iter()).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / out.numel() as f32;
        let scale: f32 = mono.data().iter().map(|v| v.abs()).sum::<f32>() / mono.numel() as f32;
        assert!(err < scale * 0.5, "seam error too large: {err} vs scale {scale}");
    }

    #[test]
    fn quantized_wire_stays_close() {
        let (exec, compute, input) = setup(2);
        let plan = ExecutionPlan {
            placements: vec![
                UnitPlacement::Single(0),
                UnitPlacement::Single(1),
                UnitPlacement::Single(0),
            ],
        };
        let (out8, _) =
            exec.execute(&plan, &wire_all(BitWidth::B8, GridSpec::new(1, 1), 3), input.clone());
        let expect = local_reference(&compute, &input);
        let err: f32 =
            out8.data().iter().zip(expect.data().iter()).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / out8.numel() as f32;
        let scale: f32 = expect.data().iter().map(|v| v.abs()).sum::<f32>() / expect.numel() as f32;
        assert!(err < scale * 0.1, "8-bit wire error {err} vs scale {scale}");
        // But not bit-identical (quantization really happened).
        assert_ne!(out8.data(), expect.data());
    }

    #[test]
    fn stream_outputs_match_sequential_in_order() {
        let (exec, compute, _) = setup(3);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| Tensor::rand_uniform(Shape::nchw(1, 4, 10, 10), 1.0, &mut rng))
            .collect();
        let (outs, report) = exec.execute_stream(&[0, 1, 2], inputs.clone(), BitWidth::B32);
        assert_eq!(outs.len(), 5);
        assert!(report.wall_ms >= 0.0);
        for (input, out) in inputs.iter().zip(&outs) {
            let expect = local_reference(&compute, input);
            assert_eq!(out.data(), expect.data(), "pipelined result must be exact at B32");
        }
    }

    #[test]
    fn stream_single_device_also_works() {
        let (exec, compute, input) = setup(1);
        let (outs, _) = exec.execute_stream(&[0, 0, 0], vec![input.clone()], BitWidth::B32);
        assert_eq!(outs[0].data(), local_reference(&compute, &input).data());
    }

    #[test]
    fn executor_shuts_down_cleanly() {
        let (exec, _, _) = setup(4);
        assert_eq!(exec.n_devices(), 4);
        drop(exec); // Drop joins all workers; hangs = test timeout.
    }
}
