//! The distributed Executor: the coordinator that drives a fleet of
//! device workers through a [`Transport`] — in-process worker threads
//! ([`InProcTransport`]) or real worker processes over TCP
//! (`murmuration_transport::TcpTransport`).
//!
//! The executor runs *real tensor computation*: unit inputs are FDSP-tiled
//! with [`murmuration_tensor::tile`], shipped through the transport after a
//! wire-quantization round-trip, computed on the worker, and merged
//! back. Running a plan with 1×1 placements on any device therefore
//! produces bit-identical results to local execution (at 32-bit wire
//! precision), and tiled plans differ from the monolithic result only at
//! FDSP seams — both properties are asserted in tests, over both
//! transports.
//!
//! # Fault model
//!
//! Devices can crash (worker exits without replying), stall (reply arrives
//! after the deadline), panic (worker survives, request fails), garble
//! frames in transit (checksum failure), or — over TCP — lose their
//! connection mid-request. The coordinator never blocks forever on any of
//! them: every wait is a `recv_timeout` against a per-attempt deadline,
//! failed attempts are retried with exponential backoff and failover onto
//! surviving devices, and exhaustion surfaces as a typed [`ExecError`]
//! instead of a panic or a hang. Connection supervision (heartbeats,
//! reconnect, resend dedup) happens below the trait; its counters surface
//! in [`ExecReport`].
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::health::LatencyTracker;
use crate::transport::{
    InProcTransport, ReplyError, SubmitError, Transport, TransportJob, TransportReply,
    TransportStats,
};
use crate::wire::WireError;
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use murmuration_partition::{ExecutionPlan, UnitPlacement};
use murmuration_tensor::quant::BitWidth;
use murmuration_tensor::tile::{merge_fdsp, split_fdsp, GridSpec};
use murmuration_tensor::Tensor;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one worker invocation produced. The `Vanish` arm lets fault
/// injectors simulate a process crash: the worker thread exits without
/// replying, exactly like a killed remote peer.
pub enum UnitOutcome {
    /// Normal completion.
    Output(Tensor),
    /// Simulated crash: no reply is sent and the worker thread exits.
    Vanish,
    /// Recoverable failure: an error reply is sent, the worker survives.
    Error(String),
}

/// Per-unit computation hosted by every worker (weights are shared
/// read-only, as each device holds the full supernet in memory).
pub trait UnitCompute: Send + Sync + 'static {
    /// Number of execution units.
    fn n_units(&self) -> usize;
    /// Runs one unit on an input (a whole feature map or one FDSP tile).
    fn run_unit(&self, unit: usize, input: &Tensor) -> Tensor;
    /// Device-aware entry point the workers call; the default delegates to
    /// [`run_unit`](Self::run_unit). Fault-injecting wrappers override
    /// this to kill, stall, or fail specific devices.
    fn run_unit_on(&self, dev: usize, unit: usize, input: &Tensor) -> UnitOutcome {
        let _ = dev;
        UnitOutcome::Output(self.run_unit(unit, input))
    }
}

/// Per-unit wire/partition metadata the scheduler needs.
#[derive(Clone, Debug)]
pub struct UnitWire {
    /// FDSP grid when the unit is tiled (must match the plan).
    pub grid: GridSpec,
    /// Wire precision of this unit's *input* when it crosses devices.
    pub in_quant: BitWidth,
}

/// Typed execution failure. Every variant names the device and unit
/// involved so callers can feed device-health tracking.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The worker is unreachable: the device crashed, was killed, or its
    /// connection died and could not be re-established in time.
    DeviceDown { dev: usize },
    /// No reply within the per-attempt deadline.
    Timeout { dev: usize, unit: usize, waited_ms: f64 },
    /// The worker panicked (or reported an injected error) on this unit.
    WorkerPanic { dev: usize, unit: usize, msg: String },
    /// Frame corruption detected on the link to `dev`.
    Wire { dev: usize, err: WireError },
    /// The transport refused the submission because a bounded buffer was
    /// full (typed backpressure): the device is healthy but saturated.
    Backpressure { dev: usize },
    /// Every device the coordinator could try is dead.
    NoDevice { unit: usize },
    /// The retry budget ran out; `last` is the final attempt's failure.
    AttemptsExhausted { unit: usize, attempts: usize, last: Box<ExecError> },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::DeviceDown { dev } => write!(f, "device {dev} is down"),
            ExecError::Timeout { dev, unit, waited_ms } => {
                write!(f, "device {dev} missed the deadline on unit {unit} ({waited_ms:.1} ms)")
            }
            ExecError::WorkerPanic { dev, unit, msg } => {
                write!(f, "device {dev} failed on unit {unit}: {msg}")
            }
            ExecError::Wire { dev, err } => write!(f, "wire to device {dev}: {err}"),
            ExecError::Backpressure { dev } => {
                write!(f, "transport backpressure on device {dev}")
            }
            ExecError::NoDevice { unit } => write!(f, "no live device for unit {unit}"),
            ExecError::AttemptsExhausted { unit, attempts, last } => {
                write!(f, "unit {unit} failed after {attempts} attempts; last: {last}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Speculative-resend (hedging) policy for straggler defense.
///
/// When an attempt has waited longer than `factor ×` the device's observed
/// `quantile` latency, a hedge copy of the work is sent to a backup
/// device; whichever reply arrives first wins and the loser is cancelled
/// through [`Transport::cancel`]. The trigger adapts per device from the
/// executor's own latency history, so hedges stay rare (tail-only) on a
/// healthy fleet.
#[derive(Clone, Copy, Debug)]
pub struct HedgeOptions {
    /// Latency quantile the trigger is derived from.
    pub quantile: f64,
    /// Trigger = `factor × quantile` (headroom above the observed tail).
    pub factor: f64,
    /// Floor on the trigger so microsecond-scale units don't hedge on
    /// scheduler jitter.
    pub min_trigger: Duration,
    /// Observed samples required per device before hedging arms (cold
    /// devices never trigger hedges).
    pub min_samples: usize,
}

impl Default for HedgeOptions {
    fn default() -> Self {
        HedgeOptions {
            quantile: 0.9,
            factor: 2.0,
            min_trigger: Duration::from_millis(1),
            min_samples: 8,
        }
    }
}

/// Retry/deadline policy for one execution.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// How long one attempt may wait for a worker reply.
    pub deadline: Duration,
    /// Total attempts per unit (or per tile) before giving up.
    pub max_attempts: usize,
    /// Base backoff before retry `k` (doubles per attempt, capped).
    pub backoff: Duration,
    /// Hedged execution against stragglers; `None` disables (the
    /// default — retries and deadlines alone reproduce PR 2 semantics).
    pub hedge: Option<HedgeOptions>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            deadline: Duration::from_secs(2),
            max_attempts: 3,
            backoff: Duration::from_millis(2),
            hedge: None,
        }
    }
}

impl ExecOptions {
    /// Derives a per-attempt deadline from the latency model's estimate
    /// for the whole request: generous enough that modeling error never
    /// trips it (4× the budget plus scheduling slack), tight enough that
    /// a dead device is detected within a bounded, budget-proportional
    /// wait instead of a hard-coded worst case.
    pub fn for_budget_ms(budget_ms: f64) -> Self {
        let ms = (budget_ms * 4.0 + 100.0).clamp(100.0, 5_000.0);
        ExecOptions { deadline: Duration::from_micros((ms * 1e3) as u64), ..Default::default() }
    }
}

/// The executor: the coordinator over a [`Transport`].
pub struct Executor {
    transport: Box<dyn Transport>,
    /// Per-device latency history (successful attempts, milliseconds):
    /// feeds the adaptive hedge trigger and gray-health reporting.
    lat: Mutex<Vec<LatencyTracker>>,
}

/// Marks a reply as coming from a hedge submission; the low bits still
/// carry the attempt number for staleness filtering.
const HEDGE_BIT: u32 = 1 << 31;

/// Execution report.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecReport {
    /// Measured wall time of the distributed execution (host time).
    pub wall_ms: f64,
    /// Re-dispatches after a failed attempt (any cause).
    pub retries: u32,
    /// Completions on a device other than the planned one.
    pub failovers: u32,
    /// Attempts that exceeded their deadline.
    pub deadline_misses: u32,
    /// Connections re-established during this execution (TCP transport).
    pub reconnects: u64,
    /// Heartbeat intervals missed during this execution (TCP transport).
    pub heartbeats_missed: u64,
    /// Transport-level resends the workers recognised as duplicates and
    /// served without recomputing (at-most-once dedup; TCP transport).
    pub resends_deduped: u64,
    /// Speculative hedge submissions fired against stragglers.
    pub hedges_fired: u32,
    /// Hedge submissions that beat the straggling primary.
    pub hedges_won: u32,
    /// Cancels that verifiably dropped still-queued work at a worker
    /// (hedge losers that never ran).
    pub cancels_delivered: u64,
}

impl ExecReport {
    fn absorb_stats(&mut self, delta: TransportStats) {
        self.reconnects += delta.reconnects;
        self.heartbeats_missed += delta.heartbeats_missed;
        self.resends_deduped += delta.resends_deduped;
        self.cancels_delivered += delta.cancels_delivered;
    }
}

impl Executor {
    /// Spawns one in-process worker thread per device — the classic
    /// single-process mode.
    pub fn new(n_devices: usize, compute: Arc<dyn UnitCompute>) -> Self {
        Self::with_transport(Box::new(InProcTransport::new(n_devices, compute)))
    }

    /// Builds an executor over an arbitrary transport (e.g. a
    /// `TcpTransport` reaching remote worker processes).
    pub fn with_transport(transport: Box<dyn Transport>) -> Self {
        let n = transport.n_devices();
        assert!(n >= 1);
        Executor {
            transport,
            lat: Mutex::new((0..n).map(|_| LatencyTracker::new(0.2, 64)).collect()),
        }
    }

    /// Number of device workers.
    pub fn n_devices(&self) -> usize {
        self.transport.n_devices()
    }

    /// Whether the coordinator believes `dev` is alive. Optimistic: a
    /// crashed device is only discovered on the next interaction.
    pub fn is_alive(&self, dev: usize) -> bool {
        self.transport.is_alive(dev)
    }

    /// Takes `dev` out of service. Subsequent work fails over to
    /// surviving devices.
    pub fn kill_device(&self, dev: usize) {
        self.transport.kill_device(dev);
    }

    /// Brings `dev` back into service, replacing a crashed or killed
    /// worker (in-proc: a fresh thread; TCP: reconnection resumes).
    pub fn restart_device(&mut self, dev: usize) {
        self.transport.restart_device(dev);
    }

    /// Turns frame corruption on/off for frames shipped *to* `dev`.
    pub fn set_wire_corruption(&self, dev: usize, on: bool) {
        self.transport.set_wire_corruption(dev, on);
    }

    /// Cumulative connection-supervision counters of the underlying
    /// transport (all zero for the in-process transport).
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Gracefully drains the transport: in-flight work finishes (bounded),
    /// connections close with a goodbye. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.transport.shutdown();
    }

    /// Records one successful attempt's latency for `dev`.
    fn observe_latency(&self, dev: usize, ms: f64) {
        if let Some(t) = self.lat.lock().get_mut(dev) {
            t.observe(ms);
        }
    }

    /// Observed per-attempt latency quantile for `dev`, if enough history
    /// exists (feeds gray-health reporting and diagnostics).
    pub fn latency_quantile(&self, dev: usize, q: f64) -> Option<f64> {
        self.lat.lock().get(dev).and_then(|t| t.quantile(q))
    }

    /// When hedging should fire for an attempt on `dev`: `factor ×` the
    /// observed latency quantile, floored, and only when that still beats
    /// the attempt deadline (otherwise the deadline path handles it).
    ///
    /// The quantile basis is `min(dev's own, fleet median)`: a persistent
    /// straggler inflates its own history until it no longer looks slow
    /// to itself, so its trigger must stay anchored to what its peers
    /// prove is achievable; a device with a tight history keeps its own
    /// tighter trigger.
    fn hedge_trigger(&self, dev: usize, h: &HedgeOptions, deadline: Duration) -> Option<Duration> {
        let q_ms = {
            let lat = self.lat.lock();
            let t = lat.get(dev)?;
            if t.len() < h.min_samples {
                return None;
            }
            let own = t.quantile(h.quantile)?;
            let mut fleet: Vec<f64> = lat
                .iter()
                .filter(|t| t.len() >= h.min_samples)
                .filter_map(|t| t.quantile(h.quantile))
                .collect();
            fleet.sort_by(f64::total_cmp);
            if fleet.is_empty() {
                own
            } else {
                own.min(fleet[(fleet.len() - 1) / 2])
            }
        };
        let trigger_s = (q_ms * h.factor / 1e3).max(h.min_trigger.as_secs_f64());
        let trigger = Duration::from_secs_f64(trigger_s);
        (trigger < deadline).then_some(trigger)
    }

    /// First non-shunned device other than `exclude` (hedge backup for a
    /// single request, where the rest of the fleet is idle).
    fn pick_backup(&self, exclude: usize, shunned: &[bool]) -> Option<usize> {
        (0..self.n_devices()).find(|&d| d != exclude && !shunned[d])
    }

    /// Least-loaded backup under streamed load: hedging onto the busiest
    /// survivor just moves the wait to a different queue, so the backup is
    /// chosen by the coordinator's own outstanding-submission count.
    fn pick_backup_least_loaded(
        &self,
        exclude: usize,
        shunned: &[bool],
        inflight: &[usize],
    ) -> Option<usize> {
        (0..self.n_devices()).filter(|&d| d != exclude && !shunned[d]).min_by_key(|&d| inflight[d])
    }

    #[allow(clippy::too_many_arguments)]
    fn submit(
        &self,
        dev: usize,
        unit: usize,
        input: &Arc<Tensor>,
        quant: BitWidth,
        cross: bool,
        tag: usize,
        attempt: u32,
        deadline: Option<Duration>,
        reply: Sender<TransportReply>,
    ) -> Result<u64, ExecError> {
        let job = TransportJob {
            unit,
            input: Arc::clone(input),
            quant,
            cross_boundary: cross,
            tag,
            attempt,
            deadline,
        };
        self.transport.submit(dev, job, reply).map_err(|e| match e {
            SubmitError::DeviceDown => ExecError::DeviceDown { dev },
            SubmitError::Wire(err) => ExecError::Wire { dev, err },
            SubmitError::Backpressure => ExecError::Backpressure { dev },
        })
    }

    /// Executes `input` through all units under `plan` with default
    /// retry/deadline options. `wire[u]` describes unit `u`'s grid and
    /// input precision. The data starts on device 0 and the result is
    /// gathered back there.
    pub fn execute(
        &self,
        plan: &ExecutionPlan,
        wire: &[UnitWire],
        input: Tensor,
    ) -> Result<(Tensor, ExecReport), ExecError> {
        self.execute_with(plan, wire, input, ExecOptions::default())
    }

    /// [`execute`](Self::execute) with explicit fault-handling options.
    pub fn execute_with(
        &self,
        plan: &ExecutionPlan,
        wire: &[UnitWire],
        input: Tensor,
        opts: ExecOptions,
    ) -> Result<(Tensor, ExecReport), ExecError> {
        assert_eq!(plan.placements.len(), wire.len(), "one wire entry per unit");
        let start = Instant::now();
        let stats0 = self.transport.stats();
        let mut report = ExecReport::default();
        // Devices shunned for the remainder of this call: seeded from the
        // global belief, extended by timeouts/wire errors observed here.
        let mut shunned: Vec<bool> = (0..self.n_devices()).map(|d| !self.is_alive(d)).collect();
        let mut data = Arc::new(input);
        let mut loc: usize = 0; // device currently holding `data`
        let finish = |report: &mut ExecReport| {
            report.wall_ms = start.elapsed().as_secs_f64() * 1e3;
            report.absorb_stats(self.transport.stats().since(&stats0));
        };
        for (unit, (placement, w)) in plan.placements.iter().zip(wire.iter()).enumerate() {
            let run = match placement {
                UnitPlacement::Single(d) => self.run_single(
                    *d,
                    unit,
                    &data,
                    w.in_quant,
                    loc,
                    &opts,
                    &mut report,
                    &mut shunned,
                ),
                UnitPlacement::Tiled(devs) => {
                    assert_eq!(devs.len(), w.grid.tiles(), "tile/device count");
                    self.run_tiled(devs, unit, &data, w, loc, &opts, &mut report, &mut shunned)
                }
            };
            match run {
                Ok((out, dev)) => {
                    data = Arc::new(out);
                    loc = dev;
                }
                Err(e) => {
                    finish(&mut report);
                    return Err(e);
                }
            }
        }
        // Result returns to device 0 (tiny logits; precision kept).
        finish(&mut report);
        let out = Arc::try_unwrap(data).unwrap_or_else(|a| (*a).clone());
        Ok((out, report))
    }

    /// First non-shunned device, preferring `preferred`.
    fn pick_device(&self, preferred: usize, shunned: &[bool]) -> Option<usize> {
        if !shunned[preferred] {
            return Some(preferred);
        }
        (0..self.n_devices()).find(|&d| !shunned[d])
    }

    #[allow(clippy::too_many_arguments)]
    fn run_single(
        &self,
        preferred: usize,
        unit: usize,
        data: &Arc<Tensor>,
        quant: BitWidth,
        loc: usize,
        opts: &ExecOptions,
        report: &mut ExecReport,
        shunned: &mut [bool],
    ) -> Result<(Tensor, usize), ExecError> {
        let mut last_err: Option<ExecError> = None;
        let mut attempts = 0usize;
        while attempts < opts.max_attempts {
            let dev = match self.pick_device(preferred, shunned) {
                Some(d) => d,
                None => {
                    return Err(last_err.unwrap_or(ExecError::NoDevice { unit }));
                }
            };
            if attempts > 0 {
                report.retries += 1;
                std::thread::sleep(opts.backoff * (1u32 << (attempts - 1).min(6)));
            }
            attempts += 1;
            let attempt_no = attempts as u32;
            // Fresh reply channel per attempt: a disconnect means *this*
            // worker died holding *this* job, and stale replies from
            // abandoned attempts can never be confused with live ones.
            let (reply_tx, reply_rx) = unbounded();
            // When hedging is on and this device has enough history, a
            // spare sender keeps the channel open past the primary
            // worker's death until the hedge decision. Without hedging the
            // spare is never created, preserving disconnect-as-death.
            let mut hedge_at = opts
                .hedge
                .as_ref()
                .and_then(|h| self.hedge_trigger(dev, h, opts.deadline))
                .map(|d| Instant::now() + d);
            let mut spare_tx = hedge_at.map(|_| reply_tx.clone());
            let ticket = match self.submit(
                dev,
                unit,
                data,
                quant,
                dev != loc,
                0,
                attempt_no,
                Some(opts.deadline),
                reply_tx,
            ) {
                Ok(t) => t,
                Err(e) => {
                    // Treat a corrupted link like a bad device: shun it
                    // for this call and fail over.
                    shunned[dev] = true;
                    last_err = Some(e);
                    continue;
                }
            };
            let started = Instant::now();
            let deadline_at = started + opts.deadline;
            // Live submissions this attempt round: primary and at most one
            // hedge, each `(device, cancel ticket, submitted at)`.
            let mut primary: Option<(usize, u64, Instant)> = Some((dev, ticket, started));
            let mut hedge: Option<(usize, u64, Instant)> = None;
            'round: loop {
                let wake = match hedge_at {
                    Some(h) if hedge.is_none() => deadline_at.min(h),
                    _ => deadline_at,
                };
                match reply_rx.recv_timeout(wake.saturating_duration_since(Instant::now())) {
                    Ok(reply) => {
                        let is_hedge = reply.attempt & HEDGE_BIT != 0;
                        if (reply.attempt & !HEDGE_BIT) != attempt_no {
                            continue; // stale reply from an abandoned attempt
                        }
                        let side = if is_hedge { &mut hedge } else { &mut primary };
                        let Some((sdev, _, sstart)) = side.take() else { continue };
                        match reply.result {
                            Ok(t) => {
                                self.observe_latency(sdev, sstart.elapsed().as_secs_f64() * 1e3);
                                // First result wins; cancel the loser.
                                let loser = if is_hedge { &primary } else { &hedge };
                                if let Some((ldev, lticket, _)) = loser {
                                    self.transport.cancel(*ldev, *lticket);
                                }
                                if is_hedge {
                                    report.hedges_won += 1;
                                } else if sdev != preferred {
                                    report.failovers += 1;
                                }
                                return Ok((t, sdev));
                            }
                            Err(ReplyError::Worker(msg)) => {
                                last_err = Some(ExecError::WorkerPanic { dev: sdev, unit, msg });
                            }
                            Err(ReplyError::Link(_)) => {
                                self.transport.mark_dead(sdev);
                                shunned[sdev] = true;
                                last_err = Some(ExecError::DeviceDown { dev: sdev });
                            }
                        }
                        if primary.is_none() && hedge.is_none() {
                            break 'round; // both sides failed: next attempt
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        // Every live submission's worker died holding its
                        // job (the spare, if any, is gone too).
                        for (d, _, _) in primary.iter().chain(hedge.iter()) {
                            self.transport.mark_dead(*d);
                            shunned[*d] = true;
                            last_err = Some(ExecError::DeviceDown { dev: *d });
                        }
                        break 'round;
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        let now = Instant::now();
                        // Hedge trigger: the primary is straggling — fire
                        // the speculative copy at a backup device.
                        if hedge.is_none()
                            && primary.is_some()
                            && hedge_at.is_some_and(|h| now >= h)
                            && now < deadline_at
                        {
                            hedge_at = None;
                            if let (Some(tx), Some(backup)) =
                                (spare_tx.clone(), self.pick_backup(dev, shunned))
                            {
                                let remaining = deadline_at.saturating_duration_since(now);
                                if let Ok(ht) = self.submit(
                                    backup,
                                    unit,
                                    data,
                                    quant,
                                    backup != loc,
                                    0,
                                    attempt_no | HEDGE_BIT,
                                    Some(remaining),
                                    tx,
                                ) {
                                    report.hedges_fired += 1;
                                    hedge = Some((backup, ht, now));
                                }
                            }
                            // Decision made: the spare must not keep the
                            // channel alive past the live submissions.
                            spare_tx = None;
                            continue;
                        }
                        if now < deadline_at {
                            continue; // woke for a hedge check only
                        }
                        report.deadline_misses += 1;
                        // Straggler(s): shun and cancel whatever is still
                        // out, then retry.
                        for (d, t, _) in primary.iter().chain(hedge.iter()) {
                            shunned[*d] = true;
                            self.transport.cancel(*d, *t);
                        }
                        last_err = Some(ExecError::Timeout {
                            dev,
                            unit,
                            waited_ms: opts.deadline.as_secs_f64() * 1e3,
                        });
                        break 'round;
                    }
                }
            }
        }
        Err(ExecError::AttemptsExhausted {
            unit,
            attempts,
            last: Box::new(last_err.unwrap_or(ExecError::NoDevice { unit })),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_tiled(
        &self,
        devs: &[usize],
        unit: usize,
        data: &Tensor,
        w: &UnitWire,
        loc: usize,
        opts: &ExecOptions,
        report: &mut ExecReport,
        shunned: &mut [bool],
    ) -> Result<(Tensor, usize), ExecError> {
        let tiles: Vec<Arc<Tensor>> = split_fdsp(data, w.grid).into_iter().map(Arc::new).collect();
        let n_tiles = tiles.len();
        struct TileState {
            dev: usize,
            attempt: u32,
            attempts: usize,
            deadline: Instant,
            done: Option<Tensor>,
        }
        let (reply_tx, reply_rx) = unbounded::<TransportReply>();
        let mut states: Vec<TileState> = Vec::with_capacity(n_tiles);
        // Dispatches tile `tag` to the first usable device, shipping from
        // `loc`. Returns the device used, or the last error if every
        // candidate fails at send time.
        let dispatch = |tag: usize,
                        preferred: usize,
                        attempt: u32,
                        shunned: &mut [bool]|
         -> Result<(usize, Instant), ExecError> {
            let mut last_err: Option<ExecError> = None;
            loop {
                let dev = match self.pick_device(preferred, shunned) {
                    Some(d) => d,
                    None => return Err(last_err.unwrap_or(ExecError::NoDevice { unit })),
                };
                match self.submit(
                    dev,
                    unit,
                    &tiles[tag],
                    w.in_quant,
                    dev != loc,
                    tag,
                    attempt,
                    Some(opts.deadline),
                    reply_tx.clone(),
                ) {
                    Ok(_ticket) => return Ok((dev, Instant::now() + opts.deadline)),
                    Err(e) => {
                        shunned[dev] = true;
                        last_err = Some(e);
                        continue;
                    }
                }
            }
        };
        for (tag, &planned) in devs.iter().enumerate() {
            let (dev, deadline) = dispatch(tag, planned, 1, shunned)?;
            if dev != planned {
                report.failovers += 1;
            }
            states.push(TileState { dev, attempt: 1, attempts: 1, deadline, done: None });
        }
        let mut done = 0usize;
        while done < n_tiles {
            let next_deadline = states
                .iter()
                .filter(|s| s.done.is_none())
                .map(|s| s.deadline)
                .min()
                .unwrap_or_else(Instant::now);
            let wait = next_deadline.saturating_duration_since(Instant::now());
            match reply_rx.recv_timeout(wait) {
                Ok(reply) => {
                    let st = &mut states[reply.tag];
                    if st.done.is_some() || reply.attempt != st.attempt {
                        continue; // stale reply from an abandoned attempt
                    }
                    match reply.result {
                        Ok(t) => {
                            st.done = Some(t);
                            done += 1;
                        }
                        Err(err) => {
                            let exec_err = match err {
                                ReplyError::Worker(msg) => {
                                    ExecError::WorkerPanic { dev: st.dev, unit, msg }
                                }
                                ReplyError::Link(_) => {
                                    let dev = st.dev;
                                    self.transport.mark_dead(dev);
                                    shunned[dev] = true;
                                    ExecError::DeviceDown { dev }
                                }
                            };
                            if st.attempts >= opts.max_attempts {
                                return Err(ExecError::AttemptsExhausted {
                                    unit,
                                    attempts: st.attempts,
                                    last: Box::new(exec_err),
                                });
                            }
                            report.retries += 1;
                            let attempt = st.attempt + 1;
                            let planned = devs[reply.tag];
                            let (dev, deadline) = dispatch(reply.tag, planned, attempt, shunned)?;
                            if dev != planned {
                                report.failovers += 1;
                            }
                            let st = &mut states[reply.tag];
                            st.dev = dev;
                            st.attempt = attempt;
                            st.attempts += 1;
                            st.deadline = deadline;
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    for tag in 0..n_tiles {
                        if states[tag].done.is_some() || now < states[tag].deadline {
                            continue;
                        }
                        report.deadline_misses += 1;
                        shunned[states[tag].dev] = true;
                        if states[tag].attempts >= opts.max_attempts {
                            return Err(ExecError::AttemptsExhausted {
                                unit,
                                attempts: states[tag].attempts,
                                last: Box::new(ExecError::Timeout {
                                    dev: states[tag].dev,
                                    unit,
                                    waited_ms: opts.deadline.as_secs_f64() * 1e3,
                                }),
                            });
                        }
                        report.retries += 1;
                        let attempt = states[tag].attempt + 1;
                        let planned = devs[tag];
                        let (dev, deadline) = dispatch(tag, planned, attempt, shunned)?;
                        if dev != planned {
                            report.failovers += 1;
                        }
                        let st = &mut states[tag];
                        st.dev = dev;
                        st.attempt = attempt;
                        st.attempts += 1;
                        st.deadline = deadline;
                    }
                }
                // We hold `reply_tx`, so the channel cannot disconnect.
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ExecError::NoDevice { unit });
                }
            }
        }
        let gather_dev = states[0].dev;
        let outs: Vec<Tensor> = states.into_iter().filter_map(|s| s.done).collect();
        debug_assert_eq!(outs.len(), n_tiles);
        Ok((merge_fdsp(&outs, w.grid), gather_dev))
    }

    /// Streams several inputs through a chain of units pinned to devices
    /// (`device_of_unit[u]` runs unit `u`), overlapping different inputs'
    /// units across workers — real pipelining, the execution mode behind
    /// the paper's 20-inference-average measurements. Outputs are returned
    /// in input order; a request that exhausts its retry budget yields a
    /// typed error without sinking the rest of the stream.
    pub fn execute_stream(
        &self,
        device_of_unit: &[usize],
        inputs: Vec<Tensor>,
        quant: BitWidth,
    ) -> (Vec<Result<Tensor, ExecError>>, ExecReport) {
        self.execute_stream_with(device_of_unit, inputs, quant, ExecOptions::default())
    }

    /// [`execute_stream`](Self::execute_stream) with explicit options.
    pub fn execute_stream_with(
        &self,
        device_of_unit: &[usize],
        inputs: Vec<Tensor>,
        quant: BitWidth,
        opts: ExecOptions,
    ) -> (Vec<Result<Tensor, ExecError>>, ExecReport) {
        assert!(!device_of_unit.is_empty());
        let n_units = device_of_unit.len();
        let n_inputs = inputs.len();
        let start = Instant::now();
        let stats0 = self.transport.stats();
        let mut report = ExecReport::default();
        let mut shunned: Vec<bool> = (0..self.n_devices()).map(|d| !self.is_alive(d)).collect();
        let (reply_tx, reply_rx) = unbounded::<TransportReply>();

        struct ReqState {
            stage: usize,
            /// Input of the current stage, pre-shipping (kept for retry).
            cur_input: Arc<Tensor>,
            /// Device holding `cur_input` (shipping source).
            loc: usize,
            dev: usize,
            attempt: u32,
            stage_attempts: usize,
            deadline: Instant,
            /// Cancellation ticket for the primary submission.
            ticket: u64,
            /// When the primary submission went out.
            started: Instant,
            /// The primary is still expected to answer.
            primary_live: bool,
            /// Live speculative copy: `(device, ticket, started)`.
            hedge: Option<(usize, u64, Instant)>,
            /// When to fire the hedge, if the primary is still out by then.
            hedge_at: Option<Instant>,
            result: Option<Result<Tensor, ExecError>>,
        }
        let mut states: Vec<ReqState> = inputs
            .into_iter()
            .map(|input| ReqState {
                stage: 0,
                cur_input: Arc::new(input),
                loc: 0,
                dev: 0,
                attempt: 0,
                stage_attempts: 0,
                deadline: Instant::now(),
                ticket: 0,
                started: Instant::now(),
                primary_live: false,
                hedge: None,
                hedge_at: None,
                result: None,
            })
            .collect();
        let mut completed = 0usize;
        // Outstanding submissions per device (primaries + hedges), from
        // the coordinator's own bookkeeping: feeds least-loaded backup
        // selection so hedges escape congested queues.
        let mut inflight: Vec<usize> = vec![0; self.n_devices()];

        // Dispatches request `idx`'s current stage to the first usable
        // device. On unrecoverable dispatch failure the request is marked
        // failed (the stream continues).
        let dispatch = |idx: usize,
                        states: &mut Vec<ReqState>,
                        shunned: &mut [bool],
                        report: &mut ExecReport,
                        completed: &mut usize,
                        inflight: &mut [usize]| {
            let planned = device_of_unit[states[idx].stage];
            let attempt = states[idx].attempt + 1;
            let mut last_err: Option<ExecError> = None;
            loop {
                let dev = match self.pick_device(planned, shunned) {
                    Some(d) => d,
                    None => {
                        let unit = states[idx].stage;
                        states[idx].result =
                            Some(Err(last_err.unwrap_or(ExecError::NoDevice { unit })));
                        *completed += 1;
                        return;
                    }
                };
                let st = &states[idx];
                let ticket = match self.submit(
                    dev,
                    st.stage,
                    &st.cur_input,
                    quant,
                    dev != st.loc,
                    idx,
                    attempt,
                    Some(opts.deadline),
                    reply_tx.clone(),
                ) {
                    Ok(t) => t,
                    Err(e) => {
                        shunned[dev] = true;
                        last_err = Some(e);
                        continue;
                    }
                };
                if dev != planned {
                    report.failovers += 1;
                }
                inflight[dev] += 1;
                let now = Instant::now();
                let hedge_at = opts
                    .hedge
                    .as_ref()
                    .and_then(|h| self.hedge_trigger(dev, h, opts.deadline))
                    .map(|d| now + d);
                let st = &mut states[idx];
                st.dev = dev;
                st.attempt = attempt;
                st.stage_attempts += 1;
                st.deadline = now + opts.deadline;
                st.ticket = ticket;
                st.started = now;
                st.primary_live = true;
                st.hedge = None;
                st.hedge_at = hedge_at;
                return;
            }
        };

        for idx in 0..n_inputs {
            dispatch(idx, &mut states, &mut shunned, &mut report, &mut completed, &mut inflight);
        }
        while completed < n_inputs {
            let next_wake = states
                .iter()
                .filter(|s| s.result.is_none())
                .map(|s| match s.hedge_at {
                    Some(h) if s.hedge.is_none() && s.primary_live => s.deadline.min(h),
                    _ => s.deadline,
                })
                .min()
                .unwrap_or_else(Instant::now);
            let wait = next_wake.saturating_duration_since(Instant::now());
            match reply_rx.recv_timeout(wait) {
                Ok(reply) => {
                    let idx = reply.tag;
                    let is_hedge = reply.attempt & HEDGE_BIT != 0;
                    if states[idx].result.is_some()
                        || (reply.attempt & !HEDGE_BIT) != states[idx].attempt
                        || (is_hedge && states[idx].hedge.is_none())
                        || (!is_hedge && !states[idx].primary_live)
                    {
                        continue; // stale reply from an abandoned attempt
                    }
                    match reply.result {
                        Ok(t) => {
                            // First result wins; cancel the loser.
                            let st = &mut states[idx];
                            let (winner, won_start) = if is_hedge {
                                let (hdev, _, hstart) =
                                    st.hedge.take().unwrap_or((st.dev, 0, st.started));
                                inflight[hdev] = inflight[hdev].saturating_sub(1);
                                if st.primary_live {
                                    self.transport.cancel(st.dev, st.ticket);
                                    inflight[st.dev] = inflight[st.dev].saturating_sub(1);
                                }
                                report.hedges_won += 1;
                                (hdev, hstart)
                            } else {
                                inflight[st.dev] = inflight[st.dev].saturating_sub(1);
                                if let Some((hdev, hticket, _)) = st.hedge.take() {
                                    self.transport.cancel(hdev, hticket);
                                    inflight[hdev] = inflight[hdev].saturating_sub(1);
                                }
                                (st.dev, st.started)
                            };
                            st.primary_live = false;
                            st.hedge_at = None;
                            st.dev = winner;
                            self.observe_latency(winner, won_start.elapsed().as_secs_f64() * 1e3);
                            let next = states[idx].stage + 1;
                            if next < n_units {
                                let st = &mut states[idx];
                                st.stage = next;
                                st.loc = st.dev;
                                st.cur_input = Arc::new(t);
                                st.stage_attempts = 0;
                                dispatch(
                                    idx,
                                    &mut states,
                                    &mut shunned,
                                    &mut report,
                                    &mut completed,
                                    &mut inflight,
                                );
                            } else {
                                states[idx].result = Some(Ok(t));
                                completed += 1;
                            }
                        }
                        Err(err) => {
                            let st = &mut states[idx];
                            let (fail_dev, other_live) = if is_hedge {
                                let (hdev, _, _) =
                                    st.hedge.take().unwrap_or((st.dev, 0, st.started));
                                inflight[hdev] = inflight[hdev].saturating_sub(1);
                                (hdev, st.primary_live)
                            } else {
                                st.primary_live = false;
                                inflight[st.dev] = inflight[st.dev].saturating_sub(1);
                                (st.dev, st.hedge.is_some())
                            };
                            let exec_err = match err {
                                ReplyError::Worker(msg) => {
                                    ExecError::WorkerPanic { dev: fail_dev, unit: st.stage, msg }
                                }
                                ReplyError::Link(_) => {
                                    self.transport.mark_dead(fail_dev);
                                    shunned[fail_dev] = true;
                                    ExecError::DeviceDown { dev: fail_dev }
                                }
                            };
                            if other_live {
                                continue; // the surviving side may still win
                            }
                            let st = &states[idx];
                            if st.stage_attempts >= opts.max_attempts {
                                states[idx].result = Some(Err(ExecError::AttemptsExhausted {
                                    unit: st.stage,
                                    attempts: st.stage_attempts,
                                    last: Box::new(exec_err),
                                }));
                                completed += 1;
                            } else {
                                report.retries += 1;
                                dispatch(
                                    idx,
                                    &mut states,
                                    &mut shunned,
                                    &mut report,
                                    &mut completed,
                                    &mut inflight,
                                );
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                // We hold `reply_tx`, so the channel cannot disconnect.
                Err(RecvTimeoutError::Disconnected) => break,
            }
            // Timer sweep — after EVERY event, not only on a quiet
            // channel: under streamed load replies arrive continuously,
            // and a timeout-only sweep would starve the hedge triggers.
            {
                let now = Instant::now();
                for idx in 0..n_inputs {
                    if states[idx].result.is_some() {
                        continue;
                    }
                    // Hedge trigger: the primary is straggling — fire
                    // the speculative copy at a backup device.
                    if states[idx].primary_live
                        && states[idx].hedge.is_none()
                        && states[idx].hedge_at.is_some_and(|h| now >= h)
                        && now < states[idx].deadline
                    {
                        states[idx].hedge_at = None;
                        if let Some(backup) =
                            self.pick_backup_least_loaded(states[idx].dev, &shunned, &inflight)
                        {
                            let st = &states[idx];
                            let remaining = st.deadline.saturating_duration_since(now);
                            if let Ok(ht) = self.submit(
                                backup,
                                st.stage,
                                &st.cur_input,
                                quant,
                                backup != st.loc,
                                idx,
                                st.attempt | HEDGE_BIT,
                                Some(remaining),
                                reply_tx.clone(),
                            ) {
                                report.hedges_fired += 1;
                                inflight[backup] += 1;
                                states[idx].hedge = Some((backup, ht, now));
                            }
                        }
                    }
                    if now < states[idx].deadline {
                        continue;
                    }
                    report.deadline_misses += 1;
                    // Straggler(s): shun, cancel whatever is still
                    // out, then retry.
                    let st = &mut states[idx];
                    shunned[st.dev] = true;
                    if st.primary_live {
                        self.transport.cancel(st.dev, st.ticket);
                        inflight[st.dev] = inflight[st.dev].saturating_sub(1);
                        st.primary_live = false;
                    }
                    if let Some((hdev, hticket, _)) = st.hedge.take() {
                        self.transport.cancel(hdev, hticket);
                        inflight[hdev] = inflight[hdev].saturating_sub(1);
                    }
                    st.hedge_at = None;
                    let st = &states[idx];
                    let err = ExecError::Timeout {
                        dev: st.dev,
                        unit: st.stage,
                        waited_ms: opts.deadline.as_secs_f64() * 1e3,
                    };
                    if st.stage_attempts >= opts.max_attempts {
                        states[idx].result = Some(Err(ExecError::AttemptsExhausted {
                            unit: st.stage,
                            attempts: st.stage_attempts,
                            last: Box::new(err),
                        }));
                        completed += 1;
                    } else {
                        report.retries += 1;
                        dispatch(
                            idx,
                            &mut states,
                            &mut shunned,
                            &mut report,
                            &mut completed,
                            &mut inflight,
                        );
                    }
                }
            }
        }
        report.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        report.absorb_stats(self.transport.stats().since(&stats0));
        let results = states
            .into_iter()
            .enumerate()
            .map(|(idx, s)| s.result.unwrap_or(Err(ExecError::NoDevice { unit: idx })))
            .collect();
        (results, report)
    }
}

/// A concrete [`UnitCompute`]: stacks of same-padded convolutions with
/// ReLU — the structure of the supernet's convolutional stages, sized for
/// tests and examples. Deterministic from its seed, so a remote worker
/// process built with the same parameters hosts bit-identical weights.
///
/// Units whose plan selects 8-bit compute ([`ExecUnit::compute_bits`] in
/// the supernet crate) carry pre-quantized int8 weights alongside the f32
/// originals and run the `murmuration_tensor::int8` path. Quantization
/// happens at construction — deterministic from the same seed — and the
/// int8 kernels round identically on every device (SIMD or scalar), so
/// distributed execution still reproduces local execution bit for bit.
pub struct ConvStackCompute {
    /// Per unit: a list of (weight, bias, params) conv layers.
    units: Vec<Vec<(Tensor, Tensor, murmuration_tensor::conv::Conv2dParams)>>,
    /// Per unit: int8 weights for units running the quantized compute path
    /// (`None` = f32 unit).
    qunits: Vec<Option<Vec<murmuration_tensor::int8::QConv2dWeights>>>,
}

impl ConvStackCompute {
    /// Random conv stacks: `n_units` units of `layers_per_unit` k3
    /// same-padded convs over `channels` channels. All units run f32.
    pub fn random(n_units: usize, layers_per_unit: usize, channels: usize, seed: u64) -> Self {
        Self::random_quantized(n_units, layers_per_unit, channels, seed, &[])
    }

    /// [`Self::random`] with the units flagged in `int8_units` running the
    /// int8 compute path (indices past the end are f32).
    pub fn random_quantized(
        n_units: usize,
        layers_per_unit: usize,
        channels: usize,
        seed: u64,
        int8_units: &[bool],
    ) -> Self {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let p = murmuration_tensor::conv::Conv2dParams::same(3);
        let units: Vec<Vec<(Tensor, Tensor, murmuration_tensor::conv::Conv2dParams)>> = (0
            ..n_units)
            .map(|_| {
                (0..layers_per_unit)
                    .map(|_| {
                        (
                            Tensor::kaiming(
                                murmuration_tensor::Shape::nchw(channels, channels, 3, 3),
                                channels * 9,
                                &mut rng,
                            ),
                            Tensor::zeros(murmuration_tensor::Shape::d1(channels)),
                            p,
                        )
                    })
                    .collect()
            })
            .collect();
        let qunits = units
            .iter()
            .enumerate()
            .map(|(u, layers)| {
                int8_units.get(u).copied().unwrap_or(false).then(|| {
                    layers
                        .iter()
                        .map(|(w, _, _)| murmuration_tensor::int8::QConv2dWeights::quantize(w))
                        .collect()
                })
            })
            .collect();
        ConvStackCompute { units, qunits }
    }

    /// Whether `unit` runs the int8 compute path.
    pub fn is_int8_unit(&self, unit: usize) -> bool {
        self.qunits.get(unit).map(Option::is_some).unwrap_or(false)
    }
}

impl UnitCompute for ConvStackCompute {
    fn n_units(&self) -> usize {
        self.units.len()
    }

    fn run_unit(&self, unit: usize, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        match &self.qunits[unit] {
            Some(qlayers) => {
                for (q, (_, b, p)) in qlayers.iter().zip(&self.units[unit]) {
                    cur = murmuration_tensor::int8::qconv2d(&cur, q, Some(b), *p);
                    murmuration_tensor::activation::relu_inplace(&mut cur);
                }
            }
            None => {
                for (w, b, p) in &self.units[unit] {
                    cur = murmuration_tensor::conv::conv2d(&cur, w, Some(b), *p);
                    murmuration_tensor::activation::relu_inplace(&mut cur);
                }
            }
        }
        cur
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultyCompute};
    use murmuration_tensor::Shape;

    fn setup(n_devices: usize) -> (Executor, Arc<ConvStackCompute>, Tensor) {
        use rand::{rngs::StdRng, SeedableRng};
        let compute = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
        let exec = Executor::new(n_devices, compute.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let input = Tensor::rand_uniform(Shape::nchw(1, 4, 12, 12), 1.0, &mut rng);
        (exec, compute, input)
    }

    fn faulty_setup(
        n_devices: usize,
    ) -> (Executor, Arc<FaultyCompute>, Arc<ConvStackCompute>, Tensor) {
        use rand::{rngs::StdRng, SeedableRng};
        let inner = Arc::new(ConvStackCompute::random(3, 2, 4, 7));
        let faulty = Arc::new(FaultyCompute::new(inner.clone(), n_devices));
        let exec = Executor::new(n_devices, faulty.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let input = Tensor::rand_uniform(Shape::nchw(1, 4, 12, 12), 1.0, &mut rng);
        (exec, faulty, inner, input)
    }

    fn local_reference(compute: &ConvStackCompute, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        for u in 0..compute.n_units() {
            cur = compute.run_unit(u, &cur);
        }
        cur
    }

    fn wire_all(quant: BitWidth, grid: GridSpec, n: usize) -> Vec<UnitWire> {
        vec![UnitWire { grid, in_quant: quant }; n]
    }

    fn remote_plan() -> ExecutionPlan {
        ExecutionPlan {
            placements: vec![
                UnitPlacement::Single(0),
                UnitPlacement::Single(1),
                UnitPlacement::Single(0),
            ],
        }
    }

    #[test]
    fn single_device_matches_local_exactly() {
        let (exec, compute, input) = setup(1);
        let plan = ExecutionPlan { placements: vec![UnitPlacement::Single(0); 3] };
        let (out, report) = exec
            .execute(&plan, &wire_all(BitWidth::B32, GridSpec::new(1, 1), 3), input.clone())
            .unwrap();
        let expect = local_reference(&compute, &input);
        assert_eq!(out.data(), expect.data());
        assert!(report.wall_ms >= 0.0);
        assert_eq!(report.retries + report.failovers + report.deadline_misses, 0);
        assert_eq!(report.reconnects + report.heartbeats_missed + report.resends_deduped, 0);
    }

    #[test]
    fn int8_units_distributed_matches_local_exactly() {
        use rand::{rngs::StdRng, SeedableRng};
        // Middle unit runs the int8 compute path; the int8 kernels are
        // bit-identical across devices (SIMD or scalar), so distributing
        // must reproduce the local pass exactly.
        let compute =
            Arc::new(ConvStackCompute::random_quantized(3, 2, 4, 7, &[false, true, false]));
        assert!(!compute.is_int8_unit(0));
        assert!(compute.is_int8_unit(1));
        let exec = Executor::new(3, compute.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let input = Tensor::rand_uniform(Shape::nchw(1, 4, 12, 12), 1.0, &mut rng);
        let (out, _) = exec
            .execute(
                &remote_plan(),
                &wire_all(BitWidth::B32, GridSpec::new(1, 1), 3),
                input.clone(),
            )
            .unwrap();
        let expect = local_reference(&compute, &input);
        assert_eq!(out.data(), expect.data());

        // And the int8 unit genuinely diverges from its f32 twin — the
        // quantized path is being exercised, not silently skipped.
        let f32_twin = ConvStackCompute::random(3, 2, 4, 7);
        let f32_out = local_reference(&f32_twin, &input);
        assert_ne!(expect.data(), f32_out.data());
    }

    #[test]
    fn cross_device_b32_is_exact() {
        let (exec, compute, input) = setup(3);
        let plan = ExecutionPlan {
            placements: vec![
                UnitPlacement::Single(0),
                UnitPlacement::Single(2),
                UnitPlacement::Single(1),
            ],
        };
        let (out, _) = exec
            .execute(&plan, &wire_all(BitWidth::B32, GridSpec::new(1, 1), 3), input.clone())
            .unwrap();
        let expect = local_reference(&compute, &input);
        assert_eq!(out.data(), expect.data());
    }

    #[test]
    fn tiled_execution_matches_fdsp_semantics() {
        // Distributed 2x2-tiled execution must equal *local FDSP* execution
        // (tile → conv → merge) exactly, and differ from the monolithic
        // result only near seams.
        let (exec, compute, input) = setup(4);
        let grid = GridSpec::new(2, 2);
        let plan = ExecutionPlan {
            placements: vec![
                UnitPlacement::Tiled(vec![0, 1, 2, 3]),
                UnitPlacement::Single(0),
                UnitPlacement::Single(0),
            ],
        };
        let mut wire = wire_all(BitWidth::B32, GridSpec::new(1, 1), 3);
        wire[0].grid = grid;
        let (out, _) = exec.execute(&plan, &wire, input.clone()).unwrap();

        // Local FDSP reference for unit 0, then units 1–2 monolithic.
        let tiles = split_fdsp(&input, grid);
        let outs: Vec<Tensor> = tiles.iter().map(|t| compute.run_unit(0, t)).collect();
        let mut cur = merge_fdsp(&outs, grid);
        cur = compute.run_unit(1, &cur);
        cur = compute.run_unit(2, &cur);
        assert_eq!(out.data(), cur.data(), "distributed FDSP must equal local FDSP");

        // And it is *close* to the monolithic result overall.
        let mono = local_reference(&compute, &input);
        let err: f32 =
            out.data().iter().zip(mono.data().iter()).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / out.numel() as f32;
        let scale: f32 = mono.data().iter().map(|v| v.abs()).sum::<f32>() / mono.numel() as f32;
        assert!(err < scale * 0.5, "seam error too large: {err} vs scale {scale}");
    }

    #[test]
    fn quantized_wire_stays_close() {
        let (exec, compute, input) = setup(2);
        let (out8, _) = exec
            .execute(&remote_plan(), &wire_all(BitWidth::B8, GridSpec::new(1, 1), 3), input.clone())
            .unwrap();
        let expect = local_reference(&compute, &input);
        let err: f32 =
            out8.data().iter().zip(expect.data().iter()).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / out8.numel() as f32;
        let scale: f32 = expect.data().iter().map(|v| v.abs()).sum::<f32>() / expect.numel() as f32;
        assert!(err < scale * 0.1, "8-bit wire error {err} vs scale {scale}");
        // But not bit-identical (quantization really happened).
        assert_ne!(out8.data(), expect.data());
    }

    #[test]
    fn stream_outputs_match_sequential_in_order() {
        let (exec, compute, _) = setup(3);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| Tensor::rand_uniform(Shape::nchw(1, 4, 10, 10), 1.0, &mut rng))
            .collect();
        let (outs, report) = exec.execute_stream(&[0, 1, 2], inputs.clone(), BitWidth::B32);
        assert_eq!(outs.len(), 5);
        assert!(report.wall_ms >= 0.0);
        for (input, out) in inputs.iter().zip(&outs) {
            let expect = local_reference(&compute, input);
            assert_eq!(
                out.as_ref().unwrap().data(),
                expect.data(),
                "pipelined result must be exact at B32"
            );
        }
    }

    #[test]
    fn stream_single_device_also_works() {
        let (exec, compute, input) = setup(1);
        let (outs, _) = exec.execute_stream(&[0, 0, 0], vec![input.clone()], BitWidth::B32);
        assert_eq!(outs[0].as_ref().unwrap().data(), local_reference(&compute, &input).data());
    }

    #[test]
    fn executor_shuts_down_cleanly() {
        let (exec, _, _) = setup(4);
        assert_eq!(exec.n_devices(), 4);
        drop(exec); // Drop joins all workers; hangs = test timeout.
    }

    // ---- fault handling ----

    fn fast_opts() -> ExecOptions {
        ExecOptions {
            deadline: Duration::from_millis(250),
            max_attempts: 3,
            backoff: Duration::from_millis(1),
            hedge: None,
        }
    }

    #[test]
    fn worker_killed_mid_request_fails_over_not_hangs() {
        // Regression: a worker that dies between accepting a job and
        // replying used to block the coordinator forever. Now the fresh
        // reply channel disconnects and the request fails over.
        let (exec, faulty, inner, input) = faulty_setup(2);
        faulty.script(1, 0, FaultKind::Vanish);
        let (out, report) = exec
            .execute_with(
                &remote_plan(),
                &wire_all(BitWidth::B32, GridSpec::new(1, 1), 3),
                input.clone(),
                fast_opts(),
            )
            .unwrap();
        assert_eq!(out.data(), local_reference(&inner, &input).data(), "failover stays exact");
        assert!(report.failovers >= 1, "must have failed over: {report:?}");
        assert!(!exec.is_alive(1), "crash must be discovered");
    }

    #[test]
    fn dead_device_with_no_retry_budget_is_a_typed_error() {
        let (exec, faulty, _, input) = faulty_setup(2);
        faulty.kill(1);
        let opts = ExecOptions { max_attempts: 1, ..fast_opts() };
        // Warm the crash: first call discovers device 1 is gone.
        let r1 = exec.execute_with(
            &remote_plan(),
            &wire_all(BitWidth::B32, GridSpec::new(1, 1), 3),
            input.clone(),
            opts,
        );
        match r1 {
            Err(ExecError::AttemptsExhausted { .. }) | Err(ExecError::DeviceDown { .. }) => {}
            other => panic!("expected typed failure, got {:?}", other.map(|(_, r)| r)),
        }
    }

    #[test]
    fn injected_panic_is_retried() {
        let (exec, faulty, inner, input) = faulty_setup(2);
        faulty.script(1, 0, FaultKind::Panic);
        let (out, report) = exec
            .execute_with(
                &remote_plan(),
                &wire_all(BitWidth::B32, GridSpec::new(1, 1), 3),
                input.clone(),
                fast_opts(),
            )
            .unwrap();
        assert_eq!(out.data(), local_reference(&inner, &input).data());
        assert!(report.retries >= 1, "panic must cost a retry: {report:?}");
    }

    #[test]
    fn stall_past_deadline_counts_and_fails_over() {
        let (exec, faulty, inner, input) = faulty_setup(2);
        faulty.script(1, 0, FaultKind::Stall(Duration::from_millis(600)));
        let (out, report) = exec
            .execute_with(
                &remote_plan(),
                &wire_all(BitWidth::B32, GridSpec::new(1, 1), 3),
                input.clone(),
                fast_opts(),
            )
            .unwrap();
        assert_eq!(out.data(), local_reference(&inner, &input).data());
        assert!(report.deadline_misses >= 1, "stall must miss the deadline: {report:?}");
        assert!(report.failovers >= 1, "stall must fail over: {report:?}");
    }

    #[test]
    fn corrupted_wire_is_detected_and_failed_over() {
        let (exec, compute, input) = setup(2);
        exec.set_wire_corruption(1, true);
        let (out, report) = exec
            .execute_with(
                &remote_plan(),
                &wire_all(BitWidth::B8, GridSpec::new(1, 1), 3),
                input.clone(),
                fast_opts(),
            )
            .unwrap();
        // Unit 1 fails over to device 0 — all-local execution is exact at
        // any precision because nothing crosses a device boundary.
        assert_eq!(out.data(), local_reference(&compute, &input).data());
        assert!(report.failovers >= 1, "corruption must fail over: {report:?}");
    }

    #[test]
    fn kill_and_restart_device_round_trip() {
        let (mut exec, compute, input) = setup(2);
        let wire = wire_all(BitWidth::B32, GridSpec::new(1, 1), 3);
        exec.kill_device(1);
        assert!(!exec.is_alive(1));
        let (out, report) =
            exec.execute_with(&remote_plan(), &wire, input.clone(), fast_opts()).unwrap();
        assert_eq!(out.data(), local_reference(&compute, &input).data());
        assert!(report.failovers >= 1);
        exec.restart_device(1);
        assert!(exec.is_alive(1));
        let (out, report) =
            exec.execute_with(&remote_plan(), &wire, input.clone(), fast_opts()).unwrap();
        assert_eq!(out.data(), local_reference(&compute, &input).data());
        assert_eq!(report.failovers, 0, "restarted device serves again: {report:?}");
    }

    #[test]
    fn tiled_execution_survives_a_dead_tile_device() {
        let (exec, faulty, inner, input) = faulty_setup(4);
        faulty.kill(3);
        let grid = GridSpec::new(2, 2);
        let plan = ExecutionPlan {
            placements: vec![
                UnitPlacement::Tiled(vec![0, 1, 2, 3]),
                UnitPlacement::Single(0),
                UnitPlacement::Single(0),
            ],
        };
        let mut wire = wire_all(BitWidth::B32, GridSpec::new(1, 1), 3);
        wire[0].grid = grid;
        let (out, report) = exec.execute_with(&plan, &wire, input.clone(), fast_opts()).unwrap();
        // Reference: local FDSP (tile placement does not change values).
        let tiles = split_fdsp(&input, grid);
        let outs: Vec<Tensor> = tiles.iter().map(|t| inner.run_unit(0, t)).collect();
        let mut cur = merge_fdsp(&outs, grid);
        cur = inner.run_unit(1, &cur);
        cur = inner.run_unit(2, &cur);
        assert_eq!(out.data(), cur.data(), "failover must not change tile math");
        assert!(report.deadline_misses >= 1 || report.failovers >= 1, "{report:?}");
    }

    #[test]
    fn stream_survives_mid_stream_crash() {
        use rand::{rngs::StdRng, SeedableRng};
        let (exec, faulty, inner, _) = faulty_setup(3);
        // Device 1 dies while serving its 3rd stream job.
        faulty.script(1, 2, FaultKind::Vanish);
        let mut rng = StdRng::seed_from_u64(11);
        let inputs: Vec<Tensor> = (0..6)
            .map(|_| Tensor::rand_uniform(Shape::nchw(1, 4, 10, 10), 1.0, &mut rng))
            .collect();
        let (outs, report) =
            exec.execute_stream_with(&[0, 1, 2], inputs.clone(), BitWidth::B32, fast_opts());
        assert_eq!(outs.len(), 6);
        for (input, out) in inputs.iter().zip(&outs) {
            let expect = local_reference(&inner, input);
            let got = out.as_ref().expect("every request must complete via failover");
            assert_eq!(got.data(), expect.data(), "B32 results stay exact across failover");
        }
        assert!(report.failovers >= 1, "crashed stage must fail over: {report:?}");
    }
}
