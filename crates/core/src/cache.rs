//! The Strategy Cache: memoizes (SLO, network-condition bucket) →
//! (subnet config + placement) so the RL policy runs only on cache misses.

use murmuration_rl::{Condition, Scenario};
use parking_lot::Mutex;
use std::collections::HashMap;

/// A cached strategy: the decision sequence the policy produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedStrategy {
    pub actions: Vec<usize>,
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when empty.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The strategy cache, keyed by the scenario's condition grid bucket.
pub struct StrategyCache {
    inner: Mutex<Inner>,
    grid_points: usize,
    capacity: usize,
}

struct Inner {
    map: HashMap<Vec<u16>, CachedStrategy>,
    order: Vec<Vec<u16>>, // FIFO eviction order
    stats: CacheStats,
}

impl StrategyCache {
    /// Cache with bounded capacity (FIFO eviction).
    pub fn new(grid_points: usize, capacity: usize) -> Self {
        assert!(capacity >= 1);
        StrategyCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: Vec::new(),
                stats: CacheStats::default(),
            }),
            grid_points,
            capacity,
        }
    }

    /// Discretizes a condition to its cache key.
    pub fn key(&self, sc: &Scenario, cond: &Condition) -> Vec<u16> {
        let g = (self.grid_points - 1) as f64;
        let idx = |lo: f64, hi: f64, v: f64| -> u16 {
            (((v - lo) / (hi - lo) * g).round().clamp(0.0, g)) as u16
        };
        let log_idx = |lo: f64, hi: f64, v: f64| -> u16 {
            ((((v / lo).ln() / (hi / lo).ln()) * g).round().clamp(0.0, g)) as u16
        };
        let mut k = vec![idx(sc.slo_range.0, sc.slo_range.1, cond.slo)];
        for &b in &cond.bw_mbps {
            k.push(log_idx(sc.bw_range.0, sc.bw_range.1, b));
        }
        for &d in &cond.delay_ms {
            k.push(idx(sc.delay_range.0, sc.delay_range.1, d));
        }
        k
    }

    /// Looks up a strategy, recording hit/miss.
    pub fn get(&self, sc: &Scenario, cond: &Condition) -> Option<CachedStrategy> {
        let key = self.key(sc, cond);
        let mut inner = self.inner.lock();
        match inner.map.get(&key).cloned() {
            Some(s) => {
                inner.stats.hits += 1;
                Some(s)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a strategy for a condition bucket.
    pub fn put(&self, sc: &Scenario, cond: &Condition, strategy: CachedStrategy) {
        let key = self.key(sc, cond);
        let mut inner = self.inner.lock();
        if inner.map.insert(key.clone(), strategy).is_none() {
            inner.order.push(key);
            if inner.order.len() > self.capacity {
                let evict = inner.order.remove(0);
                inner.map.remove(&evict);
            }
        }
    }

    /// Snapshot of hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (e.g. after a policy update).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
    }

    /// Removes the entry for a condition bucket (e.g. when it turned out
    /// to reference a dead device). Returns the evicted strategy.
    pub fn remove(&self, sc: &Scenario, cond: &Condition) -> Option<CachedStrategy> {
        let key = self.key(sc, cond);
        let mut inner = self.inner.lock();
        inner.order.retain(|k| k != &key);
        inner.map.remove(&key)
    }

    /// Keeps only strategies for which `keep` returns true — used to purge
    /// every cached plan that places work on a device that just died.
    /// Returns the number of evicted entries.
    pub fn retain<F: FnMut(&CachedStrategy) -> bool>(&self, mut keep: F) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        let Inner { map, order, .. } = &mut *inner;
        map.retain(|_, v| keep(v));
        order.retain(|k| map.contains_key(k));
        before - inner.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_rl::SloKind;

    fn sc() -> Scenario {
        Scenario::augmented_computing(SloKind::Latency)
    }

    fn cond(slo: f64, bw: f64, delay: f64) -> Condition {
        Condition { slo, bw_mbps: vec![bw], delay_ms: vec![delay] }
    }

    #[test]
    fn hit_after_put() {
        let sc = sc();
        let cache = StrategyCache::new(10, 16);
        let c = cond(140.0, 100.0, 20.0);
        assert!(cache.get(&sc, &c).is_none());
        cache.put(&sc, &c, CachedStrategy { actions: vec![1, 2, 3] });
        assert_eq!(cache.get(&sc, &c).unwrap().actions, vec![1, 2, 3]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nearby_conditions_share_a_bucket() {
        let sc = sc();
        let cache = StrategyCache::new(10, 16);
        cache.put(&sc, &cond(140.0, 100.0, 20.0), CachedStrategy { actions: vec![7] });
        // Slightly different values in the same grid cell still hit.
        assert!(cache.get(&sc, &cond(142.0, 103.0, 20.5)).is_some());
        // A far-away condition misses.
        assert!(cache.get(&sc, &cond(380.0, 55.0, 95.0)).is_none());
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let sc = sc();
        let cache = StrategyCache::new(10, 2);
        let c1 = cond(80.0, 50.0, 5.0);
        let c2 = cond(400.0, 400.0, 100.0);
        let c3 = cond(220.0, 150.0, 50.0);
        cache.put(&sc, &c1, CachedStrategy { actions: vec![1] });
        cache.put(&sc, &c2, CachedStrategy { actions: vec![2] });
        cache.put(&sc, &c3, CachedStrategy { actions: vec![3] });
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&sc, &c1).is_none(), "oldest entry evicted");
        assert!(cache.get(&sc, &c2).is_some());
        assert!(cache.get(&sc, &c3).is_some());
    }

    #[test]
    fn clear_empties_cache() {
        let sc = sc();
        let cache = StrategyCache::new(10, 4);
        cache.put(&sc, &cond(140.0, 100.0, 20.0), CachedStrategy { actions: vec![1] });
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn remove_and_retain_evict_targeted_entries() {
        let sc = sc();
        let cache = StrategyCache::new(10, 8);
        let c1 = cond(80.0, 50.0, 5.0);
        let c2 = cond(400.0, 400.0, 100.0);
        cache.put(&sc, &c1, CachedStrategy { actions: vec![1] });
        cache.put(&sc, &c2, CachedStrategy { actions: vec![2] });
        assert_eq!(cache.remove(&sc, &c1).unwrap().actions, vec![1]);
        assert!(cache.get(&sc, &c1).is_none());
        assert!(cache.get(&sc, &c2).is_some());
        // retain drops by predicate and keeps the order list consistent.
        let evicted = cache.retain(|s| s.actions != vec![2]);
        assert_eq!(evicted, 1);
        assert!(cache.is_empty());
        // Re-inserting after retain must not trip FIFO bookkeeping.
        cache.put(&sc, &c2, CachedStrategy { actions: vec![3] });
        assert_eq!(cache.get(&sc, &c2).unwrap().actions, vec![3]);
    }
}
