//! The Strategy Cache: memoizes (SLO, network-condition bucket) →
//! (subnet config + placement) so the RL policy runs only on cache misses.
//!
//! The cache sits on the serve hot path where many worker threads look up
//! strategies concurrently, so it is **sharded**: keys hash to one of
//! several independently locked shards, and hit/miss counters live in
//! lock-free atomics outside the shard locks. Small caches (capacity
//! below [`SHARD_THRESHOLD`]) collapse to a single shard so capacity and
//! FIFO-eviction semantics stay exact where tests and experiments rely on
//! them; large caches trade strict global FIFO for per-shard FIFO, which
//! preserves the bounded-capacity contract (`len() <= capacity`).

use murmuration_rl::{Condition, Scenario};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Capacity at or above which the cache splits into [`N_SHARDS`] shards.
pub const SHARD_THRESHOLD: usize = 64;

/// Shard count for large caches.
pub const N_SHARDS: usize = 8;

/// A cached strategy: the decision sequence the policy produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedStrategy {
    pub actions: Vec<usize>,
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when empty.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The strategy cache, keyed by the scenario's condition grid bucket.
pub struct StrategyCache {
    shards: Vec<Mutex<Shard>>,
    /// Contention-free hit/miss counting: bumped outside any shard lock.
    hits: AtomicU64,
    misses: AtomicU64,
    grid_points: usize,
    shard_capacity: usize,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Vec<u16>, CachedStrategy>,
    order: Vec<Vec<u16>>, // FIFO eviction order within the shard
}

impl StrategyCache {
    /// Cache with bounded capacity (FIFO eviction per shard).
    pub fn new(grid_points: usize, capacity: usize) -> Self {
        assert!(capacity >= 1);
        let n_shards = if capacity >= SHARD_THRESHOLD { N_SHARDS } else { 1 };
        StrategyCache {
            shards: (0..n_shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            grid_points,
            shard_capacity: capacity.div_ceil(n_shards),
        }
    }

    /// Discretizes a condition to its cache key.
    pub fn key(&self, sc: &Scenario, cond: &Condition) -> Vec<u16> {
        let g = (self.grid_points - 1) as f64;
        let idx = |lo: f64, hi: f64, v: f64| -> u16 {
            (((v - lo) / (hi - lo) * g).round().clamp(0.0, g)) as u16
        };
        let log_idx = |lo: f64, hi: f64, v: f64| -> u16 {
            ((((v / lo).ln() / (hi / lo).ln()) * g).round().clamp(0.0, g)) as u16
        };
        let mut k = vec![idx(sc.slo_range.0, sc.slo_range.1, cond.slo)];
        for &b in &cond.bw_mbps {
            k.push(log_idx(sc.bw_range.0, sc.bw_range.1, b));
        }
        for &d in &cond.delay_ms {
            k.push(idx(sc.delay_range.0, sc.delay_range.1, d));
        }
        k
    }

    /// FNV-1a over the key bytes → shard index.
    fn shard_of(&self, key: &[u16]) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &v in key {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Looks up a strategy, recording hit/miss.
    pub fn get(&self, sc: &Scenario, cond: &Condition) -> Option<CachedStrategy> {
        let key = self.key(sc, cond);
        let found = self.shards[self.shard_of(&key)].lock().map.get(&key).cloned();
        match found {
            Some(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(s)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a strategy for a condition bucket.
    pub fn put(&self, sc: &Scenario, cond: &Condition, strategy: CachedStrategy) {
        let key = self.key(sc, cond);
        let mut shard = self.shards[self.shard_of(&key)].lock();
        if shard.map.insert(key.clone(), strategy).is_none() {
            shard.order.push(key);
            if shard.order.len() > self.shard_capacity {
                let evict = shard.order.remove(0);
                shard.map.remove(&evict);
            }
        }
    }

    /// Snapshot of hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (e.g. after a policy update).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock();
            shard.map.clear();
            shard.order.clear();
        }
    }

    /// Removes the entry for a condition bucket (e.g. when it turned out
    /// to reference a dead device). Returns the evicted strategy.
    pub fn remove(&self, sc: &Scenario, cond: &Condition) -> Option<CachedStrategy> {
        let key = self.key(sc, cond);
        let mut shard = self.shards[self.shard_of(&key)].lock();
        shard.order.retain(|k| k != &key);
        shard.map.remove(&key)
    }

    /// Keeps only strategies for which `keep` returns true — used to purge
    /// every cached plan that places work on a device that just died.
    /// Returns the number of evicted entries.
    pub fn retain<F: FnMut(&CachedStrategy) -> bool>(&self, mut keep: F) -> usize {
        let mut evicted = 0;
        for s in &self.shards {
            let mut shard = s.lock();
            let before = shard.map.len();
            let Shard { map, order } = &mut *shard;
            map.retain(|_, v| keep(v));
            order.retain(|k| map.contains_key(k));
            evicted += before - shard.map.len();
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murmuration_rl::SloKind;

    fn sc() -> Scenario {
        Scenario::augmented_computing(SloKind::Latency)
    }

    fn cond(slo: f64, bw: f64, delay: f64) -> Condition {
        Condition { slo, bw_mbps: vec![bw], delay_ms: vec![delay] }
    }

    #[test]
    fn hit_after_put() {
        let sc = sc();
        let cache = StrategyCache::new(10, 16);
        let c = cond(140.0, 100.0, 20.0);
        assert!(cache.get(&sc, &c).is_none());
        cache.put(&sc, &c, CachedStrategy { actions: vec![1, 2, 3] });
        assert_eq!(cache.get(&sc, &c).unwrap().actions, vec![1, 2, 3]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nearby_conditions_share_a_bucket() {
        let sc = sc();
        let cache = StrategyCache::new(10, 16);
        cache.put(&sc, &cond(140.0, 100.0, 20.0), CachedStrategy { actions: vec![7] });
        // Slightly different values in the same grid cell still hit.
        assert!(cache.get(&sc, &cond(142.0, 103.0, 20.5)).is_some());
        // A far-away condition misses.
        assert!(cache.get(&sc, &cond(380.0, 55.0, 95.0)).is_none());
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let sc = sc();
        let cache = StrategyCache::new(10, 2);
        let c1 = cond(80.0, 50.0, 5.0);
        let c2 = cond(400.0, 400.0, 100.0);
        let c3 = cond(220.0, 150.0, 50.0);
        cache.put(&sc, &c1, CachedStrategy { actions: vec![1] });
        cache.put(&sc, &c2, CachedStrategy { actions: vec![2] });
        cache.put(&sc, &c3, CachedStrategy { actions: vec![3] });
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&sc, &c1).is_none(), "oldest entry evicted");
        assert!(cache.get(&sc, &c2).is_some());
        assert!(cache.get(&sc, &c3).is_some());
    }

    #[test]
    fn clear_empties_cache() {
        let sc = sc();
        let cache = StrategyCache::new(10, 4);
        cache.put(&sc, &cond(140.0, 100.0, 20.0), CachedStrategy { actions: vec![1] });
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn remove_and_retain_evict_targeted_entries() {
        let sc = sc();
        let cache = StrategyCache::new(10, 8);
        let c1 = cond(80.0, 50.0, 5.0);
        let c2 = cond(400.0, 400.0, 100.0);
        cache.put(&sc, &c1, CachedStrategy { actions: vec![1] });
        cache.put(&sc, &c2, CachedStrategy { actions: vec![2] });
        assert_eq!(cache.remove(&sc, &c1).unwrap().actions, vec![1]);
        assert!(cache.get(&sc, &c1).is_none());
        assert!(cache.get(&sc, &c2).is_some());
        // retain drops by predicate and keeps the order list consistent.
        let evicted = cache.retain(|s| s.actions != vec![2]);
        assert_eq!(evicted, 1);
        assert!(cache.is_empty());
        // Re-inserting after retain must not trip FIFO bookkeeping.
        cache.put(&sc, &c2, CachedStrategy { actions: vec![3] });
        assert_eq!(cache.get(&sc, &c2).unwrap().actions, vec![3]);
    }

    #[test]
    fn sharded_cache_bounds_capacity_and_counts_concurrent_hits() {
        use std::sync::Arc;
        let sc = Arc::new(sc());
        // Capacity 64 → 8 shards of 8.
        let cache = Arc::new(StrategyCache::new(16, 64));
        assert_eq!(cache.shards.len(), N_SHARDS);
        // Fill with many distinct buckets; len must never exceed capacity.
        for i in 0..200u16 {
            let c =
                cond(60.0 + f64::from(i) * 1.5, 20.0 + f64::from(i) * 2.0, 1.0 + f64::from(i % 90));
            cache.put(&sc, &c, CachedStrategy { actions: vec![usize::from(i)] });
        }
        assert!(cache.len() <= 64, "len {} exceeds capacity", cache.len());
        assert!(!cache.is_empty());
        // Concurrent readers: every thread's lookups are tallied exactly.
        let warm = cond(140.0, 100.0, 20.0);
        cache.put(&sc, &warm, CachedStrategy { actions: vec![9] });
        let before = cache.stats();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cache = cache.clone();
                let sc = sc.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(
                            cache.get(&sc, &cond(140.0, 100.0, 20.0)).unwrap().actions,
                            vec![9]
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let after = cache.stats();
        assert_eq!(after.hits - before.hits, 400);
        assert_eq!(after.misses, before.misses);
    }
}
